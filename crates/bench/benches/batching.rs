//! E12 — batched vs per-message out-of-order delivery.
//!
//! The unified engine's `on_deliver_batch` merges a burst of K
//! messages into the log and repairs **once** from the earliest
//! insertion position; delivering the same burst message-by-message
//! repairs up to K times. This bench quantifies that win for each
//! repair strategy under two arrival patterns:
//!
//! * `head`   — the whole burst orders before the local history
//!   (clocks 1..=K): the worst case, every per-message delivery
//!   refolds nearly the entire log;
//! * `spread` — burst timestamps scattered uniformly across the
//!   history: the average out-of-order case.
//!
//! Run with `cargo bench -p uc-bench --bench batching`. Results are
//! also written to `BENCH_batching.json` at the workspace root so
//! successive PRs accumulate a perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{CachedReplica, GenericReplica, Replica, Timestamp, UndoReplica, UpdateMsg};
use uc_sim::SplitMix64;
use uc_spec::{SetAdt, SetUpdate};

type Msg = UpdateMsg<SetUpdate<u32>>;

const LOG_LEN: u64 = 8192;
const REPS: usize = 15;
const KS: [usize; 3] = [16, 64, 256];

fn burst(rng: &mut SplitMix64, k: usize, pattern: &str) -> Vec<Msg> {
    let mut clocks: Vec<u64> = match pattern {
        // Orders entirely before the local history.
        "head" => (1..=k as u64).collect(),
        // Scattered across the whole history; pid 1 breaks ties, so
        // clashes with local clocks are fine and need no dedup.
        "spread" => (0..k)
            .map(|_| 1 + rng.next_u64() % LOG_LEN)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect(),
        other => panic!("unknown pattern {other}"),
    };
    // Arrival order is scrambled either way.
    for i in (1..clocks.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        clocks.swap(i, j);
    }
    clocks
        .into_iter()
        .map(|c| UpdateMsg {
            ts: Timestamp::new(c, 1),
            update: SetUpdate::Insert(100_000 + c as u32),
        })
        .collect()
}

/// Median wall time of `REPS` runs of `f` on a fresh clone of `base`.
fn median_ns<R: Clone>(base: &R, mut f: impl FnMut(&mut R)) -> u64 {
    let mut samples: Vec<u64> = (0..REPS)
        .map(|_| {
            let mut r = base.clone();
            let t0 = Instant::now();
            f(&mut r);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    strategy: &'static str,
    pattern: &'static str,
    k: usize,
    per_message_ns: u64,
    batched_ns: u64,
}

fn bench_strategy<R>(rows: &mut Vec<Row>, strategy: &'static str, base: &R, rng: &mut SplitMix64)
where
    R: Replica<SetAdt<u32>, Msg = Msg> + Clone,
{
    for pattern in ["head", "spread"] {
        for k in KS {
            let msgs = burst(rng, k, pattern);
            let per_message_ns = median_ns(base, |r| {
                for m in &msgs {
                    r.on_message(m);
                }
            });
            let batched_ns = median_ns(base, |r| r.on_batch(&msgs));
            rows.push(Row {
                strategy,
                pattern,
                k,
                per_message_ns,
                batched_ns,
            });
        }
    }
}

fn main() {
    let mut rng = SplitMix64::new(0xBA7C4);

    let mut cached: CachedReplica<SetAdt<u32>> = CachedReplica::new(SetAdt::new(), 0);
    let mut undo: UndoReplica<SetAdt<u32>> = UndoReplica::new(SetAdt::new(), 0);
    let mut naive: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    for i in 0..LOG_LEN {
        let u = SetUpdate::Insert((i % 512) as u32);
        cached.update(u);
        undo.update(u);
        naive.update(u);
    }

    let mut rows = Vec::new();
    bench_strategy(&mut rows, "cached", &cached, &mut rng);
    bench_strategy(&mut rows, "undo", &undo, &mut rng);
    bench_strategy(&mut rows, "naive", &naive, &mut rng);

    println!(
        "{:<8} {:<8} {:>5} {:>16} {:>16} {:>9}",
        "strategy", "pattern", "K", "per-message", "batched", "speedup"
    );
    let mut json = String::from("{\n  \"bench\": \"batching\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"log_len\": {LOG_LEN}, \"reps\": {REPS}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.per_message_ns as f64 / r.batched_ns.max(1) as f64;
        println!(
            "{:<8} {:<8} {:>5} {:>13} ns {:>13} ns {:>8.1}x",
            r.strategy, r.pattern, r.k, r.per_message_ns, r.batched_ns, speedup
        );
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"pattern\": \"{}\", \"k\": {}, \
             \"per_message_ns\": {}, \"batched_ns\": {}, \"speedup\": {:.2}}}",
            r.strategy, r.pattern, r.k, r.per_message_ns, r.batched_ns, speedup
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    // Repair strategies must show a real win on out-of-order bursts.
    let repairing = rows.iter().filter(|r| r.strategy != "naive" && r.k >= 64);
    for r in repairing {
        assert!(
            r.batched_ns < r.per_message_ns,
            "{}/{} K={} regressed: batch {} ns vs per-message {} ns",
            r.strategy,
            r.pattern,
            r.k,
            r.batched_ns,
            r.per_message_ns
        );
    }

    // One-line machine-readable summary (baseline refreshes grep for
    // `^BENCH_JSON ` instead of hand-editing the checked-in file).
    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    let out = format!(
        "{}/../../BENCH_batching.json",
        std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
    );
    std::fs::write(&out, json).expect("write baseline json");
    println!("wrote {out}");
}
