//! E12 — cost of the decision procedures vs history size, plus the
//! down-set-DP vs naive-enumeration ablation for linearization
//! counting (the machinery every checker sits on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;
use uc_criteria::{check_ec, check_pc, check_sec, check_suc, check_uc};
use uc_history::{linearize, History, HistoryBuilder};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

/// A convergent 2-process history with `k` updates per process and a
/// read + ω-read tail — SUC-positive, so the searches terminate on a
/// witness rather than exhausting.
fn convergent_history(k: usize) -> History<SetAdt<u32>> {
    let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
    let [p0, p1] = b.processes();
    let mut all = BTreeSet::new();
    for i in 0..k as u32 {
        b.update(p0, SetUpdate::Insert(i));
        b.update(p1, SetUpdate::Insert(100 + i));
        all.insert(i);
        all.insert(100 + i);
    }
    let own: BTreeSet<u32> = (0..k as u32).collect();
    b.query(p0, SetQuery::Read, own);
    b.omega_query(p0, SetQuery::Read, all.clone());
    b.omega_query(p1, SetQuery::Read, all);
    b.build().unwrap()
}

fn bench_checkers(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker_vs_updates");
    for &k in &[1usize, 2, 3] {
        let h = convergent_history(k);
        g.bench_with_input(BenchmarkId::new("ec", 2 * k), &k, |b, _| {
            b.iter(|| black_box(check_ec(&h)))
        });
        g.bench_with_input(BenchmarkId::new("uc", 2 * k), &k, |b, _| {
            b.iter(|| black_box(check_uc(&h)))
        });
        g.bench_with_input(BenchmarkId::new("pc", 2 * k), &k, |b, _| {
            b.iter(|| black_box(check_pc(&h)))
        });
        g.bench_with_input(BenchmarkId::new("sec", 2 * k), &k, |b, _| {
            b.iter(|| black_box(check_sec(&h)))
        });
        g.bench_with_input(BenchmarkId::new("suc", 2 * k), &k, |b, _| {
            b.iter(|| black_box(check_suc(&h)))
        });
    }
    g.finish();
}

fn bench_linearization_counting(c: &mut Criterion) {
    // Two independent chains of length k: C(2k, k) linearizations.
    // The DP counts them in O(2^{2k}) down-sets; naive enumeration
    // walks every one.
    let mut g = c.benchmark_group("linearizations_2_chains");
    for &k in &[4usize, 6, 8] {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        for i in 0..k as u32 {
            b.update(p0, SetUpdate::Insert(i));
            b.update(p1, SetUpdate::Insert(100 + i));
        }
        let h = b.build().unwrap();
        g.bench_with_input(BenchmarkId::new("downset_dp_count", k), &k, |bch, _| {
            bch.iter(|| black_box(linearize::count(&h, h.all_mask())))
        });
        g.bench_with_input(BenchmarkId::new("naive_enumeration", k), &k, |bch, _| {
            bch.iter(|| {
                let mut n = 0u64;
                linearize::for_each::<_, ()>(&h, h.all_mask(), |_| {
                    n += 1;
                    std::ops::ControlFlow::Continue(())
                });
                black_box(n)
            })
        });
    }
    g.finish();
}

fn bench_witness_vs_search(c: &mut Criterion) {
    // The Prop. 4 pipeline's point: polynomial witness verification vs
    // exponential search on the same SUC-positive history.
    let h = convergent_history(3);
    let uc_criteria::Verdict::Holds(uc_criteria::Witness::VisibilityAndOrder { visibility, order }) =
        check_suc(&h)
    else {
        panic!("history must be SUC");
    };
    let w = uc_criteria::SucWitness {
        update_order: order,
        visible: visibility.visible,
    };
    let mut g = c.benchmark_group("suc_decision");
    g.bench_function("search", |b| b.iter(|| black_box(check_suc(&h))));
    g.bench_function("witness_verify", |b| {
        b.iter(|| black_box(uc_criteria::verify_witness(&h, &w)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_checkers,
    bench_linearization_counting,
    bench_witness_vs_search
);
criterion_main!(benches);
