//! E15 — contended ingest + reads: locked store vs lock-free pool.
//!
//! The same insert-only workload runs at 1/2/4/8 producer threads
//! with concurrent reader threads, two ways on identical stores:
//!
//! * **locked**    — the pre-pool sharing model: one
//!   `Arc<Mutex<UcStore>>`, producers lock to stamp+apply, readers
//!   lock to materialize. Every reader stalls every producer and vice
//!   versa; a reader behind an in-flight fold waits it out.
//! * **lock-free** — cloned [`IngestPool`] handles: producers stamp on
//!   the shared atomic clock and CAS-push to claim-pattern worker
//!   inboxes; readers do wait-free `query_snapshot` loads of the
//!   epoch-published post-repair states and never block anyone.
//!
//! Producers write disjoint key ranges (the GC-FIFO precondition for
//! concurrent stamping, and what a sharded front-end does anyway);
//! readers sweep all keys. Both paths must agree with a sequential
//! reference — per-key digests and final clock are asserted every rep
//! (the CI smoke step relies on this).
//!
//! Run with `cargo bench -p uc-bench --bench concurrent`. Results go
//! to `BENCH_concurrent.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run prints a `BENCH_JSON {...}` one-liner for
//! scripted refreshes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use uc_core::{state_digest, Backpressure, CheckpointFactory, PoolConfig, UcStore};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Store = UcStore<SetAdt<u32>, CheckpointFactory>;

const EVERY: usize = 32;
const SHARDS: usize = 8;
const READERS: usize = 2;
const KEYS_PER_PRODUCER: u64 = 8;

fn store() -> Store {
    UcStore::new(SetAdt::new(), 0, SHARDS, CheckpointFactory { every: EVERY })
}

fn digest(store: &mut Store) -> u64 {
    let states: BTreeMap<u64, _> = store
        .keys()
        .into_iter()
        .map(|k| (k, store.materialize_key(k)))
        .collect();
    state_digest(&states)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// `(producer, i)` → the one update stream both paths replay.
fn op(p: u64, i: u64, ops: u64) -> (u64, SetUpdate<u32>) {
    let key = p * KEYS_PER_PRODUCER + (i % KEYS_PER_PRODUCER);
    (key, SetUpdate::Insert((p * ops + i) as u32))
}

/// Locked sharing: every operation — stamp, apply, read — takes the
/// one store mutex.
fn run_locked(producers: u64, ops: u64, reads: u64) -> (u64, u64, Store) {
    let shared = Arc::new(Mutex::new(store()));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                for i in 0..ops {
                    let (key, u) = op(p, i, ops);
                    shared.lock().unwrap().update(key, u);
                }
            });
        }
        for _ in 0..READERS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                let total_keys = producers * KEYS_PER_PRODUCER;
                for i in 0..reads {
                    let key = i % total_keys;
                    let _ = shared.lock().unwrap().query(key, &SetQuery::Read);
                }
            });
        }
    });
    let ns = t0.elapsed().as_nanos() as u64;
    let store = Arc::into_inner(shared)
        .expect("all threads joined")
        .into_inner()
        .unwrap();
    (ns, store.clock(), store)
}

/// Lock-free sharing: producers stamp on the atomic clock and push to
/// claim inboxes; readers load epoch-published snapshots.
fn run_lockfree(producers: u64, ops: u64, reads: u64) -> (u64, u64, Store) {
    let mut pool = store().into_pool(PoolConfig {
        workers: 1,
        queue_depth: 1024,
        backpressure: Backpressure::Park,
    });
    // Arm snapshot publication before the timed region (a real
    // deployment arms once at startup).
    let _ = pool.query_snapshot(0, &SetQuery::Read);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let h = pool.handle();
            s.spawn(move || {
                for i in 0..ops {
                    let (key, u) = op(p, i, ops);
                    h.update(key, u).expect("pool healthy");
                }
            });
        }
        for _ in 0..READERS {
            let h = pool.handle();
            s.spawn(move || {
                let total_keys = producers * KEYS_PER_PRODUCER;
                for i in 0..reads {
                    let key = i % total_keys;
                    let _ = h.query_snapshot(key, &SetQuery::Read);
                }
            });
        }
    });
    pool.flush().expect("pool healthy");
    let ns = t0.elapsed().as_nanos() as u64;
    let clock = pool.clock();
    (ns, clock, pool.finish().expect("pool healthy"))
}

/// Sequential reference for the digest gate: same updates, one thread.
fn run_sequential(producers: u64, ops: u64) -> Store {
    let mut s = store();
    for p in 0..producers {
        for i in 0..ops {
            let (key, u) = op(p, i, ops);
            s.update(key, u);
        }
    }
    s
}

struct Row {
    producers: u64,
    locked_ns: u64,
    lockfree_ns: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 5 };
    let ops: u64 = if smoke { 2_000 } else { 20_000 };
    let producer_counts: &[u64] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "concurrent bench: {ops} updates/producer, {READERS} readers doing as many \
         reads each, reps {reps}, hardware parallelism {hw}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    for &producers in producer_counts {
        let reads = ops; // each reader sweeps as many reads as one producer writes
        let mut reference = run_sequential(producers, ops);
        let want_digest = digest(&mut reference);
        let want_clock = producers * ops; // reads never tick on either path
        let mut locked_samples = Vec::new();
        let mut lockfree_samples = Vec::new();
        for _ in 0..reps {
            let (ns, clock, mut s) = run_locked(producers, ops, reads);
            // The locked path's `query` ticks the clock (blocking
            // strong reads are its only read mode).
            assert!(clock >= want_clock, "locked clock fell short");
            assert_eq!(
                digest(&mut s),
                want_digest,
                "locked diverged at {producers} producers"
            );
            locked_samples.push(ns);

            let (ns, clock, mut s) = run_lockfree(producers, ops, reads);
            assert_eq!(clock, want_clock, "lock-free clock mismatch");
            assert_eq!(
                digest(&mut s),
                want_digest,
                "lock-free diverged at {producers} producers"
            );
            lockfree_samples.push(ns);
        }
        rows.push(Row {
            producers,
            locked_ns: median(locked_samples),
            lockfree_ns: median(lockfree_samples),
        });
    }

    println!(
        "\n{:<10} {:>14} {:>16} {:>18}",
        "producers", "locked Mops/s", "lock-free Mops/s", "lock-free/locked"
    );
    for r in &rows {
        let n = r.producers * ops;
        let mops = |ns: u64| n as f64 * 1e3 / ns as f64;
        println!(
            "{:<10} {:>14.2} {:>16.2} {:>17.2}x",
            r.producers,
            mops(r.locked_ns),
            mops(r.lockfree_ns),
            r.locked_ns as f64 / r.lockfree_ns.max(1) as f64
        );
    }
    println!(
        "\nnote: updates-only throughput (readers run concurrently on both paths, \
         unmetered). On 1-core hosts the win is reader non-interference: locked \
         readers serialize whole folds behind the store mutex, snapshot readers \
         cost one atomic load + Arc clone."
    );

    let mut json = String::from("{\n  \"bench\": \"concurrent\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"ops_per_producer\": {ops}, \"readers\": {READERS}, \
         \"keys_per_producer\": {KEYS_PER_PRODUCER}, \"shards\": {SHARDS}, \
         \"reps\": {reps}, \"parallelism\": {hw}, \"smoke\": {smoke}}},"
    );
    json.push_str("  \"contention\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let n = r.producers * ops;
        let mops = |ns: u64| n as f64 * 1e3 / ns as f64;
        let _ = write!(
            json,
            "    {{\"producers\": {}, \"locked_ns\": {}, \"lockfree_ns\": {}, \
             \"locked_mops\": {:.3}, \"lockfree_mops\": {:.3}, \"speedup\": {:.2}}}",
            r.producers,
            r.locked_ns,
            r.lockfree_ns,
            mops(r.locked_ns),
            mops(r.lockfree_ns),
            r.locked_ns as f64 / r.lockfree_ns.max(1) as f64
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"digest-verified: lock-free == locked == sequential per key \
         every rep; speedup > 1 means atomic stamping + claim inboxes + snapshot \
         reads beat the mutex-shared store under the same producer/reader load\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_concurrent.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
