//! E7 (end-to-end) — simulated wall-clock and message cost to drive a
//! cluster to convergence, for the update-consistent set vs the OR-set
//! baseline, sweeping the process count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uc_bench::{default_latency, drive_crdt_set, drive_uc_set};
use uc_crdt::OrSet;
use uc_sim::workload::{generate, WorkloadSpec};

fn spec(n: usize) -> WorkloadSpec {
    WorkloadSpec {
        processes: n,
        ops_per_process: 120 / n.max(1),
        universe: 16,
        zipf_alpha: 0.8,
        update_ratio: 0.9,
        insert_ratio: 0.6,
        mean_gap: 6,
        seed: 2024,
    }
}

fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("converge_120_ops");
    for &n in &[2usize, 4, 8, 16] {
        let schedule = generate(&spec(n));
        g.throughput(Throughput::Elements(schedule.len() as u64));
        g.bench_with_input(BenchmarkId::new("uc_set", n), &n, |b, _| {
            b.iter(|| black_box(drive_uc_set(n, 5, &schedule, default_latency())))
        });
        g.bench_with_input(BenchmarkId::new("or_set", n), &n, |b, _| {
            b.iter(|| {
                black_box(drive_crdt_set(
                    n,
                    5,
                    &schedule,
                    default_latency(),
                    OrSet::<u32>::new,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
