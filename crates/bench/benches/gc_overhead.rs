//! E10 — the runtime side of stability GC: query cost over a
//! compacted log vs the full log, and the per-message overhead of
//! stability tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uc_core::{GcReplica, GenericReplica, Replica};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

/// A pair of fully-exchanged replicas after `rounds` rounds, with
/// heartbeats so stability advances.
fn gc_pair(rounds: usize) -> GcReplica<SetAdt<u32>> {
    let mut a: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 0, 2);
    let mut b: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 1, 2);
    for r in 0..rounds {
        let ma = a.update(SetUpdate::Insert((r % 50) as u32));
        let mb = b.update(SetUpdate::Delete((r % 70) as u32));
        b.on_gc_message(&ma);
        a.on_gc_message(&mb);
        if r % 4 == 0 {
            for m in a.tick() {
                b.on_gc_message(&m);
            }
            for m in b.tick() {
                a.on_gc_message(&m);
            }
        }
    }
    a
}

fn full_log(rounds: usize) -> GenericReplica<SetAdt<u32>> {
    let mut a: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    let mut b: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    for r in 0..rounds {
        let ma = a.update(SetUpdate::Insert((r % 50) as u32));
        let mb = b.update(SetUpdate::Delete((r % 70) as u32));
        b.on_deliver(&ma);
        a.on_deliver(&mb);
    }
    a
}

fn bench_query_after_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_after_n_rounds");
    for &rounds in &[500usize, 5_000] {
        let mut gc = gc_pair(rounds);
        assert!(gc.compacted() > 0, "GC must have compacted");
        g.bench_with_input(BenchmarkId::new("gc_compacted", rounds), &rounds, |b, _| {
            b.iter(|| black_box(gc.do_query(&SetQuery::Read)))
        });
        let mut full = full_log(rounds);
        g.bench_with_input(BenchmarkId::new("full_log", rounds), &rounds, |b, _| {
            b.iter(|| black_box(full.do_query(&SetQuery::Read)))
        });
    }
    g.finish();
}

fn bench_delivery_overhead(c: &mut Criterion) {
    // Per-delivery cost: GC replicas additionally maintain last_seen
    // and run the compaction check.
    let mut peer_gc: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 1, 2);
    let gc_msgs: Vec<_> = (0..1_000u32)
        .map(|i| peer_gc.update(SetUpdate::Insert(i % 32)))
        .collect();
    let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    let msgs: Vec<_> = (0..1_000u32)
        .map(|i| peer.update(SetUpdate::Insert(i % 32)))
        .collect();

    let mut g = c.benchmark_group("deliver_1k");
    g.bench_function("gc_replica", |b| {
        b.iter_batched(
            || GcReplica::<SetAdt<u32>>::new(SetAdt::new(), 0, 2),
            |mut r| {
                for m in &gc_msgs {
                    r.on_gc_message(m);
                }
                black_box(r.log_len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("plain_replica", |b| {
        b.iter_batched(
            || GenericReplica::<SetAdt<u32>>::new(SetAdt::new(), 0),
            |mut r| {
                for m in &msgs {
                    r.on_deliver(m);
                }
                black_box(r.log_len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_query_after_compaction,
    bench_delivery_overhead
);
criterion_main!(benches);
