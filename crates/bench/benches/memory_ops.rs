//! E9 — Algorithm 2's cost claims: reads and writes are constant-time
//! state work regardless of history length (vs Algorithm 1's replay on
//! the same memory UQ-ADT), and retention is per-register.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uc_core::{GenericReplica, UcMemory};
use uc_spec::{MemoryAdt, MemoryQuery, MemoryUpdate};

fn filled_mem(history: usize, registers: u32) -> UcMemory<u32, u64> {
    let mut m = UcMemory::new(0u64, 0);
    for i in 0..history {
        m.write(i as u32 % registers, i as u64);
    }
    m
}

fn filled_oracle(history: usize, registers: u32) -> GenericReplica<MemoryAdt<u32, u64>> {
    let mut m = GenericReplica::new(MemoryAdt::new(0u64), 0);
    for i in 0..history {
        m.update(MemoryUpdate {
            register: i as u32 % registers,
            value: i as u64,
        });
    }
    m
}

fn bench_read_vs_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_read_vs_history");
    for &history in &[100usize, 1_000, 10_000] {
        let mem = filled_mem(history, 16);
        g.bench_with_input(BenchmarkId::new("algorithm2", history), &history, |b, _| {
            b.iter(|| black_box(mem.read(&7)))
        });
        let mut oracle = filled_oracle(history, 16);
        g.bench_with_input(
            BenchmarkId::new("algorithm1_replay", history),
            &history,
            |b, _| b.iter(|| black_box(oracle.do_query(&MemoryQuery(7)))),
        );
    }
    g.finish();
}

fn bench_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_write");
    for &registers in &[1u32, 64, 1_024] {
        let mut mem = filled_mem(10_000, registers);
        let mut i = 0u64;
        g.bench_with_input(
            BenchmarkId::new("algorithm2", registers),
            &registers,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    black_box(mem.write((i % registers as u64) as u32, i))
                })
            },
        );
    }
    g.finish();
}

fn bench_remote_absorb(c: &mut Criterion) {
    // Receiving a peer's write: one map probe + timestamp compare.
    let mut peer: UcMemory<u32, u64> = UcMemory::new(0, 1);
    let msgs: Vec<_> = (0..1_000).map(|i| peer.write(i % 64, i as u64)).collect();
    let mut g = c.benchmark_group("memory_absorb_1k_writes");
    g.bench_function("algorithm2", |b| {
        b.iter_batched(
            || UcMemory::<u32, u64>::new(0, 0),
            |mut m| {
                for msg in &msgs {
                    m.on_deliver(msg);
                }
                black_box(m.registers())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_read_vs_history,
    bench_write,
    bench_remote_absorb
);
criterion_main!(benches);
