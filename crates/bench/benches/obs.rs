//! Observability overhead — what the streaming consistency monitor
//! costs on the ingest hot path, as a function of its sampling rate.
//!
//! A producer replica issues a zipfian keyed update stream; a consumer
//! store ingests it through the batched path under five configurations:
//! monitor detached, and attached at sampling rates 0, 0.01, 0.1, and
//! 1.0. Measured: ingest wall time per configuration (medians over
//! round-robin reps), the overhead each rate adds over the detached
//! baseline, and — the deterministic properties actually asserted —
//! that every configuration converges to the same per-key digests
//! (the monitor must never perturb results) and that the full-rate
//! monitor reports **zero violations** on the clean stream (zero false
//! positives).
//!
//! The run ends by exporting the full-rate store's metrics through
//! `uc-obs` and printing the Prometheus text, so the CI smoke step can
//! grep for the metric names end-to-end.
//!
//! Run with `cargo bench -p uc-bench --bench obs` (`UC_BENCH_SMOKE=1`
//! shrinks the workload for CI). Results land in `BENCH_obs.json`.

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{CheckpointFactory, NaiveFactory, StoreMsg, UcStore};
use uc_criteria::online::MonitorConfig;
use uc_obs::Registry;
use uc_sim::{generate_keyed, perturb_order, KeyedWorkloadSpec, SetOpKind};
use uc_spec::{SetAdt, SetUpdate};

type Msg = StoreMsg<SetUpdate<u32>>;

const CHUNK: usize = 4096;
const EVERY: usize = 32;
/// Monitor sampling rates under test; `None` = monitor detached.
const RATES: [Option<f64>; 5] = [None, Some(0.0), Some(0.01), Some(0.1), Some(1.0)];

fn smoke() -> bool {
    std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn spec() -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: if smoke() { 6_000 } else { 40_000 },
        keys: 256,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.15,
        snapshot_rate: 0.0,
        seed: 0x0B5ED,
    }
}

fn to_update(kind: SetOpKind) -> SetUpdate<u32> {
    match kind {
        SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
        SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
        SetOpKind::Read | SetOpKind::SnapshotRead => unreachable!("update_ratio is 1.0"),
    }
}

fn keyed_stream(spec: &KeyedWorkloadSpec) -> Vec<Msg> {
    let mut producer: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 1, 1, NaiveFactory);
    let mut msgs: Vec<Msg> = generate_keyed(spec)
        .into_iter()
        .map(|op| producer.update(op.key, to_update(op.kind)))
        .collect();
    perturb_order(&mut msgs, spec.ooo_rate, spec.seed ^ 0xBAD);
    msgs
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Overhead is computed from each configuration's *fastest* rep: the
/// minimum is the least-noise estimator of intrinsic cost on a shared
/// host (scheduler interference only ever adds time).
fn min(samples: &[u64]) -> u64 {
    *samples.iter().min().expect("non-empty samples")
}

fn rate_label(rate: Option<f64>) -> String {
    match rate {
        None => "off".into(),
        Some(r) => format!("{r}"),
    }
}

fn main() {
    let reps = if smoke() { 3 } else { 7 };
    let spec = spec();
    let stream = keyed_stream(&spec);
    let total = stream.len();
    println!(
        "monitor overhead: {total} zipfian updates over {} keys, rates {:?}",
        spec.keys,
        RATES.map(rate_label)
    );

    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); RATES.len()];
    let mut reference_digest: Option<Vec<(u64, u64)>> = None;
    let mut final_store: Option<UcStore<SetAdt<u32>, CheckpointFactory>> = None;
    // Round-robin over configurations within each rep so host drift
    // hits every rate equally.
    for rep in 0..reps {
        for (idx, rate) in RATES.into_iter().enumerate() {
            let mut store: UcStore<SetAdt<u32>, CheckpointFactory> =
                UcStore::new(SetAdt::new(), 0, 4, CheckpointFactory { every: EVERY });
            if let Some(r) = rate {
                store.attach_monitor(MonitorConfig::sampled(r).with_peers([0, 1]));
            }
            let t0 = Instant::now();
            for chunk in stream.chunks(CHUNK) {
                store.apply_batch(chunk);
            }
            samples[idx].push(t0.elapsed().as_nanos() as u64);
            // The monitor must be a pure observer: every rate (and
            // none) converges to identical per-key content.
            let digest: Vec<(u64, u64)> = store
                .keys()
                .into_iter()
                .map(|k| (k, uc_core::state_digest(&store.materialize_key(k))))
                .collect();
            match &reference_digest {
                None => reference_digest = Some(digest),
                Some(r) => assert_eq!(
                    r, &digest,
                    "monitored store (rate {:?}) diverged from baseline",
                    rate
                ),
            }
            if rate == Some(1.0) && rep == reps - 1 {
                final_store = Some(store);
            }
        }
    }

    struct Row {
        rate: String,
        median_ns: u64,
        min_ns: u64,
        throughput_mops: f64,
        overhead_pct: f64,
    }
    let base_ns = min(&samples[0]);
    let rows: Vec<Row> = RATES
        .into_iter()
        .enumerate()
        .map(|(idx, rate)| {
            let median_ns = median(samples[idx].clone());
            let min_ns = min(&samples[idx]);
            Row {
                rate: rate_label(rate),
                median_ns,
                min_ns,
                throughput_mops: total as f64 * 1e3 / median_ns as f64,
                overhead_pct: (min_ns as f64 - base_ns as f64) * 100.0 / base_ns as f64,
            }
        })
        .collect();

    println!(
        "\n{:<8} {:>14} {:>14} {:>12} {:>12}",
        "rate", "median", "min", "Mops/s", "overhead"
    );
    for r in &rows {
        println!(
            "{:<8} {:>11} ns {:>11} ns {:>12.2} {:>11.1}%",
            r.rate, r.median_ns, r.min_ns, r.throughput_mops, r.overhead_pct
        );
    }
    // Wall-clock ratios on shared runners are too noisy to gate CI on;
    // the ≤10%-at-1%-sampling budget is recorded in the JSON and only
    // flagged here.
    let at_1pct = &rows[2];
    if at_1pct.overhead_pct > 10.0 {
        eprintln!(
            "note: monitor overhead at 1% sampling above the 10% budget this run \
             ({:.1}%) — expected on noisy hosts",
            at_1pct.overhead_pct
        );
    }

    // Deterministic acceptance: the full-rate monitor saw the whole
    // clean stream and must report zero violations — and its stability
    // window compacts once the producer's clock is announced.
    let mut store = final_store.expect("full-rate config ran");
    let producer_clock = store.clock();
    store.apply_message(&StoreMsg::Heartbeat {
        pid: 1,
        clock: producer_clock,
    });
    store.tick_maintenance();
    let stats = store.monitor_stats().expect("monitor attached").clone();
    assert!(stats.clean(), "false positive on a clean stream: {stats:?}");
    assert_eq!(stats.sampled_updates, total as u64, "full rate sees all");
    assert!(
        stats.finalized_updates > 0,
        "stability compaction never fired: {stats:?}"
    );
    println!(
        "\nfull-rate monitor: {} updates observed, {} finalized at stable bound {}, \
         0 violations",
        stats.sampled_updates, stats.finalized_updates, stats.stable_bound
    );

    // Export end-to-end: the CI smoke step greps this output for the
    // metric names, so renaming one fails loudly.
    let reg = Registry::new();
    store.export_metrics(&reg);
    let snap = reg.snapshot();
    println!(
        "\n--- prometheus exposition ---\n{}",
        snap.render_prometheus()
    );
    println!("--- health ---\n{}", store.health(2).render());

    let mut json = String::from("{\n  \"bench\": \"obs\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"updates\": {total}, \"keys\": {}, \"chunk\": {CHUNK}, \
         \"reps\": {reps}, \"smoke\": {}}},",
        spec.keys,
        smoke()
    );
    json.push_str("  \"sampling\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"rate\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
             \"throughput_mops\": {:.3}, \"overhead_pct\": {:.1}}}",
            r.rate, r.median_ns, r.min_ns, r.throughput_mops, r.overhead_pct
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"monitor\": {{\"sampled_updates\": {}, \"finalized_updates\": {}, \
         \"stable_bound\": {}, \"violations\": {}}}",
        stats.sampled_updates,
        stats.finalized_updates,
        stats.stable_bound,
        stats.total_violations()
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    let out = format!(
        "{}/../../BENCH_obs.json",
        std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
    );
    std::fs::write(&out, json).expect("write baseline json");
    println!("wrote {out}");
}
