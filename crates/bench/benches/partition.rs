//! E17 — reconciliation-on-heal: anti-entropy suffix streaming vs a
//! full-log replay, as the partition-era divergence grows.
//!
//! A majority replica and a partitioned (minority) replica share a
//! common prefix; the majority then ingests `D` further updates the
//! minority never sees. Heal streams exactly the suffix above the
//! outage-start watermark ([`UcStore::collect_suffix_since`], which
//! skips shards whose divergence high water never passed it), and the
//! minority ingests the burst through the same deduplicating batch
//! path as ordinary delivery. The naive alternative — what a
//! state-transfer protocol without watermarks pays — replays the
//! *entire* log.
//!
//! Three timed columns per divergence size: streaming the heal
//! suffix, applying the burst on the healed replica, and the full-log
//! replay baseline. Every rep asserts the healed replica's per-key
//! states equal the majority's (which, by construction, equals a
//! never-partitioned control) — the CI smoke step relies on this.
//!
//! Run with `cargo bench -p uc-bench --bench partition`. Results are
//! written to `BENCH_partition.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run also prints a `BENCH_JSON {...}` one-liner so
//! baseline refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{CheckpointFactory, UcStore};
use uc_sim::{generate_keyed, KeyedWorkloadSpec};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Adt = SetAdt<u32>;
type Store = UcStore<Adt, CheckpointFactory>;

const EVERY: usize = 32;
const SHARDS: usize = 4;
/// A pid no replica uses: passing it as `exclude_pid` makes
/// `collect_suffix_since` stream *everything* — the full-replay
/// baseline.
const NOBODY: u32 = 99;

fn spec(prefix: usize, divergence: usize, seed: u64) -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: prefix + divergence,
        keys: 256,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.0,
        snapshot_rate: 0.0,
        seed,
    }
}

fn ops(spec: &KeyedWorkloadSpec) -> Vec<(u64, SetUpdate<u32>)> {
    generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let u = match op.kind {
                uc_sim::SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
                uc_sim::SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
                uc_sim::SetOpKind::Read | uc_sim::SetOpKind::SnapshotRead => {
                    unreachable!("update_ratio is 1.0")
                }
            };
            (op.key, u)
        })
        .collect()
}

fn store(pid: u32) -> Store {
    UcStore::new(
        SetAdt::new(),
        pid,
        SHARDS,
        CheckpointFactory { every: EVERY },
    )
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    divergence: usize,
    stream_ns: u64,
    apply_ns: u64,
    full_replay_ns: u64,
    burst_entries: usize,
    full_entries: usize,
    burst_bytes: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 7 };
    let prefix = if smoke { 2_000 } else { 20_000 };
    let divergences: &[usize] = if smoke {
        &[200, 800]
    } else {
        &[2_000, 8_000, 32_000]
    };
    println!(
        "partition bench: prefix {prefix}, divergences {divergences:?}, reps {reps}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    for (i, &divergence) in divergences.iter().enumerate() {
        let spec = spec(prefix, divergence, 0xBEA7 ^ i as u64);
        let stream = ops(&spec);

        // Majority replica (pid 0) issues every update; the minority
        // replica (pid 2) receives only the shared prefix before the
        // link drops.
        let mut majority = store(0);
        let mut minority = store(2);
        for (key, u) in &stream[..prefix] {
            let m = majority.update(*key, *u);
            minority.apply_message(&m);
        }
        majority.peer_down(2);
        let watermark = majority
            .partition()
            .down_peers()
            .next()
            .expect("just marked down")
            .1;
        for (key, u) in &stream[prefix..] {
            majority.update(*key, *u);
        }

        // Repeatable reads of the two collection paths (collection
        // never mutates partition state, so it can be sampled).
        let mut stream_samples = Vec::new();
        let mut full_samples = Vec::new();
        let mut burst_entries = 0;
        let mut full_entries = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let suffix = majority.collect_suffix_since(watermark, 2);
            stream_samples.push(t0.elapsed().as_nanos() as u64);
            burst_entries = suffix.len();

            let t0 = Instant::now();
            let everything = majority.collect_suffix_since(0, NOBODY);
            full_samples.push(t0.elapsed().as_nanos() as u64);
            full_entries = everything.len();
        }
        assert_eq!(
            burst_entries, divergence,
            "suffix must be exactly the partition-era updates"
        );
        assert_eq!(
            full_entries,
            prefix + divergence,
            "full replay must carry the whole log"
        );

        // The one-shot real heal: stream, deliver, converge. The first
        // delivery does the work, so it alone is reported; redelivered
        // bursts (retry overlap) must be absorbed by dedup, which the
        // extra applications below exercise without being timed.
        let repair = majority.peer_up(2).expect("divergence must heal");
        let burst_bytes = majority.heal_replay_bytes();
        let t0 = Instant::now();
        minority.apply_batch(std::slice::from_ref(&repair));
        let apply_ns = t0.elapsed().as_nanos() as u64;
        for _ in 1..reps {
            minority.apply_batch(std::slice::from_ref(&repair));
        }

        // Equality gate: the healed minority matches the majority on
        // every key (the majority is the never-partitioned control —
        // it saw each update exactly once, locally).
        for key in majority.keys() {
            assert_eq!(
                majority.query(key, &SetQuery::Read),
                minority.query(key, &SetQuery::Read),
                "healed replica diverged on key {key}"
            );
        }

        rows.push(Row {
            divergence,
            stream_ns: median(stream_samples),
            apply_ns,
            full_replay_ns: median(full_samples),
            burst_entries,
            full_entries,
            burst_bytes,
        });
    }

    println!(
        "\n{:<11} {:>11} {:>10} {:>15} {:>9} {:>11}",
        "divergence", "stream ns", "apply ns", "full-replay ns", "entries", "full/strm"
    );
    for r in &rows {
        println!(
            "{:<11} {:>11} {:>10} {:>15} {:>9} {:>10.2}x",
            r.divergence,
            r.stream_ns,
            r.apply_ns,
            r.full_replay_ns,
            r.burst_entries,
            r.full_replay_ns as f64 / r.stream_ns.max(1) as f64
        );
    }
    println!(
        "\nnote: stream = collect the suffix above the outage watermark (shards \
         whose high water never passed it are skipped); full-replay = what a \
         watermark-less state transfer collects; apply = deduplicating batch \
         ingest of the burst on the healed replica. Healed state is \
         equality-verified against the never-partitioned control every rep."
    );

    let mut json = String::from("{\n  \"bench\": \"partition\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"prefix\": {prefix}, \"shards\": {SHARDS}, \
         \"checkpoint_every\": {EVERY}, \"reps\": {reps}, \"smoke\": {smoke}}},"
    );
    json.push_str("  \"heals\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"divergence\": {}, \"stream_ns\": {}, \"apply_ns\": {}, \
             \"full_replay_ns\": {}, \"burst_entries\": {}, \"full_entries\": {}, \
             \"burst_bytes\": {}, \"full_vs_stream\": {:.2}}}",
            r.divergence,
            r.stream_ns,
            r.apply_ns,
            r.full_replay_ns,
            r.burst_entries,
            r.full_entries,
            r.burst_bytes,
            r.full_replay_ns as f64 / r.stream_ns.max(1) as f64
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"equality-verified every rep: healed minority == \
         never-partitioned majority per key; stream collects only the suffix above \
         the outage-start watermark, full_replay collects the whole log (the \
         watermark-less baseline); apply is the deduplicating burst ingest on the \
         healed side\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_partition.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
