//! E17 — reconciliation-on-heal: anti-entropy suffix streaming vs a
//! full-log replay, and the digest-guided **chunked** heal vs the
//! monolithic burst, as the partition-era divergence grows.
//!
//! A majority replica and a partitioned (minority) replica share a
//! common prefix; the majority then ingests `D` further updates the
//! minority never sees. Heal streams exactly the suffix above the
//! outage-start watermark ([`UcStore::collect_suffix_since`], which
//! skips shards whose divergence high water never passed it), and the
//! minority ingests the burst through the same deduplicating batch
//! path as ordinary delivery. The naive alternative — what a
//! state-transfer protocol without watermarks pays — replays the
//! *entire* log.
//!
//! Three phases per run:
//!
//! 1. **stream vs full-replay** — the PR 8 columns: collecting the
//!    watermarked suffix vs collecting the whole log.
//! 2. **chunked vs monolithic** — the same heal driven end to end
//!    through the digest-guided, flow-controlled chunk dialogue
//!    ([`UcStore::heal_peer`]) and through the one-shot
//!    [`UcStore::peer_up_monolithic`] burst. Reports wall-clock for
//!    both and the chunked path's *peak in-flight entries* (sampled
//!    off the `heal_bytes_in_flight` gauge every protocol step),
//!    asserting it stays ≤ `window * chunk` — O(chunk) peak memory —
//!    while the monolithic burst holds the entire divergence at once.
//!    Every rep asserts chunk-healed == monolithic-healed ==
//!    never-partitioned, per key.
//! 3. **digest skip** — a 16-shard pair diverging in exactly one key:
//!    the digest exchange must skip ≥ 90% of its slots (asserted),
//!    and the diverged key must still stream (equality-asserted) —
//!    the O(divergence) win and its collision-resistance gate.
//!
//! Run with `cargo bench -p uc-bench --bench partition`. Results are
//! written to `BENCH_partition.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run also prints a `BENCH_JSON {...}` one-liner so
//! baseline refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{CheckpointFactory, HealConfig, StoreMsg, UcStore};
use uc_sim::{generate_keyed, KeyedWorkloadSpec};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Adt = SetAdt<u32>;
type Store = UcStore<Adt, CheckpointFactory>;

const EVERY: usize = 32;
const SHARDS: usize = 4;
/// A pid no replica uses: passing it as `exclude_pid` makes
/// `collect_suffix_since` stream *everything* — the full-replay
/// baseline.
const NOBODY: u32 = 99;
/// Chunked-heal tuning under test: peak in-flight payload is bounded
/// by `CHUNK * WINDOW` entries regardless of divergence size.
const CHUNK: usize = 256;
const WINDOW: usize = 2;

fn spec(prefix: usize, divergence: usize, seed: u64) -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: prefix + divergence,
        keys: 256,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.0,
        snapshot_rate: 0.0,
        seed,
    }
}

fn ops(spec: &KeyedWorkloadSpec) -> Vec<(u64, SetUpdate<u32>)> {
    generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let u = match op.kind {
                uc_sim::SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
                uc_sim::SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
                uc_sim::SetOpKind::Read | uc_sim::SetOpKind::SnapshotRead => {
                    unreachable!("update_ratio is 1.0")
                }
            };
            (op.key, u)
        })
        .collect()
}

fn store(pid: u32) -> Store {
    UcStore::new(
        SetAdt::new(),
        pid,
        SHARDS,
        CheckpointFactory { every: EVERY },
    )
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Drive the full chunked-heal dialogue between two stores,
/// sampling the healer's in-flight gauge at every protocol step.
/// Returns (chunks streamed, peak in-flight bytes).
fn drive_chunked(healer: &mut Store, healed: &mut Store) -> (u64, u64) {
    let me = healer.pid();
    let peer = healed.pid();
    let Some(opener) = healer.peer_up(peer) else {
        return (0, 0);
    };
    let (mut chunks, mut peak) = (0u64, 0u64);
    let mut to_peer = vec![opener];
    while !to_peer.is_empty() {
        let mut to_me = Vec::new();
        for m in to_peer.drain(..) {
            if matches!(m, StoreMsg::RepairChunk { .. }) {
                chunks += 1;
            }
            to_me.extend(healed.apply_message_from(me, m).into_iter().map(|(_, m)| m));
        }
        peak = peak.max(healer.heal_bytes_in_flight());
        for m in to_me {
            to_peer.extend(
                healer
                    .apply_message_from(peer, m)
                    .into_iter()
                    .map(|(_, m)| m),
            );
        }
        peak = peak.max(healer.heal_bytes_in_flight());
    }
    (chunks, peak)
}

fn assert_equal_stores(a: &mut Store, b: &mut Store, label: &str) {
    for key in a.keys() {
        assert_eq!(
            a.query(key, &SetQuery::Read),
            b.query(key, &SetQuery::Read),
            "{label}: diverged on key {key}"
        );
    }
}

struct Row {
    divergence: usize,
    stream_ns: u64,
    apply_ns: u64,
    full_replay_ns: u64,
    burst_entries: usize,
    full_entries: usize,
    burst_bytes: u64,
}

struct ChunkRow {
    divergence: usize,
    mono_ns: u64,
    chunked_ns: u64,
    chunks: u64,
    peak_inflight_entries: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 7 };
    let prefix = if smoke { 2_000 } else { 20_000 };
    let divergences: &[usize] = if smoke {
        &[200, 800]
    } else {
        &[2_000, 8_000, 32_000]
    };
    let per_entry = (8 + 12 + std::mem::size_of::<SetUpdate<u32>>()) as u64;
    println!(
        "partition bench: prefix {prefix}, divergences {divergences:?}, reps {reps}, \
         chunk {CHUNK} x window {WINDOW}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut chunk_rows: Vec<ChunkRow> = Vec::new();
    for (i, &divergence) in divergences.iter().enumerate() {
        let spec = spec(prefix, divergence, 0xBEA7 ^ i as u64);
        let stream = ops(&spec);

        // Majority replica (pid 0) issues every update; the minority
        // replica (pid 2) receives only the shared prefix before the
        // link drops.
        let mut majority = store(0);
        majority.set_heal_config(HealConfig {
            chunk: CHUNK,
            window: WINDOW,
            ..HealConfig::default()
        });
        let mut minority = store(2);
        for (key, u) in &stream[..prefix] {
            let m = majority.update(*key, *u);
            minority.apply_message(&m);
        }
        majority.peer_down(2);
        let watermark = majority
            .partition()
            .down_peers()
            .next()
            .expect("just marked down")
            .1;
        for (key, u) in &stream[prefix..] {
            majority.update(*key, *u);
        }

        // Repeatable reads of the two collection paths (collection
        // never mutates partition state, so it can be sampled).
        let mut stream_samples = Vec::new();
        let mut full_samples = Vec::new();
        let mut burst_entries = 0;
        let mut full_entries = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let suffix = majority.collect_suffix_since(watermark, 2);
            stream_samples.push(t0.elapsed().as_nanos() as u64);
            burst_entries = suffix.len();

            let t0 = Instant::now();
            let everything = majority.collect_suffix_since(0, NOBODY);
            full_samples.push(t0.elapsed().as_nanos() as u64);
            full_entries = everything.len();
        }
        assert_eq!(
            burst_entries, divergence,
            "suffix must be exactly the partition-era updates"
        );
        assert_eq!(
            full_entries,
            prefix + divergence,
            "full replay must carry the whole log"
        );

        // Chunked vs monolithic, end to end on cloned pairs so every
        // rep heals the same frozen divergence. The equality gate runs
        // every rep: chunk-healed == monolithic-healed == the
        // never-partitioned majority (it saw each update exactly once,
        // locally).
        let mut mono_samples = Vec::new();
        let mut chunked_samples = Vec::new();
        let mut chunks_streamed = 0u64;
        let mut peak_inflight = 0u64;
        for _ in 0..reps {
            let mut mono_healer = majority.clone();
            let mut mono_healed = minority.clone();
            let t0 = Instant::now();
            let burst = mono_healer
                .peer_up_monolithic(2)
                .expect("divergence must heal");
            mono_healed.apply_batch(std::slice::from_ref(&burst));
            mono_samples.push(t0.elapsed().as_nanos() as u64);

            let mut chunk_healer = majority.clone();
            let mut chunk_healed = minority.clone();
            let t0 = Instant::now();
            let (chunks, peak) = drive_chunked(&mut chunk_healer, &mut chunk_healed);
            chunked_samples.push(t0.elapsed().as_nanos() as u64);
            chunks_streamed = chunks;
            peak_inflight = peak_inflight.max(peak);

            assert_equal_stores(&mut mono_healer, &mut mono_healed, "monolithic heal");
            assert_equal_stores(&mut mono_healer, &mut chunk_healed, "chunked heal");
            assert_equal_stores(&mut chunk_healer, &mut chunk_healed, "chunked healer");
        }
        let peak_entries = peak_inflight / per_entry;
        assert!(
            peak_entries <= (CHUNK * WINDOW) as u64,
            "chunked heal peak in-flight ({peak_entries} entries) must stay \
             within window * chunk ({})",
            CHUNK * WINDOW
        );
        assert!(
            chunks_streamed >= divergence.div_ceil(CHUNK) as u64,
            "divergence {divergence} needs ≥ {} chunks of {CHUNK}",
            divergence.div_ceil(CHUNK)
        );

        // The one-shot real heal on the live pair: time the burst
        // apply, then redeliver it to exercise dedup.
        let burst = majority
            .peer_up_monolithic(2)
            .expect("divergence must heal");
        let burst_bytes = majority.heal_replay_bytes();
        let t0 = Instant::now();
        minority.apply_batch(std::slice::from_ref(&burst));
        let apply_ns = t0.elapsed().as_nanos() as u64;
        for _ in 1..reps {
            // Redelivered bursts (retry overlap) must be absorbed by
            // dedup — exercised untimed.
            minority.apply_batch(std::slice::from_ref(&burst));
        }
        assert_equal_stores(&mut majority, &mut minority, "healed live pair");

        rows.push(Row {
            divergence,
            stream_ns: median(stream_samples),
            apply_ns,
            full_replay_ns: median(full_samples),
            burst_entries,
            full_entries,
            burst_bytes,
        });
        chunk_rows.push(ChunkRow {
            divergence,
            mono_ns: median(mono_samples),
            chunked_ns: median(chunked_samples),
            chunks: chunks_streamed,
            peak_inflight_entries: peak_entries,
        });
    }

    // Digest-skip phase: 16 shards, fully converged pair, then exactly
    // one key diverges. The digest exchange must skip ≥ 90% of its
    // slots — and must still stream the diverged key.
    let digest_shards = 16usize;
    let mut healer = UcStore::new(
        SetAdt::new(),
        0,
        digest_shards,
        CheckpointFactory { every: EVERY },
    );
    let mut healed = UcStore::new(
        SetAdt::new(),
        2,
        digest_shards,
        CheckpointFactory { every: EVERY },
    );
    for i in 0..512u64 {
        let m = healer.update(i % 128, SetUpdate::Insert(i as u32));
        healed.apply_message(&m);
    }
    healer.peer_down(2);
    for i in 0..32u64 {
        healer.update(7, SetUpdate::Insert(1_000 + i as u32));
    }
    let t0 = Instant::now();
    let (digest_chunks, _) = drive_chunked(&mut healer, &mut healed);
    let digest_ns = t0.elapsed().as_nanos() as u64;
    let total_slots = digest_shards as u64 * healer.heal_config().ranges as u64;
    let skipped = healer.heal_digest_skips();
    let skip_ratio = skipped as f64 / total_slots as f64;
    assert!(
        skip_ratio >= 0.9,
        "one diverged key of 128 must skip ≥ 90% of {total_slots} slots, \
         skipped {skipped} ({skip_ratio:.3})"
    );
    assert_eq!(
        healer.query(7, &SetQuery::Read),
        healed.query(7, &SetQuery::Read),
        "the diverged key must never be digest-skipped"
    );

    println!(
        "\n{:<11} {:>11} {:>10} {:>15} {:>9} {:>11}",
        "divergence", "stream ns", "apply ns", "full-replay ns", "entries", "full/strm"
    );
    for r in &rows {
        println!(
            "{:<11} {:>11} {:>10} {:>15} {:>9} {:>10.2}x",
            r.divergence,
            r.stream_ns,
            r.apply_ns,
            r.full_replay_ns,
            r.burst_entries,
            r.full_replay_ns as f64 / r.stream_ns.max(1) as f64
        );
    }
    println!(
        "\n{:<11} {:>11} {:>12} {:>7} {:>14} {:>12}",
        "divergence", "mono ns", "chunked ns", "chunks", "peak-inflight", "chunk/mono"
    );
    for r in &chunk_rows {
        println!(
            "{:<11} {:>11} {:>12} {:>7} {:>14} {:>11.2}x",
            r.divergence,
            r.mono_ns,
            r.chunked_ns,
            r.chunks,
            r.peak_inflight_entries,
            r.chunked_ns as f64 / r.mono_ns.max(1) as f64
        );
    }
    println!(
        "\ndigest skip: {skipped}/{total_slots} slots skipped ({:.1}%), {digest_chunks} \
         chunk(s) streamed for the diverged key, {digest_ns} ns end to end",
        skip_ratio * 100.0
    );
    println!(
        "\nnote: stream = collect the suffix above the outage watermark (shards \
         whose high water never passed it are skipped); full-replay = what a \
         watermark-less state transfer collects; chunked = the digest-guided \
         flow-controlled heal dialogue end to end (peak in-flight bounded by \
         window * chunk = {}); healed state is equality-verified against the \
         never-partitioned control every rep.",
        CHUNK * WINDOW
    );

    let mut json = String::from("{\n  \"bench\": \"partition\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"prefix\": {prefix}, \"shards\": {SHARDS}, \
         \"checkpoint_every\": {EVERY}, \"reps\": {reps}, \"chunk\": {CHUNK}, \
         \"window\": {WINDOW}, \"smoke\": {smoke}}},"
    );
    json.push_str("  \"heals\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"divergence\": {}, \"stream_ns\": {}, \"apply_ns\": {}, \
             \"full_replay_ns\": {}, \"burst_entries\": {}, \"full_entries\": {}, \
             \"burst_bytes\": {}, \"full_vs_stream\": {:.2}}}",
            r.divergence,
            r.stream_ns,
            r.apply_ns,
            r.full_replay_ns,
            r.burst_entries,
            r.full_entries,
            r.burst_bytes,
            r.full_replay_ns as f64 / r.stream_ns.max(1) as f64
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n  \"chunked\": [\n");
    for (i, r) in chunk_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"divergence\": {}, \"mono_ns\": {}, \"chunked_ns\": {}, \
             \"chunks\": {}, \"peak_inflight_entries\": {}, \"chunked_vs_mono\": {:.2}}}",
            r.divergence,
            r.mono_ns,
            r.chunked_ns,
            r.chunks,
            r.peak_inflight_entries,
            r.chunked_ns as f64 / r.mono_ns.max(1) as f64
        );
        json.push_str(if i + 1 == chunk_rows.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"digest_skip\": {{\"shards\": {digest_shards}, \"slots\": {total_slots}, \
         \"skipped\": {skipped}, \"skip_ratio\": {skip_ratio:.3}, \
         \"chunks\": {digest_chunks}, \"heal_ns\": {digest_ns}}},"
    );
    json.push_str(
        "  \"note\": \"equality-verified every rep: chunk-healed == monolithic-healed \
         == never-partitioned majority per key; stream collects only the suffix above \
         the outage-start watermark, full_replay collects the whole log (the \
         watermark-less baseline); chunked drives the digest-guided flow-controlled \
         dialogue end to end with peak in-flight asserted <= window * chunk; \
         digest_skip diverges one key of 128 across 16 shards and asserts >= 90% of \
         slots skipped with the diverged key still streamed\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_partition.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
