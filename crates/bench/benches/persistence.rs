//! E15 — persistence: in-memory vs segment-backed ingest, and
//! kill-and-reopen recovery latency.
//!
//! The same perturbed zipfian keyed stream is ingested in chunks on
//! identical stores three ways:
//!
//! * **mem**       — the [`MemBackend`] default (the pre-refactor
//!   baseline: journaling compiles to nothing);
//! * **seg**       — [`SegmentFactory`] with a `flush_backends` after
//!   every chunk (process-crash durable per burst: journal encode +
//!   OS write on the ingest path);
//! * **seg-fsync** — the same, with the factory's `fsync(true)`
//!   power-loss tier (one `fdatasync` per touched key per flush);
//! * **seg-lazy**  — flushed once at the end (write-behind: the
//!   ingest path only encodes into the pending buffer, the way
//!   timer-driven flushing batches durability).
//!
//! After the durable ingest the store is dropped (**kill**) and
//! `UcStore::reopen` rebuilds every key as `fold(base) + replay(tail)`
//! — the timed **reopen** column, with a per-key cold-start figure.
//! All four stores (mem, seg, seg-lazy, reopened) must report
//! byte-identical per-key digests every rep — the CI smoke step
//! (`UC_BENCH_SMOKE=1`) is exactly this ingest → kill → reopen →
//! digest-assert loop under a hermetic tempdir.
//!
//! Run with `cargo bench -p uc-bench --bench persistence`. Results are
//! written to `BENCH_persistence.json` at the workspace root; every
//! run also prints a `BENCH_JSON {...}` one-liner so baseline
//! refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{state_digest, CheckpointFactory, NaiveFactory, StoreMsg, UcStore};
use uc_sim::{generate_keyed, perturb_order, KeyedWorkloadSpec};
use uc_spec::{SetAdt, SetUpdate};
use uc_storage::{ScratchDir, SegmentFactory};

type Msg = StoreMsg<SetUpdate<u32>>;
type Adt = SetAdt<u32>;
type MemStore = UcStore<Adt, CheckpointFactory>;
type SegStore = UcStore<Adt, CheckpointFactory, SegmentFactory>;

const CHUNK: usize = 2048;
const EVERY: usize = 32;
const SHARDS: usize = 4;

fn spec(smoke: bool) -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: if smoke { 4_000 } else { 40_000 },
        keys: 256,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.15,
        snapshot_rate: 0.0,
        seed: 0x5E6,
    }
}

fn keyed_stream(spec: &KeyedWorkloadSpec) -> Vec<Msg> {
    let mut producer: UcStore<Adt, NaiveFactory> = UcStore::new(SetAdt::new(), 1, 1, NaiveFactory);
    let mut msgs: Vec<Msg> = generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let u = match op.kind {
                uc_sim::SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
                uc_sim::SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
                uc_sim::SetOpKind::Read | uc_sim::SetOpKind::SnapshotRead => {
                    unreachable!("update_ratio is 1.0")
                }
            };
            producer.update(op.key, u)
        })
        .collect();
    perturb_order(&mut msgs, spec.ooo_rate, spec.seed ^ 0xBAD);
    msgs
}

fn digest_mem(store: &mut MemStore) -> Vec<(u64, u64)> {
    store
        .keys()
        .into_iter()
        .map(|k| (k, state_digest(&store.materialize_key(k))))
        .collect()
}

fn digest_seg(store: &mut SegStore) -> Vec<(u64, u64)> {
    store
        .keys()
        .into_iter()
        .map(|k| (k, state_digest(&store.materialize_key(k))))
        .collect()
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Total bytes under `dir`, recursively.
fn disk_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| {
            let p = e.path();
            if p.is_dir() {
                disk_bytes(&p)
            } else {
                e.metadata().map_or(0, |m| m.len())
            }
        })
        .sum()
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 5 };
    let spec = spec(smoke);
    let stream = keyed_stream(&spec);
    let total = stream.len();
    println!(
        "persistence bench: {total} updates over {} keys, chunk {CHUNK}, shards {SHARDS}, \
         reps {reps}{}",
        spec.keys,
        if smoke { " (smoke)" } else { "" }
    );

    let factory = CheckpointFactory { every: EVERY };
    let mut mem_samples = Vec::new();
    let mut seg_samples = Vec::new();
    let mut fsync_samples = Vec::new();
    let mut lazy_samples = Vec::new();
    let mut reopen_samples = Vec::new();
    let mut reopen_keys = 0usize;
    let mut disk = 0u64;
    for rep in 0..reps {
        // In-memory baseline (and the digest reference).
        let mut mem: MemStore = UcStore::new(SetAdt::new(), 0, SHARDS, factory);
        let t0 = Instant::now();
        for chunk in stream.chunks(CHUNK) {
            mem.apply_batch(chunk);
        }
        mem_samples.push(t0.elapsed().as_nanos() as u64);
        let reference = digest_mem(&mut mem);

        // Segment-backed, durable per chunk.
        let tmp = ScratchDir::new(&format!("bench-seg-{rep}"));
        let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
        let mut seg: SegStore =
            UcStore::with_persistence(SetAdt::new(), 0, SHARDS, factory, persist.clone());
        let t0 = Instant::now();
        for chunk in stream.chunks(CHUNK) {
            seg.apply_batch(chunk);
            seg.flush_backends();
        }
        seg_samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(reference, digest_seg(&mut seg), "segment ingest diverged");
        disk = disk.max(disk_bytes(tmp.path()));

        // Kill and reopen from disk.
        drop(seg);
        let t0 = Instant::now();
        let mut back: SegStore =
            UcStore::reopen(SetAdt::new(), 0, SHARDS, factory, persist.clone());
        reopen_samples.push(t0.elapsed().as_nanos() as u64);
        reopen_keys = back.key_count();
        assert_eq!(
            reference,
            digest_seg(&mut back),
            "recovered store diverged from the never-restarted reference"
        );
        drop(back);

        // Segment-backed, fsync-per-flush (power-loss durability).
        let tmp = ScratchDir::new(&format!("bench-fsync-{rep}"));
        let persist = SegmentFactory::at(tmp.path())
            .expect("scratch store")
            .fsync(true);
        let mut synced: SegStore =
            UcStore::with_persistence(SetAdt::new(), 0, SHARDS, factory, persist);
        let t0 = Instant::now();
        for chunk in stream.chunks(CHUNK) {
            synced.apply_batch(chunk);
            synced.flush_backends();
        }
        fsync_samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(reference, digest_seg(&mut synced), "fsync ingest diverged");
        drop(synced);

        // Segment-backed, write-behind (one final flush).
        let tmp = ScratchDir::new(&format!("bench-lazy-{rep}"));
        let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
        let mut lazy: SegStore =
            UcStore::with_persistence(SetAdt::new(), 0, SHARDS, factory, persist);
        let t0 = Instant::now();
        for chunk in stream.chunks(CHUNK) {
            lazy.apply_batch(chunk);
        }
        lazy.flush_backends();
        lazy_samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(reference, digest_seg(&mut lazy), "lazy ingest diverged");
    }

    let mem_ns = median(mem_samples);
    let seg_ns = median(seg_samples);
    let fsync_ns = median(fsync_samples);
    let lazy_ns = median(lazy_samples);
    let reopen_ns = median(reopen_samples);
    let mops = |ns: u64| total as f64 * 1e3 / ns as f64;
    let us_per_key = reopen_ns as f64 / 1e3 / reopen_keys.max(1) as f64;
    println!("\n{:<10} {:>12} {:>12}", "path", "median ns", "Mops/s");
    println!("{:<10} {:>12} {:>12.2}", "mem", mem_ns, mops(mem_ns));
    println!("{:<10} {:>12} {:>12.2}", "seg", seg_ns, mops(seg_ns));
    println!(
        "{:<10} {:>12} {:>12.2}",
        "seg-fsync",
        fsync_ns,
        mops(fsync_ns)
    );
    println!("{:<10} {:>12} {:>12.2}", "seg-lazy", lazy_ns, mops(lazy_ns));
    println!(
        "\nreopen: {reopen_ns} ns for {reopen_keys} keys ({us_per_key:.1} µs/key cold), \
         {disk} bytes on disk"
    );

    let mut json = String::from("{\n  \"bench\": \"persistence\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"updates\": {total}, \"keys\": {}, \"chunk\": {CHUNK}, \
         \"shards\": {SHARDS}, \"checkpoint_every\": {EVERY}, \"reps\": {reps}, \
         \"smoke\": {smoke}}},",
        spec.keys
    );
    let _ = writeln!(
        json,
        "  \"ingest\": {{\"mem_ns\": {mem_ns}, \"seg_ns\": {seg_ns}, \
         \"seg_fsync_ns\": {fsync_ns}, \"seg_lazy_ns\": {lazy_ns}, \
         \"mem_mops\": {:.3}, \"seg_mops\": {:.3}, \"seg_fsync_mops\": {:.3}, \
         \"seg_lazy_mops\": {:.3}, \"seg_vs_mem\": {:.2}, \"fsync_vs_mem\": {:.2}, \
         \"lazy_vs_mem\": {:.2}}},",
        mops(mem_ns),
        mops(seg_ns),
        mops(fsync_ns),
        mops(lazy_ns),
        seg_ns as f64 / mem_ns.max(1) as f64,
        fsync_ns as f64 / mem_ns.max(1) as f64,
        lazy_ns as f64 / mem_ns.max(1) as f64,
    );
    let _ = writeln!(
        json,
        "  \"reopen\": {{\"reopen_ns\": {reopen_ns}, \"keys\": {reopen_keys}, \
         \"us_per_key\": {us_per_key:.2}, \"disk_bytes\": {disk}}},"
    );
    json.push_str(
        "  \"note\": \"digest-verified every rep: mem == seg == seg-fsync == seg-lazy == \
         reopened; seg_vs_mem is the process-crash-durable per-burst overhead (encode + \
         OS write per touched key per chunk), fsync_vs_mem adds one fdatasync per touched \
         key per flush (power-loss tier), lazy_vs_mem is pure write-behind; reopen \
         rebuilds every key as fold(base) + replay(tail)\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_persistence.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
