//! E14 — persistent shard-worker pool vs spawn-per-burst scoped
//! threads vs sequential ingest.
//!
//! The same perturbed zipfian keyed stream is ingested in chunks
//! three ways, on identical stores:
//!
//! * **sequential** — [`UcStore::apply_batch`], one thread;
//! * **scoped**     — [`UcStore::apply_batch_scoped`], which spawns a
//!   fresh thread per non-empty shard bucket *per chunk* (the old
//!   `apply_batch_parallel` hot path, forced so the adaptive fallback
//!   cannot mask the spawn cost);
//! * **pool**       — [`UcStore::into_pool`]: long-lived workers fed
//!   by bounded queues; timing covers submit + the flush barrier, so
//!   the pool gets no credit for work still queued.
//!
//! All three must produce byte-identical stores (asserted via per-key
//! digests every rep — the CI smoke step relies on this). Queue-depth
//! high-water marks from the pool are recorded alongside throughput.
//!
//! Run with `cargo bench -p uc-bench --bench pool`. Results are
//! written to `BENCH_pool.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run also prints a `BENCH_JSON {...}` one-liner so
//! baseline refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{state_digest, CheckpointFactory, NaiveFactory, PoolConfig, StoreMsg, UcStore};
use uc_sim::{generate_keyed, perturb_order, KeyedWorkloadSpec};
use uc_spec::{SetAdt, SetUpdate};

type Msg = StoreMsg<SetUpdate<u32>>;
type Store = UcStore<SetAdt<u32>, CheckpointFactory>;

const CHUNK: usize = 4096;
const EVERY: usize = 32;

fn spec(smoke: bool) -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: if smoke { 6_000 } else { 60_000 },
        keys: 512,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.15,
        snapshot_rate: 0.0,
        seed: 0x9001,
    }
}

fn keyed_stream(spec: &KeyedWorkloadSpec) -> Vec<Msg> {
    let mut producer: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 1, 1, NaiveFactory);
    let mut msgs: Vec<Msg> = generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let u = match op.kind {
                uc_sim::SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
                uc_sim::SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
                uc_sim::SetOpKind::Read | uc_sim::SetOpKind::SnapshotRead => {
                    unreachable!("update_ratio is 1.0")
                }
            };
            producer.update(op.key, u)
        })
        .collect();
    perturb_order(&mut msgs, spec.ooo_rate, spec.seed ^ 0xBAD);
    msgs
}

fn store(shards: usize) -> Store {
    UcStore::new(SetAdt::new(), 0, shards, CheckpointFactory { every: EVERY })
}

fn digest(store: &mut Store) -> Vec<(u64, u64)> {
    store
        .keys()
        .into_iter()
        .map(|k| (k, state_digest(&store.materialize_key(k))))
        .collect()
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    shards: usize,
    seq_ns: u64,
    scoped_ns: u64,
    pool_ns: u64,
    queue_high_water: usize,
    pool_batches: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 7 };
    let shard_counts: &[usize] = if smoke { &[4] } else { &[1, 2, 4, 8] };
    let spec = spec(smoke);
    let stream = keyed_stream(&spec);
    let total = stream.len();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "pool bench: {total} updates over {} keys, chunk {CHUNK}, reps {reps}, \
         hardware parallelism {hw}{}",
        spec.keys,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    for &shards in shard_counts {
        let mut seq_samples = Vec::new();
        let mut scoped_samples = Vec::new();
        let mut pool_samples = Vec::new();
        let mut queue_high_water = 0usize;
        let mut pool_batches = 0u64;
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for _ in 0..reps {
            // Sequential.
            let mut s = store(shards);
            let t0 = Instant::now();
            for chunk in stream.chunks(CHUNK) {
                s.apply_batch(chunk);
            }
            seq_samples.push(t0.elapsed().as_nanos() as u64);
            let d = digest(&mut s);
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(r, &d, "sequential diverged at {shards} shards"),
            }

            // Scoped threads, spawned per chunk.
            let mut s = store(shards);
            let t0 = Instant::now();
            for chunk in stream.chunks(CHUNK) {
                s.apply_batch_scoped(chunk);
            }
            scoped_samples.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(
                reference.as_ref().expect("set above"),
                &digest(&mut s),
                "scoped ingest diverged at {shards} shards"
            );

            // Persistent pool: spawn outside the timed region (one-off
            // cost), but the flush barrier inside it (no credit for
            // queued-not-applied work).
            let mut pool = store(shards).into_pool(PoolConfig {
                workers: 0,
                queue_depth: 64,
                ..PoolConfig::default()
            });
            let t0 = Instant::now();
            for chunk in stream.chunks(CHUNK) {
                pool.submit_batch(chunk.to_vec()).expect("pool healthy");
            }
            pool.flush().expect("pool healthy");
            pool_samples.push(t0.elapsed().as_nanos() as u64);
            let stats = pool.stats();
            queue_high_water = queue_high_water.max(stats.max_queue_high_water());
            pool_batches = stats.total_batches();
            let mut s = pool.finish().expect("pool healthy");
            assert_eq!(
                reference.as_ref().expect("set above"),
                &digest(&mut s),
                "pool ingest diverged at {shards} shards"
            );
        }
        rows.push(Row {
            shards,
            seq_ns: median(seq_samples),
            scoped_ns: median(scoped_samples),
            pool_ns: median(pool_samples),
            queue_high_water,
            pool_batches,
        });
    }

    let mops = |ns: u64| total as f64 * 1e3 / ns as f64;
    println!(
        "\n{:<7} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "shards", "seq Mops/s", "scoped Mops/s", "pool Mops/s", "pool/scoped", "queue hwm"
    );
    for r in &rows {
        println!(
            "{:<7} {:>14.2} {:>14.2} {:>14.2} {:>11.2}x {:>10}",
            r.shards,
            mops(r.seq_ns),
            mops(r.scoped_ns),
            mops(r.pool_ns),
            r.scoped_ns as f64 / r.pool_ns.max(1) as f64,
            r.queue_high_water
        );
    }
    println!(
        "\nnote: on hosts without hardware parallelism ({hw} here) both threaded paths \
         pay coordination overhead the sequential path does not; the pool's win over \
         scoped threads is the amortized spawn cost, the win over sequential needs cores."
    );

    // The deterministic property CI gates on: all three paths agreed
    // (asserted above), and the pool never fell behind the scoped
    // spawn-per-burst path by more than noise allows. Wall-clock
    // medians on shared runners are too fuzzy for a hard ratio gate,
    // so the assert is the digest equality; the ratio is recorded.
    let mut json = String::from("{\n  \"bench\": \"pool\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"updates\": {total}, \"keys\": {}, \"chunk\": {CHUNK}, \
         \"reps\": {reps}, \"queue_depth\": 64, \"parallelism\": {hw}, \"smoke\": {smoke}}},",
        spec.keys
    );
    json.push_str("  \"ingest_paths\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"seq_ns\": {}, \"scoped_ns\": {}, \"pool_ns\": {}, \
             \"seq_mops\": {:.3}, \"scoped_mops\": {:.3}, \"pool_mops\": {:.3}, \
             \"pool_vs_scoped\": {:.2}, \"pool_batches\": {}, \"queue_high_water\": {}}}",
            r.shards,
            r.seq_ns,
            r.scoped_ns,
            r.pool_ns,
            mops(r.seq_ns),
            mops(r.scoped_ns),
            mops(r.pool_ns),
            r.scoped_ns as f64 / r.pool_ns.max(1) as f64,
            r.pool_batches,
            r.queue_high_water
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"digest-verified: pool == scoped == sequential per key; \
         pool_vs_scoped > 1 means persistent workers beat spawn-per-burst; on 1-core \
         hosts sequential wins wall-clock and the pool's value is spawn amortization \
         plus backpressure\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_pool.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
