//! E8 — §VII-C query-cost claims.
//!
//! * `naive replay` (Algorithm 1 verbatim): query cost grows linearly
//!   with the log;
//! * `cached` (checkpointed incremental state): queries are O(1);
//! * `undo` (Karsenty-style): queries are O(1);
//! * late-message integration: full-replay rebuild vs checkpoint
//!   repair vs undo/redo of the suffix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uc_core::{CachedReplica, GenericReplica, UndoReplica};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

fn fill_generic(n: usize) -> GenericReplica<SetAdt<u32>> {
    let mut r = GenericReplica::new(SetAdt::new(), 0);
    for i in 0..n {
        r.update(if i % 3 == 0 {
            SetUpdate::Delete((i % 64) as u32)
        } else {
            SetUpdate::Insert((i % 64) as u32)
        });
    }
    r
}

fn fill_cached(n: usize) -> CachedReplica<SetAdt<u32>> {
    let mut r = CachedReplica::new(SetAdt::new(), 0);
    for i in 0..n {
        r.update(if i % 3 == 0 {
            SetUpdate::Delete((i % 64) as u32)
        } else {
            SetUpdate::Insert((i % 64) as u32)
        });
    }
    r
}

fn fill_undo(n: usize) -> UndoReplica<SetAdt<u32>> {
    let mut r = UndoReplica::new(SetAdt::new(), 0);
    for i in 0..n {
        r.update(if i % 3 == 0 {
            SetUpdate::Delete((i % 64) as u32)
        } else {
            SetUpdate::Insert((i % 64) as u32)
        });
    }
    r
}

fn bench_query_vs_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_vs_log_len");
    for &len in &[100usize, 1_000, 10_000] {
        g.throughput(Throughput::Elements(1));
        let mut naive = fill_generic(len);
        g.bench_with_input(BenchmarkId::new("naive_replay", len), &len, |b, _| {
            b.iter(|| black_box(naive.do_query(&SetQuery::Read)))
        });
        let mut cached = fill_cached(len);
        g.bench_with_input(BenchmarkId::new("cached", len), &len, |b, _| {
            b.iter(|| black_box(cached.do_query(&SetQuery::Read)))
        });
        let mut undo = fill_undo(len);
        g.bench_with_input(BenchmarkId::new("undo", len), &len, |b, _| {
            b.iter(|| black_box(undo.do_query(&SetQuery::Read)))
        });
    }
    g.finish();
}

fn bench_late_message_integration(c: &mut Criterion) {
    // A peer message whose timestamp lands near the *front* of a
    // 10k-entry log — the worst case for incremental variants (they
    // must repair almost the whole suffix, while naive replay pays the
    // same full scan it always pays).
    let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    let late = peer.update(SetUpdate::Insert(999));

    let mut g = c.benchmark_group("late_message_integration");
    let len = 10_000usize;
    g.bench_function("naive_insert_then_query", |b| {
        // Naive: insertion is cheap, the next query pays the replay.
        let proto = fill_generic(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&late);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("cached_repair", |b| {
        let proto = fill_cached(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&late);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("undo_redo", |b| {
        let proto = fill_undo(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&late);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();

    // The common case: the late message lands near the *tail* (slight
    // reordering). Incremental variants repair a handful of entries;
    // naive replay still rescans everything on the next query — this
    // is where the §VII-C optimisations earn their keep.
    let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    for _ in 0..(len - 2) {
        peer.update(SetUpdate::Insert(0));
    }
    let near_tail = peer.update(SetUpdate::Insert(999)); // clock ≈ len-1

    let mut g = c.benchmark_group("near_tail_message_integration");
    g.bench_function("naive_insert_then_query", |b| {
        let proto = fill_generic(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&near_tail);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("cached_repair", |b| {
        let proto = fill_cached(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&near_tail);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("undo_redo", |b| {
        let proto = fill_undo(len);
        b.iter_batched(
            || proto.clone(),
            |mut r| {
                r.on_deliver(&near_tail);
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_in_order_delivery(c: &mut Criterion) {
    // The common fast path: deliveries already in timestamp order.
    let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    let msgs: Vec<_> = (0..1_000u32)
        .map(|i| peer.update(SetUpdate::Insert(i % 64)))
        .collect();
    let mut g = c.benchmark_group("in_order_delivery_1k");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("naive", |b| {
        b.iter_batched(
            || GenericReplica::<SetAdt<u32>>::new(SetAdt::new(), 0),
            |mut r| {
                for m in &msgs {
                    r.on_deliver(m);
                }
                black_box(r.log_len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("cached", |b| {
        b.iter_batched(
            || CachedReplica::<SetAdt<u32>>::new(SetAdt::new(), 0),
            |mut r| {
                for m in &msgs {
                    r.on_deliver(m);
                }
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("undo", |b| {
        b.iter_batched(
            || UndoReplica::<SetAdt<u32>>::new(SetAdt::new(), 0),
            |mut r| {
                for m in &msgs {
                    r.on_deliver(m);
                }
                black_box(r.do_query(&SetQuery::Read))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_checkpoint_interval_ablation(c: &mut Criterion) {
    // Design-choice ablation: the checkpoint spacing K trades repair
    // cost (≤ K re-applies after rollback) against checkpointing
    // overhead and memory (one state snapshot per K entries). Measure
    // the full cycle: absorb a mid-log straggler, then query.
    let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
    for _ in 0..4_999 {
        peer.update(SetUpdate::Insert(0));
    }
    let mid = peer.update(SetUpdate::Insert(77)); // lands mid-log (clock 5000)

    let mut g = c.benchmark_group("checkpoint_interval_ablation");
    for &k in &[4usize, 32, 256, 2_048] {
        let mut proto = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, k);
        for i in 0..10_000usize {
            proto.update(if i % 3 == 0 {
                SetUpdate::Delete((i % 64) as u32)
            } else {
                SetUpdate::Insert((i % 64) as u32)
            });
        }
        g.bench_with_input(BenchmarkId::new("absorb_mid_straggler", k), &k, |b, _| {
            b.iter_batched(
                || proto.clone(),
                |mut r| {
                    r.on_deliver(&mid);
                    black_box(r.do_query(&SetQuery::Read))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_query_vs_log,
    bench_late_message_integration,
    bench_in_order_delivery,
    bench_checkpoint_interval_ablation
);
criterion_main!(benches);
