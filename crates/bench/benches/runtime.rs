//! E15 — thread-per-node `ThreadedCluster` vs event-driven
//! `EventCluster` at N ∈ {64, 1k, 10k} replicas.
//!
//! Each N hosts one `GenericReplica<CounterAdt>` per node (the paper's
//! pure-CRDT example: commutative updates, so every delivery order
//! converges to the same value — which is what lets the digest check
//! gate a racy benchmark). A fixed message budget is spread over the
//! cluster: `ops ≈ MSGS / (N − 1)` updates invoked round-robin, each a
//! broadcast to all peers. Timed per rep: **spawn, invokes, quiesce,
//! shutdown** — thread-per-node pays its N OS threads inside the
//! measurement because that is precisely the cost the event runtime
//! exists to avoid.
//!
//! Every rep digest-asserts that both cluster runtimes and the
//! deterministic simulator converge every node to the same state (the
//! CI smoke step relies on this). Batch-size metrics (mean/max burst
//! per activation) are recorded so the comparison shows *how* each
//! runtime coalesces, not just wall-clock.
//!
//! Run with `cargo bench -p uc-bench --bench runtime`. Results are
//! written to `BENCH_runtime.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run also prints a `BENCH_JSON {...}` one-liner so
//! baseline refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{state_digest, GenericReplica, OpInput, ReplicaNode};
use uc_runtime::EventCluster;
use uc_sim::{ClusterHarness, LatencyModel, Metrics, Pid, SimConfig, Simulation, ThreadedCluster};
use uc_spec::{CounterAdt, CounterUpdate};

type Node = ReplicaNode<CounterAdt, GenericReplica<CounterAdt>>;

fn node(pid: Pid) -> Node {
    ReplicaNode::untraced(GenericReplica::new(CounterAdt, pid))
}

/// Round-robin update schedule: `ops` increments spread over `n`
/// nodes, stepping by a co-prime stride so traffic is not adjacent.
fn schedule(n: usize, ops: usize) -> Vec<(Pid, OpInput<CounterAdt>)> {
    (0..ops)
        .map(|i| {
            (
                ((i * 251) % n) as Pid,
                OpInput::Update(CounterUpdate::Add(1)),
            )
        })
        .collect()
}

/// Drive a harness through the schedule and return (per-node digests,
/// metrics). Works for every runtime — the whole point of the trait.
fn run<H: ClusterHarness<Node>>(
    mut h: H,
    ops: &[(Pid, OpInput<CounterAdt>)],
) -> (Vec<u64>, Metrics) {
    for (pid, input) in ops {
        h.invoke(*pid, input.clone());
    }
    h.quiesce();
    let metrics = h.metrics();
    let digests = h
        .into_nodes()
        .into_iter()
        .map(|mut n| state_digest(&n.replica.materialize()))
        .collect();
    (digests, metrics)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    n: usize,
    ops: usize,
    threaded_ns: u64,
    event_ns: u64,
    event_workers: usize,
    threaded_mean_batch: f64,
    event_mean_batch: f64,
    threaded_max_batch: u64,
    event_max_batch: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if smoke {
        &[64, 256]
    } else {
        &[64, 1_000, 10_000]
    };
    let msgs_budget: usize = if smoke { 30_000 } else { 240_000 };
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "runtime bench: ~{msgs_budget} deliveries per size, sizes {sizes:?}, \
         hardware parallelism {hw}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let ops = (msgs_budget / (n - 1)).max(8);
        let sched = schedule(n, ops);
        // Two reps suffice where a rep is slow (10k threads) or the
        // run is a CI smoke; otherwise take a 5-sample median.
        let reps = if n >= 10_000 || smoke { 2 } else { 5 };

        // Deterministic reference digest (one run is enough: the
        // simulator replays identically).
        let sim = Simulation::new(
            SimConfig {
                n,
                seed: 7,
                latency: LatencyModel::Constant(1),
                fifo_links: true,
            },
            node,
        );
        let (reference, _) = run(sim, &sched);
        assert!(
            reference.windows(2).all(|w| w[0] == w[1]),
            "sequential reference failed to converge at n={n}"
        );

        let mut threaded_samples = Vec::new();
        let mut event_samples = Vec::new();
        let mut threaded_metrics = Metrics::new(0);
        let mut event_metrics = Metrics::new(0);
        let mut event_workers = 0usize;
        for _ in 0..reps {
            // Thread per node: spawn cost is part of the story.
            let t0 = Instant::now();
            let cluster = ThreadedCluster::spawn(n, node);
            let (digests, m) = run(cluster, &sched);
            threaded_samples.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(digests, reference, "threaded diverged at n={n}");
            threaded_metrics = m;

            // Event-driven: same protocol, W ≪ N workers.
            let t0 = Instant::now();
            let cluster = EventCluster::spawn(n, node);
            event_workers = cluster.num_workers();
            let (digests, m) = run(cluster, &sched);
            event_samples.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(digests, reference, "event diverged at n={n}");
            event_metrics = m;
        }
        println!(
            "n={n:>6} ops={ops:>5}: threaded {:>8.1} ms, event {:>8.1} ms ({} workers)",
            median(threaded_samples.clone()) as f64 / 1e6,
            median(event_samples.clone()) as f64 / 1e6,
            event_workers
        );
        rows.push(Row {
            n,
            ops,
            threaded_ns: median(threaded_samples),
            event_ns: median(event_samples),
            event_workers,
            threaded_mean_batch: threaded_metrics.mean_batch(),
            event_mean_batch: event_metrics.mean_batch(),
            threaded_max_batch: threaded_metrics.max_batch,
            event_max_batch: event_metrics.max_batch,
        });
    }

    println!(
        "\n{:<8} {:>7} {:>14} {:>14} {:>12} {:>11} {:>11}",
        "nodes", "ops", "threaded ms", "event ms", "event/thr", "thr batch", "evt batch"
    );
    for r in &rows {
        println!(
            "{:<8} {:>7} {:>14.1} {:>14.1} {:>11.2}x {:>11.2} {:>11.2}",
            r.n,
            r.ops,
            r.threaded_ns as f64 / 1e6,
            r.event_ns as f64 / 1e6,
            r.threaded_ns as f64 / r.event_ns.max(1) as f64,
            r.threaded_mean_batch,
            r.event_mean_batch,
        );
    }
    println!(
        "\nnote: one timed rep = spawn + {0} invokes + quiesce + shutdown; thread-per-node \
         pays N OS threads (and their teardown) inside the measurement, the event runtime \
         pays a fixed worker pool. event/thr > 1 means the event runtime is faster.",
        rows.last().map_or(0, |r| r.ops)
    );

    let mut json = String::from("{\n  \"bench\": \"runtime\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"msgs_budget\": {msgs_budget}, \"parallelism\": {hw}, \
         \"smoke\": {smoke}, \"timed\": \"spawn+invokes+quiesce+shutdown\"}},"
    );
    json.push_str("  \"clusters\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"ops\": {}, \"threaded_ns\": {}, \"event_ns\": {}, \
             \"event_workers\": {}, \"event_vs_threaded\": {:.2}, \
             \"threaded_mean_batch\": {:.2}, \"event_mean_batch\": {:.2}, \
             \"threaded_max_batch\": {}, \"event_max_batch\": {}}}",
            r.n,
            r.ops,
            r.threaded_ns,
            r.event_ns,
            r.event_workers,
            r.threaded_ns as f64 / r.event_ns.max(1) as f64,
            r.threaded_mean_batch,
            r.event_mean_batch,
            r.threaded_max_batch,
            r.event_max_batch
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"digest-verified: event == threaded == sequential per node, every rep; \
         event_vs_threaded > 1 means the event runtime wins; the gap widens with n as \
         thread-per-node pays spawn, stacks, and scheduler churn for n threads while the \
         event runtime keeps a fixed small pool\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_runtime.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
