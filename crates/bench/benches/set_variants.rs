//! E6/E11 — local operation throughput of each set implementation,
//! and the pure-CRDT section: naive apply-on-delivery vs Algorithm 1's
//! ordering machinery on commutative objects.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uc_core::GenericReplica;
use uc_crdt::{CSet, LwwSet, NaiveCounter, OrSet, PnSet, SetReplica, TwoPhaseSet};
use uc_spec::{CounterAdt, CounterUpdate, SetAdt, SetUpdate};

const OPS: usize = 1_000;

fn drive<S: SetReplica<u32>>(mut s: S) -> S {
    for i in 0..OPS {
        let v = (i % 64) as u32;
        if i % 3 == 0 {
            s.delete(v);
        } else {
            s.insert(v);
        }
        if i % 16 == 0 {
            black_box(s.read());
        }
    }
    s
}

fn bench_local_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_local_ops_1k");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("or_set", |b| {
        b.iter(|| black_box(drive(OrSet::<u32>::new(0))))
    });
    g.bench_function("two_phase", |b| {
        b.iter(|| black_box(drive(TwoPhaseSet::<u32>::new())))
    });
    g.bench_function("pn_set", |b| {
        b.iter(|| black_box(drive(PnSet::<u32>::new())))
    });
    g.bench_function("c_set", |b| b.iter(|| black_box(drive(CSet::<u32>::new()))));
    g.bench_function("lww_set", |b| {
        b.iter(|| black_box(drive(LwwSet::<u32>::new(0))))
    });
    g.bench_function("uc_set_naive_replay", |b| {
        b.iter(|| {
            let mut r = GenericReplica::new(SetAdt::<u32>::new(), 0);
            for i in 0..OPS {
                let v = (i % 64) as u32;
                r.update(if i % 3 == 0 {
                    SetUpdate::Delete(v)
                } else {
                    SetUpdate::Insert(v)
                });
                if i % 16 == 0 {
                    black_box(r.do_query(&uc_spec::SetQuery::Read));
                }
            }
            black_box(r)
        })
    });
    g.finish();
}

fn bench_commutative_overhead(c: &mut Criterion) {
    // §VII-C: for commutative objects the total order is unnecessary;
    // measure what Algorithm 1 pays for it on a counter.
    let mut g = c.benchmark_group("counter_1k_increments");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("naive_apply_on_delivery", |b| {
        b.iter(|| {
            let mut c0 = NaiveCounter::new();
            for i in 0..1_000 {
                c0.add(i % 7);
            }
            black_box(c0.value())
        })
    });
    g.bench_function("algorithm1_ordered", |b| {
        b.iter(|| {
            let mut r = GenericReplica::new(CounterAdt, 0);
            for i in 0..1_000 {
                r.update(CounterUpdate::Add(i % 7));
            }
            black_box(r.do_query(&uc_spec::CounterQuery::Read))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_local_ops, bench_commutative_overhead);
criterion_main!(benches);
