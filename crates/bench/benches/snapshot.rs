//! E16 — consistent cut snapshots: one `snapshot_at(t)` vs per-key
//! queries, and cold vs stable-prefix cuts.
//!
//! The same zipfian keyed update stream is ingested into two identical
//! stores, then read back three ways at 1/10/100 keys per read batch:
//!
//! * **per-key**    — K independent [`UcStore::query`] calls (the
//!   pre-snapshot read mode: each answers its own key's latest state,
//!   with no cross-key consistency — concurrent writers can tear the
//!   batch);
//! * **cut-cold**   — one [`UcStore::snapshot_at`] at a mid-log cut on
//!   a checkpoint store, then K reads against the immutable
//!   [`StoreSnapshot`]. The cut predates the caches, so every key
//!   folds its `clock ≤ t` prefix from scratch — the worst case;
//! * **cut-stable** — the same snapshot call on a GC store whose whole
//!   log is stable (heartbeats received, prefix compacted): the cut
//!   covers the retained log, so each key reuses its cached fold and
//!   the snapshot costs clones, not folds.
//!
//! The snapshot paths pay one up-front cut over *all* keys, then
//! answer reads at memory speed; the per-key path pays per read. The
//! crossover (and the cold-vs-stable gap, which is what GC stability
//! buys cut queries) is the point of the table. Every rep asserts the
//! mid-cut snapshot equals a sequential reference fed exactly the
//! `clock ≤ t` prefix, and the stable-cut snapshot equals the full
//! materialized store — the CI smoke step relies on this.
//!
//! Run with `cargo bench -p uc-bench --bench snapshot`. Results are
//! written to `BENCH_snapshot.json` at the workspace root; set
//! `UC_BENCH_SMOKE=1` for a tiny CI-sized run that skips the baseline
//! write. Every run also prints a `BENCH_JSON {...}` one-liner so
//! baseline refreshes can be scripted (`grep '^BENCH_JSON '`).

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{CheckpointFactory, GcFactory, StoreMsg, UcStore};
use uc_sim::{generate_keyed, KeyedWorkloadSpec};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Adt = SetAdt<u32>;
type CkptStore = UcStore<Adt, CheckpointFactory>;
type GcStore = UcStore<Adt, GcFactory>;

const EVERY: usize = 32;
const SHARDS: usize = 4;
const CLUSTER: usize = 2;

fn spec(smoke: bool) -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: if smoke { 3_000 } else { 30_000 },
        keys: 256,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.0,
        snapshot_rate: 0.0,
        seed: 0xC07,
    }
}

/// The one local update stream every store replays: `(key, update)`
/// in stamp order (local updates tick the clock once each, so op `i`
/// carries clock `i + 1`).
fn ops(spec: &KeyedWorkloadSpec) -> Vec<(u64, SetUpdate<u32>)> {
    generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let u = match op.kind {
                uc_sim::SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
                uc_sim::SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
                uc_sim::SetOpKind::Read | uc_sim::SetOpKind::SnapshotRead => {
                    unreachable!("update_ratio is 1.0")
                }
            };
            (op.key, u)
        })
        .collect()
}

fn ckpt_store() -> CkptStore {
    UcStore::new(SetAdt::new(), 0, SHARDS, CheckpointFactory { every: EVERY })
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    read_keys: usize,
    perkey_ns: u64,
    cut_cold_ns: u64,
    cut_stable_ns: u64,
}

fn main() {
    let smoke = std::env::var("UC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let reps = if smoke { 2 } else { 7 };
    let spec = spec(smoke);
    let stream = ops(&spec);
    let total = stream.len() as u64;
    let mid = total / 2;
    println!(
        "snapshot bench: {total} updates over {} keys, mid cut {mid}, reps {reps}{}",
        spec.keys,
        if smoke { " (smoke)" } else { "" }
    );

    // Cold-cut store: checkpoint strategy, no stability knowledge —
    // a cut query folds each key's `clock ≤ t` prefix from scratch.
    let mut cold = ckpt_store();
    for (key, u) in &stream {
        cold.update(*key, *u);
    }

    // Stable-cut store: GC strategy in a 2-cluster. After the peer's
    // heartbeat at the top clock the whole log is stable; one read
    // sweep compacts every key and warms the cached folds, so a cut
    // at the top costs clones instead of folds.
    let mut stable: GcStore = UcStore::new(SetAdt::new(), 0, SHARDS, GcFactory { n: CLUSTER });
    for (key, u) in &stream {
        stable.update(*key, *u);
    }
    let top = stable.clock();
    stable.apply_batch(&[StoreMsg::Heartbeat { pid: 1, clock: top }]);
    for key in stable.keys() {
        let _ = stable.query(key, &SetQuery::Read);
    }

    // References for the per-rep equality gate: the mid cut must match
    // a store fed exactly the first `mid` updates (local stamps are
    // the op index + 1, so the `clock ≤ mid` prefix is the first `mid`
    // ops), and the stable cut must match the fully ingested store.
    let mut mid_ref = ckpt_store();
    for (key, u) in &stream[..mid as usize] {
        mid_ref.update(*key, *u);
    }
    let all_keys = cold.keys();
    let mid_want: Vec<_> = all_keys
        .iter()
        .map(|&k| mid_ref.query(k, &SetQuery::Read))
        .collect();
    let top_want: Vec<_> = all_keys
        .iter()
        .map(|&k| cold.query(k, &SetQuery::Read))
        .collect();

    let read_key_counts: &[usize] = &[1, 10, 100];
    let mut rows: Vec<Row> = Vec::new();
    for &read_keys in read_key_counts {
        let keys: Vec<u64> = (0..read_keys as u64).collect();
        let mut perkey_samples = Vec::new();
        let mut cold_samples = Vec::new();
        let mut stable_samples = Vec::new();
        for _ in 0..reps {
            // K independent latest-state queries (no consistency).
            let t0 = Instant::now();
            for &k in &keys {
                let _ = cold.query(k, &SetQuery::Read);
            }
            perkey_samples.push(t0.elapsed().as_nanos() as u64);

            // One cold cut + K snapshot reads.
            let t0 = Instant::now();
            let snap = cold.snapshot_at(mid).expect("mid cut above any base");
            for &k in &keys {
                let _ = snap.query(k, &SetQuery::Read);
            }
            cold_samples.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(snap.cut(), mid);
            let got: Vec<_> = all_keys
                .iter()
                .map(|&k| snap.query(k, &SetQuery::Read))
                .collect();
            assert_eq!(got, mid_want, "cold cut diverged from the prefix reference");

            // One stable cut + K snapshot reads.
            let t0 = Instant::now();
            let snap = stable.snapshot_at(top).expect("top cut above the bound");
            for &k in &keys {
                let _ = snap.query(k, &SetQuery::Read);
            }
            stable_samples.push(t0.elapsed().as_nanos() as u64);
            let got: Vec<_> = all_keys
                .iter()
                .map(|&k| snap.query(k, &SetQuery::Read))
                .collect();
            assert_eq!(got, top_want, "stable cut diverged from the full store");
        }
        rows.push(Row {
            read_keys,
            perkey_ns: median(perkey_samples),
            cut_cold_ns: median(cold_samples),
            cut_stable_ns: median(stable_samples),
        });
    }

    println!(
        "\n{:<10} {:>13} {:>13} {:>14} {:>13}",
        "read keys", "per-key ns", "cut-cold ns", "cut-stable ns", "stable/cold"
    );
    for r in &rows {
        println!(
            "{:<10} {:>13} {:>13} {:>14} {:>12.2}x",
            r.read_keys,
            r.perkey_ns,
            r.cut_cold_ns,
            r.cut_stable_ns,
            r.cut_cold_ns as f64 / r.cut_stable_ns.max(1) as f64
        );
    }
    println!(
        "\nnote: the cut columns include building the full {}-key snapshot, the \
         per-key column reads only K keys and guarantees nothing across them; \
         stable/cold is what a compacted stable prefix (cached fold, zero fold \
         steps) buys the same cut query.",
        spec.keys
    );

    let mut json = String::from("{\n  \"bench\": \"snapshot\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"updates\": {total}, \"keys\": {}, \"mid_cut\": {mid}, \
         \"shards\": {SHARDS}, \"checkpoint_every\": {EVERY}, \"reps\": {reps}, \
         \"smoke\": {smoke}}},",
        spec.keys
    );
    json.push_str("  \"reads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"read_keys\": {}, \"perkey_ns\": {}, \"cut_cold_ns\": {}, \
             \"cut_stable_ns\": {}, \"cold_vs_perkey\": {:.2}, \"stable_vs_cold\": {:.2}}}",
            r.read_keys,
            r.perkey_ns,
            r.cut_cold_ns,
            r.cut_stable_ns,
            r.cut_cold_ns as f64 / r.perkey_ns.max(1) as f64,
            r.cut_cold_ns as f64 / r.cut_stable_ns.max(1) as f64
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"equality-verified every rep: mid cut == sequential prefix \
         reference per key, stable cut == fully ingested store per key; cut columns \
         build the whole multi-key snapshot (consistent), per-key column reads K \
         latest states (tearable); stable_vs_cold is the cached-fold win from GC \
         stability\"\n",
    );
    json.push_str("}\n");

    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    if !smoke {
        let out = format!(
            "{}/../../BENCH_snapshot.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        );
        std::fs::write(&out, json).expect("write baseline json");
        println!("wrote {out}");
    }
}
