//! E13 — sharded multi-object store: 1-shard vs N-shard ingest
//! throughput and per-key repair locality on a zipfian keyed workload.
//!
//! A producer replica issues keyed updates with zipf-skewed key
//! popularity (hot keys dominate), the stream is perturbed to model
//! out-of-order delivery, and a consumer store ingests it in bursts
//! through the per-shard batched path ([`UcStore::apply_batch_parallel`]).
//! Measured:
//!
//! * **shard scaling** — identical streams into stores with 1, 2, 4, 8
//!   shards; shards ingest their sub-batches on scoped threads, so on
//!   multicore hosts hot keys don't serialize cold ones (on a 1-core
//!   host the curve is flat rather than rising);
//! * **repair locality** — after ingesting the stream, a small burst
//!   of *late* messages (timestamps older than the whole history)
//!   lands on the hottest key. With the store's per-key logs the
//!   repair refolds only that key's suffix; the same workload
//!   multiplexed into a *single* Algorithm 1 log (keys erased by
//!   element re-encoding) refolds every key's updates.
//!
//! Run with `cargo bench -p uc-bench --bench store`. Results are also
//! written to `BENCH_store.json` at the workspace root so successive
//! PRs accumulate a perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;
use uc_core::{
    CachedReplica, CheckpointFactory, NaiveFactory, Replica, StoreMsg, UcStore, UpdateMsg,
};
use uc_sim::{generate_keyed, perturb_order, KeyedWorkloadSpec, SetOpKind};
use uc_spec::{SetAdt, SetUpdate};

type Msg = StoreMsg<SetUpdate<u32>>;

const REPS: usize = 7;
const CHUNK: usize = 4096;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EVERY: usize = 32;

fn spec() -> KeyedWorkloadSpec {
    KeyedWorkloadSpec {
        processes: 1,
        ops_per_process: 60_000,
        keys: 512,
        key_alpha: 1.1,
        universe: 64,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.7,
        mean_gap: 1,
        ooo_rate: 0.15,
        snapshot_rate: 0.0,
        seed: 0x570BE,
    }
}

fn to_update(kind: SetOpKind) -> SetUpdate<u32> {
    match kind {
        SetOpKind::Insert(e) => SetUpdate::Insert(e as u32),
        SetOpKind::Delete(e) => SetUpdate::Delete(e as u32),
        SetOpKind::Read | SetOpKind::SnapshotRead => unreachable!("update_ratio is 1.0"),
    }
}

/// The keyed stream, as a remote producer's broadcast, perturbed to
/// model out-of-order links.
fn keyed_stream(spec: &KeyedWorkloadSpec) -> Vec<Msg> {
    let mut producer: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 1, 1, NaiveFactory);
    let mut msgs: Vec<Msg> = generate_keyed(spec)
        .into_iter()
        .map(|op| producer.update(op.key, to_update(op.kind)))
        .collect();
    perturb_order(&mut msgs, spec.ooo_rate, spec.seed ^ 0xBAD);
    msgs
}

/// The same workload collapsed into a single object: elements are
/// re-encoded `key·universe + elem` so one log carries every key's
/// updates (what a store without per-key logs would do).
fn single_log_stream(spec: &KeyedWorkloadSpec) -> Vec<UpdateMsg<SetUpdate<u32>>> {
    let mut producer: CachedReplica<SetAdt<u32>> =
        CachedReplica::with_checkpoint_every(SetAdt::new(), 1, EVERY);
    let mut msgs: Vec<UpdateMsg<SetUpdate<u32>>> = generate_keyed(spec)
        .into_iter()
        .map(|op| {
            let enc = |e: usize| (op.key as u32) * spec.universe as u32 + e as u32;
            let u = match op.kind {
                SetOpKind::Insert(e) => SetUpdate::Insert(enc(e)),
                SetOpKind::Delete(e) => SetUpdate::Delete(enc(e)),
                SetOpKind::Read | SetOpKind::SnapshotRead => unreachable!("update_ratio is 1.0"),
            };
            producer.update(u)
        })
        .collect();
    perturb_order(&mut msgs, spec.ooo_rate, spec.seed ^ 0xBAD);
    msgs
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let spec = spec();
    let stream = keyed_stream(&spec);
    let total = stream.len();
    println!(
        "zipfian keyed workload: {total} updates over {} keys (alpha {}), ooo {}",
        spec.keys, spec.key_alpha, spec.ooo_rate
    );

    // Shard scaling.
    struct Row {
        shards: usize,
        median_ns: u64,
        throughput_mops: f64,
        repair_steps: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut reference_digest: Option<Vec<(u64, u64)>> = None;
    // Round-robin over shard counts within each rep, so slow drift of
    // the host (frequency scaling, allocator state) hits every
    // configuration equally instead of penalizing whichever is
    // measured last.
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); SHARD_COUNTS.len()];
    let mut repair_steps = vec![0u64; SHARD_COUNTS.len()];
    for _rep in 0..REPS {
        for (idx, shards) in SHARD_COUNTS.into_iter().enumerate() {
            let mut store: UcStore<SetAdt<u32>, CheckpointFactory> =
                UcStore::new(SetAdt::new(), 0, shards, CheckpointFactory { every: EVERY });
            let t0 = Instant::now();
            for chunk in stream.chunks(CHUNK) {
                store.apply_batch_parallel(chunk);
            }
            samples[idx].push(t0.elapsed().as_nanos() as u64);
            repair_steps[idx] = store.total_repair_steps();
            // Shard count must not change semantics: compare a
            // per-key content hash across configurations.
            let digest: Vec<(u64, u64)> = store
                .keys()
                .into_iter()
                .map(|k| (k, uc_core::state_digest(&store.materialize_key(k))))
                .collect();
            match &reference_digest {
                None => reference_digest = Some(digest),
                Some(r) => assert_eq!(r, &digest, "{shards}-shard store diverged"),
            }
        }
    }
    for (idx, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let median_ns = median(samples[idx].clone());
        rows.push(Row {
            shards,
            median_ns,
            throughput_mops: total as f64 * 1e3 / median_ns as f64,
            repair_steps: repair_steps[idx],
        });
    }

    // Repair locality: a late out-of-order burst on the hottest key
    // (key 0 under zipf), with timestamps ordering before the whole
    // ingested history. Per-key logs repair only key 0's suffix; a
    // single multiplexed log repairs everything after the burst's
    // insertion point — nearly the entire history.
    let late_burst = 64usize;
    let late_keyed: Vec<Msg> = {
        let mut old: UcStore<SetAdt<u32>, NaiveFactory> =
            UcStore::new(SetAdt::new(), 2, 1, NaiveFactory);
        (0..late_burst)
            .map(|i| old.update(0, SetUpdate::Insert(90_000 + i as u32)))
            .collect()
    };
    let mut keyed: UcStore<SetAdt<u32>, CheckpointFactory> =
        UcStore::new(SetAdt::new(), 0, 1, CheckpointFactory { every: EVERY });
    for chunk in stream.chunks(CHUNK) {
        keyed.apply_batch(chunk);
    }
    let before = keyed.total_repair_steps();
    let t0 = Instant::now();
    keyed.apply_batch(&late_keyed);
    let keyed_late_ns = t0.elapsed().as_nanos() as u64;
    let keyed_late_steps = keyed.total_repair_steps() - before;

    let single_stream = single_log_stream(&spec);
    let late_single: Vec<UpdateMsg<SetUpdate<u32>>> = {
        let mut old: CachedReplica<SetAdt<u32>> =
            CachedReplica::with_checkpoint_every(SetAdt::new(), 2, EVERY);
        (0..late_burst)
            .map(|i| old.update(SetUpdate::Insert(900_000 + i as u32)))
            .collect()
    };
    let mut single: CachedReplica<SetAdt<u32>> =
        CachedReplica::with_checkpoint_every(SetAdt::new(), 0, EVERY);
    for chunk in single_stream.chunks(CHUNK) {
        single.on_batch(chunk);
    }
    let before = single.repair_steps();
    let t0 = Instant::now();
    single.on_batch(&late_single);
    let single_late_ns = t0.elapsed().as_nanos() as u64;
    let single_late_steps = single.repair_steps() - before;

    println!(
        "\n{:<7} {:>14} {:>14} {:>14}",
        "shards", "median", "Mops/s", "repair steps"
    );
    for r in &rows {
        println!(
            "{:<7} {:>11} ns {:>14.2} {:>14}",
            r.shards, r.median_ns, r.throughput_mops, r.repair_steps
        );
    }
    let locality_factor = single_late_steps as f64 / keyed_late_steps.max(1) as f64;
    println!(
        "\nrepair locality (late {late_burst}-msg burst on the hot key): per-key log repaired \
         {keyed_late_steps} steps in {keyed_late_ns} ns; single multiplexed log repaired \
         {single_late_steps} steps in {single_late_ns} ns ({locality_factor:.1}x less repair)"
    );

    let one_shard = rows[0].throughput_mops;
    let best_sharded = rows[1..]
        .iter()
        .map(|r| r.throughput_mops)
        .fold(f64::MIN, f64::max);
    // Wall-clock medians on shared (or 1-core) runners are too noisy
    // to gate CI on; the scaling numbers are recorded in the JSON and
    // only the deterministic repair-locality property is asserted.
    if best_sharded < one_shard {
        eprintln!(
            "note: sharded ingest below 1-shard this run \
             ({best_sharded:.2} vs {one_shard:.2} Mops/s) — expected on 1-core/noisy hosts"
        );
    }
    assert!(
        keyed_late_steps < single_late_steps / 4,
        "per-key logs must localize repair: {keyed_late_steps} vs {single_late_steps}"
    );

    let mut json = String::from("{\n  \"bench\": \"store\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"updates\": {total}, \"keys\": {}, \"key_alpha\": {}, \
         \"ooo_rate\": {}, \"chunk\": {CHUNK}, \"reps\": {REPS}, \"parallelism\": {}}},",
        spec.keys,
        spec.key_alpha,
        spec.ooo_rate,
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    json.push_str("  \"shard_scaling\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"median_ns\": {}, \"throughput_mops\": {:.3}, \
             \"repair_steps\": {}}}",
            r.shards, r.median_ns, r.throughput_mops, r.repair_steps
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"repair_locality\": {{\"late_burst\": {late_burst}, \
         \"per_key_log_steps\": {keyed_late_steps}, \"per_key_log_ns\": {keyed_late_ns}, \
         \"single_log_steps\": {single_late_steps}, \"single_log_ns\": {single_late_ns}, \
         \"locality_factor\": {locality_factor:.1}}}"
    );
    json.push_str("}\n");

    // One-line machine-readable summary (baseline refreshes grep for
    // `^BENCH_JSON ` instead of hand-editing the checked-in file).
    println!(
        "\nBENCH_JSON {}",
        json.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    let out = format!(
        "{}/../../BENCH_store.json",
        std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
    );
    std::fs::write(&out, json).expect("write baseline json");
    println!("wrote {out}");
}
