//! E6 — the §VI case study: identical conflict schedules through the
//! update-consistent set and every eventually consistent baseline;
//! print the (diverging) converged states and retained footprints.
//!
//! ```text
//! cargo run -p uc-bench --bin case_study
//! ```

use uc_bench::{default_latency, drive_crdt_set, drive_uc_set, fmt_set, render_table};
use uc_crdt::{CSet, LwwSet, OrSet, PnSet, TwoPhaseSet};
use uc_sim::workload::{conflict_rounds, generate, WorkloadSpec};
use uc_sim::ScheduledOp;

fn row_for(
    name: &str,
    schedule: &[ScheduledOp],
    n: usize,
    seed: u64,
) -> Vec<(String, String, String)> {
    // (impl, converged state, mean footprint)
    let mut out = Vec::new();
    let (uc_states, _) = drive_uc_set(n, seed, schedule, default_latency());
    assert!(
        uc_states.windows(2).all(|w| w[0] == w[1]),
        "{name}: UC diverged"
    );
    out.push((
        "UC-set (Alg. 1)".into(),
        fmt_set(&uc_states[0]),
        "full log".into(),
    ));

    macro_rules! baseline {
        ($label:expr, $make:expr) => {{
            let (states, _, feet) = drive_crdt_set(n, seed, schedule, default_latency(), $make);
            assert!(
                states.windows(2).all(|w| w[0] == w[1]),
                "{}: {} replicas diverged",
                $label,
                name
            );
            let mean_foot = feet.iter().sum::<usize>() / feet.len();
            out.push(($label.into(), fmt_set(&states[0]), mean_foot.to_string()));
        }};
    }
    baseline!("OR-Set", OrSet::<u32>::new);
    baseline!("2P-Set", |_| TwoPhaseSet::<u32>::new());
    baseline!("PN-Set", |_| PnSet::<u32>::new());
    baseline!("C-Set", |_| CSet::<u32>::new());
    baseline!("LWW-Set", LwwSet::<u32>::new);
    out
}

fn main() {
    println!("§VI case study: same schedule, different convergence policies.\n");

    println!("Workload A — Fig. 1b conflict (each round: half insert, half delete one element):");
    let schedule = conflict_rounds(4, 4, 2); // tight rounds → real conflicts
    let rows: Vec<Vec<String>> = row_for("conflict", &schedule, 4, 7)
        .into_iter()
        .map(|(a, b, c)| vec![a, b, c])
        .collect();
    println!(
        "{}",
        render_table(&["implementation", "converged state", "footprint"], &rows)
    );

    println!("Workload B — random skewed mix (3 procs × 30 ops, zipf 0.8):");
    let schedule = generate(&WorkloadSpec {
        processes: 3,
        ops_per_process: 30,
        universe: 6,
        zipf_alpha: 0.8,
        update_ratio: 1.0,
        insert_ratio: 0.55,
        mean_gap: 4, // small gap → many in-flight conflicts
        seed: 99,
    });
    let rows: Vec<Vec<String>> = row_for("random", &schedule, 3, 3)
        .into_iter()
        .map(|(a, b, c)| vec![a, b, c])
        .collect();
    println!(
        "{}",
        render_table(&["implementation", "converged state", "footprint"], &rows)
    );

    println!("All implementations converge internally; the *policies* differ —");
    println!("the paper's point that eventual consistency alone underdetermines");
    println!("the object. Only the UC-set's state is always a linearization of");
    println!("the updates (checked by tests/section6_case_study.rs).");
}
