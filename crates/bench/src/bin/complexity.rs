//! E7 — §VII-C's network-complexity claims, measured:
//! * Algorithm 1 sends exactly one broadcast (`n−1` messages) per
//!   update and nothing per query;
//! * message payloads carry a `(clock, pid)` timestamp whose encoded
//!   size grows logarithmically with operations and processes.
//!
//! ```text
//! cargo run -p uc-bench --bin complexity
//! ```

use uc_bench::{default_latency, drive_uc_set, render_table};
use uc_core::Timestamp;
use uc_sim::workload::{generate, WorkloadSpec};
use uc_sim::SetOpKind;

fn main() {
    println!("Algorithm 1 network complexity (one broadcast per update):\n");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        for ops in [100usize, 1_000] {
            let spec = WorkloadSpec {
                processes: n,
                ops_per_process: ops / n,
                universe: 32,
                zipf_alpha: 0.6,
                update_ratio: 0.8,
                insert_ratio: 0.6,
                mean_gap: 7,
                seed: 42 + n as u64,
            };
            let schedule = generate(&spec);
            let updates = schedule
                .iter()
                .filter(|o| !matches!(o.kind, SetOpKind::Read))
                .count() as u64;
            let (states, metrics) = drive_uc_set(n, 11, &schedule, default_latency());
            assert!(states.windows(2).all(|w| w[0] == w[1]));
            let per_update = metrics.messages_sent as f64 / updates as f64;
            rows.push(vec![
                n.to_string(),
                schedule.len().to_string(),
                updates.to_string(),
                metrics.messages_sent.to_string(),
                format!("{per_update:.1}"),
                format!("{}", n - 1),
                format!(
                    "{:.1}",
                    metrics.bytes_sent as f64 / metrics.messages_sent as f64
                ),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "ops",
                "updates",
                "msgs sent",
                "msgs/update",
                "expect (n-1)",
                "bytes/msg"
            ],
            &rows
        )
    );

    println!("Timestamp wire size grows logarithmically with history length:\n");
    let mut rows = Vec::new();
    for ops in [10u64, 1_000, 100_000, 10_000_000] {
        let ts = Timestamp::new(ops, 31);
        rows.push(vec![ops.to_string(), ts.wire_size().to_string()]);
    }
    println!(
        "{}",
        render_table(&["clock value", "timestamp bytes"], &rows)
    );
    println!("(§VII-C: \"two integer values, that only grow logarithmically with");
    println!(" the number of processes and the number of operations\") ✔");
}
