//! E1/E2 — regenerate the paper's Fig. 1a–d and Fig. 2 classification
//! matrix and check it against the captions.
//!
//! ```text
//! cargo run -p uc-bench --bin figures
//! ```

use uc_criteria::matrix::{classify, render};
use uc_criteria::CheckConfig;
use uc_history::paper;

fn main() {
    let cfg = CheckConfig::default();
    let figs = paper::all_figures();
    let rows: Vec<_> = figs
        .iter()
        .map(|f| classify(f.name, f.caption, &f.history, &cfg))
        .collect();
    println!("Classification of the paper's example histories");
    println!("(set S_N of Example 1; EC/SEC/PC/UC/SUC per Definitions 5-9,");
    println!(" SC = sequential consistency for calibration)\n");
    println!("{}", render(&rows));

    let mut mismatches = 0;
    for (fig, row) in figs.iter().zip(&rows) {
        let checks = [
            ("EC", fig.expected.ec),
            ("SEC", fig.expected.sec),
            ("PC", fig.expected.pc),
            ("UC", fig.expected.uc),
            ("SUC", fig.expected.suc),
        ];
        for (name, want) in checks {
            let got = row.verdict(name).expect("known criterion");
            if got.holds() != want {
                eprintln!(
                    "MISMATCH {} {}: paper says {}, checker says {:?}",
                    fig.name, name, want, got
                );
                mismatches += 1;
            }
        }
    }
    if mismatches == 0 {
        println!(
            "all {} figure classifications match the paper ✔",
            figs.len()
        );
    } else {
        eprintln!("{mismatches} mismatches");
        std::process::exit(1);
    }

    println!("\nGraphviz of Fig. 2 (render with `dot -Tpng`):\n");
    println!(
        "{}",
        uc_history::dot::to_dot(&paper::fig2().history, "fig2")
    );
}
