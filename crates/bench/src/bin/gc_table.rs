//! E10 — §VII-C's storage claim: the full-history log grows linearly,
//! the stability-GC'd log stays bounded while everyone participates,
//! and a single silent process freezes collection (the honest price of
//! stability in a wait-free system).
//!
//! ```text
//! cargo run -p uc-bench --bin gc_table
//! ```

use uc_bench::render_table;
use uc_core::{GcReplica, GenericReplica, Replica};
use uc_spec::{SetAdt, SetUpdate};

/// Run `rounds` rounds: every *updating* participant performs one
/// update and all messages are cross-delivered. `readonly` processes
/// never update; they advance peers' stability only if `heartbeats`
/// is on (they then broadcast clock announcements each round).
fn run(n: usize, rounds: usize, readonly: usize, heartbeats: bool) -> (usize, usize, u64) {
    let mut gcs: Vec<GcReplica<SetAdt<u32>>> = (0..n as u32)
        .map(|p| GcReplica::new(SetAdt::new(), p, n))
        .collect();
    let mut full: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    for r in 0..rounds {
        let mut msgs = Vec::new();
        for (i, gc) in gcs.iter_mut().enumerate() {
            if i < n - readonly {
                let u = if r % 3 == 0 {
                    SetUpdate::Delete((r % 10) as u32)
                } else {
                    SetUpdate::Insert((r % 10) as u32)
                };
                msgs.push((i, gc.update(u)));
            }
        }
        for (src, m) in &msgs {
            if let uc_core::GcMsg::Update(um) = m {
                if *src != 0 {
                    full.on_deliver(um);
                } else {
                    // already applied locally by gcs[0]; mirror into the
                    // oracle which plays replica 0's role
                }
            }
            for (j, gc) in gcs.iter_mut().enumerate() {
                if j != *src {
                    gc.on_gc_message(m);
                }
            }
        }
        // replica 0's own updates also go to the oracle
        if let Some((src, uc_core::GcMsg::Update(um))) = msgs
            .iter()
            .find(|(s, _)| *s == 0)
            .map(|(s, m)| (*s, m.clone()))
        {
            let _ = src;
            full.on_deliver(&um);
        }
        if heartbeats {
            // Everyone heartbeats — crucially including the read-only
            // processes, whose silence would otherwise freeze
            // stability for the whole cluster.
            let mut hbs = Vec::new();
            for (i, gc) in gcs.iter_mut().enumerate() {
                hbs.push((i, gc.tick()));
            }
            for (src, batch) in hbs {
                for m in batch {
                    for (j, gc) in gcs.iter_mut().enumerate() {
                        if j != src {
                            gc.on_gc_message(&m);
                        }
                    }
                }
            }
        }
    }
    let retained = gcs[0].log_len();
    let compacted = gcs[0].compacted() as usize;
    (retained, full.log_len(), compacted as u64)
}

fn main() {
    println!("Stability-based log compaction (Algorithm 1 + §VII-C GC):\n");
    let n = 4;
    let mut rows = Vec::new();
    for rounds in [25usize, 100, 400] {
        let (gc_len, full_len, compacted) = run(n, rounds, 0, false);
        let (rescued_len, _, rescued_compacted) = run(n, rounds, 1, true);
        let (frozen_len, _, frozen_compacted) = run(n, rounds, 1, false);
        rows.push(vec![
            rounds.to_string(),
            full_len.to_string(),
            format!("{gc_len} (+{compacted} folded)"),
            format!("{rescued_len} (+{rescued_compacted})"),
            format!("{frozen_len} (+{frozen_compacted})"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "rounds",
                "no GC (entries)",
                "GC, all updating",
                "GC, 1 read-only + heartbeats",
                "GC, 1 read-only, no heartbeats"
            ],
            &rows
        )
    );
    println!("Shape: without GC the log grows linearly with updates. With GC, a");
    println!("fully-updating cluster compacts on its own (update messages carry");
    println!("the clocks). A read-only process freezes stability *unless* it");
    println!("heartbeats — §VII-C's 'after some time old messages can be garbage");
    println!("collected' needs every process to keep announcing its clock.");
}
