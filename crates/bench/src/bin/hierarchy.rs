//! E3 — Proposition 2 as a census: classify random histories against
//! every criterion and tabulate the co-occurrence counts. The
//! forbidden cells (UC ∧ ¬EC, SUC ∧ ¬SEC, SUC ∧ ¬UC, SC ∧ ¬SUC) must
//! be zero; the paper's figures show every allowed separation is
//! non-empty.
//!
//! ```text
//! cargo run -p uc-bench --bin hierarchy [samples]
//! ```

use std::collections::BTreeSet;
use uc_bench::render_table;
use uc_criteria::{check_ec, check_pc, check_sc, check_sec, check_suc, check_uc, Verdict};
use uc_history::{History, HistoryBuilder};
use uc_sim::SplitMix64;
use uc_spec::{SetAdt, SetQuery, SetUpdate};

fn random_history(rng: &mut SplitMix64) -> History<SetAdt<u32>> {
    let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
    let procs = 2 + rng.next_below(2) as usize;
    for _ in 0..procs {
        let p = b.process();
        let ops = rng.next_below(3);
        for _ in 0..ops {
            match rng.next_below(3) {
                0 => {
                    b.update(p, SetUpdate::Insert(1 + rng.next_below(2) as u32));
                }
                1 => {
                    b.update(p, SetUpdate::Delete(1 + rng.next_below(2) as u32));
                }
                _ => {
                    b.query(p, SetQuery::Read, random_set(rng));
                }
            }
        }
        if rng.next_below(2) == 0 {
            b.omega_query(p, SetQuery::Read, random_set(rng));
        }
    }
    b.build().expect("small histories build")
}

fn random_set(rng: &mut SplitMix64) -> BTreeSet<u32> {
    let mask = rng.next_below(4);
    let mut s = BTreeSet::new();
    if mask & 1 != 0 {
        s.insert(1);
    }
    if mask & 2 != 0 {
        s.insert(2);
    }
    s
}

fn holds(v: &Verdict) -> Option<bool> {
    match v {
        Verdict::Holds(_) => Some(true),
        Verdict::Fails(_) => Some(false),
        Verdict::Unsupported(_) => None,
    }
}

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let mut rng = SplitMix64::new(0x1EAF);
    let names = ["EC", "SEC", "PC", "UC", "SUC", "SC"];
    let mut hold_counts = [0u64; 6];
    let mut undecided = 0u64;
    // Implications to audit: (antecedent, consequent) index pairs.
    let implications = [
        (3, 0, "UC ⇒ EC (Prop. 2)"),
        (4, 1, "SUC ⇒ SEC (Prop. 2)"),
        (4, 3, "SUC ⇒ UC (Prop. 2)"),
        (5, 4, "SC ⇒ SUC"),
        (5, 2, "SC ⇒ PC"),
    ];
    let mut violations = vec![0u64; implications.len()];
    let mut checked = vec![0u64; implications.len()];

    for _ in 0..samples {
        let h = random_history(&mut rng);
        let verdicts = [
            holds(&check_ec(&h)),
            holds(&check_sec(&h)),
            holds(&check_pc(&h)),
            holds(&check_uc(&h)),
            holds(&check_suc(&h)),
            holds(&check_sc(&h)),
        ];
        if verdicts.iter().any(Option::is_none) {
            undecided += 1;
            continue;
        }
        for (i, v) in verdicts.iter().enumerate() {
            if v.unwrap() {
                hold_counts[i] += 1;
            }
        }
        for (k, (a, c, _)) in implications.iter().enumerate() {
            if verdicts[*a].unwrap() {
                checked[k] += 1;
                if !verdicts[*c].unwrap() {
                    violations[k] += 1;
                }
            }
        }
    }

    println!("Criterion census over {samples} random histories ({undecided} undecided):\n");
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(hold_counts)
        .map(|(n, c)| vec![n.to_string(), c.to_string()])
        .collect();
    println!("{}", render_table(&["criterion", "holds"], &rows));

    println!("Implication audit:\n");
    let rows: Vec<Vec<String>> = implications
        .iter()
        .enumerate()
        .map(|(k, (_, _, label))| {
            vec![
                label.to_string(),
                checked[k].to_string(),
                violations[k].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["implication", "antecedent held", "violations"], &rows)
    );
    if violations.iter().any(|&v| v > 0) {
        eprintln!("hierarchy violated!");
        std::process::exit(1);
    }
    println!("no violations — the Prop. 2 hierarchy holds on every sample ✔");
}
