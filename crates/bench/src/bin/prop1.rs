//! E2 — Proposition 1 run operationally: under the
//! indistinguishability adversary, wait-free replicas answer their
//! first reads locally; any convergent object then violates pipelined
//! consistency on the Fig. 2 program.
//!
//! ```text
//! cargo run -p uc-bench --bin prop1
//! ```

use uc_bench::render_table;
use uc_core::{trace_to_history, GenericReplica, OmegaMarking, OpInput, OpOutput, ReplicaNode};
use uc_criteria::{check_ec, check_pc};
use uc_sim::{LatencyModel, SimConfig, Simulation};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

fn main() {
    println!("Proposition 1: pipelined convergence is impossible wait-free.");
    println!("Program (Fig. 2): p0: I(1)·I(3)·R…   p1: I(2)·D(3)·R…");
    println!("Adversary: all cross-messages withheld until t=release.\n");

    let mut rows = Vec::new();
    for seed in 0..8u64 {
        for release in [200u64, 1_000, 5_000] {
            let mut sim = Simulation::new(
                SimConfig {
                    n: 2,
                    seed,
                    latency: LatencyModel::Adversarial {
                        release,
                        lo: 1,
                        hi: 5,
                    },
                    fifo_links: true,
                },
                |pid| ReplicaNode::traced(GenericReplica::new(SetAdt::<u32>::new(), pid)),
            );
            sim.schedule_invoke(0, 0, OpInput::Update(SetUpdate::Insert(1)));
            sim.schedule_invoke(1, 0, OpInput::Update(SetUpdate::Insert(3)));
            sim.schedule_invoke(0, 1, OpInput::Update(SetUpdate::Insert(2)));
            sim.schedule_invoke(1, 1, OpInput::Update(SetUpdate::Delete(3)));
            sim.run_until(5);
            let r0 = sim.invoke_now(0, OpInput::Query(SetQuery::Read)).unwrap();
            let r1 = sim.invoke_now(1, OpInput::Query(SetQuery::Read)).unwrap();
            let (OpOutput::Value { out: o0, .. }, OpOutput::Value { out: o1, .. }) = (r0, r1)
            else {
                unreachable!()
            };
            sim.run_to_quiescence();
            let t = sim.now() + 1;
            sim.schedule_invoke(t, 0, OpInput::Query(SetQuery::Read));
            sim.schedule_invoke(t + 1, 1, OpInput::Query(SetQuery::Read));
            sim.run_to_quiescence();
            let (h, _) = trace_to_history(
                SetAdt::<u32>::new(),
                2,
                sim.records(),
                OmegaMarking::FinalQueries,
            )
            .unwrap();
            let ec = check_ec(&h).holds();
            let pc = check_pc(&h).holds();
            rows.push(vec![
                seed.to_string(),
                release.to_string(),
                format!("{o0:?}"),
                format!("{o1:?}"),
                if ec { "yes" } else { "no" }.into(),
                if pc { "yes" } else { "no" }.into(),
            ]);
            assert!(
                !(ec && pc),
                "seed {seed} release {release}: found pipelined convergence?!"
            );
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "release",
                "p0 first read",
                "p1 first read",
                "EC",
                "PC"
            ],
            &rows
        )
    );
    println!("Every run: first reads are forced local ({{1,3}} / {{2}}),");
    println!("convergence (EC) holds, pipelined consistency (PC) fails —");
    println!("no run exhibits both, as Proposition 1 requires. ✔");
}
