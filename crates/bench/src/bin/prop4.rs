//! E5 — Proposition 4: Algorithm 1's traces are strong update
//! consistent under randomized schedules, crash injection and
//! adversarial delays; verified against the replica-supplied witness.
//!
//! ```text
//! cargo run -p uc-bench --bin prop4 [seeds]
//! ```

use uc_bench::render_table;
use uc_core::{trace_to_history, GenericReplica, OmegaMarking, OpInput, ReplicaNode};
use uc_criteria::verify_witness;
use uc_sim::{LatencyModel, Pid, SimConfig, Simulation, SplitMix64};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Node = ReplicaNode<SetAdt<u32>, GenericReplica<SetAdt<u32>>>;

struct Scenario {
    name: &'static str,
    n: usize,
    updates: usize,
    crash: bool,
    latency: fn() -> LatencyModel,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "3 procs, uniform latency",
        n: 3,
        updates: 14,
        crash: false,
        latency: || LatencyModel::Uniform(3, 100),
    },
    Scenario {
        name: "6 procs, uniform latency",
        n: 6,
        updates: 16,
        crash: false,
        latency: || LatencyModel::Uniform(3, 100),
    },
    Scenario {
        name: "4 procs, one crash",
        n: 4,
        updates: 14,
        crash: true,
        latency: || LatencyModel::Uniform(3, 80),
    },
    Scenario {
        name: "2 procs, adversarial isolation",
        n: 2,
        updates: 8,
        crash: false,
        latency: || LatencyModel::Adversarial {
            release: 800,
            lo: 1,
            hi: 10,
        },
    },
];

fn run(s: &Scenario, seed: u64) -> Result<(), String> {
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n: s.n,
            seed,
            latency: (s.latency)(),
            fifo_links: false,
        },
        |pid| ReplicaNode::traced(GenericReplica::new(SetAdt::new(), pid)),
    );
    if s.crash {
        sim.schedule_crash(40, (s.n - 1) as Pid);
    }
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37) ^ 0xF00D);
    let mut t = 0;
    for i in 0..s.updates {
        t += rng.next_below(18);
        let pid = rng.next_below(s.n as u64) as Pid;
        let elem = rng.next_below(5) as u32;
        let op = if rng.next_below(3) == 0 {
            SetUpdate::Delete(elem)
        } else {
            SetUpdate::Insert(elem)
        };
        sim.schedule_invoke(t, pid, OpInput::Update(op));
        if i % 3 == 0 {
            sim.schedule_invoke(
                t + 1,
                rng.next_below(s.n as u64) as Pid,
                OpInput::Query(SetQuery::Read),
            );
        }
    }
    sim.run_to_quiescence();
    let end = sim.now() + 1;
    let survivors: Vec<Pid> = (0..s.n as Pid).filter(|&p| !sim.is_crashed(p)).collect();
    for &p in &survivors {
        sim.schedule_invoke(end + p as u64, p, OpInput::Query(SetQuery::Read));
    }
    sim.run_to_quiescence();
    // ω-flag only survivors: a crashed process's finite history has no
    // delivery obligation.
    let (h, w) = trace_to_history(
        SetAdt::<u32>::new(),
        s.n,
        sim.records(),
        OmegaMarking::FinalQueriesOf(&survivors),
    )
    .map_err(|e| e.to_string())?;
    verify_witness(&h, &w)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!("Proposition 4: Algorithm 1 traces are SUC (witness-verified).");
    println!("{seeds} seeds per scenario.\n");
    let mut rows = Vec::new();
    let mut failures = 0;
    for s in SCENARIOS {
        let mut ok = 0;
        for seed in 0..seeds {
            match run(s, seed) {
                Ok(()) => ok += 1,
                Err(e) => {
                    eprintln!("FAIL {} seed {seed}: {e}", s.name);
                    failures += 1;
                }
            }
        }
        rows.push(vec![
            s.name.to_string(),
            s.n.to_string(),
            format!("{ok}/{seeds}"),
        ]);
    }
    println!(
        "{}",
        render_table(&["scenario", "procs", "SUC-verified"], &rows)
    );
    if failures == 0 {
        println!("all traces strong update consistent ✔");
    } else {
        eprintln!("{failures} failures");
        std::process::exit(1);
    }
}
