//! # uc-bench — experiment harness
//!
//! Shared drivers for the figure-regeneration binaries and the
//! Criterion benches. Each binary regenerates one paper artifact (see
//! EXPERIMENTS.md for the index):
//!
//! * `figures` — E1/E2: the Fig. 1a–d / Fig. 2 classification matrix;
//! * `prop1` — E2: the pipelined-convergence impossibility, run
//!   operationally;
//! * `prop4` — E5: SUC witness verification over seed sweeps;
//! * `hierarchy` — E3: Prop. 2/3 implication counts on random
//!   histories;
//! * `case_study` — E6: §VI final-state divergence table;
//! * `complexity` — E7: message/byte accounting;
//! * `gc_table` — E10: log retention with and without stability GC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use uc_core::{GenericReplica, OpInput, ReplicaNode};
use uc_crdt::{SetNode, SetOp, SetReplica};
use uc_sim::{LatencyModel, Metrics, Pid, ScheduledOp, SetOpKind, SimConfig, Simulation};
use uc_spec::{SetAdt, SetUpdate};

/// Default latency model used by the experiment drivers.
pub fn default_latency() -> LatencyModel {
    LatencyModel::Uniform(5, 60)
}

/// Drive a workload through the update-consistent set (Algorithm 1)
/// and return each replica's converged state plus the metrics.
pub fn drive_uc_set(
    n: usize,
    seed: u64,
    schedule: &[ScheduledOp],
    latency: LatencyModel,
) -> (Vec<BTreeSet<u32>>, Metrics) {
    let mut sim = Simulation::new(
        SimConfig {
            n,
            seed,
            latency,
            fifo_links: false,
        },
        |pid| ReplicaNode::untraced(GenericReplica::new(SetAdt::<u32>::new(), pid)),
    );
    sim.set_msg_size(|m| 16 + m.ts.wire_size());
    for op in schedule {
        let input = match op.kind {
            SetOpKind::Insert(v) => OpInput::Update(SetUpdate::Insert(v as u32)),
            SetOpKind::Delete(v) => OpInput::Update(SetUpdate::Delete(v as u32)),
            // A single-object replica has no multi-key cut to take:
            // a snapshot read degenerates to a plain read.
            SetOpKind::Read | SetOpKind::SnapshotRead => OpInput::Query(uc_spec::SetQuery::Read),
        };
        sim.schedule_invoke(op.time, op.pid, input);
    }
    sim.run_to_quiescence();
    let states = (0..n as Pid)
        .map(|p| sim.process_mut(p).replica.materialize())
        .collect();
    (states, sim.metrics.clone())
}

/// Drive a workload through any [`SetReplica`] baseline and return
/// each replica's converged read plus the metrics and footprints.
pub fn drive_crdt_set<S>(
    n: usize,
    seed: u64,
    schedule: &[ScheduledOp],
    latency: LatencyModel,
    mut make: impl FnMut(Pid) -> S,
) -> (Vec<BTreeSet<u32>>, Metrics, Vec<usize>)
where
    S: SetReplica<u32> + 'static,
{
    let mut sim = Simulation::new(
        SimConfig {
            n,
            seed,
            latency,
            fifo_links: false,
        },
        |pid| SetNode::new(make(pid)),
    );
    for op in schedule {
        let input = match op.kind {
            SetOpKind::Insert(v) => SetOp::Insert(v as u32),
            SetOpKind::Delete(v) => SetOp::Delete(v as u32),
            SetOpKind::Read | SetOpKind::SnapshotRead => SetOp::Read,
        };
        sim.schedule_invoke(op.time, op.pid, input);
    }
    sim.run_to_quiescence();
    let states: Vec<BTreeSet<u32>> = (0..n as Pid)
        .map(|p| sim.process(p).replica.read())
        .collect();
    let footprints = (0..n as Pid)
        .map(|p| sim.process(p).replica.footprint())
        .collect();
    (states, sim.metrics.clone(), footprints)
}

/// Render a small aligned table: header row + rows of cells.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Format a set compactly for table cells.
pub fn fmt_set(s: &BTreeSet<u32>) -> String {
    let items: Vec<String> = s.iter().map(u32::to_string).collect();
    format!("{{{}}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::WorkloadSpec;

    #[test]
    fn uc_driver_converges() {
        let schedule = uc_sim::workload::generate(&WorkloadSpec {
            processes: 3,
            ops_per_process: 10,
            ..Default::default()
        });
        let (states, metrics) = drive_uc_set(3, 7, &schedule, default_latency());
        assert!(states.windows(2).all(|w| w[0] == w[1]));
        assert!(metrics.messages_sent > 0);
    }

    #[test]
    fn crdt_driver_converges() {
        let schedule = uc_sim::workload::conflict_rounds(4, 3, 200);
        let (states, _, footprints) = drive_crdt_set(
            4,
            9,
            &schedule,
            default_latency(),
            uc_crdt::OrSet::<u32>::new,
        );
        assert!(states.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(footprints.len(), 4);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["bcd".into(), "22".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("bcd"));
    }
}
