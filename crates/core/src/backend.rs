//! **Pluggable log storage**: the [`LogBackend`] trait behind which a
//! replica's update log and GC base state are persisted.
//!
//! Algorithm 1 keeps the whole update log in memory, and so did every
//! layer built on it — [`UpdateLog`](crate::log::UpdateLog),
//! [`ReplicaEngine`](crate::engine::ReplicaEngine),
//! [`UcStore`](crate::store::UcStore),
//! [`IngestPool`](crate::pool::IngestPool). That means stores die with
//! the process and memory grows with cold keys. This module splits the
//! log in two:
//!
//! ```text
//!   UpdateLog<A, B>  =  in-memory sorted index  +  B: LogBackend<A>
//!                       (Vec<(ts, update)> —         (durable journal +
//!                        the query/repair hot path)    compacted base)
//! ```
//!
//! The in-memory index is unchanged — queries, repairs, and the
//! batched sort-then-merge ingest all run against the sorted `Vec`
//! exactly as before. The backend is a *write-behind journal*: every
//! fresh entry is appended in arrival order, and when the
//! [`StableGc`](crate::gc::StableGc) strategy folds a stable prefix
//! into its base state, the backend persists that base and rewrites
//! the live tail (LSM-style compaction — the stable prefix is exactly
//! the part that is safe to fold away, cf. the causal-consistency
//! generalization in arXiv:1802.00706).
//!
//! Two families of implementations exist:
//!
//! * [`MemBackend`] — the zero-regression default: every operation is
//!   a no-op, so a `MemBackend` log is byte-for-byte today's
//!   `Vec`-backed `UpdateLog` (the sorted index *is* the store);
//! * `SegmentBackend` (crate `uc-storage`) — append-only binary log
//!   segments on disk with CRC-framed records, a per-key manifest,
//!   base-state snapshots, and crash recovery that rebuilds a key's
//!   engine as `fold(base) + replay(tail)`.
//!
//! [`BackendFactory`] is the store-level companion: it opens one
//! backend per `(shard, key)` (engines are created lazily on first
//! touch) and enumerates persisted keys on
//! [`UcStore::reopen`](crate::store::UcStore::reopen).
//!
//! # Durability contract
//!
//! Appends are journaled immediately but only *durable* after
//! [`LogBackend::flush`] (the runtimes hang flushing off the virtual
//! timer wheel via `Protocol::on_tick`; the ingest pool flushes before
//! every worker join, including the poison path). `flush` also
//! persists the owning engine's Lamport-clock watermark, so a reopened
//! replica's clock is `max(watermark, base bound, tail timestamps)` —
//! identical to the pre-crash clock whenever the crash happened after
//! a flush.

use crate::store::Key;
use crate::timestamp::Timestamp;
use uc_spec::UqAdt;

/// Where one replica's update log (and its compacted base state)
/// lives. See the [module docs](self) for the architecture and the
/// durability contract.
///
/// The trait is parameterized by the whole ADT (not just the update
/// type) because compaction persists a *state*: the fold of the stable
/// prefix. `MemBackend` implements it for every ADT with no bounds;
/// persistent backends typically require the update and state types to
/// be encodable.
pub trait LogBackend<A: UqAdt> {
    /// Journal one fresh entry. Entries arrive in *delivery* order,
    /// not timestamp order — the journal is a log of arrivals, and
    /// recovery re-sorts by replaying through the normal insert path.
    fn append(&mut self, ts: Timestamp, u: &A::Update);

    /// Journal a deduplicated batch of fresh entries (the batched
    /// ingest hot path). Default: per-entry [`LogBackend::append`].
    fn append_batch(&mut self, entries: &[(Timestamp, A::Update)]) {
        for (ts, u) in entries {
            self.append(*ts, u);
        }
    }

    /// Compaction: `state` is the fold of every update with
    /// `ts.clock <= bound`; `tail` is the complete retained suffix
    /// (everything above the bound, in timestamp order). A persistent
    /// backend snapshots the base, rewrites the tail into a fresh
    /// segment, and drops segments that predate it.
    fn truncate_to_base(&mut self, bound: u64, state: &A::State, tail: &[(Timestamp, A::Update)]);

    /// Durability point: everything journaled so far must survive a
    /// process kill. `clock` is the owning engine's current Lamport
    /// clock, persisted as the recovery watermark.
    fn flush(&mut self, clock: u64);

    /// Recovery: the most recent durable base snapshot, if any
    /// compaction ever ran — `(bound, fold of the stable prefix)`.
    fn load_base(&mut self) -> Option<(u64, A::State)>;

    /// Recovery: every journaled entry above the base bound, in
    /// journal order (may contain duplicates across segment rewrites;
    /// replay deduplicates by timestamp).
    fn scan_suffix(&mut self) -> Vec<(Timestamp, A::Update)>;

    /// Recovery: the highest clock watermark persisted by
    /// [`LogBackend::flush`]. Default: 0 (no watermark support).
    fn clock_watermark(&self) -> u64 {
        0
    }

    /// Anti-entropy heal path: re-read the durable suffix stamped
    /// strictly above `since` from storage, in timestamp order and
    /// deduplicated — *without* going through the in-memory log.
    /// `None` means the backend cannot serve the request (nothing
    /// durable to stream, or part of the requested range was already
    /// folded into a base snapshot); callers fall back to filtering
    /// the in-memory sorted log. Unlike [`LogBackend::scan_suffix`]
    /// (a one-shot recovery drain), this may be called repeatedly on
    /// a live backend. Callers flush first so the journal covers
    /// every accepted entry.
    fn stream_suffix(&mut self, since: u64) -> Option<Vec<(Timestamp, A::Update)>> {
        let _ = since;
        None
    }

    /// Bounded-window form of [`LogBackend::stream_suffix`], for
    /// chunked heal streaming: up to `limit` durable entries stamped
    /// strictly above `since` — and, when `after` is set, strictly
    /// after `after` (the resume cursor) — in timestamp order and
    /// deduplicated, plus whether more remain beyond the window.
    /// Implementations must bound their working memory by O(`limit`),
    /// never by the suffix length — that is the whole point of the
    /// chunked path. `None` falls back to the in-memory log, same as
    /// [`LogBackend::stream_suffix`]. A spuriously-true "more" flag
    /// is tolerated (callers terminate on the next empty window);
    /// a false "more" with entries remaining is not.
    #[allow(clippy::type_complexity)]
    fn stream_suffix_window(
        &mut self,
        since: u64,
        after: Option<Timestamp>,
        limit: usize,
    ) -> Option<(Vec<(Timestamp, A::Update)>, bool)> {
        let _ = (since, after, limit);
        None
    }
}

/// The in-memory "backend": every operation is a no-op because the
/// [`UpdateLog`](crate::log::UpdateLog)'s sorted index *is* the store.
/// This is the zero-regression default — a `MemBackend` log compiles
/// to exactly the pre-refactor `Vec`-backed log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemBackend;

impl<A: UqAdt> LogBackend<A> for MemBackend {
    #[inline]
    fn append(&mut self, _ts: Timestamp, _u: &A::Update) {}

    #[inline]
    fn append_batch(&mut self, _entries: &[(Timestamp, A::Update)]) {}

    #[inline]
    fn truncate_to_base(
        &mut self,
        _bound: u64,
        _state: &A::State,
        _tail: &[(Timestamp, A::Update)],
    ) {
    }

    #[inline]
    fn flush(&mut self, _clock: u64) {}

    fn load_base(&mut self) -> Option<(u64, A::State)> {
        None
    }

    fn scan_suffix(&mut self) -> Vec<(Timestamp, A::Update)> {
        Vec::new()
    }
}

/// Builds one [`LogBackend`] per `(shard, key)` — the store-level
/// entry point for pluggable persistence. A
/// [`UcStore`](crate::store::UcStore) carries a factory and opens a
/// backend lazily on first touch of a key;
/// [`UcStore::reopen`](crate::store::UcStore::reopen) asks the factory
/// which keys survive on disk and rebuilds one engine per key as
/// `fold(base) + replay(tail)`.
pub trait BackendFactory<A: UqAdt>: Clone {
    /// The backend this factory produces.
    type Backend: LogBackend<A>;

    /// Open (or create) the backend for one key's engine.
    fn open(&self, shard: usize, key: Key) -> Self::Backend;

    /// The keys with persisted state in `shard` (recovery
    /// enumeration). Default: none — ephemeral factories recover
    /// nothing.
    fn list_keys(&self, shard: usize) -> Vec<Key> {
        let _ = shard;
        Vec::new()
    }

    /// Open every persisted key of `shard` at once — the recovery bulk
    /// path. Persistent factories override this to enumerate the
    /// shard's storage once instead of once per key; the default
    /// composes [`BackendFactory::list_keys`] with per-key
    /// [`BackendFactory::open`].
    fn open_all(&self, shard: usize) -> Vec<(Key, Self::Backend)> {
        self.list_keys(shard)
            .into_iter()
            .map(|key| (key, self.open(shard, key)))
            .collect()
    }

    /// Record — or validate against the recorded — replica
    /// configuration. Called once per store construction
    /// ([`UcStore::with_persistence`](crate::store::UcStore::with_persistence)
    /// passes `fresh = true`,
    /// [`UcStore::reopen`](crate::store::UcStore::reopen) `false`):
    /// the shard count decides `hash(key) % shards` routing and the
    /// pid stamps every update, so reopening a store under a
    /// different configuration would silently split or misattribute
    /// keys. Persistent factories persist `(pid, shards)` on first
    /// bind, refuse a mismatch afterwards, and refuse `fresh` binds
    /// of an already-bound root outright — constructing a *new* store
    /// over surviving state would restart the clock and silently lose
    /// whichever run's updates deduplicate away on the next reopen.
    /// Default: accept anything (ephemeral state dies with the
    /// process).
    fn bind_replica(&self, pid: u32, shards: usize, fresh: bool) {
        let _ = (pid, shards, fresh);
    }

    /// The store-wide Lamport-clock watermark persisted by the last
    /// [`BackendFactory::persist_store_clock`]. Default: 0.
    fn load_store_clock(&self) -> u64 {
        0
    }

    /// Persist the store-wide Lamport clock (called from
    /// [`UcStore::flush_backends`](crate::store::UcStore::flush_backends)).
    /// Default: no-op.
    fn persist_store_clock(&self, clock: u64) {
        let _ = clock;
    }
}

/// The factory of [`MemBackend`]s — the zero-cost default every
/// existing store uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemFactory;

impl<A: UqAdt> BackendFactory<A> for MemFactory {
    type Backend = MemBackend;

    fn open(&self, _shard: usize, _key: Key) -> MemBackend {
        MemBackend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_spec::SetAdt;

    #[test]
    fn mem_backend_recovers_nothing() {
        let mut b = MemBackend;
        LogBackend::<SetAdt<u32>>::append(
            &mut b,
            Timestamp::new(1, 0),
            &uc_spec::SetUpdate::Insert(1u32),
        );
        LogBackend::<SetAdt<u32>>::flush(&mut b, 5);
        assert_eq!(LogBackend::<SetAdt<u32>>::load_base(&mut b), None);
        assert!(LogBackend::<SetAdt<u32>>::scan_suffix(&mut b).is_empty());
        assert_eq!(LogBackend::<SetAdt<u32>>::clock_watermark(&b), 0);
    }

    #[test]
    fn mem_factory_lists_no_keys() {
        let f = MemFactory;
        assert!(BackendFactory::<SetAdt<u32>>::list_keys(&f, 0).is_empty());
        assert_eq!(BackendFactory::<SetAdt<u32>>::load_store_clock(&f), 0);
    }
}
