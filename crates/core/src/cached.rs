//! The **checkpointing** variant of Algorithm 1 (§VII-C: "In an
//! effective implementation, a process can keep intermediate states.
//! These intermediate states are re-computed only if very late
//! messages arrive.").
//!
//! The replica maintains the state reached by folding a prefix of the
//! log, plus periodic checkpoints. In-order deliveries extend the
//! prefix in O(1) amortised; a late message that lands inside the
//! folded prefix rolls back to the nearest checkpoint at or before the
//! insertion point and re-folds from there — cost proportional to the
//! out-of-order distance, not the whole history.

use crate::log::UpdateLog;
use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::timestamp::{LamportClock, Timestamp};
use uc_spec::UqAdt;

/// Algorithm 1 with incremental state and checkpoint-based repair.
#[derive(Clone, Debug)]
pub struct CachedReplica<A: UqAdt> {
    adt: A,
    pid: u32,
    clock: LamportClock,
    log: UpdateLog<A::Update>,
    /// State after folding `log[..applied]`.
    state: A::State,
    applied: usize,
    /// `(prefix length, state)` snapshots, ascending, every
    /// `checkpoint_every` entries.
    checkpoints: Vec<(usize, A::State)>,
    checkpoint_every: usize,
    /// Number of state recomputation steps performed by repairs
    /// (observability for the E8 bench).
    pub repair_steps: u64,
}

impl<A: UqAdt> CachedReplica<A> {
    /// Default checkpoint spacing.
    pub const DEFAULT_CHECKPOINT_EVERY: usize = 32;

    /// A fresh replica for process `pid`.
    pub fn new(adt: A, pid: u32) -> Self {
        Self::with_checkpoint_every(adt, pid, Self::DEFAULT_CHECKPOINT_EVERY)
    }

    /// A fresh replica with explicit checkpoint spacing (ablation).
    pub fn with_checkpoint_every(adt: A, pid: u32, every: usize) -> Self {
        assert!(every > 0);
        let state = adt.initial();
        CachedReplica {
            state,
            adt,
            pid,
            clock: LamportClock::new(),
            log: UpdateLog::new(),
            applied: 0,
            checkpoints: Vec::new(),
            checkpoint_every: every,
            repair_steps: 0,
        }
    }

    /// Perform a local update (applies immediately; returns the
    /// broadcast message).
    pub fn update(&mut self, u: A::Update) -> UpdateMsg<A::Update> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        let msg = UpdateMsg { ts, update: u };
        let pos = self.log.push_newest(&msg);
        self.absorb(pos);
        msg
    }

    /// Receive a peer's update.
    pub fn on_deliver(&mut self, msg: &UpdateMsg<A::Update>) {
        self.clock.merge(msg.ts.clock);
        if let Some(pos) = self.log.insert(msg) {
            self.absorb(pos);
        }
    }

    /// Repair bookkeeping after inserting at `pos`, then fold to the
    /// end of the log.
    fn absorb(&mut self, pos: usize) {
        if pos < self.applied {
            // Late message: roll back to the nearest checkpoint ≤ pos.
            let ck = match self
                .checkpoints
                .iter()
                .rposition(|(len, _)| *len <= pos)
            {
                Some(i) => {
                    self.checkpoints.truncate(i + 1);
                    let (len, state) = self.checkpoints[i].clone();
                    self.state = state;
                    len
                }
                None => {
                    self.checkpoints.clear();
                    self.state = self.adt.initial();
                    0
                }
            };
            self.applied = ck;
        }
        self.fold_to_end();
    }

    fn fold_to_end(&mut self) {
        while self.applied < self.log.len() {
            let (_, u) = self.log.get(self.applied).expect("in range");
            self.adt.apply(&mut self.state, u);
            self.applied += 1;
            self.repair_steps += 1;
            if self.applied.is_multiple_of(self.checkpoint_every) {
                self.checkpoints.push((self.applied, self.state.clone()));
            }
        }
    }

    /// Answer a query from the cached state — O(1) state work.
    pub fn do_query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.clock.tick();
        debug_assert_eq!(self.applied, self.log.len());
        self.adt.observe(&self.state, q)
    }

    /// Known timestamps (witness extraction).
    pub fn known_timestamps(&self) -> Vec<Timestamp> {
        self.log.timestamps().collect()
    }
}

impl<A: UqAdt> Replica<A> for CachedReplica<A> {
    type Msg = UpdateMsg<A::Update>;

    fn pid(&self) -> u32 {
        self.pid
    }

    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg> {
        vec![self.update(u)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_deliver(msg);
    }

    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.do_query(q)
    }

    fn materialize(&mut self) -> A::State {
        self.fold_to_end();
        self.state.clone()
    }

    fn log_len(&self) -> usize {
        self.log.len()
    }

    fn clock(&self) -> u64 {
        self.clock.now()
    }

    fn known_timestamps(&self) -> Vec<Timestamp> {
        CachedReplica::known_timestamps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type C = CachedReplica<SetAdt<u32>>;
    type G = GenericReplica<SetAdt<u32>>;

    #[test]
    fn agrees_with_naive_replay_in_order() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..100 {
            let u = if i % 3 == 0 {
                SetUpdate::Delete(i % 10)
            } else {
                SetUpdate::Insert(i % 10)
            };
            c.update(u);
            g.update(u);
        }
        assert_eq!(c.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
    }

    #[test]
    fn late_message_repair_matches_full_replay() {
        // Build a peer message stream; deliver one message far out of
        // order into a long local history.
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Insert(99)); // ts (1,1)

        let mut c: C = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 4);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..50 {
            let u = SetUpdate::Insert(i);
            c.update(u);
            g.update(u);
        }
        // also delete 99 locally somewhere late (after the late msg's ts)
        c.update(SetUpdate::Delete(99));
        g.update(SetUpdate::Delete(99));
        c.on_deliver(&late);
        g.on_deliver(&late);
        assert_eq!(c.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
        assert!(!c
            .do_query(&SetQuery::Read)
            .contains(&99), "delete must order after the late insert");
    }

    #[test]
    fn in_order_deliveries_cost_constant_repair() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        for i in 0..1000u32 {
            c.update(SetUpdate::Insert(i));
        }
        // one fold step per update
        assert_eq!(c.repair_steps, 1000);
    }

    #[test]
    fn late_message_repair_is_local_to_the_suffix() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Insert(7)); // clock 1
        let mut c: C = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 8);
        for i in 0..64u32 {
            c.update(SetUpdate::Insert(i));
        }
        let before = c.repair_steps;
        c.on_deliver(&late); // lands near position 1
        let repair = c.repair_steps - before;
        // Must re-fold roughly the whole suffix after the checkpoint at
        // 0 — ≤ 65 steps, and definitely not amortised-free; the point
        // is it is bounded by log length, and for near-tail insertions
        // it is tiny (next assertion).
        assert!(repair <= 65, "{repair}");
        let mut peer2: G = GenericReplica::new(SetAdt::new(), 2);
        for _ in 0..63 {
            peer2.update(SetUpdate::Insert(0));
        }
        let near_tail = peer2.update(SetUpdate::Insert(8)); // clock 64
        let before = c.repair_steps;
        c.on_deliver(&near_tail);
        let repair = c.repair_steps - before;
        assert!(repair <= 9, "near-tail repair should stay within one checkpoint span, got {repair}");
    }

    #[test]
    fn query_does_not_replay() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        for i in 0..100u32 {
            c.update(SetUpdate::Insert(i));
        }
        let folded = c.repair_steps;
        for _ in 0..50 {
            c.do_query(&SetQuery::Read);
        }
        assert_eq!(c.repair_steps, folded, "queries are O(1) state work");
    }

    #[test]
    fn materialize_equals_query_view() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        c.update(SetUpdate::Insert(1));
        c.update(SetUpdate::Delete(1));
        c.update(SetUpdate::Insert(2));
        assert_eq!(c.materialize(), BTreeSet::from([2]));
        assert_eq!(c.do_query(&SetQuery::Read), BTreeSet::from([2]));
    }
}
