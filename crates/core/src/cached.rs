//! The **checkpointing** strategy (§VII-C: "In an effective
//! implementation, a process can keep intermediate states. These
//! intermediate states are re-computed only if very late messages
//! arrive.").
//!
//! [`CheckpointRepair`] maintains the state reached by folding a
//! prefix of the log, plus periodic checkpoints. In-order deliveries
//! extend the prefix in O(1) amortised; a late message that lands
//! inside the folded prefix rolls back to the nearest checkpoint at or
//! before the insertion point and re-folds from there — cost
//! proportional to the out-of-order distance, not the whole history.
//! A *batch* of late messages pays that rollback-and-refold **once**
//! (see [`crate::engine::ReplicaEngine::on_deliver_batch`]).

use crate::backend::LogBackend;
use crate::engine::{EngineCtx, RepairStrategy, ReplicaEngine};
use crate::log::UpdateLog;
use uc_spec::UqAdt;

/// Incremental state with checkpoint-based rollback.
#[derive(Clone, Debug)]
pub struct CheckpointRepair<A: UqAdt> {
    /// State after folding `log[..applied]`.
    state: A::State,
    applied: usize,
    /// `(prefix length, state)` snapshots, ascending, every
    /// `checkpoint_every` entries.
    checkpoints: Vec<(usize, A::State)>,
    checkpoint_every: usize,
    repair_steps: u64,
    repair_events: u64,
}

impl<A: UqAdt> CheckpointRepair<A> {
    /// Default checkpoint spacing.
    pub const DEFAULT_CHECKPOINT_EVERY: usize = 32;

    /// A fresh strategy with default spacing.
    pub fn new(adt: &A) -> Self {
        Self::with_spacing(adt, Self::DEFAULT_CHECKPOINT_EVERY)
    }

    /// A fresh strategy with explicit checkpoint spacing (ablation).
    pub fn with_spacing(adt: &A, every: usize) -> Self {
        assert!(every > 0);
        CheckpointRepair {
            state: adt.initial(),
            applied: 0,
            checkpoints: Vec::new(),
            checkpoint_every: every,
            repair_steps: 0,
            repair_events: 0,
        }
    }

    /// Roll back to the nearest checkpoint at or before `pos`, then
    /// fold to the end of the log. The single repair primitive — both
    /// one late message and a whole batch cost exactly one call.
    fn repair_from<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>, pos: usize) {
        if pos < self.applied {
            self.repair_events += 1;
            let ck = match self.checkpoints.iter().rposition(|(len, _)| *len <= pos) {
                Some(i) => {
                    self.checkpoints.truncate(i + 1);
                    let (len, state) = self.checkpoints[i].clone();
                    self.state = state;
                    len
                }
                None => {
                    self.checkpoints.clear();
                    self.state = adt.initial();
                    0
                }
            };
            self.applied = ck;
        }
        self.fold_to_end(adt, log);
    }

    fn fold_to_end<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>) {
        while self.applied < log.len() {
            let (_, u) = log.get(self.applied).expect("in range");
            adt.apply(&mut self.state, u);
            self.applied += 1;
            self.repair_steps += 1;
            if self.applied.is_multiple_of(self.checkpoint_every) {
                self.checkpoints.push((self.applied, self.state.clone()));
            }
        }
    }
}

impl<A: UqAdt> RepairStrategy<A> for CheckpointRepair<A> {
    fn on_insert<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &mut UpdateLog<A, B>,
        pos: usize,
        _ctx: &EngineCtx,
    ) {
        self.repair_from(adt, log, pos);
    }

    // on_batch_insert: the default (one `on_insert` at the minimum
    // position) is already a single rollback + refold.

    fn current_state<B: LogBackend<A>>(&mut self, _adt: &A, log: &UpdateLog<A, B>) -> &A::State {
        debug_assert_eq!(self.applied, log.len(), "state must be fully folded");
        &self.state
    }

    fn repair_steps(&self) -> u64 {
        self.repair_steps
    }

    fn repair_events(&self) -> u64 {
        self.repair_events
    }
}

/// Algorithm 1 with incremental state and checkpoint-based repair.
pub type CachedReplica<A> = ReplicaEngine<A, CheckpointRepair<A>>;

impl<A: UqAdt> CachedReplica<A> {
    /// A fresh replica for process `pid`.
    pub fn new(adt: A, pid: u32) -> Self {
        let strategy = CheckpointRepair::new(&adt);
        ReplicaEngine::with_strategy(adt, pid, strategy)
    }

    /// A fresh replica with explicit checkpoint spacing (ablation).
    pub fn with_checkpoint_every(adt: A, pid: u32, every: usize) -> Self {
        let strategy = CheckpointRepair::with_spacing(&adt, every);
        ReplicaEngine::with_strategy(adt, pid, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type C = CachedReplica<SetAdt<u32>>;
    type G = GenericReplica<SetAdt<u32>>;

    #[test]
    fn agrees_with_naive_replay_in_order() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..100 {
            let u = if i % 3 == 0 {
                SetUpdate::Delete(i % 10)
            } else {
                SetUpdate::Insert(i % 10)
            };
            c.update(u);
            g.update(u);
        }
        assert_eq!(c.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
    }

    #[test]
    fn late_message_repair_matches_full_replay() {
        // Build a peer message stream; deliver one message far out of
        // order into a long local history.
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Insert(99)); // ts (1,1)

        let mut c: C = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 4);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..50 {
            let u = SetUpdate::Insert(i);
            c.update(u);
            g.update(u);
        }
        // also delete 99 locally somewhere late (after the late msg's ts)
        c.update(SetUpdate::Delete(99));
        g.update(SetUpdate::Delete(99));
        c.on_deliver(&late);
        g.on_deliver(&late);
        assert_eq!(c.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
        assert!(
            !c.do_query(&SetQuery::Read).contains(&99),
            "delete must order after the late insert"
        );
    }

    #[test]
    fn in_order_deliveries_cost_constant_repair() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        for i in 0..1000u32 {
            c.update(SetUpdate::Insert(i));
        }
        // one fold step per update, and never a rollback
        assert_eq!(c.repair_steps(), 1000);
        assert_eq!(c.repair_events(), 0);
    }

    #[test]
    fn late_message_repair_is_local_to_the_suffix() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Insert(7)); // clock 1
        let mut c: C = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 8);
        for i in 0..64u32 {
            c.update(SetUpdate::Insert(i));
        }
        let before = c.repair_steps();
        c.on_deliver(&late); // lands near position 1
        let repair = c.repair_steps() - before;
        // Must re-fold roughly the whole suffix after the checkpoint at
        // 0 — ≤ 65 steps, and definitely not amortised-free; the point
        // is it is bounded by log length, and for near-tail insertions
        // it is tiny (next assertion).
        assert!(repair <= 65, "{repair}");
        let mut peer2: G = GenericReplica::new(SetAdt::new(), 2);
        for _ in 0..63 {
            peer2.update(SetUpdate::Insert(0));
        }
        let near_tail = peer2.update(SetUpdate::Insert(8)); // clock 64
        let before = c.repair_steps();
        c.on_deliver(&near_tail);
        let repair = c.repair_steps() - before;
        assert!(
            repair <= 9,
            "near-tail repair should stay within one checkpoint span, got {repair}"
        );
    }

    #[test]
    fn query_does_not_replay() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        for i in 0..100u32 {
            c.update(SetUpdate::Insert(i));
        }
        let folded = c.repair_steps();
        for _ in 0..50 {
            c.do_query(&SetQuery::Read);
        }
        assert_eq!(c.repair_steps(), folded, "queries are O(1) state work");
    }

    #[test]
    fn materialize_equals_query_view() {
        let mut c: C = CachedReplica::new(SetAdt::new(), 0);
        c.update(SetUpdate::Insert(1));
        c.update(SetUpdate::Delete(1));
        c.update(SetUpdate::Insert(2));
        assert_eq!(c.materialize(), BTreeSet::from([2]));
        assert_eq!(c.do_query(&SetQuery::Read), BTreeSet::from([2]));
    }

    #[test]
    fn duplicate_delivery_does_not_corrupt_repair_state() {
        // Regression for the push_newest/insert duplicate ambiguity: a
        // re-delivered message must not be treated as a fresh insert.
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let m = peer.update(SetUpdate::Insert(5));
        let mut c: C = CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 4);
        for i in 0..10u32 {
            c.update(SetUpdate::Insert(i));
        }
        c.on_deliver(&m);
        let steps = c.repair_steps();
        c.on_deliver(&m); // duplicate: must be a no-op
        assert_eq!(c.repair_steps(), steps);
        assert_eq!(c.log_len(), 11);
    }
}
