//! Convergence checks across replicas — the observable half of
//! eventual/update consistency in simulated executions.

use crate::replica::{state_digest, Replica};
use uc_spec::UqAdt;

/// Materialize every replica's state.
pub fn states<A: UqAdt, R: Replica<A>>(replicas: &mut [R]) -> Vec<A::State> {
    replicas.iter_mut().map(|r| r.materialize()).collect()
}

/// Are all states equal?
pub fn converged<S: PartialEq>(states: &[S]) -> bool {
    states.windows(2).all(|w| w[0] == w[1])
}

/// Digest every replica's state (cheap divergence fingerprinting for
/// benches).
pub fn digests<A, R>(replicas: &mut [R]) -> Vec<u64>
where
    A: UqAdt,
    R: Replica<A>,
{
    replicas
        .iter_mut()
        .map(|r| state_digest(&r.materialize()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use uc_spec::{SetAdt, SetUpdate};

    #[test]
    fn detects_divergence_and_convergence() {
        let mut rs: Vec<GenericReplica<SetAdt<u32>>> = (0..3)
            .map(|p| GenericReplica::new(SetAdt::new(), p))
            .collect();
        let m0 = rs[0].update(SetUpdate::Insert(1));
        let m1 = rs[1].update(SetUpdate::Delete(1));
        assert!(!converged(&states(&mut rs)));
        for (i, r) in rs.iter_mut().enumerate() {
            if i != 0 {
                r.on_deliver(&m0);
            }
            if i != 1 {
                r.on_deliver(&m1);
            }
        }
        let ss = states(&mut rs);
        assert!(converged(&ss));
        let ds = digests(&mut rs);
        assert!(ds.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_and_singleton_are_converged() {
        let empty: Vec<u32> = vec![];
        assert!(converged(&empty));
        assert!(converged(&[42]));
    }
}
