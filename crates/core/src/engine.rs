//! The unified **Algorithm 1 engine**: one replica core, pluggable
//! repair strategies, batched delivery.
//!
//! # Why an engine
//!
//! Algorithm 1 is a single protocol: a Lamport clock, a
//! timestamp-sorted update log, and a rule for answering queries from
//! the sorted log. The paper's §VII-C optimisations (checkpointing,
//! undo-based repositioning, stability-based GC) do not change the
//! protocol — they change only *how the replica maintains a state
//! equivalent to replaying the sorted log* when a late message lands
//! in the middle of it. Implementing each optimisation as a full
//! replica forked the pid/clock/log plumbing four ways; the
//! [`ReplicaEngine`] owns that plumbing once and delegates state
//! maintenance to a [`RepairStrategy`].
//!
//! ```text
//!                 ReplicaEngine<A, S>
//!   update/on_deliver ──► LamportClock ── UpdateLog (sorted by ts)
//!                              │                │ insert pos
//!                              ▼                ▼
//!                       S: RepairStrategy  (hooks: on_insert,
//!                       on_batch_insert, observe_clock, maintain,
//!                       current_state)
//! ```
//!
//! The four shipped strategies reproduce the historical variants and
//! keep their public names as aliases/wrappers:
//!
//! | strategy | former type | repair on a late message |
//! |----------|-------------|--------------------------|
//! | [`NaiveReplay`](crate::generic::NaiveReplay) | [`GenericReplica`](crate::generic::GenericReplica) | none — every query replays the log |
//! | [`CheckpointRepair`](crate::cached::CheckpointRepair) | [`CachedReplica`](crate::cached::CachedReplica) | roll back to nearest checkpoint ≤ pos, refold |
//! | [`UndoRepair`](crate::undo::UndoRepair) | [`UndoReplica`](crate::undo::UndoReplica) | undo suffix (LIFO), apply, redo |
//! | [`StableGc`](crate::gc::StableGc) | [`GcReplica`](crate::gc::GcReplica) | naive fold over a stability-compacted log |
//!
//! # Batched delivery
//!
//! The hot path this refactor unlocks:
//! [`ReplicaEngine::on_deliver_batch`] ingests `K` messages with **one**
//! repair. Messages are deduplicated and merged into the log in a
//! single pass, the minimum insertion position is computed, and the
//! strategy is asked to repair once from there
//! ([`RepairStrategy::on_batch_insert`]) — one rollback + one refold
//! instead of up to `K` of each. Delivering each message separately
//! costs `O(K · s)` state transitions for a suffix of length `s`;
//! the batch costs `O(s + K log K)`. The [`crate::replica::Replica`]
//! trait exposes this as [`Replica::on_batch`](crate::replica::Replica::on_batch)
//! (default: a per-message loop), and both `uc-sim` runtimes flush
//! message bursts through it.
//!
//! # Writing a strategy
//!
//! A strategy observes every mutation of the log through its hooks and
//! must uphold one invariant: after any hook returns,
//! [`RepairStrategy::current_state`] equals the fold of the log (over
//! the strategy's compacted base, if it has one). The engine calls:
//!
//! * [`observe_clock`](RepairStrategy::observe_clock) — for every
//!   timestamp the replica hears (local updates, deliveries, queries,
//!   heartbeats); strategies tracking per-sender stability live here;
//! * [`on_insert`](RepairStrategy::on_insert) /
//!   [`on_batch_insert`](RepairStrategy::on_batch_insert) — after the
//!   log gained entries, with the position(s) that became dirty;
//! * [`maintain`](RepairStrategy::maintain) — periodic housekeeping
//!   (compaction), from [`ReplicaEngine::tick_maintenance`];
//! * [`current_state`](RepairStrategy::current_state) — to answer
//!   queries and [`ReplicaEngine::materialize`].

use crate::backend::{LogBackend, MemBackend};
use crate::log::UpdateLog;
use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::timestamp::{LamportClock, Timestamp};
use uc_spec::UqAdt;

/// Engine facts passed to every strategy hook: the replica identity
/// and its current Lamport clock.
#[derive(Clone, Copy, Debug)]
pub struct EngineCtx {
    /// The owning replica's process id.
    pub pid: u32,
    /// The owning replica's current clock value.
    pub clock: u64,
}

/// A snapshot cut predates compacted history: the requested timestamp
/// is below the strategy's stability bound, so the updates needed to
/// reconstruct the state at that cut were already folded into a base
/// and drained from the log.
///
/// Returned by [`RepairStrategy::state_at_cut`] /
/// [`ReplicaEngine::query_at_cut`]; callers either retry with a more
/// recent cut (`≥ bound`) or fall back to a live query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutError {
    /// The requested cut timestamp.
    pub cut: u64,
    /// The oldest cut the replica can still answer: its compaction
    /// bound (every update with `clock ≤ bound` has been folded away).
    pub bound: u64,
}

impl std::fmt::Display for CutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cut {} predates compacted history (oldest answerable cut: {})",
            self.cut, self.bound
        )
    }
}

impl std::error::Error for CutError {}

/// How a replica keeps (or reconstructs) the state equivalent to
/// folding its sorted update log — the pluggable part of Algorithm 1.
///
/// See the [module docs](self) for the contract and the shipped
/// implementations.
pub trait RepairStrategy<A: UqAdt> {
    /// The log gained one entry at `pos` (already inserted). Repair
    /// whatever cached state the strategy maintains. `log` is mutable
    /// so compacting strategies can shrink it. Generic over the log's
    /// [`LogBackend`] — repair logic is storage-agnostic; compacting
    /// strategies use the genericity to persist their base through
    /// [`UpdateLog::persist_base`].
    fn on_insert<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &mut UpdateLog<A, B>,
        pos: usize,
        ctx: &EngineCtx,
    );

    /// The log gained several entries, the earliest at `min_pos`.
    /// Strategies whose repair cost is dominated by the refold should
    /// override this only if `on_insert(min_pos)` is not already a
    /// single repair of the whole dirty suffix (both shipped repairing
    /// strategies satisfy that, so the default delegates).
    fn on_batch_insert<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &mut UpdateLog<A, B>,
        min_pos: usize,
        ctx: &EngineCtx,
    ) {
        self.on_insert(adt, log, min_pos, ctx);
    }

    /// A timestamp from `pid` with value `clock` was heard (local
    /// update, delivery, query, or heartbeat). Default: ignore.
    /// Stability tracking ([`crate::gc::StableGc`]) lives here.
    fn observe_clock(&mut self, pid: u32, clock: u64) {
        let _ = (pid, clock);
    }

    /// Pin compaction at `clock` (`Some`) or release the pin (`None`).
    /// While a partitioned peer is marked down, the store caps
    /// stability-based collection at the outage-start watermark so the
    /// missed suffix stays available for reconciliation-on-heal.
    /// Default: ignore — only compacting strategies
    /// ([`crate::gc::StableGc`]) ever discard log entries.
    fn set_retention_cap(&mut self, cap: Option<u64>) {
        let _ = cap;
    }

    /// Does an insertion cost this strategy *nothing* beyond the log
    /// mutation itself — no rollback, no refold, no cache repair?
    /// Strategies that answer queries by replaying the log from
    /// scratch ([`crate::generic::NaiveReplay`]) return `true`; for
    /// them the engine's batched delivery cuts over to the per-message
    /// insert path on small bursts, where `k` binary-searched memmoves
    /// beat rebuilding the dirty suffix (the batch merge exists to
    /// amortize *repair*, and there is none to amortize). Default:
    /// `false` — incremental strategies always want the single-repair
    /// batch path.
    fn insert_is_free(&self) -> bool {
        false
    }

    /// Periodic housekeeping (e.g. compaction after new stability
    /// knowledge). Default: nothing.
    fn maintain<B: LogBackend<A>>(&mut self, adt: &A, log: &mut UpdateLog<A, B>, ctx: &EngineCtx) {
        let _ = (adt, log, ctx);
    }

    /// The state equivalent to folding the full log (over the
    /// strategy's base, if it compacts). Must be cheap for strategies
    /// that maintain state incrementally; replaying strategies may
    /// recompute into a scratch buffer.
    fn current_state<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>) -> &A::State;

    /// The state at a snapshot **cut**: the fold of exactly the
    /// updates stamped `clock ≤ cut`, in `(clock, pid)` order. Because
    /// a clock cut is downward-closed in the timestamp total order, the
    /// result is a prefix of the log — the default folds
    /// [`UpdateLog::prefix_at`] from `s0`, which is exact for every
    /// strategy that retains the full log. Compacting strategies
    /// ([`crate::gc::StableGc`]) override it to start from their base
    /// and to return [`CutError`] when `cut` predates the compaction
    /// bound (the needed prefix no longer exists).
    fn state_at_cut<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &UpdateLog<A, B>,
        cut: u64,
    ) -> Result<A::State, CutError> {
        Ok(adt.run_updates(log.prefix_at(cut).map(|(_, u)| u)))
    }

    /// Recovery: adopt a base snapshot persisted by an earlier run —
    /// `state` is the fold of every update with `ts.clock ≤ bound`.
    /// Returns whether the strategy can host a base; the default
    /// (`false`) makes [`ReplicaEngine::recover`] reject snapshots for
    /// strategies that fold from `s0` (only compacting strategies —
    /// [`crate::gc::StableGc`] — ever wrote one).
    fn install_base(&mut self, adt: &A, bound: u64, state: A::State) -> bool {
        let _ = (adt, bound, state);
        false
    }

    /// Cumulative state-transition steps spent repairing (undo, redo,
    /// and fold steps) — the E8 observability metric. Strategies that
    /// do no incremental maintenance report 0.
    fn repair_steps(&self) -> u64 {
        0
    }

    /// Number of *repair events* (rollback-and-refold episodes, not
    /// steps). [`ReplicaEngine::on_deliver_batch`] performs at most
    /// one per batch — the acceptance criterion for batching.
    fn repair_events(&self) -> u64 {
        0
    }
}

/// The unified Algorithm 1 replica: owns the process id, the Lamport
/// clock, and the timestamp-sorted update log; delegates state
/// maintenance to a [`RepairStrategy`] and durability to the log's
/// [`LogBackend`] (default: the no-op [`MemBackend`]).
///
/// The historical variant types are aliases or thin wrappers of this
/// engine — see the [module docs](self) for the table.
#[derive(Clone, Debug)]
pub struct ReplicaEngine<A: UqAdt, S, B = MemBackend> {
    adt: A,
    pid: u32,
    clock: LamportClock,
    log: UpdateLog<A, B>,
    strategy: S,
}

impl<A: UqAdt, S: RepairStrategy<A>> ReplicaEngine<A, S> {
    /// Assemble an engine from its parts, over the in-memory
    /// [`MemBackend`] (the path every pre-refactor caller takes;
    /// pinning the backend type here keeps those call sites
    /// inference-clean).
    pub fn with_strategy(adt: A, pid: u32, strategy: S) -> Self {
        Self::with_backend(adt, pid, strategy, MemBackend)
    }
}

impl<A: UqAdt, S: RepairStrategy<A>, B: LogBackend<A>> ReplicaEngine<A, S, B> {
    /// Assemble an engine over an explicit storage backend.
    pub fn with_backend(adt: A, pid: u32, strategy: S, backend: B) -> Self {
        ReplicaEngine {
            adt,
            pid,
            clock: LamportClock::new(),
            log: UpdateLog::with_backend(backend),
            strategy,
        }
    }

    /// Rebuild an engine from a persistent backend: install the
    /// compacted base (if one was ever written), replay the journaled
    /// tail through the normal delivery path — `fold(base) +
    /// replay(tail)` — and restore the Lamport clock to
    /// `max(watermark, base bound, tail timestamps)`. Journaling is
    /// suspended during the replay (the entries are already durable).
    ///
    /// # Panics
    ///
    /// If the backend holds a base snapshot but `strategy` cannot host
    /// one ([`RepairStrategy::install_base`] returns `false`) — e.g. a
    /// log compacted under [`crate::gc::StableGc`] reopened under a
    /// fold-from-`s0` strategy would silently lose the folded prefix.
    pub fn recover(adt: A, pid: u32, strategy: S, mut backend: B) -> Self {
        let base = backend.load_base();
        let tail = backend.scan_suffix();
        let watermark = backend.clock_watermark();
        let mut engine = Self::with_backend(adt, pid, strategy, backend);
        engine.log.set_journaling(false);
        if let Some((bound, state)) = base {
            assert!(
                engine.strategy.install_base(&engine.adt, bound, state),
                "backend holds a base snapshot but the strategy cannot host one"
            );
            engine.log.raise_floor(bound);
            engine.clock.merge(bound);
        }
        engine.on_deliver_batch_owned(
            tail.into_iter()
                .map(|(ts, update)| UpdateMsg { ts, update })
                .collect(),
        );
        engine.clock.merge(watermark);
        engine.log.set_journaling(true);
        engine
    }

    /// Flush the storage backend, persisting the current clock as the
    /// recovery watermark. A no-op on [`MemBackend`] engines.
    pub fn flush_backend(&mut self) {
        let clock = self.clock.now();
        self.log.flush_backend(clock);
    }

    fn ctx(&self) -> EngineCtx {
        EngineCtx {
            pid: self.pid,
            clock: self.clock.now(),
        }
    }

    /// Perform update `u`: tick, apply to the local log (the sender
    /// receives its broadcast instantaneously), repair, and return the
    /// message for the other replicas.
    pub fn update(&mut self, u: A::Update) -> UpdateMsg<A::Update> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        self.local_update_at(ts, u)
    }

    /// Perform a local update whose timestamp was issued by an
    /// **external** clock owner — the multi-object store
    /// ([`crate::store::UcStore`]) ticks one per-replica Lamport clock
    /// and stamps updates for all of its per-key engines from it. The
    /// timestamp must carry this engine's pid and must be fresh (the
    /// external clock is strictly increasing, so it always is); the
    /// engine's own clock is advanced to match so mixed use stays
    /// monotone.
    pub fn local_update_at(&mut self, ts: Timestamp, u: A::Update) -> UpdateMsg<A::Update> {
        debug_assert_eq!(ts.pid, self.pid, "local timestamps carry the replica pid");
        self.clock.merge(ts.clock);
        let msg = UpdateMsg { ts, update: u };
        let pos = self
            .log
            .push_newest(&msg)
            .expect("locally issued timestamps are unique");
        self.strategy.observe_clock(self.pid, ts.clock);
        let ctx = self.ctx();
        self.strategy.on_insert(&self.adt, &mut self.log, pos, &ctx);
        msg
    }

    /// Receive a peer's update message (Algorithm 1 lines 8–11).
    /// Duplicate timestamps (re-deliveries) are ignored.
    pub fn on_deliver(&mut self, msg: &UpdateMsg<A::Update>) {
        self.clock.merge(msg.ts.clock);
        self.strategy.observe_clock(msg.ts.pid, msg.ts.clock);
        if let Some(pos) = self.log.insert(msg) {
            let ctx = self.ctx();
            self.strategy.on_insert(&self.adt, &mut self.log, pos, &ctx);
        }
    }

    /// [`ReplicaEngine::on_deliver`] for a message the caller already
    /// owns: the update moves into the log instead of being cloned.
    pub fn on_deliver_owned(&mut self, msg: UpdateMsg<A::Update>) {
        self.clock.merge(msg.ts.clock);
        self.strategy.observe_clock(msg.ts.pid, msg.ts.clock);
        if let Some(pos) = self.log.insert_owned(msg) {
            let ctx = self.ctx();
            self.strategy.on_insert(&self.adt, &mut self.log, pos, &ctx);
        }
    }

    /// Below this burst size (inclusive), a strategy with free
    /// insertions ([`RepairStrategy::insert_is_free`]) delivers per
    /// message: `k` binary-searched memmove insertions into a
    /// contiguous `Vec` beat the batch merge's allocation and
    /// element-by-element rebuild of the dirty suffix when the burst
    /// scatters across it and there is no repair cost for the merge
    /// to amortize. Measured on an 8192-entry log (`BENCH_batching`,
    /// naive strategy): scattered k=16 favours per-message (~0.6×
    /// merge), scattered k=64 favours the merge (~1.9×), and bursts
    /// that land in one run (the `head` pattern) favour the merge at
    /// every size thanks to its bulk-extend fast path — so the
    /// threshold protects the one shape that regresses.
    const SMALL_BATCH_CUTOVER: usize = 16;

    /// Should a burst of `k` messages skip the batch merge? Shared by
    /// the borrowed and owned delivery paths so the cutover policy
    /// cannot drift between them.
    fn prefers_per_message(&self, k: usize) -> bool {
        self.strategy.insert_is_free() && k <= Self::SMALL_BATCH_CUTOVER
    }

    /// Batch prologue shared by both delivery paths: observe every
    /// carried timestamp and merge the burst's maximum clock.
    fn observe_batch_clocks(&mut self, msgs: &[UpdateMsg<A::Update>]) {
        let mut max_clock = 0;
        for m in msgs {
            max_clock = max_clock.max(m.ts.clock);
            self.strategy.observe_clock(m.ts.pid, m.ts.clock);
        }
        self.clock.merge(max_clock);
    }

    /// Batch epilogue shared by both delivery paths: one repair from
    /// the earliest insertion position, if anything was fresh.
    fn repair_from(&mut self, min_pos: Option<usize>) {
        if let Some(min_pos) = min_pos {
            let ctx = self.ctx();
            self.strategy
                .on_batch_insert(&self.adt, &mut self.log, min_pos, &ctx);
        }
    }

    /// Receive a whole burst of peer messages with **one** repair: the
    /// batch is deduplicated and merged into the log in a single pass
    /// and the strategy repairs once from the earliest insertion
    /// position, instead of once per message. (For strategies with no
    /// repair cost, small bursts adaptively fall back to the
    /// per-message path — see [`RepairStrategy::insert_is_free`].)
    pub fn on_deliver_batch(&mut self, msgs: &[UpdateMsg<A::Update>]) {
        match msgs {
            [] => return,
            [one] => return self.on_deliver(one),
            _ => {}
        }
        if self.prefers_per_message(msgs.len()) {
            for m in msgs {
                self.on_deliver(m);
            }
            return;
        }
        self.observe_batch_clocks(msgs);
        let min_pos = self.log.insert_batch(msgs);
        self.repair_from(min_pos);
    }

    /// [`ReplicaEngine::on_deliver_batch`] for a burst the caller
    /// already owns: updates move through the merge into the log with
    /// no cloning — the hot path of the store's per-shard ingest and
    /// of the [`IngestPool`](crate::pool::IngestPool) workers.
    pub fn on_deliver_batch_owned(&mut self, mut msgs: Vec<UpdateMsg<A::Update>>) {
        match msgs.len() {
            0 => return,
            1 => return self.on_deliver_owned(msgs.pop().expect("len checked")),
            _ => {}
        }
        if self.prefers_per_message(msgs.len()) {
            for m in msgs {
                self.on_deliver_owned(m);
            }
            return;
        }
        self.observe_batch_clocks(&msgs);
        let min_pos = self.log.insert_batch_owned(msgs);
        self.repair_from(min_pos);
    }

    /// A peer announced its clock without an update (heartbeat).
    /// Advances the Lamport clock and the strategy's stability
    /// knowledge, then lets the strategy compact.
    pub fn observe_peer_clock(&mut self, pid: u32, clock: u64) {
        self.clock.merge(clock);
        self.strategy.observe_clock(pid, clock);
        let ctx = self.ctx();
        self.strategy.maintain(&self.adt, &mut self.log, &ctx);
    }

    /// Pin or release the strategy's compaction retention cap — see
    /// [`RepairStrategy::set_retention_cap`]. The store calls this on
    /// every engine while partitioned peers are marked down so the
    /// suffix they missed survives until reconciliation-on-heal.
    pub fn set_retention_cap(&mut self, cap: Option<u64>) {
        self.strategy.set_retention_cap(cap);
    }

    /// Answer a query from local knowledge (lines 12–19: ticks the
    /// clock, then observes the state equivalent to replaying the
    /// sorted log).
    pub fn do_query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        let now = self.clock.tick();
        self.do_query_at(now, q)
    }

    /// Answer a query under an externally ticked clock (the store's
    /// shared per-replica clock). The engine's own clock is advanced to
    /// `now` so the line-13 guarantee — updates issued after a query
    /// order after everything the query saw — holds across all engines
    /// sharing the external clock.
    pub fn do_query_at(&mut self, now: u64, q: &A::QueryIn) -> A::QueryOut {
        self.clock.merge(now);
        self.strategy.observe_clock(self.pid, now);
        let state = self.strategy.current_state(&self.adt, &self.log);
        self.adt.observe(state, q)
    }

    /// The state this replica would converge to if no further message
    /// arrived.
    pub fn materialize(&mut self) -> A::State {
        self.strategy.current_state(&self.adt, &self.log).clone()
    }

    /// The state at snapshot cut `cut`: the fold of exactly the
    /// delivered updates stamped `clock ≤ cut`, in timestamp order.
    /// Does not advance the clock — a cut read is a read of history,
    /// not a new event. Errors when `cut` predates the strategy's
    /// compaction bound (see [`CutError`]).
    pub fn state_at_cut(&mut self, cut: u64) -> Result<A::State, CutError> {
        self.strategy.state_at_cut(&self.adt, &self.log, cut)
    }

    /// Answer a query against the state at snapshot cut `cut` — the
    /// cut-query counterpart of [`ReplicaEngine::do_query`].
    pub fn query_at_cut(&mut self, cut: u64, q: &A::QueryIn) -> Result<A::QueryOut, CutError> {
        let state = self.state_at_cut(cut)?;
        Ok(self.adt.observe(&state, q))
    }

    /// The retained suffix stamped strictly above `since`, as
    /// broadcast messages in timestamp order — the unit of
    /// anti-entropy reconciliation-on-heal. The backend is flushed
    /// first (heal is a durability point), then asked to stream the
    /// suffix straight from storage ([`LogBackend::stream_suffix`] —
    /// segment-backed engines read their live segment files and never
    /// clone the in-memory log wholesale); backends that cannot
    /// stream fall back to filtering the in-memory sorted log.
    ///
    /// Completeness leans on stability: a compacting strategy's bound
    /// can only advance past `since` once *every* peer's clock
    /// exceeds it, and a peer that has been unreachable since `since`
    /// froze its observed clock at or below it — so while that peer
    /// is down, no entry above `since` is ever folded away.
    pub fn suffix_since(&mut self, since: u64) -> Vec<UpdateMsg<A::Update>> {
        self.flush_backend();
        if let Some(entries) = self.log.backend_mut().stream_suffix(since) {
            return entries
                .into_iter()
                .map(|(ts, update)| UpdateMsg { ts, update })
                .collect();
        }
        self.log
            .iter()
            .filter(|(ts, _)| ts.clock > since)
            .map(|(ts, update)| UpdateMsg {
                ts: *ts,
                update: update.clone(),
            })
            .collect()
    }

    /// Bounded-window form of [`ReplicaEngine::suffix_since`] — the
    /// read primitive of chunked heal streaming: up to `limit` suffix
    /// entries strictly above `since` and (when set) strictly after
    /// the resume cursor `after`, in timestamp order, plus whether
    /// more remain. Peak memory is O(`limit`) on every path: segment
    /// backends answer straight out of their segment files
    /// ([`LogBackend::stream_suffix_window`]) and the in-memory
    /// fallback clones one contiguous window of the sorted log.
    ///
    /// Completeness across calls leans on the same stability argument
    /// as [`ReplicaEngine::suffix_since`]: while the healed peer's
    /// session pins retention at `since`, no entry above it is folded
    /// away between windows.
    pub fn suffix_since_window(
        &mut self,
        since: u64,
        after: Option<Timestamp>,
        limit: usize,
    ) -> (Vec<UpdateMsg<A::Update>>, bool) {
        self.flush_backend();
        if let Some((entries, more)) = self
            .log
            .backend_mut()
            .stream_suffix_window(since, after, limit)
        {
            return (
                entries
                    .into_iter()
                    .map(|(ts, update)| UpdateMsg { ts, update })
                    .collect(),
                more,
            );
        }
        let (window, more) = self.log.suffix_window(since, after, limit);
        (
            window
                .iter()
                .map(|(ts, update)| UpdateMsg {
                    ts: *ts,
                    update: update.clone(),
                })
                .collect(),
            more,
        )
    }

    /// Fold the retained suffix above `since` into a digest visitor
    /// (`f(ts, entry_hash)`) without cloning any payload — the
    /// digest-exchange primitive of the chunked heal path. Served
    /// from the in-memory sorted log on every backend: the log always
    /// holds the full retained suffix (backends only avoid wholesale
    /// *cloning*), so no storage round-trip is needed to hash it.
    pub fn digest_suffix(&mut self, since: u64, mut f: impl FnMut(Timestamp, u64)) {
        self.log
            .for_suffix(since, |ts, u| f(ts, crate::heal::entry_hash(ts, u)));
    }

    /// Announce our clock to the strategy and let it compact; called
    /// by the periodic [`Replica::tick`].
    pub fn tick_maintenance(&mut self) {
        self.strategy.observe_clock(self.pid, self.clock.now());
        let ctx = self.ctx();
        self.strategy.maintain(&self.adt, &mut self.log, &ctx);
    }

    /// This replica's process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Current Lamport clock value.
    pub fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Retained log length (compacted entries excluded).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Access the underlying log (ablation benches, witness tracing).
    pub fn log(&self) -> &UpdateLog<A, B> {
        &self.log
    }

    /// The timestamps currently retained — the visible-update set used
    /// to build strong-update-consistency witnesses (Proposition 4).
    pub fn known_timestamps(&self) -> Vec<Timestamp> {
        self.log.timestamps().collect()
    }

    /// The strategy, for variant-specific observability
    /// (checkpoint counts, compaction totals, …).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Cumulative repair steps performed by the strategy (E8 metric).
    pub fn repair_steps(&self) -> u64 {
        self.strategy.repair_steps()
    }

    /// Number of rollback-and-refold episodes performed by the
    /// strategy. A batch delivery contributes at most one.
    pub fn repair_events(&self) -> u64 {
        self.strategy.repair_events()
    }
}

/// Every engine whose wire format is the plain [`UpdateMsg`] is a
/// wait-free [`Replica`]. (The GC variant speaks
/// [`GcMsg`](crate::message::GcMsg) and wraps the engine instead —
/// see [`crate::gc::GcReplica`].)
impl<A: UqAdt, S: RepairStrategy<A>, B: LogBackend<A>> Replica<A> for ReplicaEngine<A, S, B> {
    type Msg = UpdateMsg<A::Update>;

    fn pid(&self) -> u32 {
        ReplicaEngine::pid(self)
    }

    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg> {
        vec![self.update(u)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_deliver(msg);
    }

    fn on_batch(&mut self, msgs: &[Self::Msg]) {
        self.on_deliver_batch(msgs);
    }

    fn on_batch_owned(&mut self, msgs: Vec<Self::Msg>) {
        self.on_deliver_batch_owned(msgs);
    }

    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.do_query(q)
    }

    fn tick(&mut self) -> Vec<Self::Msg> {
        self.tick_maintenance();
        Vec::new()
    }

    fn materialize(&mut self) -> A::State {
        ReplicaEngine::materialize(self)
    }

    fn log_len(&self) -> usize {
        ReplicaEngine::log_len(self)
    }

    fn clock(&self) -> u64 {
        ReplicaEngine::clock(self)
    }

    fn known_timestamps(&self) -> Vec<Timestamp> {
        ReplicaEngine::known_timestamps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cached::{CachedReplica, CheckpointRepair};
    use crate::generic::GenericReplica;
    use crate::undo::UndoReplica;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    /// Produce `k` messages from a remote peer whose timestamps all
    /// order *before* a local history of length `n`.
    fn late_stream(k: usize) -> Vec<UpdateMsg<SetUpdate<u32>>> {
        let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 7);
        (0..k)
            .map(|i| peer.update(SetUpdate::Insert(100 + i as u32)))
            .collect()
    }

    #[test]
    fn batch_equals_per_message_delivery() {
        let msgs = late_stream(10);
        let build = || {
            let mut r: CachedReplica<SetAdt<u32>> =
                CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 4);
            for i in 0..50 {
                r.update(SetUpdate::Insert(i));
            }
            r
        };
        let mut per_msg = build();
        for m in &msgs {
            per_msg.on_deliver(m);
        }
        let mut batched = build();
        batched.on_deliver_batch(&msgs);
        assert_eq!(per_msg.materialize(), batched.materialize());
        assert_eq!(per_msg.log_len(), batched.log_len());
        assert_eq!(per_msg.known_timestamps(), batched.known_timestamps());
    }

    #[test]
    fn batch_performs_at_most_one_repair_event() {
        let msgs = late_stream(16);
        let mut r: CachedReplica<SetAdt<u32>> =
            CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 8);
        for i in 0..64 {
            r.update(SetUpdate::Insert(i));
        }
        let events_before = r.repair_events();
        r.on_deliver_batch(&msgs);
        assert!(
            r.repair_events() - events_before <= 1,
            "batch must repair at most once, did {}",
            r.repair_events() - events_before
        );

        // Per-message delivery of the same stream repairs K times.
        let mut s: CachedReplica<SetAdt<u32>> =
            CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 8);
        for i in 0..64 {
            s.update(SetUpdate::Insert(i));
        }
        let events_before = s.repair_events();
        for m in &msgs {
            s.on_deliver(m);
        }
        assert_eq!(s.repair_events() - events_before, 16);
        assert_eq!(r.materialize(), s.materialize());
    }

    #[test]
    fn batch_repair_steps_beat_per_message_delivery() {
        let msgs = late_stream(16);
        let setup = |every| {
            let mut r: CachedReplica<SetAdt<u32>> =
                CachedReplica::with_checkpoint_every(SetAdt::new(), 0, every);
            for i in 0..128 {
                r.update(SetUpdate::Insert(i));
            }
            r
        };
        let mut batched = setup(8);
        let base = batched.repair_steps();
        batched.on_deliver_batch(&msgs);
        let batched_cost = batched.repair_steps() - base;

        let mut seq = setup(8);
        let base = seq.repair_steps();
        for m in &msgs {
            seq.on_deliver(m);
        }
        let seq_cost = seq.repair_steps() - base;
        assert!(
            batched_cost < seq_cost / 4,
            "batch {batched_cost} steps vs per-message {seq_cost}"
        );
    }

    #[test]
    fn batch_with_duplicates_and_local_overlap() {
        let msgs = late_stream(5);
        let mut r: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
        r.update(SetUpdate::Insert(1));
        r.on_deliver(&msgs[2]); // one already delivered singly
        let mut doubled = msgs.clone();
        doubled.extend(msgs.iter().cloned()); // and the batch repeats itself
        r.on_deliver_batch(&doubled);
        assert_eq!(r.log_len(), 6);
        let expect: BTreeSet<u32> = [1, 100, 101, 102, 103, 104].into();
        assert_eq!(r.do_query(&SetQuery::Read), expect);
    }

    #[test]
    fn undo_strategy_batches_with_single_repair() {
        let msgs = late_stream(12);
        let mut u: UndoReplica<SetAdt<u32>> = UndoReplica::new(SetAdt::new(), 0);
        for i in 0..40 {
            u.update(SetUpdate::Insert(i));
        }
        let before = u.repair_events();
        u.on_deliver_batch(&msgs);
        assert!(u.repair_events() - before <= 1);

        let mut g: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..40 {
            g.update(SetUpdate::Insert(i));
        }
        g.on_deliver_batch(&msgs);
        assert_eq!(u.materialize(), g.materialize());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let mut r: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
        r.on_deliver_batch(&[]);
        assert_eq!(r.log_len(), 0);
        let msgs = late_stream(1);
        r.on_deliver_batch(&msgs);
        assert_eq!(r.log_len(), 1);
    }

    #[test]
    fn custom_strategy_composes_with_engine() {
        // A deliberately silly strategy: replay, but count inserts.
        #[derive(Clone, Debug)]
        struct Counting {
            scratch: BTreeSet<u32>,
            inserts: u64,
        }
        impl RepairStrategy<SetAdt<u32>> for Counting {
            fn on_insert<B: LogBackend<SetAdt<u32>>>(
                &mut self,
                _adt: &SetAdt<u32>,
                _log: &mut UpdateLog<SetAdt<u32>, B>,
                _pos: usize,
                _ctx: &EngineCtx,
            ) {
                self.inserts += 1;
            }
            fn current_state<B: LogBackend<SetAdt<u32>>>(
                &mut self,
                adt: &SetAdt<u32>,
                log: &UpdateLog<SetAdt<u32>, B>,
            ) -> &BTreeSet<u32> {
                self.scratch = adt.run_updates(log.iter().map(|(_, u)| u));
                &self.scratch
            }
        }
        let mut e = ReplicaEngine::with_strategy(
            SetAdt::<u32>::new(),
            0,
            Counting {
                scratch: BTreeSet::new(),
                inserts: 0,
            },
        );
        e.update(SetUpdate::Insert(3));
        e.update(SetUpdate::Delete(3));
        assert_eq!(e.strategy().inserts, 2);
        assert_eq!(e.do_query(&SetQuery::Read), BTreeSet::new());
    }

    #[test]
    fn checkpoint_strategy_is_reusable_outside_aliases() {
        // The strategy type is public API: engines can be assembled
        // with explicit strategies (the extension point future
        // variants use).
        let adt = SetAdt::<u32>::new();
        let strat = CheckpointRepair::with_spacing(&adt, 2);
        let mut e = ReplicaEngine::with_strategy(adt, 3, strat);
        for i in 0..10 {
            e.update(SetUpdate::Insert(i));
        }
        assert_eq!(e.materialize().len(), 10);
        assert_eq!(e.pid(), 3);
    }
}
