//! **Stability-based garbage collection** (§VII-C: "after some time
//! old messages can be garbage collected").
//!
//! An update is *stable* once no future message can order before it.
//! Per-sender Lamport clocks are strictly increasing, so if the
//! highest clock heard from every process (including oneself) is at
//! least `c`, every future update carries a timestamp with clock
//! `> c` — entries with `ts.clock ≤ c` are final and their prefix can
//! be folded into a base state and dropped from the log.
//!
//! Silent processes block stability (their `last_seen` stays low), so
//! replicas broadcast periodic clock [`GcMsg::Heartbeat`]s via
//! [`Replica::tick`] — the practical reading of the paper's "after
//! some time". One crashed process freezes collection forever, which
//! is the honest cost of stability tracking in a wait-free system and
//! is measured by the E10 experiment.

use crate::log::UpdateLog;
use crate::message::{GcMsg, UpdateMsg};
use crate::replica::Replica;
use crate::timestamp::{LamportClock, Timestamp};
use uc_spec::UqAdt;

/// Algorithm 1 with a stability-compacted log.
#[derive(Clone, Debug)]
pub struct GcReplica<A: UqAdt> {
    adt: A,
    pid: u32,
    clock: LamportClock,
    /// Retained (unstable) suffix of the update log.
    log: UpdateLog<A::Update>,
    /// Fold of the compacted stable prefix.
    base: A::State,
    /// Number of updates folded into `base`.
    compacted: u64,
    /// Highest clock heard from each process.
    last_seen: Vec<u64>,
    /// Current stability bound (entries with clock ≤ bound are
    /// compactable).
    bound: u64,
}

impl<A: UqAdt> GcReplica<A> {
    /// A fresh replica for process `pid` of `n`.
    pub fn new(adt: A, pid: u32, n: usize) -> Self {
        assert!((pid as usize) < n, "pid must be within the cluster");
        let base = adt.initial();
        GcReplica {
            base,
            adt,
            pid,
            clock: LamportClock::new(),
            log: UpdateLog::new(),
            compacted: 0,
            last_seen: vec![0; n],
            bound: 0,
        }
    }

    /// Perform a local update.
    pub fn update(&mut self, u: A::Update) -> GcMsg<A::Update> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        let msg = UpdateMsg { ts, update: u };
        self.log.push_newest(&msg);
        self.last_seen[self.pid as usize] = self.clock.now();
        self.try_compact();
        GcMsg::Update(msg)
    }

    /// Receive a peer's message (update or heartbeat).
    pub fn on_gc_message(&mut self, msg: &GcMsg<A::Update>) {
        match msg {
            GcMsg::Update(m) => {
                debug_assert!(
                    m.ts.clock > self.bound,
                    "stability violated: message {:?} at or below bound {}",
                    m.ts,
                    self.bound
                );
                self.clock.merge(m.ts.clock);
                self.log.insert(m);
                let seen = &mut self.last_seen[m.ts.pid as usize];
                *seen = (*seen).max(m.ts.clock);
            }
            GcMsg::Heartbeat { pid, clock } => {
                self.clock.merge(*clock);
                let seen = &mut self.last_seen[*pid as usize];
                *seen = (*seen).max(*clock);
            }
        }
        self.try_compact();
    }

    fn try_compact(&mut self) {
        let new_bound = self.last_seen.iter().copied().min().unwrap_or(0);
        if new_bound <= self.bound && self.compacted > 0 {
            // bound can only move forward; nothing new to compact
        }
        self.bound = self.bound.max(new_bound);
        let stable = self.log.drain_stable_prefix(self.bound);
        for (_, u) in &stable {
            self.adt.apply(&mut self.base, u);
            self.compacted += 1;
        }
    }

    /// Number of updates folded into the base state.
    pub fn compacted(&self) -> u64 {
        self.compacted
    }

    /// The current stability bound.
    pub fn stability_bound(&self) -> u64 {
        self.bound
    }

    /// Answer a query: fold the retained suffix over the base.
    pub fn do_query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.clock.tick();
        self.last_seen[self.pid as usize] = self.clock.now();
        let state = self.fold();
        self.adt.observe(&state, q)
    }

    fn fold(&self) -> A::State {
        let mut state = self.base.clone();
        for (_, u) in self.log.iter() {
            self.adt.apply(&mut state, u);
        }
        state
    }
}

impl<A: UqAdt> Replica<A> for GcReplica<A> {
    type Msg = GcMsg<A::Update>;

    fn pid(&self) -> u32 {
        self.pid
    }

    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg> {
        vec![self.update(u)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_gc_message(msg);
    }

    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.do_query(q)
    }

    /// Heartbeat: announce the clock so silent periods do not block
    /// peers' stability.
    fn tick(&mut self) -> Vec<Self::Msg> {
        self.last_seen[self.pid as usize] = self.clock.now();
        self.try_compact();
        vec![GcMsg::Heartbeat {
            pid: self.pid,
            clock: self.clock.now(),
        }]
    }

    fn materialize(&mut self) -> A::State {
        self.fold()
    }

    /// Retained entries only — the quantity GC shrinks.
    fn log_len(&self) -> usize {
        self.log.len()
    }

    fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Retained timestamps only: compacted entries are gone, which is
    /// the point of GC (and why witness tracing uses full-log
    /// replicas).
    fn known_timestamps(&self) -> Vec<Timestamp> {
        self.log.timestamps().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type R = GcReplica<SetAdt<u32>>;

    /// Fully connect two replicas: deliver every produced message to
    /// the other, then exchange heartbeats.
    fn exchange(a: &mut R, b: &mut R, msgs_a: Vec<GcMsg<SetUpdate<u32>>>, msgs_b: Vec<GcMsg<SetUpdate<u32>>>) {
        for m in msgs_a {
            b.on_gc_message(&m);
        }
        for m in msgs_b {
            a.on_gc_message(&m);
        }
        let ha = a.tick();
        let hb = b.tick();
        for m in ha {
            b.on_gc_message(&m);
        }
        for m in hb {
            a.on_gc_message(&m);
        }
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let mut b: R = GcReplica::new(SetAdt::new(), 1, 2);
        let mut ma = Vec::new();
        let mut mb = Vec::new();
        for i in 0..20u32 {
            ma.push(a.update(SetUpdate::Insert(i)));
            if i % 2 == 0 {
                mb.push(b.update(SetUpdate::Delete(i)));
            }
        }
        exchange(&mut a, &mut b, ma, mb);
        assert_eq!(a.materialize(), b.materialize());
        assert!(a.compacted() > 0, "stable prefix must have been folded");
        // Odd elements were never deleted and must survive compaction.
        assert!(a.materialize().contains(&1));
    }

    #[test]
    fn log_shrinks_after_heartbeats() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let mut b: R = GcReplica::new(SetAdt::new(), 1, 2);
        let msgs: Vec<_> = (0..50u32).map(|i| a.update(SetUpdate::Insert(i))).collect();
        for m in &msgs {
            b.on_gc_message(m);
        }
        assert_eq!(b.log_len(), 50, "no stability before hearing from everyone");
        // b announces its clock to a, and vice versa.
        let hb = b.tick();
        for m in hb {
            a.on_gc_message(&m);
        }
        let ha = a.tick();
        for m in ha {
            b.on_gc_message(&m);
        }
        assert!(a.log_len() < 50, "a retained {}", a.log_len());
        assert!(b.log_len() < 50, "b retained {}", b.log_len());
        assert_eq!(a.materialize(), b.materialize());
    }

    #[test]
    fn silent_process_blocks_collection() {
        // Three processes; process 2 never speaks → bound stays 0.
        let mut a: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 0, 3);
        let mut b: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 1, 3);
        let msgs: Vec<_> = (0..30u32).map(|i| a.update(SetUpdate::Insert(i))).collect();
        for m in &msgs {
            b.on_gc_message(m);
        }
        let hb = b.tick();
        for m in hb {
            a.on_gc_message(&m);
        }
        assert_eq!(a.compacted(), 0, "silent third process must freeze GC");
        assert_eq!(a.log_len(), 30);
    }

    #[test]
    fn queries_reflect_base_plus_suffix() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 1); // alone: self-stable
        for i in 0..10u32 {
            a.update(SetUpdate::Insert(i));
        }
        assert!(a.compacted() > 0);
        assert_eq!(
            a.do_query(&SetQuery::Read),
            (0..10).collect::<BTreeSet<u32>>()
        );
    }
}
