//! **Stability-based garbage collection** (§VII-C: "after some time
//! old messages can be garbage collected"), as the [`StableGc`]
//! strategy on the shared [`ReplicaEngine`].
//!
//! An update is *stable* once no future message can order before it.
//! Per-sender Lamport clocks are strictly increasing, so if the
//! highest clock heard from every process (including oneself) is at
//! least `c`, every future update carries a timestamp with clock
//! `> c` — entries with `ts.clock ≤ c` are final and their prefix can
//! be folded into a base state and dropped from the log. The strategy
//! learns every heard clock through its
//! [`observe_clock`](crate::engine::RepairStrategy::observe_clock)
//! hook, which the engine feeds from updates, queries, and heartbeats
//! alike.
//!
//! Silent processes block stability (their `last_seen` stays low), so
//! replicas broadcast periodic clock [`GcMsg::Heartbeat`]s via
//! [`Replica::tick`] — the practical reading of the paper's "after
//! some time". One crashed process freezes collection forever, which
//! is the honest cost of stability tracking in a wait-free system and
//! is measured by the E10 experiment.

use crate::backend::LogBackend;
use crate::engine::{CutError, EngineCtx, RepairStrategy, ReplicaEngine};
use crate::log::UpdateLog;
use crate::message::{GcMsg, UpdateMsg};
use crate::replica::Replica;
use crate::timestamp::Timestamp;
use uc_spec::UqAdt;

/// Naive fold over a stability-compacted log: the stable prefix is
/// folded into `base` and dropped; queries fold the retained suffix
/// over a clone of `base`.
#[derive(Clone, Debug)]
pub struct StableGc<A: UqAdt> {
    /// Fold of the compacted stable prefix.
    base: A::State,
    /// Scratch for query-time folds (base + retained suffix). Kept
    /// until the log gains entries: repeated queries against an
    /// unchanged log reuse the cached fold instead of refolding the
    /// whole unstable suffix every time. Compaction moves entries from
    /// the suffix into `base` without changing their fold, so it does
    /// not invalidate the cache.
    scratch: A::State,
    /// Is `scratch` stale relative to `base` + the retained log?
    scratch_dirty: bool,
    /// Fold steps spent answering queries (cache-effectiveness metric).
    fold_steps: u64,
    /// Number of updates folded into `base`.
    compacted: u64,
    /// Highest clock heard from each process.
    last_seen: Vec<u64>,
    /// Current stability bound (entries with clock ≤ bound are
    /// compactable).
    bound: u64,
    /// Anti-entropy retention cap: while a partitioned peer is marked
    /// down, the store pins compaction at the outage-start watermark
    /// so the suffix the peer missed stays in the log for
    /// reconciliation-on-heal. Without the pin, the *incoming* heal
    /// burst (carrying the majority's high clocks) would advance
    /// stability and fold this replica's own partition-era updates
    /// into the base before they were ever streamed back out.
    retention_cap: Option<u64>,
}

impl<A: UqAdt> StableGc<A> {
    /// A fresh strategy for a cluster of `n` processes.
    pub fn new(adt: &A, n: usize) -> Self {
        StableGc {
            base: adt.initial(),
            scratch: adt.initial(),
            scratch_dirty: false,
            fold_steps: 0,
            compacted: 0,
            last_seen: vec![0; n],
            bound: 0,
            retention_cap: None,
        }
    }

    /// Number of updates folded into the base state.
    pub fn compacted(&self) -> u64 {
        self.compacted
    }

    /// The current stability bound.
    pub fn stability_bound(&self) -> u64 {
        self.bound
    }

    /// Cumulative fold steps spent answering queries. Stays flat
    /// across repeated queries of an unchanged log (the query-time
    /// fold is cached) and grows only after new insertions.
    pub fn query_fold_steps(&self) -> u64 {
        self.fold_steps
    }

    fn try_compact<B: LogBackend<A>>(&mut self, adt: &A, log: &mut UpdateLog<A, B>) {
        let mut new_bound = self.last_seen.iter().copied().min().unwrap_or(0);
        if let Some(cap) = self.retention_cap {
            new_bound = new_bound.min(cap);
        }
        self.bound = self.bound.max(new_bound);
        let stable = log.drain_stable_prefix(self.bound);
        if stable.is_empty() {
            return;
        }
        for (_, u) in &stable {
            adt.apply(&mut self.base, u);
            self.compacted += 1;
        }
        // LSM-style persistence: snapshot the new base and hand the
        // retained suffix to the backend as the live tail (a no-op on
        // the in-memory backend).
        log.persist_base(self.bound, &self.base);
    }
}

impl<A: UqAdt> RepairStrategy<A> for StableGc<A> {
    fn on_insert<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &mut UpdateLog<A, B>,
        pos: usize,
        _ctx: &EngineCtx,
    ) {
        debug_assert!(
            log.get(pos)
                .map(|(ts, _)| ts.clock > self.bound)
                .unwrap_or(true),
            "stability violated: insert at or below bound {}",
            self.bound
        );
        self.scratch_dirty = true;
        self.try_compact(adt, log);
    }

    fn set_retention_cap(&mut self, cap: Option<u64>) {
        self.retention_cap = cap;
    }

    fn observe_clock(&mut self, pid: u32, clock: u64) {
        // A clock from a pid outside the configured cluster cannot
        // advance stability (the bound is the minimum over tracked
        // processes), so ignore it — a stray or misconfigured
        // heartbeat must not panic the replica.
        if let Some(seen) = self.last_seen.get_mut(pid as usize) {
            *seen = (*seen).max(clock);
        }
    }

    fn maintain<B: LogBackend<A>>(&mut self, adt: &A, log: &mut UpdateLog<A, B>, _ctx: &EngineCtx) {
        self.try_compact(adt, log);
    }

    fn current_state<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>) -> &A::State {
        if self.scratch_dirty {
            self.fold_steps += log.len() as u64;
            self.scratch = adt.run_updates_from(self.base.clone(), log.iter().map(|(_, u)| u));
            self.scratch_dirty = false;
        }
        &self.scratch
    }

    /// Cut queries over a compacted log: the base already folds every
    /// update with `clock ≤ bound`, so a cut below the bound is
    /// unanswerable ([`CutError`]) and a cut at or above it folds only
    /// the retained prefix `(bound, cut]` over the base. When the cut
    /// covers the whole retained log this *is* the current state, so
    /// the cached query fold is reused — a stable-prefix cut costs
    /// zero fold steps while the cache is warm.
    fn state_at_cut<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &UpdateLog<A, B>,
        cut: u64,
    ) -> Result<A::State, CutError> {
        if cut < self.bound {
            return Err(CutError {
                cut,
                bound: self.bound,
            });
        }
        let plen = log.prefix_len(cut);
        if plen == log.len() {
            return Ok(self.current_state(adt, log).clone());
        }
        self.fold_steps += plen as u64;
        Ok(adt.run_updates_from(self.base.clone(), log.prefix_at(cut).map(|(_, u)| u)))
    }

    /// Recovery: adopt a base persisted by an earlier run's
    /// compaction. Stability knowledge (`last_seen`) is *not*
    /// persisted, so the bound cannot advance until every peer's clock
    /// is heard again — conservative, never unsound (the restored
    /// bound still blocks re-compaction below it, and entries at or
    /// below it were already folded).
    fn install_base(&mut self, _adt: &A, bound: u64, state: A::State) -> bool {
        self.base = state;
        self.bound = bound;
        self.scratch_dirty = true;
        true
    }
}

/// Algorithm 1 with a stability-compacted log. Wraps a
/// [`ReplicaEngine`] because its wire protocol genuinely differs: it
/// speaks [`GcMsg`], interleaving updates with clock heartbeats.
#[derive(Clone, Debug)]
pub struct GcReplica<A: UqAdt> {
    engine: ReplicaEngine<A, StableGc<A>>,
}

impl<A: UqAdt> GcReplica<A> {
    /// A fresh replica for process `pid` of `n`.
    pub fn new(adt: A, pid: u32, n: usize) -> Self {
        assert!((pid as usize) < n, "pid must be within the cluster");
        let strategy = StableGc::new(&adt, n);
        GcReplica {
            engine: ReplicaEngine::with_strategy(adt, pid, strategy),
        }
    }

    /// Perform a local update.
    pub fn update(&mut self, u: A::Update) -> GcMsg<A::Update> {
        GcMsg::Update(self.engine.update(u))
    }

    /// Receive a peer's message (update or heartbeat).
    pub fn on_gc_message(&mut self, msg: &GcMsg<A::Update>) {
        match msg {
            GcMsg::Update(m) => self.engine.on_deliver(m),
            GcMsg::Heartbeat { pid, clock } => self.engine.observe_peer_clock(*pid, *clock),
        }
    }

    /// Number of updates folded into the base state.
    pub fn compacted(&self) -> u64 {
        self.engine.strategy().compacted()
    }

    /// The current stability bound.
    pub fn stability_bound(&self) -> u64 {
        self.engine.strategy().stability_bound()
    }

    /// Answer a query: fold the retained suffix over the base.
    pub fn do_query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.engine.do_query(q)
    }

    /// The state this replica would converge to with no further input.
    pub fn materialize(&mut self) -> A::State {
        self.engine.materialize()
    }

    /// The shared engine (observability and tests).
    pub fn engine(&self) -> &ReplicaEngine<A, StableGc<A>> {
        &self.engine
    }
}

impl<A: UqAdt> Replica<A> for GcReplica<A> {
    type Msg = GcMsg<A::Update>;

    fn pid(&self) -> u32 {
        self.engine.pid()
    }

    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg> {
        vec![self.update(u)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_gc_message(msg);
    }

    /// Batched ingest: updates are merged into the log with a single
    /// repair; heartbeats are folded in afterwards (processing them
    /// last can only delay stability, never violate it).
    fn on_batch(&mut self, msgs: &[Self::Msg]) {
        let updates: Vec<UpdateMsg<A::Update>> = msgs
            .iter()
            .filter_map(|m| match m {
                GcMsg::Update(u) => Some(u.clone()),
                GcMsg::Heartbeat { .. } => None,
            })
            .collect();
        self.engine.on_deliver_batch_owned(updates);
        for m in msgs {
            if let GcMsg::Heartbeat { pid, clock } = m {
                self.engine.observe_peer_clock(*pid, *clock);
            }
        }
    }

    /// Owned batched ingest: updates move straight into the engine's
    /// merge (no second clone); heartbeats still fold in afterwards.
    fn on_batch_owned(&mut self, msgs: Vec<Self::Msg>) {
        let mut updates = Vec::with_capacity(msgs.len());
        let mut heartbeats = Vec::new();
        for m in msgs {
            match m {
                GcMsg::Update(u) => updates.push(u),
                GcMsg::Heartbeat { pid, clock } => heartbeats.push((pid, clock)),
            }
        }
        self.engine.on_deliver_batch_owned(updates);
        for (pid, clock) in heartbeats {
            self.engine.observe_peer_clock(pid, clock);
        }
    }

    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.do_query(q)
    }

    /// Heartbeat: announce the clock so silent periods do not block
    /// peers' stability.
    fn tick(&mut self) -> Vec<Self::Msg> {
        self.engine.tick_maintenance();
        vec![GcMsg::Heartbeat {
            pid: self.engine.pid(),
            clock: self.engine.clock(),
        }]
    }

    fn materialize(&mut self) -> A::State {
        GcReplica::materialize(self)
    }

    /// Retained entries only — the quantity GC shrinks.
    fn log_len(&self) -> usize {
        self.engine.log_len()
    }

    fn clock(&self) -> u64 {
        self.engine.clock()
    }

    /// Retained timestamps only: compacted entries are gone, which is
    /// the point of GC (and why witness tracing uses full-log
    /// replicas).
    fn known_timestamps(&self) -> Vec<Timestamp> {
        self.engine.known_timestamps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type R = GcReplica<SetAdt<u32>>;

    /// Fully connect two replicas: deliver every produced message to
    /// the other, then exchange heartbeats.
    fn exchange(
        a: &mut R,
        b: &mut R,
        msgs_a: Vec<GcMsg<SetUpdate<u32>>>,
        msgs_b: Vec<GcMsg<SetUpdate<u32>>>,
    ) {
        for m in msgs_a {
            b.on_gc_message(&m);
        }
        for m in msgs_b {
            a.on_gc_message(&m);
        }
        let ha = a.tick();
        let hb = b.tick();
        for m in ha {
            b.on_gc_message(&m);
        }
        for m in hb {
            a.on_gc_message(&m);
        }
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let mut b: R = GcReplica::new(SetAdt::new(), 1, 2);
        let mut ma = Vec::new();
        let mut mb = Vec::new();
        for i in 0..20u32 {
            ma.push(a.update(SetUpdate::Insert(i)));
            if i % 2 == 0 {
                mb.push(b.update(SetUpdate::Delete(i)));
            }
        }
        exchange(&mut a, &mut b, ma, mb);
        assert_eq!(a.materialize(), b.materialize());
        assert!(a.compacted() > 0, "stable prefix must have been folded");
        // Odd elements were never deleted and must survive compaction.
        assert!(a.materialize().contains(&1));
    }

    #[test]
    fn log_shrinks_after_heartbeats() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let mut b: R = GcReplica::new(SetAdt::new(), 1, 2);
        let msgs: Vec<_> = (0..50u32).map(|i| a.update(SetUpdate::Insert(i))).collect();
        for m in &msgs {
            b.on_gc_message(m);
        }
        assert_eq!(
            Replica::log_len(&b),
            50,
            "no stability before hearing from everyone"
        );
        // b announces its clock to a, and vice versa.
        let hb = b.tick();
        for m in hb {
            a.on_gc_message(&m);
        }
        let ha = a.tick();
        for m in ha {
            b.on_gc_message(&m);
        }
        assert!(
            Replica::log_len(&a) < 50,
            "a retained {}",
            Replica::log_len(&a)
        );
        assert!(
            Replica::log_len(&b) < 50,
            "b retained {}",
            Replica::log_len(&b)
        );
        assert_eq!(a.materialize(), b.materialize());
    }

    #[test]
    fn silent_process_blocks_collection() {
        // Three processes; process 2 never speaks → bound stays 0.
        let mut a: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 0, 3);
        let mut b: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 1, 3);
        let msgs: Vec<_> = (0..30u32).map(|i| a.update(SetUpdate::Insert(i))).collect();
        for m in &msgs {
            b.on_gc_message(m);
        }
        let hb = b.tick();
        for m in hb {
            a.on_gc_message(&m);
        }
        assert_eq!(a.compacted(), 0, "silent third process must freeze GC");
        assert_eq!(Replica::log_len(&a), 30);
    }

    #[test]
    fn queries_reflect_base_plus_suffix() {
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 1); // alone: self-stable
        for i in 0..10u32 {
            a.update(SetUpdate::Insert(i));
        }
        assert!(a.compacted() > 0);
        assert_eq!(
            a.do_query(&SetQuery::Read),
            (0..10).collect::<BTreeSet<u32>>()
        );
    }

    #[test]
    fn heartbeat_from_unknown_pid_is_ignored_not_panicking() {
        // Regression: `observe_clock` used to index `last_seen`
        // unchecked, so a heartbeat from a pid ≥ n panicked the
        // replica. Out-of-cluster clocks must be ignored.
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        a.update(SetUpdate::Insert(1));
        a.on_gc_message(&GcMsg::Heartbeat { pid: 7, clock: 99 });
        assert_eq!(a.stability_bound(), 0, "stray clock must not advance GC");
        assert_eq!(a.compacted(), 0);
        assert_eq!(a.materialize(), BTreeSet::from([1]));
    }

    #[test]
    fn update_from_unknown_pid_is_ingested_without_panic() {
        // The same out-of-bounds path is reachable through a plain
        // update delivery whose timestamp carries a foreign pid.
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let msg = UpdateMsg {
            ts: crate::timestamp::Timestamp::new(1, 9),
            update: SetUpdate::Insert(4),
        };
        a.on_gc_message(&GcMsg::Update(msg));
        assert_eq!(a.materialize(), BTreeSet::from([4]));
        assert_eq!(a.stability_bound(), 0);
    }

    #[test]
    fn repeated_queries_reuse_the_cached_fold() {
        // Regression: `current_state` used to refold the whole
        // unstable suffix from `base` on every query. The fold is now
        // cached and invalidated only when the log gains entries.
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        for i in 0..32u32 {
            a.update(SetUpdate::Insert(i));
        }
        let _ = a.do_query(&SetQuery::Read);
        let after_first = a.engine().strategy().query_fold_steps();
        assert!(after_first > 0, "first query folds the suffix");
        for _ in 0..10 {
            let _ = a.do_query(&SetQuery::Read);
        }
        assert_eq!(
            a.engine().strategy().query_fold_steps(),
            after_first,
            "repeated queries of an unchanged log must do zero extra fold steps"
        );
        // A new insertion dirties the cache; the next query refolds.
        a.update(SetUpdate::Insert(99));
        let _ = a.do_query(&SetQuery::Read);
        assert!(a.engine().strategy().query_fold_steps() > after_first);
    }

    #[test]
    fn compaction_between_queries_keeps_the_cache_correct() {
        // Compaction moves stable entries into the base without
        // changing the fold; a query answered from the cache after a
        // compaction must still be right.
        let mut a: R = GcReplica::new(SetAdt::new(), 0, 2);
        let mut b: R = GcReplica::new(SetAdt::new(), 1, 2);
        let msgs: Vec<_> = (0..16u32).map(|i| a.update(SetUpdate::Insert(i))).collect();
        for m in &msgs {
            b.on_gc_message(m);
        }
        let expect = a.do_query(&SetQuery::Read);
        // Heartbeats trigger compaction on `a` with no new entries.
        let hb = b.tick();
        for m in hb {
            a.on_gc_message(&m);
        }
        let _ = a.tick();
        assert!(a.compacted() > 0, "compaction must have happened");
        assert_eq!(a.do_query(&SetQuery::Read), expect);
    }

    #[test]
    fn batched_gc_messages_match_sequential_delivery() {
        let mut producer: R = GcReplica::new(SetAdt::new(), 1, 2);
        let mut msgs: Vec<_> = (0..20u32)
            .map(|i| producer.update(SetUpdate::Insert(i)))
            .collect();
        msgs.push(GcMsg::Heartbeat { pid: 1, clock: 20 });

        let mut seq: R = GcReplica::new(SetAdt::new(), 0, 2);
        for m in &msgs {
            seq.on_gc_message(m);
        }
        let mut bat: R = GcReplica::new(SetAdt::new(), 0, 2);
        bat.on_batch(&msgs);
        assert_eq!(seq.materialize(), bat.materialize());
        // Neither has spoken itself, so stability is identical too.
        assert_eq!(seq.stability_bound(), bat.stability_bound());
    }
}
