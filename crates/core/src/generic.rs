//! **Algorithm 1** — the universal strong-update-consistent
//! construction, expressed as the [`NaiveReplay`] strategy on the
//! shared [`ReplicaEngine`].
//!
//! Each replica keeps a Lamport clock and the set of all timestamped
//! updates it knows (`updates_i`). An update ticks the clock and
//! broadcasts `(clock, pid, u)`; a receipt merges the clock and
//! inserts the update; a query ticks the clock and **replays the whole
//! sorted log from `s0`** (lines 12–19). Naive replay makes queries
//! `O(|log|)` — by design: this variant is the paper's proof artifact,
//! and the measured baseline for the §VII-C optimisation strategies
//! ([`crate::cached::CheckpointRepair`], [`crate::undo::UndoRepair`],
//! [`crate::gc::StableGc`]).

use crate::backend::LogBackend;
use crate::engine::{EngineCtx, RepairStrategy, ReplicaEngine};
use crate::log::UpdateLog;
use uc_spec::UqAdt;

/// The no-maintenance strategy: keep nothing, replay the sorted log
/// on every query. Insertions (single or batched) are free; queries
/// cost `O(|log|)` state transitions.
#[derive(Clone, Debug)]
pub struct NaiveReplay<A: UqAdt> {
    /// Scratch buffer holding the most recent replay (so
    /// [`RepairStrategy::current_state`] can hand out a reference).
    scratch: A::State,
}

impl<A: UqAdt> NaiveReplay<A> {
    /// A fresh strategy.
    pub fn new(adt: &A) -> Self {
        NaiveReplay {
            scratch: adt.initial(),
        }
    }
}

impl<A: UqAdt> RepairStrategy<A> for NaiveReplay<A> {
    fn on_insert<B: LogBackend<A>>(
        &mut self,
        _adt: &A,
        _log: &mut UpdateLog<A, B>,
        _pos: usize,
        _ctx: &EngineCtx,
    ) {
        // Nothing is cached, so nothing needs repair.
    }

    /// No cached state means no rollback cost: the engine may deliver
    /// small bursts per message instead of paying for a batch merge
    /// that has no repair to amortize.
    fn insert_is_free(&self) -> bool {
        true
    }

    fn current_state<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>) -> &A::State {
        self.scratch = adt.run_updates(log.iter().map(|(_, u)| u));
        &self.scratch
    }
}

/// A replica running Algorithm 1 with naive query-time replay.
pub type GenericReplica<A> = ReplicaEngine<A, NaiveReplay<A>>;

impl<A: UqAdt> GenericReplica<A> {
    /// A fresh replica for process `pid`.
    pub fn new(adt: A, pid: u32) -> Self {
        let strategy = NaiveReplay::new(&adt);
        ReplicaEngine::with_strategy(adt, pid, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type R = GenericReplica<SetAdt<u32>>;

    fn pair() -> (R, R) {
        (
            GenericReplica::new(SetAdt::new(), 0),
            GenericReplica::new(SetAdt::new(), 1),
        )
    }

    #[test]
    fn local_update_visible_immediately() {
        let (mut a, _) = pair();
        a.update(SetUpdate::Insert(1));
        assert_eq!(a.do_query(&SetQuery::Read), BTreeSet::from([1]));
    }

    #[test]
    fn concurrent_updates_converge_in_any_delivery_order() {
        let (mut a, mut b) = pair();
        let ma = a.update(SetUpdate::Insert(1));
        let mb = b.update(SetUpdate::Delete(1));
        a.on_deliver(&mb);
        b.on_deliver(&ma);
        assert_eq!(a.do_query(&SetQuery::Read), b.do_query(&SetQuery::Read));
    }

    #[test]
    fn tie_broken_by_pid_consistently() {
        // Both updates get clock 1; pid 0 orders first, so Delete(1)
        // by pid 1 lands last → element absent everywhere.
        let (mut a, mut b) = pair();
        let ma = a.update(SetUpdate::Insert(1));
        let mb = b.update(SetUpdate::Delete(1));
        assert_eq!(ma.ts.clock, mb.ts.clock);
        a.on_deliver(&mb);
        b.on_deliver(&ma);
        assert_eq!(a.do_query(&SetQuery::Read), BTreeSet::new());
        assert_eq!(b.do_query(&SetQuery::Read), BTreeSet::new());
    }

    #[test]
    fn late_message_rewrites_history() {
        // a hears about an old remote insert only after local deletes:
        // the replay repositions it before them (the "rewrite the
        // history a posteriori" of §VII-B).
        let (mut a, mut b) = pair();
        let mb = b.update(SetUpdate::Insert(7)); // ts (1,1)
        a.update(SetUpdate::Insert(7)); // ts (1,0)
        a.update(SetUpdate::Delete(7)); // ts (2,0)
        a.on_deliver(&mb); // late: orders between (1,0) and (2,0)
        assert_eq!(a.do_query(&SetQuery::Read), BTreeSet::new());
    }

    #[test]
    fn queries_tick_the_clock() {
        // Line 13: queries advance the clock too, so an update issued
        // after a query is ordered after everything the query saw.
        let (mut a, _) = pair();
        a.update(SetUpdate::Insert(1));
        let before = a.clock();
        a.do_query(&SetQuery::Read);
        assert_eq!(a.clock(), before + 1);
    }

    #[test]
    fn clock_absorbs_received_timestamps() {
        let (mut a, mut b) = pair();
        for i in 0..5 {
            let m = b.update(SetUpdate::Insert(i));
            a.on_deliver(&m);
        }
        // a's next update must order after everything b sent.
        let m = a.update(SetUpdate::Delete(4));
        assert!(m.ts.clock > 5 - 1);
        assert_eq!(a.log_len(), 6);
    }

    #[test]
    fn pairwise_convergence_under_permuted_deliveries() {
        // All six orderings of three updates delivered to a fresh
        // replica yield the same state.
        let mut seed = GenericReplica::<SetAdt<u32>>::new(SetAdt::new(), 0);
        let msgs = [
            seed.update(SetUpdate::Insert(1)),
            seed.update(SetUpdate::Insert(2)),
            seed.update(SetUpdate::Delete(1)),
        ];
        let expect = seed.materialize();
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let mut r = GenericReplica::<SetAdt<u32>>::new(SetAdt::new(), 9);
            for i in p {
                r.on_deliver(&msgs[i]);
            }
            assert_eq!(r.materialize(), expect, "permutation {p:?}");
        }
    }
}
