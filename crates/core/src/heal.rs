//! **O(divergence) reconciliation**: digest-guided anti-entropy with
//! chunked, flow-controlled heal streaming.
//!
//! PR 8's heal path shipped a healed peer's entire missed suffix as
//! one monolithic [`StoreMsg::Repair`](crate::store::StoreMsg) burst:
//! a long outage materializes the whole divergence window in memory
//! on both sides and dumps it onto the link queue at once. This
//! module makes heal cost proportional to *actual divergence* with
//! bounded peak memory, in two coordinated moves:
//!
//! 1. **Digest exchange.** On `peer_up` the healing side first sends
//!    a compact per-(group, key-range) [`HealDigest`] of everything
//!    it would stream — `(count, xor-of-hash(clock, pid, payload))`
//!    above the outage watermark. The healed peer answers with the
//!    slots whose digests differ from its own view; slots that agree
//!    are **skipped entirely**. Two peers that converged through
//!    other paths exchange O(groups) bytes, not O(suffix).
//! 2. **Chunked streaming with flow control.** The mismatched slots
//!    become a key-by-key streaming plan driven by a resumable
//!    [`HealSession`] state machine: one bounded
//!    [`StoreMsg::RepairChunk`](crate::store::StoreMsg) at a time,
//!    read through bounded-window engine cursors
//!    ([`ReplicaEngine::suffix_since_window`](crate::engine::ReplicaEngine::suffix_since_window)
//!    — segment backends answer straight out of segment files without
//!    materializing the tail), paced by
//!    [`StoreMsg::RepairAck`](crate::store::StoreMsg)s so at most
//!    [`HealConfig::window`] chunks are in flight per peer. The
//!    window composes with `ReliableLink`'s queue cap: a heal can
//!    never flood the retry queue and shed live traffic.
//!
//! Chunk delivery stays idempotent (receivers ingest through the
//! deduplicating batch path), so redelivered or overlapping chunks —
//! including a whole re-heal after a crash mid-stream — are no-ops.

use crate::message::UpdateMsg;
use crate::timestamp::Timestamp;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use uc_history::fxhash::FxHasher;
use uc_sim::Pid;

/// Object identifier within a store (mirror of
/// [`crate::store::Key`], redeclared to keep this module free of a
/// store dependency cycle).
type Key = u64;

/// Tuning knobs of the chunked heal protocol, per store.
#[derive(Clone, Debug)]
pub struct HealConfig {
    /// Maximum keyed updates per [`RepairChunk`]: the unit of peak
    /// heal memory on both sides.
    ///
    /// [`RepairChunk`]: crate::store::StoreMsg::RepairChunk
    pub chunk: usize,
    /// Maximum unacknowledged chunks in flight per healing peer (the
    /// flow-control window). Sizing contract with `ReliableLink`:
    /// `window * chunk` messages must fit its `queue_cap` alongside
    /// live traffic, so heals never force live messages to shed.
    pub window: usize,
    /// Key-range fan-out per digest group: each group (the sender's
    /// shard) is split into this many independently skippable ranges,
    /// so one hot key invalidates `1/ranges` of its shard, not all of
    /// it.
    pub ranges: u32,
    /// Ticks without protocol progress before a stalled session acts:
    /// re-sending its digest request, or expiring its oldest
    /// unacknowledged chunk to reopen the window (see
    /// [`HealSession::on_tick`]).
    pub stall_ticks: u32,
}

impl Default for HealConfig {
    fn default() -> Self {
        HealConfig {
            chunk: 512,
            window: 4,
            ranges: 8,
            stall_ticks: 8,
        }
    }
}

/// One digest slot: how many suffix entries hash into it and the xor
/// of their entry hashes. Order-independent (xor commutes), so both
/// sides can fold in any iteration order; count is carried separately
/// so a slot with pairwise-cancelling hashes still mismatches on
/// cardinality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HealDigest {
    /// Number of suffix entries in this slot.
    pub count: u64,
    /// Xor of [`entry_hash`] over those entries.
    pub xor: u64,
}

impl HealDigest {
    /// Fold one entry hash into the slot.
    pub fn fold(&mut self, hash: u64) {
        self.count += 1;
        self.xor ^= hash;
    }
}

impl fmt::Debug for HealDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d({},{:x})", self.count, self.xor)
    }
}

/// Hash of one log entry for digest purposes: the full identity
/// `(clock, pid, payload)`. Hashing the payload (not just the
/// timestamp) is what makes the digest collision-resistant against
/// same-shape divergence: two suffixes with identical timestamps but
/// different payloads must not compare equal.
pub fn entry_hash<U: Hash>(ts: Timestamp, update: &U) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ts.clock);
    h.write_u32(ts.pid);
    update.hash(&mut h);
    h.finish()
}

/// The digest slot a key folds into, flattened as
/// `group * ranges + range`. The group coordinate is the *sender's*
/// shard (`hash % groups`); the range coordinate re-uses the high
/// bits of the same hash, so the two are independent. Both sides
/// evaluate this with the sender's `groups`/`ranges`, which keeps the
/// mapping agreed even when the receiver runs a different shard
/// count.
pub fn digest_slot(key: Key, groups: u32, ranges: u32) -> u32 {
    let mut h = FxHasher::default();
    h.write_u64(key);
    let hash = h.finish();
    let group = (hash % groups as u64) as u32;
    let range = ((hash / groups as u64) % ranges as u64) as u32;
    group * ranges + range
}

/// Flat slot indices where `ours` differs from `theirs` — the slots
/// the healing side must stream. Length mismatches (a misconfigured
/// peer) conservatively mark every slot.
pub fn mismatched_slots(theirs: &[HealDigest], ours: &[HealDigest]) -> Vec<u32> {
    if theirs.len() != ours.len() {
        return (0..theirs.len() as u32).collect();
    }
    theirs
        .iter()
        .zip(ours)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i as u32)
        .collect()
}

/// One emitted chunk: its flow-control sequence number, whether it is
/// the final chunk of the session, and the keyed updates it carries.
/// The caller wraps it into
/// [`StoreMsg::RepairChunk`](crate::store::StoreMsg).
pub struct ChunkOut<U> {
    /// Session-local sequence number (1-based, contiguous).
    pub seq: u64,
    /// True on the session's last chunk — the receiver's ack for it
    /// completes the heal.
    pub last: bool,
    /// The chunk payload, in (shard, key, timestamp) plan order.
    pub updates: Vec<(Key, UpdateMsg<U>)>,
}

/// What a stalled session decided to do on a tick — see
/// [`HealSession::on_tick`].
pub enum HealTick {
    /// Progress is recent (or the stall threshold not reached): do
    /// nothing.
    Wait,
    /// Still awaiting the digest response: re-send the
    /// `DigestRequest` (the caller rebuilds it from the session).
    ResendDigest,
    /// Streaming but the window has been full for `stall_ticks`:
    /// the oldest unacknowledged chunk was expired to reopen the
    /// window. `released` estimated in-flight bytes were freed;
    /// `complete` when that expiry drained the session entirely.
    Expired {
        /// In-flight byte estimate released by the expiry.
        released: u64,
        /// The session finished (last chunk emitted, nothing left in
        /// flight).
        complete: bool,
    },
}

#[derive(Clone)]
enum Phase {
    /// Digest request sent, response not yet seen.
    AwaitDigest,
    /// Streaming chunks through the plan.
    Streaming {
        /// The streaming plan: every (shard, key) whose digest slot
        /// mismatched, in (shard, key) order. Only coordinates — the
        /// suffix itself is read chunk-by-chunk through bounded
        /// windows.
        plan: Vec<(usize, Key)>,
        /// Index of the key currently being streamed.
        key_idx: usize,
        /// Resume cursor within the current key: the last *raw*
        /// timestamp read (pre-exclusion-filter, so a run of the
        /// peer's own entries still advances it).
        after: Option<Timestamp>,
        /// Next chunk sequence number to assign.
        next_seq: u64,
        /// Sequence number of the final chunk, once emitted.
        last_seq: Option<u64>,
        /// Unacknowledged chunks: seq → estimated wire bytes.
        inflight: BTreeMap<u64, u64>,
    },
}

/// A resumable chunked-heal state machine for one healed peer: digest
/// exchange, then windowed chunk streaming paced by acks. The session
/// holds only coordinates and counters — never update payloads — so a
/// store's heal overhead is O(keys-planned), with payload memory
/// bounded by `window * chunk` entries in flight.
///
/// Sessions are driven by the store (or pool) that owns them; this
/// type is engine-agnostic — chunk payloads are pulled through a
/// caller-supplied bounded-window reader.
#[derive(Clone)]
pub struct HealSession {
    /// The peer being healed (chunk destination; its own entries are
    /// excluded from both digests and chunks).
    pub peer: Pid,
    /// The outage-start watermark: everything streamed or digested is
    /// stamped strictly above it. While the session lives it pins
    /// compaction exactly like a down peer's watermark.
    pub since: u64,
    /// Session id, echoed in every protocol message so stale replies
    /// from an earlier (cancelled) session are ignored.
    pub id: u64,
    /// Digest group count (the sender's shard count at start).
    pub groups: u32,
    /// Key-range fan-out per group.
    pub ranges: u32,
    /// The digests sent in the request, kept for stall re-sends.
    pub digests: Vec<HealDigest>,
    /// Ticks since the last protocol progress (reset on every
    /// response; see [`HealSession::on_tick`]).
    idle_ticks: u32,
    phase: Phase,
}

impl HealSession {
    /// A fresh session in the await-digest phase; the caller sends
    /// the corresponding `DigestRequest`.
    pub fn new(
        peer: Pid,
        since: u64,
        id: u64,
        groups: u32,
        ranges: u32,
        digests: Vec<HealDigest>,
    ) -> Self {
        HealSession {
            peer,
            since,
            id,
            groups,
            ranges,
            digests,
            idle_ticks: 0,
            phase: Phase::AwaitDigest,
        }
    }

    /// Is the session still waiting for its digest response?
    pub fn awaiting_digest(&self) -> bool {
        matches!(self.phase, Phase::AwaitDigest)
    }

    /// Estimated bytes currently in flight (unacknowledged chunks).
    pub fn inflight_bytes(&self) -> u64 {
        match &self.phase {
            Phase::AwaitDigest => 0,
            Phase::Streaming { inflight, .. } => inflight.values().sum(),
        }
    }

    /// Keys remaining in the streaming plan (0 while awaiting the
    /// digest response).
    pub fn keys_planned(&self) -> usize {
        match &self.phase {
            Phase::AwaitDigest => 0,
            Phase::Streaming { plan, key_idx, .. } => plan.len().saturating_sub(*key_idx),
        }
    }

    /// The digest response arrived: enter the streaming phase.
    /// `candidates` is every (shard, key) the store could stream
    /// (shards above the watermark); keys whose digest slot is not in
    /// `mismatched` are dropped — those slots agreed, the peer
    /// already has their suffix. Returns how many of the session's
    /// `groups * ranges` slots were skipped (the digest-skip count).
    ///
    /// Ignored (returns `None`) outside the await-digest phase — a
    /// duplicate response must not rebuild a plan mid-stream.
    pub fn begin_streaming(
        &mut self,
        mismatched: &[u32],
        candidates: Vec<(usize, Key)>,
    ) -> Option<u64> {
        if !matches!(self.phase, Phase::AwaitDigest) {
            return None;
        }
        let wanted: std::collections::BTreeSet<u32> = mismatched.iter().copied().collect();
        let mut plan: Vec<(usize, Key)> = candidates
            .into_iter()
            .filter(|(_, key)| wanted.contains(&digest_slot(*key, self.groups, self.ranges)))
            .collect();
        plan.sort_unstable();
        plan.dedup();
        let total = (self.groups as u64) * (self.ranges as u64);
        let skipped = total.saturating_sub(wanted.len() as u64);
        self.idle_ticks = 0;
        self.phase = Phase::Streaming {
            plan,
            key_idx: 0,
            after: None,
            next_seq: 1,
            last_seq: None,
            inflight: BTreeMap::new(),
        };
        Some(skipped)
    }

    /// Emit as many chunks as the flow-control window allows, pulling
    /// payloads through `read(shard, key, since, after, limit) →
    /// (entries, more)` — the bounded-window engine cursor. Entries
    /// stamped by the healed peer itself are filtered out (it has its
    /// own log); the cursor still advances past them. The session's
    /// final chunk (possibly empty — e.g. an all-skipped plan) is
    /// flagged `last`; its ack completes the heal.
    ///
    /// Per chunk, `bytes_per_entry * len` is registered in flight.
    pub fn fill_chunks<U>(
        &mut self,
        cfg: &HealConfig,
        bytes_per_entry: u64,
        mut read: impl FnMut(usize, Key, u64, Option<Timestamp>, usize) -> (Vec<UpdateMsg<U>>, bool),
    ) -> Vec<ChunkOut<U>> {
        let (peer, since) = (self.peer, self.since);
        let Phase::Streaming {
            plan,
            key_idx,
            after,
            next_seq,
            last_seq,
            inflight,
        } = &mut self.phase
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let (chunk_cap, window_cap) = (cfg.chunk.max(1), cfg.window.max(1));
        while last_seq.is_none() && inflight.len() < window_cap {
            let mut updates: Vec<(Key, UpdateMsg<U>)> = Vec::new();
            while updates.len() < chunk_cap && *key_idx < plan.len() {
                let (shard, key) = plan[*key_idx];
                let want = chunk_cap - updates.len();
                let (raw, more) = read(shard, key, since, *after, want);
                if let Some(m) = raw.last() {
                    *after = Some(m.ts);
                }
                let got = raw.len();
                updates.extend(
                    raw.into_iter()
                        .filter(|m| m.ts.pid != peer)
                        .map(|m| (key, m)),
                );
                if !more || got == 0 {
                    *key_idx += 1;
                    *after = None;
                }
            }
            let done = *key_idx >= plan.len();
            let seq = *next_seq;
            *next_seq += 1;
            if done {
                *last_seq = Some(seq);
            }
            inflight.insert(seq, bytes_per_entry * updates.len() as u64);
            out.push(ChunkOut {
                seq,
                last: done,
                updates,
            });
        }
        out
    }

    /// An ack for chunk `seq` arrived. Returns the released in-flight
    /// byte estimate and whether the session is now complete (final
    /// chunk emitted and nothing left unacknowledged). Duplicate or
    /// stale acks release nothing.
    pub fn on_ack(&mut self, seq: u64) -> (u64, bool) {
        self.idle_ticks = 0;
        match &mut self.phase {
            Phase::AwaitDigest => (0, false),
            Phase::Streaming {
                inflight, last_seq, ..
            } => {
                let released = inflight.remove(&seq).unwrap_or(0);
                (released, last_seq.is_some() && inflight.is_empty())
            }
        }
    }

    /// One maintenance tick. Sessions making progress wait; a session
    /// idle for `stall_ticks` acts on its phase — re-sending the
    /// digest request, or expiring its oldest unacknowledged chunk so
    /// the window reopens and streaming resumes. Expiry trades flow
    /// control for liveness on a raw lossy link: the expired chunk's
    /// *data* is not lost when heal runs over `ReliableLink` (which
    /// retransmits it); without a reliable link the next heal cycle
    /// re-covers it, exactly as PR 8's monolithic burst relied on.
    pub fn on_tick(&mut self, stall_ticks: u32) -> HealTick {
        self.idle_ticks += 1;
        if self.idle_ticks < stall_ticks.max(1) {
            return HealTick::Wait;
        }
        self.idle_ticks = 0;
        match &mut self.phase {
            Phase::AwaitDigest => HealTick::ResendDigest,
            Phase::Streaming {
                inflight, last_seq, ..
            } => {
                let Some((&oldest, _)) = inflight.iter().next() else {
                    // Nothing in flight and still alive: only possible
                    // mid-drive (fill_chunks will run); wait.
                    return HealTick::Wait;
                };
                let released = inflight.remove(&oldest).unwrap_or(0);
                HealTick::Expired {
                    released,
                    complete: last_seq.is_some() && inflight.is_empty(),
                }
            }
        }
    }
}

impl fmt::Debug for HealSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (phase, extra) = match &self.phase {
            Phase::AwaitDigest => ("await-digest", 0),
            Phase::Streaming { inflight, .. } => ("streaming", inflight.len()),
        };
        write!(
            f,
            "heal(p{} s{} since={} {phase} inflight={extra})",
            self.peer, self.id, self.since
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(clock: u64, pid: u32, v: u32) -> UpdateMsg<u32> {
        UpdateMsg {
            ts: Timestamp::new(clock, pid),
            update: v,
        }
    }

    #[test]
    fn digest_slot_is_stable_and_in_range() {
        for key in 0..500u64 {
            let s = digest_slot(key, 8, 4);
            assert!(s < 32);
            assert_eq!(s, digest_slot(key, 8, 4));
        }
        // Both coordinates are exercised: more than `groups` distinct
        // slots appear.
        let distinct: std::collections::BTreeSet<u32> =
            (0..500u64).map(|k| digest_slot(k, 8, 4)).collect();
        assert!(distinct.len() > 8, "ranges never fan out");
    }

    #[test]
    fn digest_differs_on_payload_not_just_count() {
        // Same count, same timestamps, different payloads: the xor of
        // payload-carrying hashes must differ — this is the
        // collision-resistance the skip decision leans on.
        let ts = Timestamp::new(5, 1);
        let mut a = HealDigest::default();
        a.fold(entry_hash(ts, &10u32));
        let mut b = HealDigest::default();
        b.fold(entry_hash(ts, &11u32));
        assert_eq!(a.count, b.count);
        assert_ne!(a, b, "payloads must reach the digest");
        assert_eq!(mismatched_slots(&[a], &[b]), vec![0]);
        assert_eq!(mismatched_slots(&[a], &[a]), Vec::<u32>::new());
    }

    #[test]
    fn session_streams_in_windowed_chunks_and_completes_on_acks() {
        let mut s = HealSession::new(2, 0, 7, 1, 1, vec![HealDigest::default()]);
        assert!(s.awaiting_digest());
        // One mismatched slot, three keys, 5 entries each.
        let skipped = s
            .begin_streaming(&[0], vec![(0, 1), (0, 2), (0, 3)])
            .expect("first response enters streaming");
        assert_eq!(skipped, 0);
        let cfg = HealConfig {
            chunk: 4,
            window: 2,
            ..HealConfig::default()
        };
        let read = |_s: usize, key: u64, _since: u64, after: Option<Timestamp>, limit: usize| {
            let all: Vec<UpdateMsg<u32>> = (1..=5u64)
                .map(|c| msg(c * 10 + key, 0, key as u32))
                .collect();
            let start = after.map_or(0, |a| all.iter().filter(|m| m.ts <= a).count());
            let end = (start + limit).min(all.len());
            (all[start..end].to_vec(), end < all.len())
        };
        let first = s.fill_chunks(&cfg, 10, read);
        // Window of 2: two chunks of ≤4 entries, nothing more.
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|c| c.updates.len() <= 4 && !c.last));
        assert_eq!(
            s.inflight_bytes(),
            (first[0].updates.len() + first[1].updates.len()) as u64 * 10
        );
        // Ack the first: window reopens for exactly one more.
        let (released, complete) = s.on_ack(first[0].seq);
        assert_eq!(released, first[0].updates.len() as u64 * 10);
        assert!(!complete);
        let mut pending = vec![(first[1].seq, first[1].last)];
        let mut total: Vec<_> = first.into_iter().flat_map(|c| c.updates).collect();
        loop {
            let more = s.fill_chunks(&cfg, 10, read);
            if more.is_empty() && pending.is_empty() {
                break;
            }
            for c in more {
                pending.push((c.seq, c.last));
                total.extend(c.updates);
            }
            let (seq, last) = pending.remove(0);
            let (_, complete) = s.on_ack(seq);
            assert_eq!(complete, last && pending.is_empty());
            if complete {
                break;
            }
        }
        // Every entry streamed exactly once, in plan order.
        assert_eq!(total.len(), 15);
        let mut seen: Vec<(u64, u64)> = total.iter().map(|(k, m)| (*k, m.ts.clock)).collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn peer_own_entries_are_filtered_but_advance_the_cursor() {
        let mut s = HealSession::new(1, 0, 0, 1, 1, vec![HealDigest::default()]);
        s.begin_streaming(&[0], vec![(0, 7)]).unwrap();
        let cfg = HealConfig {
            chunk: 2,
            window: 8,
            ..HealConfig::default()
        };
        // Entries alternate between pid 0 (ours) and pid 1 (the
        // peer's own): a naive cursor keyed on post-filter output
        // would stall on an all-peer window.
        let read = |_s: usize, _k: u64, _since: u64, after: Option<Timestamp>, limit: usize| {
            let all: Vec<UpdateMsg<u32>> = (1..=6u64)
                .map(|c| msg(c, (c % 2) as u32, c as u32))
                .collect();
            let start = after.map_or(0, |a| all.iter().filter(|m| m.ts <= a).count());
            let end = (start + limit).min(all.len());
            (all[start..end].to_vec(), end < all.len())
        };
        let chunks = s.fill_chunks(&cfg, 1, read);
        let streamed: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.updates.iter().map(|(_, m)| m.ts.clock))
            .collect();
        assert_eq!(streamed, vec![2, 4, 6], "only pid-0 entries stream");
        assert!(chunks.last().unwrap().last);
    }

    #[test]
    fn stalled_session_resends_digest_then_expires_chunks() {
        let mut s = HealSession::new(1, 0, 0, 1, 1, vec![HealDigest::default()]);
        for _ in 0..3 {
            assert!(matches!(s.on_tick(4), HealTick::Wait));
        }
        assert!(matches!(s.on_tick(4), HealTick::ResendDigest));
        s.begin_streaming(&[0], vec![(0, 1)]).unwrap();
        let cfg = HealConfig {
            chunk: 1,
            window: 1,
            ..HealConfig::default()
        };
        let read = |_s: usize, _k: u64, _since: u64, _after: Option<Timestamp>, _limit: usize| {
            (vec![msg(1, 0, 1)], false)
        };
        let chunks = s.fill_chunks(&cfg, 10, read);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].last);
        // The ack never arrives; after the stall threshold the chunk
        // expires and (being the last) completes the session.
        for _ in 0..3 {
            assert!(matches!(s.on_tick(4), HealTick::Wait));
        }
        let HealTick::Expired { released, complete } = s.on_tick(4) else {
            panic!("expected expiry");
        };
        assert_eq!(released, 10);
        assert!(complete);
    }

    #[test]
    fn duplicate_digest_response_does_not_rebuild_the_plan() {
        let mut s = HealSession::new(1, 0, 0, 2, 2, vec![HealDigest::default(); 4]);
        assert!(s.begin_streaming(&[0, 1, 2, 3], vec![(0, 1)]).is_some());
        assert!(s.begin_streaming(&[0], vec![(0, 2)]).is_none());
    }
}
