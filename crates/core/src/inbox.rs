//! A **lock-free claim-pattern inbox**: the mailbox primitive behind
//! the [`IngestPool`](crate::pool::IngestPool)'s shard workers.
//!
//! The idiom (after the *atomic-try-update* claim pattern): producers
//! CAS-push nodes onto a Treiber stack; the single owning consumer
//! *claims the entire stack in one swap*, walks it off-line, and
//! processes the items sequentially. Contention is confined to two
//! word-sized CAS loops (the pending-stack head and the free-list
//! head); no producer ever takes a lock, and the consumer never
//! blocks a producer while draining.
//!
//! ```text
//!   producers                                   consumer (owner)
//!   ──────────                                  ────────────────
//!   pop free slot   (CAS on `free`)             claim: swap `head`→∅
//!   write payload   (exclusively owned slot)    walk chain newest→oldest
//!   push pending    (CAS on `head`)             reverse ⇒ FIFO batch
//!   unpark sleeper                              recycle slots → `free`
//! ```
//!
//! Because the workspace forbids `unsafe`, the stack links are **slot
//! indices, not pointers**: all slots live in one fixed array, and
//! the two stack heads are packed `(generation, index)` words — the
//! 48-bit generation is bumped on every successful CAS, which defuses
//! the classic ABA hazard of index recycling. Payload cells are
//! `Mutex<Option<T>>`, but the protocol guarantees a slot is owned by
//! exactly one thread between free-list pop and consumer take, so the
//! lock is *never contended* — it costs one uncontended atomic
//! exchange, and exists only to give safe interior mutability.
//!
//! The fixed slot array doubles as the **bounded-depth backpressure**:
//! an empty free list *is* the full condition, and
//! [`Backpressure`](crate::pool::Backpressure) picks whether the
//! producer parks or the item is shed.
//!
//! FIFO: pushes are linearized by the head CAS; one claim reverses
//! its chain, so items come out in push order, and items pushed
//! during a claim land on the fresh stack (a later batch). A single
//! producer therefore observes strict FIFO, which is what the pool's
//! determinism argument (pool ≡ sequential) rests on.
//!
//! Shutdown is race-free via a **gate counter**: the low bit is the
//! closed flag, and every in-flight push holds `+2` while between
//! gate-entry and gate-exit. [`Inbox::close`] sets the bit and waits
//! for the count to drain, after which one final claim is guaranteed
//! to observe every push that ever succeeded.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::Thread;
use std::time::Duration;

/// Index sentinel: the empty list. Slot indices are 16-bit, so
/// capacities up to 65535 (far above any sane queue depth).
const NIL: u64 = 0xFFFF;

/// Pack a `(generation, index)` word: low 16 bits index, high 48 bits
/// generation. The generation wraps after 2^48 successful CASes on
/// one head — unreachable in practice, and a wrap is only harmful if
/// it collides with a stalled compare of the *same* index.
fn pack(generation: u64, idx: u64) -> u64 {
    (generation << 16) | idx
}

fn idx_of(word: u64) -> u64 {
    word & 0xFFFF
}

fn gen_of(word: u64) -> u64 {
    word >> 16
}

/// Why a push was refused. The item is handed back so the caller can
/// retry (park) or count-and-drop (shed) without cloning.
#[derive(Debug)]
pub enum PushError<T> {
    /// Every slot is in use: the queue is at its bounded depth.
    Full(T),
    /// [`Inbox::close`] ran; the consumer is draining or gone.
    Closed(T),
}

/// One payload cell plus its stack link. The `next` field serves
/// whichever stack (pending or free) the slot currently sits on.
struct Slot<T> {
    next: AtomicU64,
    /// See the module docs: never contended, safe interior mutability
    /// only.
    item: Mutex<Option<T>>,
}

/// A bounded multi-producer single-consumer claim-pattern inbox. See
/// the [module docs](self).
pub struct Inbox<T> {
    slots: Box<[Slot<T>]>,
    /// Treiber stack of pushed-but-unclaimed items.
    head: AtomicU64,
    /// Treiber stack of recycled slots.
    free: AtomicU64,
    /// `in_flight_pushes * 2 + closed`.
    gate: AtomicU64,
    /// Consumer's declared intent to park (Dekker flag).
    sleeping: AtomicBool,
    /// The consumer thread, for unparking; set once at registration.
    consumer: OnceLock<Thread>,
}

impl<T> Inbox<T> {
    /// An inbox with `capacity` slots (clamped to `1..=65535`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, NIL as usize);
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                // Chain the free list 0 → 1 → … → NIL up front.
                next: AtomicU64::new(if i + 1 < capacity { i as u64 + 1 } else { NIL }),
                item: Mutex::new(None),
            })
            .collect();
        Inbox {
            slots,
            head: AtomicU64::new(pack(0, NIL)),
            free: AtomicU64::new(pack(0, 0)),
            gate: AtomicU64::new(0),
            sleeping: AtomicBool::new(false),
            consumer: OnceLock::new(),
        }
    }

    /// Bounded depth.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nothing pushed and unclaimed? (Racy by nature; exact only for
    /// the consumer between claims.)
    pub fn is_empty(&self) -> bool {
        idx_of(self.head.load(Ordering::SeqCst)) == NIL
    }

    /// Record the consumer thread so producers can unpark it. Call
    /// once, from the consumer, before its first [`Inbox::wait`].
    pub fn register_consumer(&self, thread: Thread) {
        let _ = self.consumer.set(thread);
    }

    /// Lock-free push. On success the item is owned by the inbox; on
    /// refusal it comes back in the error.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        // Gate entry: hold +2 so `close` can wait out in-flight
        // pushes instead of racing them.
        let g = self.gate.fetch_add(2, Ordering::SeqCst);
        if g & 1 == 1 {
            self.gate.fetch_sub(2, Ordering::SeqCst);
            return Err(PushError::Closed(item));
        }
        // Pop a free slot (CAS loop; generation defuses ABA).
        let idx = loop {
            let f = self.free.load(Ordering::SeqCst);
            if idx_of(f) == NIL {
                self.gate.fetch_sub(2, Ordering::SeqCst);
                return Err(PushError::Full(item));
            }
            // `next` may be stale if another producer wins the slot —
            // then the generation moved and the CAS below fails.
            let next = self.slots[idx_of(f) as usize].next.load(Ordering::SeqCst);
            if self
                .free
                .compare_exchange(
                    f,
                    pack(gen_of(f) + 1, next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break idx_of(f) as usize;
            }
        };
        // The slot is exclusively ours until the consumer takes it.
        *self.slots[idx]
            .item
            .lock()
            .expect("slot lock never poisoned") = Some(item);
        // Treiber push onto the pending stack.
        loop {
            let h = self.head.load(Ordering::SeqCst);
            self.slots[idx].next.store(idx_of(h), Ordering::SeqCst);
            if self
                .head
                .compare_exchange(
                    h,
                    pack(gen_of(h) + 1, idx as u64),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
        self.gate.fetch_sub(2, Ordering::SeqCst);
        // Dekker partner of `wait`: the push above and this load are
        // both SeqCst, so either the consumer's re-check sees the
        // item or this sees `sleeping` and unparks.
        if self.sleeping.load(Ordering::SeqCst) {
            if let Some(t) = self.consumer.get() {
                t.unpark();
            }
        }
        Ok(())
    }

    /// Claim the entire pending stack in one swap and append the
    /// items to `out` in FIFO order. Consumer-side.
    pub fn claim(&self, out: &mut Vec<T>) {
        let claimed = loop {
            let h = self.head.load(Ordering::SeqCst);
            if idx_of(h) == NIL {
                return;
            }
            if self
                .head
                .compare_exchange(
                    h,
                    pack(gen_of(h) + 1, NIL),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break h;
            }
        };
        let start = out.len();
        let mut i = idx_of(claimed);
        while i != NIL {
            let slot = &self.slots[i as usize];
            let item = slot
                .item
                .lock()
                .expect("slot lock never poisoned")
                .take()
                .expect("claimed slot holds an item");
            // Read the link *before* recycling — `free_push` reuses it.
            let next = slot.next.load(Ordering::SeqCst);
            self.free_push(i as usize);
            out.push(item);
            i = next;
        }
        // Chain order is newest→oldest; flip to FIFO.
        out[start..].reverse();
    }

    /// Return a drained slot to the free list (unblocks producers
    /// parked on `Full`).
    fn free_push(&self, idx: usize) {
        loop {
            let f = self.free.load(Ordering::SeqCst);
            self.slots[idx].next.store(idx_of(f), Ordering::SeqCst);
            if self
                .free
                .compare_exchange(
                    f,
                    pack(gen_of(f) + 1, idx as u64),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
    }

    /// Consumer-side: park until a push arrives or the inbox closes.
    /// The `sleeping`/re-check/park sequence pairs with `push`'s
    /// publish/check/unpark (both SeqCst) so a wakeup is never lost;
    /// the timeout is a belt-and-braces bound, not a correctness
    /// requirement.
    pub fn wait(&self) {
        self.sleeping.store(true, Ordering::SeqCst);
        if !self.is_empty() || self.is_closed() {
            self.sleeping.store(false, Ordering::SeqCst);
            return;
        }
        std::thread::park_timeout(Duration::from_millis(50));
        self.sleeping.store(false, Ordering::SeqCst);
    }

    /// Refuse new pushes, wait out in-flight ones, and wake the
    /// consumer. After `close` returns, one claim observes every push
    /// that ever succeeded. Idempotent.
    pub fn close(&self) {
        self.gate.fetch_or(1, Ordering::SeqCst);
        while self.gate.load(Ordering::SeqCst) != 1 {
            std::thread::yield_now();
        }
        if let Some(t) = self.consumer.get() {
            t.unpark();
        }
    }

    /// Has [`Inbox::close`] run (possibly still waiting out pushes)?
    pub fn is_closed(&self) -> bool {
        self.gate.load(Ordering::SeqCst) & 1 == 1
    }

    /// Closed *and* no push is still in flight: a claim now is final.
    pub fn closed_and_drained(&self) -> bool {
        self.gate.load(Ordering::SeqCst) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_claim_fifo_single_producer() {
        let inbox: Inbox<u32> = Inbox::new(8);
        for i in 0..5 {
            inbox.push(i).unwrap();
        }
        let mut out = Vec::new();
        inbox.claim(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(inbox.is_empty());
    }

    #[test]
    fn full_returns_item_and_drains_after_claim() {
        let inbox: Inbox<u32> = Inbox::new(2);
        inbox.push(1).unwrap();
        inbox.push(2).unwrap();
        let Err(PushError::Full(3)) = inbox.push(3) else {
            panic!("third push must report Full with the item");
        };
        let mut out = Vec::new();
        inbox.claim(&mut out);
        assert_eq!(out, vec![1, 2]);
        inbox.push(3).unwrap();
        out.clear();
        inbox.claim(&mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn closed_refuses_pushes() {
        let inbox: Inbox<u32> = Inbox::new(4);
        inbox.push(1).unwrap();
        inbox.close();
        assert!(inbox.closed_and_drained());
        let Err(PushError::Closed(2)) = inbox.push(2) else {
            panic!("push after close must report Closed");
        };
        let mut out = Vec::new();
        inbox.claim(&mut out);
        assert_eq!(out, vec![1], "close never drops queued items");
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_fifo() {
        let inbox: Arc<Inbox<(usize, u32)>> = Arc::new(Inbox::new(64));
        let producers = 4;
        let per = 2_000u32;
        let consumer = {
            let inbox = Arc::clone(&inbox);
            std::thread::spawn(move || {
                inbox.register_consumer(std::thread::current());
                let mut got: Vec<(usize, u32)> = Vec::new();
                let mut batch = Vec::new();
                loop {
                    inbox.claim(&mut batch);
                    if batch.is_empty() {
                        if inbox.closed_and_drained() {
                            inbox.claim(&mut batch);
                            got.append(&mut batch);
                            break;
                        }
                        inbox.wait();
                        continue;
                    }
                    got.append(&mut batch);
                }
                got
            })
        };
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let inbox = Arc::clone(&inbox);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut item = (p, i);
                        loop {
                            match inbox.push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(it)) => {
                                    item = it;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed mid-test"),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        inbox.close();
        let got = consumer.join().unwrap();
        assert_eq!(
            got.len(),
            producers * per as usize,
            "no item lost or duplicated"
        );
        let mut next = vec![0u32; producers];
        for (p, i) in got {
            assert_eq!(i, next[p], "producer {p} out of FIFO order");
            next[p] += 1;
        }
    }
}
