//! # uc-core — the paper's algorithms
//!
//! The constructive half of *Update Consistency for Wait-free
//! Concurrent Objects*: every UQ-ADT has a strong-update-consistent
//! implementation in a wait-free asynchronous crash-prone system
//! (Proposition 4), realised by **Algorithm 1** and specialised by
//! **Algorithm 2** for shared memory.
//!
//! | module | contents | paper |
//! |--------|----------|-------|
//! | [`timestamp`] | `(clock, pid)` Lamport timestamps, the total order on updates | §VII-B |
//! | [`log`] | the timestamp-sorted update log `updates_i`, with batched merge | Alg. 1 |
//! | [`backend`] | [`LogBackend`]/[`BackendFactory`] — pluggable log + GC-base storage ([`MemBackend`] default; on-disk segments live in `uc-storage`) | persistence |
//! | [`engine`] | [`ReplicaEngine`] — Algorithm 1's shared core (pid, clock, log) + the [`RepairStrategy`] hook trait + batched delivery | Alg. 1, §VII-C |
//! | [`generic`] | [`NaiveReplay`] strategy; [`GenericReplica`] — Algorithm 1 verbatim (naive query replay) | Alg. 1 |
//! | [`cached`] | [`CheckpointRepair`] strategy; [`CachedReplica`] — checkpointed incremental state | §VII-C |
//! | [`undo`] | [`UndoRepair`] strategy; [`UndoReplica`] — Karsenty/Beaudouin-Lafon undo repositioning | §VII-C |
//! | [`gc`] | [`StableGc`] strategy; [`GcReplica`] — stability-based log compaction | §VII-C |
//! | [`memory`] | [`UcMemory`] — Algorithm 2, LWW shared memory | Alg. 2 |
//! | [`replica`] | the wait-free replica trait all variants share (incl. [`Replica::on_batch`]) | §VII-A |
//! | [`store`] | [`UcStore`] — sharded multi-object store: one engine per key, one clock per replica | partitionable follow-up |
//! | [`inbox`] | [`Inbox`] — lock-free bounded MPSC claim-pattern inbox (Treiber push, swap-claim drain) | perf engineering |
//! | [`snapshot`] | [`Published`] — single-writer epoch-published snapshot cell for wait-free reads | perf engineering |
//! | [`pool`] | [`IngestPool`]/[`PoolHandle`] — persistent shard workers fed by claim inboxes, wait-free snapshot reads, flush barriers, drain-on-drop | perf engineering |
//! | [`observe`] | shared telemetry glue: streaming-monitor counters → `uc-obs` registry | observability |
//! | [`sim_adapter`] | run replicas on `uc-sim`; turn traces into checkable histories + SUC witnesses | Prop. 4 |
//! | [`convergence`] | cross-replica convergence checks | Defs. 5/8 |
//!
//! All variants are the *same* Algorithm 1 — one [`ReplicaEngine`]
//! parameterised by a [`RepairStrategy`] — and produce identical
//! observable behaviour (the same update order, hence the same
//! converged states); they differ only in the cost profile measured by
//! experiments E8–E10. The engine also owns the batching hot path:
//! [`ReplicaEngine::on_deliver_batch`] ingests a burst of messages
//! with a single rollback + refold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cached;
pub mod convergence;
pub mod engine;
pub mod gc;
pub mod generic;
pub mod heal;
pub mod inbox;
pub mod log;
pub mod memory;
pub mod message;
pub mod observe;
pub mod pool;
pub mod replica;
pub mod sim_adapter;
pub mod snapshot;
pub mod store;
pub mod timestamp;
pub mod undo;

pub use backend::{BackendFactory, LogBackend, MemBackend, MemFactory};
pub use cached::{CachedReplica, CheckpointRepair};
pub use engine::{CutError, EngineCtx, RepairStrategy, ReplicaEngine};
pub use gc::{GcReplica, StableGc};
pub use generic::{GenericReplica, NaiveReplay};
pub use heal::{digest_slot, entry_hash, mismatched_slots, HealConfig, HealDigest, HealSession};
pub use inbox::{Inbox, PushError};
pub use log::UpdateLog;
pub use memory::{MemWrite, UcMemory};
pub use message::{GcMsg, UpdateMsg};
pub use observe::export_monitor_stats;
pub use pool::{
    Backpressure, IngestPool, PoolConfig, PoolError, PoolHandle, PoolStats, SnapshotError,
    WorkerStats,
};
pub use replica::{state_digest, Replica};
pub use sim_adapter::{
    trace_to_history, OmegaMarking, OpInput, OpOutput, ReplicaNode, TimestampedMsg,
};
pub use snapshot::Published;
pub use store::{
    AvailabilityPolicy, CheckpointFactory, GcFactory, Key, NaiveFactory, PartitionTracker,
    StoreInput, StoreMsg, StoreOutput, StoreSnapshot, StrategyFactory, UcStore, UndoFactory,
};
pub use timestamp::{LamportClock, Timestamp};
pub use undo::{UndoRepair, UndoReplica};

/// Compatibility alias used in the README quickstart.
pub use replica::Replica as UqReplica;
