//! The timestamp-sorted update log (`updates_i` in Algorithm 1).
//!
//! Algorithm 1 keeps the set of known updates sorted by `(cl, j)`; the
//! interesting operation is *insertion of a late message* — an update
//! whose timestamp orders before entries that are already present.
//! The position returned by [`UpdateLog::insert`] tells the caching
//! and undo variants how much suffix they must repair.

use crate::message::UpdateMsg;
use crate::timestamp::Timestamp;

/// A timestamp-ordered log of updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateLog<U> {
    entries: Vec<(Timestamp, U)>,
}

impl<U> Default for UpdateLog<U> {
    fn default() -> Self {
        UpdateLog {
            entries: Vec::new(),
        }
    }
}

impl<U: Clone> UpdateLog<U> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a timestamped update, keeping timestamp order. Returns
    /// the insertion position, or `None` if the timestamp was already
    /// present (reliable broadcast delivers once, but being defensive
    /// costs one comparison).
    pub fn insert(&mut self, msg: &UpdateMsg<U>) -> Option<usize> {
        match self
            .entries
            .binary_search_by(|(ts, _)| ts.cmp(&msg.ts))
        {
            Ok(_) => None,
            Err(pos) => {
                self.entries.insert(pos, (msg.ts, msg.update.clone()));
                Some(pos)
            }
        }
    }

    /// Append an update known to carry the largest timestamp (the
    /// common in-order fast path). Falls back to sorted insertion if
    /// the claim is wrong.
    pub fn push_newest(&mut self, msg: &UpdateMsg<U>) -> usize {
        match self.entries.last() {
            Some((last, _)) if *last >= msg.ts => {
                self.insert(msg).unwrap_or(self.entries.len())
            }
            _ => {
                self.entries.push((msg.ts, msg.update.clone()));
                self.entries.len() - 1
            }
        }
    }

    /// The entries in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, U)> {
        self.entries.iter()
    }

    /// Entry at a position.
    pub fn get(&self, pos: usize) -> Option<&(Timestamp, U)> {
        self.entries.get(pos)
    }

    /// All timestamps, in order.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.entries.iter().map(|(ts, _)| *ts)
    }

    /// Remove and return the prefix of entries with `ts.clock ≤ bound`
    /// — the stable prefix for garbage collection.
    pub fn drain_stable_prefix(&mut self, bound: u64) -> Vec<(Timestamp, U)> {
        let cut = self
            .entries
            .partition_point(|(ts, _)| ts.clock <= bound);
        self.entries.drain(..cut).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(clock: u64, pid: u32, u: &str) -> UpdateMsg<&str> {
        UpdateMsg {
            ts: Timestamp::new(clock, pid),
            update: u,
        }
    }

    #[test]
    fn insert_keeps_order() {
        let mut log = UpdateLog::new();
        assert_eq!(log.insert(&msg(2, 0, "b")), Some(0));
        assert_eq!(log.insert(&msg(1, 0, "a")), Some(0)); // late message
        assert_eq!(log.insert(&msg(3, 0, "c")), Some(2));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_timestamps_rejected() {
        let mut log = UpdateLog::new();
        assert!(log.insert(&msg(1, 0, "a")).is_some());
        assert!(log.insert(&msg(1, 0, "a")).is_none());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn pid_breaks_clock_ties() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 1, "one"));
        log.insert(&msg(1, 0, "zero"));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["zero", "one"]);
    }

    #[test]
    fn push_newest_fast_path_and_fallback() {
        let mut log = UpdateLog::new();
        assert_eq!(log.push_newest(&msg(1, 0, "a")), 0);
        assert_eq!(log.push_newest(&msg(2, 0, "b")), 1);
        // wrong claim: older than the last entry → sorted insertion
        assert_eq!(log.push_newest(&msg(1, 1, "mid")), 1);
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "mid", "b"]);
    }

    #[test]
    fn drain_stable_prefix_cuts_by_clock() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 0, "a"));
        log.insert(&msg(2, 1, "b"));
        log.insert(&msg(5, 0, "c"));
        let stable = log.drain_stable_prefix(2);
        assert_eq!(stable.len(), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(0).unwrap().1, "c");
    }
}
