//! The timestamp-sorted update log (`updates_i` in Algorithm 1).
//!
//! Algorithm 1 keeps the set of known updates sorted by `(cl, j)`; the
//! interesting operation is *insertion of a late message* — an update
//! whose timestamp orders before entries that are already present.
//! The position returned by [`UpdateLog::insert`] tells the caching
//! and undo variants how much suffix they must repair.

use crate::message::UpdateMsg;
use crate::timestamp::Timestamp;

/// A timestamp-ordered log of updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateLog<U> {
    entries: Vec<(Timestamp, U)>,
}

impl<U> Default for UpdateLog<U> {
    fn default() -> Self {
        UpdateLog {
            entries: Vec::new(),
        }
    }
}

impl<U: Clone> UpdateLog<U> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a timestamped update, keeping timestamp order. Returns
    /// the insertion position, or `None` if the timestamp was already
    /// present (reliable broadcast delivers once, but being defensive
    /// costs one comparison).
    pub fn insert(&mut self, msg: &UpdateMsg<U>) -> Option<usize> {
        match self.entries.binary_search_by(|(ts, _)| ts.cmp(&msg.ts)) {
            Ok(_) => None,
            Err(pos) => {
                self.entries.insert(pos, (msg.ts, msg.update.clone()));
                Some(pos)
            }
        }
    }

    /// [`UpdateLog::insert`] for a message the caller already owns:
    /// the update moves into the log instead of being cloned — the
    /// zero-copy hot path taken by owned batch delivery.
    pub fn insert_owned(&mut self, msg: UpdateMsg<U>) -> Option<usize> {
        match self.entries.binary_search_by(|(ts, _)| ts.cmp(&msg.ts)) {
            Ok(_) => None,
            Err(pos) => {
                self.entries.insert(pos, (msg.ts, msg.update));
                Some(pos)
            }
        }
    }

    /// Append an update known to carry the largest timestamp (the
    /// common in-order fast path). Falls back to sorted insertion if
    /// the claim is wrong. Returns the insertion position, or `None`
    /// if the timestamp was already present — callers must not
    /// confuse a rejected duplicate with a valid position (a duplicate
    /// used to be reported as `entries.len()`, which repair logic
    /// would happily treat as an in-order insert).
    pub fn push_newest(&mut self, msg: &UpdateMsg<U>) -> Option<usize> {
        match self.entries.last() {
            Some((last, _)) if *last >= msg.ts => self.insert(msg),
            _ => {
                self.entries.push((msg.ts, msg.update.clone()));
                Some(self.entries.len() - 1)
            }
        }
    }

    /// Merge a whole batch of messages in one pass: deduplicate
    /// (against the log *and* within the batch), then splice the fresh
    /// entries in with a single sort-then-merge sweep over the dirty
    /// suffix. Returns the earliest insertion position — the single
    /// point a repair strategy must roll back to — or `None` if every
    /// message was a duplicate.
    ///
    /// Cost: `O(k log k + k log n + s + k)` for `k` new messages and a
    /// dirty suffix of length `s` (sort the batch, binary-search the
    /// log once per message for dedup, merge the two sorted runs),
    /// versus `O(k·(log n + n))` worst case for `k` separate
    /// [`UpdateLog::insert`] calls (each may memmove the tail) and
    /// `O(s log s)` for the previous sort-the-suffix merge.
    pub fn insert_batch(&mut self, msgs: &[UpdateMsg<U>]) -> Option<usize> {
        let mut fresh: Vec<(Timestamp, U)> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if self
                .entries
                .binary_search_by(|(ts, _)| ts.cmp(&m.ts))
                .is_err()
            {
                fresh.push((m.ts, m.update.clone()));
            }
        }
        self.merge_fresh(fresh)
    }

    /// [`UpdateLog::insert_batch`] for a burst the caller already
    /// owns: fresh updates move into the log instead of being cloned.
    pub fn insert_batch_owned(&mut self, msgs: Vec<UpdateMsg<U>>) -> Option<usize> {
        let mut fresh: Vec<(Timestamp, U)> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if self
                .entries
                .binary_search_by(|(ts, _)| ts.cmp(&m.ts))
                .is_err()
            {
                fresh.push((m.ts, m.update));
            }
        }
        self.merge_fresh(fresh)
    }

    /// Shared tail of the batched-insert paths: sort and dedup the
    /// fresh entries (none of which is present in the log), then merge
    /// them with the dirty suffix in one linear pass. Runs that
    /// straddle the end (`fresh` all-newer, or the suffix exhausted
    /// mid-merge) are moved with a bulk `extend` instead of per-entry
    /// pushes.
    fn merge_fresh(&mut self, mut fresh: Vec<(Timestamp, U)>) -> Option<usize> {
        fresh.sort_unstable_by_key(|(ts, _)| *ts);
        fresh.dedup_by_key(|(ts, _)| *ts);
        let min_ts = fresh.first()?.0;
        let min_pos = self.entries.partition_point(|(ts, _)| *ts < min_ts);
        if min_pos == self.entries.len() {
            // Pure append: the whole batch is newer than the log.
            self.entries.extend(fresh);
            return Some(min_pos);
        }
        let tail = self.entries.split_off(min_pos);
        self.entries.reserve(tail.len() + fresh.len());
        let mut tail = tail.into_iter().peekable();
        let mut fresh = fresh.into_iter().peekable();
        // Two sorted runs with no timestamp in common (fresh was
        // deduplicated against the log above), so `<` is total here.
        while let (Some((t_ts, _)), Some((f_ts, _))) = (tail.peek(), fresh.peek()) {
            if t_ts < f_ts {
                self.entries.extend(tail.next());
            } else {
                self.entries.extend(fresh.next());
            }
        }
        self.entries.extend(tail);
        self.entries.extend(fresh);
        Some(min_pos)
    }

    /// The entries in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, U)> {
        self.entries.iter()
    }

    /// Entry at a position.
    pub fn get(&self, pos: usize) -> Option<&(Timestamp, U)> {
        self.entries.get(pos)
    }

    /// All timestamps, in order.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.entries.iter().map(|(ts, _)| *ts)
    }

    /// Remove and return the prefix of entries with `ts.clock ≤ bound`
    /// — the stable prefix for garbage collection.
    pub fn drain_stable_prefix(&mut self, bound: u64) -> Vec<(Timestamp, U)> {
        let cut = self.entries.partition_point(|(ts, _)| ts.clock <= bound);
        self.entries.drain(..cut).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(clock: u64, pid: u32, u: &str) -> UpdateMsg<&str> {
        UpdateMsg {
            ts: Timestamp::new(clock, pid),
            update: u,
        }
    }

    #[test]
    fn insert_keeps_order() {
        let mut log = UpdateLog::new();
        assert_eq!(log.insert(&msg(2, 0, "b")), Some(0));
        assert_eq!(log.insert(&msg(1, 0, "a")), Some(0)); // late message
        assert_eq!(log.insert(&msg(3, 0, "c")), Some(2));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_timestamps_rejected() {
        let mut log = UpdateLog::new();
        assert!(log.insert(&msg(1, 0, "a")).is_some());
        assert!(log.insert(&msg(1, 0, "a")).is_none());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn pid_breaks_clock_ties() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 1, "one"));
        log.insert(&msg(1, 0, "zero"));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["zero", "one"]);
    }

    #[test]
    fn push_newest_fast_path_and_fallback() {
        let mut log = UpdateLog::new();
        assert_eq!(log.push_newest(&msg(1, 0, "a")), Some(0));
        assert_eq!(log.push_newest(&msg(2, 0, "b")), Some(1));
        // wrong claim: older than the last entry → sorted insertion
        assert_eq!(log.push_newest(&msg(1, 1, "mid")), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "mid", "b"]);
    }

    #[test]
    fn push_newest_reports_duplicates_as_none() {
        let mut log = UpdateLog::new();
        assert_eq!(log.push_newest(&msg(1, 0, "a")), Some(0));
        assert_eq!(log.push_newest(&msg(1, 0, "a")), None);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn insert_batch_merges_and_reports_min_position() {
        let mut log = UpdateLog::new();
        log.insert(&msg(2, 0, "b"));
        log.insert(&msg(5, 0, "e"));
        log.insert(&msg(9, 0, "i"));
        // Batch straddles existing entries, out of order, with an
        // internal duplicate and one already-present timestamp.
        let batch = [
            msg(7, 0, "g"),
            msg(3, 0, "c"),
            msg(5, 0, "e"), // already in the log
            msg(3, 0, "c"), // duplicate within the batch
        ];
        assert_eq!(log.insert_batch(&batch), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["b", "c", "e", "g", "i"]);
    }

    #[test]
    fn insert_batch_of_duplicates_is_none() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 0, "a"));
        assert_eq!(log.insert_batch(&[msg(1, 0, "a"), msg(1, 0, "a")]), None);
        assert_eq!(log.insert_batch(&[]), None);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn insert_batch_all_newer_appends() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 0, "a"));
        assert_eq!(log.insert_batch(&[msg(3, 1, "c"), msg(2, 1, "b")]), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn owned_insert_paths_match_borrowed() {
        let mut by_ref = UpdateLog::new();
        let mut by_move = UpdateLog::new();
        let batch = [
            msg(7, 0, "g"),
            msg(3, 0, "c"),
            msg(5, 0, "e"),
            msg(3, 0, "c"),
        ];
        assert_eq!(by_ref.insert(&msg(9, 0, "i")), Some(0));
        assert_eq!(by_move.insert_owned(msg(9, 0, "i")), Some(0));
        assert_eq!(by_move.insert_owned(msg(9, 0, "i")), None);
        assert_eq!(
            by_ref.insert_batch(&batch),
            by_move.insert_batch_owned(batch.to_vec())
        );
        assert_eq!(by_ref, by_move);
        let order: Vec<&str> = by_move.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["c", "e", "g", "i"]);
    }

    #[test]
    fn insert_batch_interleaved_runs_merge_in_order() {
        // Fresh entries alternate with retained ones, so the merge
        // must interleave (neither bulk-extend fast path applies).
        let mut log = UpdateLog::new();
        for c in [2u64, 4, 6, 8] {
            log.insert(&msg(c, 0, "old"));
        }
        let batch = [msg(5, 0, "n5"), msg(3, 0, "n3"), msg(9, 0, "n9")];
        assert_eq!(log.insert_batch(&batch), Some(1));
        let clocks: Vec<u64> = log.timestamps().map(|ts| ts.clock).collect();
        assert_eq!(clocks, vec![2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn drain_stable_prefix_cuts_by_clock() {
        let mut log = UpdateLog::new();
        log.insert(&msg(1, 0, "a"));
        log.insert(&msg(2, 1, "b"));
        log.insert(&msg(5, 0, "c"));
        let stable = log.drain_stable_prefix(2);
        assert_eq!(stable.len(), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(0).unwrap().1, "c");
    }
}
