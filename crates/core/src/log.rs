//! The timestamp-sorted update log (`updates_i` in Algorithm 1),
//! split into an **in-memory sorted index** plus a pluggable
//! [`LogBackend`].
//!
//! Algorithm 1 keeps the set of known updates sorted by `(cl, j)`; the
//! interesting operation is *insertion of a late message* — an update
//! whose timestamp orders before entries that are already present.
//! The position returned by [`UpdateLog::insert`] tells the caching
//! and undo variants how much suffix they must repair.
//!
//! Since the storage refactor, every mutation is mirrored into the
//! log's backend: fresh entries are journaled in arrival order
//! ([`LogBackend::append`] / [`LogBackend::append_batch`] — exactly
//! the deduplicated set, so the zero-copy owned paths stay zero-copy),
//! and [`UpdateLog::persist_base`] forwards a GC compaction to
//! [`LogBackend::truncate_to_base`]. The default [`MemBackend`]
//! compiles all of that to nothing, preserving the pre-refactor
//! `Vec`-only hot path.

use crate::backend::{LogBackend, MemBackend};
use crate::message::UpdateMsg;
use crate::timestamp::Timestamp;
use uc_spec::UqAdt;

/// A timestamp-ordered log of updates: in-memory sorted index +
/// durability backend. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct UpdateLog<A: UqAdt, B = MemBackend> {
    entries: Vec<(Timestamp, A::Update)>,
    backend: B,
    /// Highest stability bound ever drained
    /// ([`UpdateLog::drain_stable_prefix`]). Entries at or below it
    /// were folded into a strategy base and no longer exist in the
    /// index, so an arriving message stamped `clock ≤ floor` can only
    /// be a duplicate of a folded entry (stability guarantees no
    /// *fresh* update below the bound is ever produced) — every insert
    /// path rejects it instead of re-admitting it below the base.
    /// Overlapping anti-entropy repair bursts rely on this: the second
    /// burst's redelivered entries may arrive after a compaction
    /// already folded the first burst's copies.
    ///
    /// Soundness precondition: per-sender clock observations must not
    /// overtake that sender's still-undelivered updates, i.e. delivery
    /// is **per-link FIFO**. The rejection is silent, so a fresh
    /// update sneaking in below an already-advanced bound would
    /// diverge the replica permanently. Each delivery layer upholds
    /// this differently: `uc-sim`'s `ReliableLink` releases payloads
    /// to the protocol strictly in per-channel sequence order (lossy /
    /// reordering / duplicating links notwithstanding); heal-replay
    /// redeliveries are covered by the retention cap pinning the bound
    /// for the outage's duration; and retry-queue sheds — the one path
    /// that skips sequence numbers — are only repaired if the shed
    /// window falls inside a recorded `peer_down` watermark (the
    /// `queue_cap` sizing contract in `uc_sim::reliable`).
    floor: u64,
    /// `false` only while recovery replays journaled entries — the
    /// entries are already on disk and must not be re-appended.
    journaling: bool,
}

/// Log equality is *index* equality: two logs with the same sorted
/// entries are the same log regardless of where they persist.
impl<A: UqAdt, B> PartialEq for UpdateLog<A, B> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<A: UqAdt, B> Eq for UpdateLog<A, B> {}

impl<A: UqAdt, B: Default> Default for UpdateLog<A, B> {
    fn default() -> Self {
        UpdateLog {
            entries: Vec::new(),
            backend: B::default(),
            journaling: true,
            floor: 0,
        }
    }
}

impl<A: UqAdt, B: LogBackend<A>> UpdateLog<A, B> {
    /// An empty log over a default-constructed backend.
    pub fn new() -> Self
    where
        B: Default,
    {
        Self::default()
    }

    /// An empty log over an explicit backend (the persistent path).
    pub fn with_backend(backend: B) -> Self {
        UpdateLog {
            entries: Vec::new(),
            backend,
            journaling: true,
            floor: 0,
        }
    }

    /// Suspend / resume journaling. Recovery replays entries that are
    /// already durable; re-appending them would double the journal.
    pub(crate) fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a timestamped update, keeping timestamp order. Returns
    /// the insertion position, or `None` if the timestamp was already
    /// present (reliable broadcast delivers once, but being defensive
    /// costs one comparison) or at or below the compaction floor (a
    /// redelivered duplicate of an already-folded entry).
    pub fn insert(&mut self, msg: &UpdateMsg<A::Update>) -> Option<usize> {
        if msg.ts.clock <= self.floor {
            return None;
        }
        match self.entries.binary_search_by(|(ts, _)| ts.cmp(&msg.ts)) {
            Ok(_) => None,
            Err(pos) => {
                if self.journaling {
                    self.backend.append(msg.ts, &msg.update);
                }
                self.entries.insert(pos, (msg.ts, msg.update.clone()));
                Some(pos)
            }
        }
    }

    /// [`UpdateLog::insert`] for a message the caller already owns:
    /// the update moves into the log instead of being cloned — the
    /// zero-copy hot path taken by owned batch delivery.
    pub fn insert_owned(&mut self, msg: UpdateMsg<A::Update>) -> Option<usize> {
        if msg.ts.clock <= self.floor {
            return None;
        }
        match self.entries.binary_search_by(|(ts, _)| ts.cmp(&msg.ts)) {
            Ok(_) => None,
            Err(pos) => {
                if self.journaling {
                    self.backend.append(msg.ts, &msg.update);
                }
                self.entries.insert(pos, (msg.ts, msg.update));
                Some(pos)
            }
        }
    }

    /// Append an update known to carry the largest timestamp (the
    /// common in-order fast path). Falls back to sorted insertion if
    /// the claim is wrong. Returns the insertion position, or `None`
    /// if the timestamp was already present — callers must not
    /// confuse a rejected duplicate with a valid position (a duplicate
    /// used to be reported as `entries.len()`, which repair logic
    /// would happily treat as an in-order insert).
    pub fn push_newest(&mut self, msg: &UpdateMsg<A::Update>) -> Option<usize> {
        if msg.ts.clock <= self.floor {
            return None;
        }
        match self.entries.last() {
            Some((last, _)) if *last >= msg.ts => self.insert(msg),
            _ => {
                if self.journaling {
                    self.backend.append(msg.ts, &msg.update);
                }
                self.entries.push((msg.ts, msg.update.clone()));
                Some(self.entries.len() - 1)
            }
        }
    }

    /// Merge a whole batch of messages in one pass: deduplicate
    /// (against the log *and* within the batch), then splice the fresh
    /// entries in with a single sort-then-merge sweep over the dirty
    /// suffix. Returns the earliest insertion position — the single
    /// point a repair strategy must roll back to — or `None` if every
    /// message was a duplicate.
    ///
    /// Cost: `O(k log k + k log n + s + k)` for `k` new messages and a
    /// dirty suffix of length `s` (sort the batch, binary-search the
    /// log once per message for dedup, merge the two sorted runs),
    /// versus `O(k·(log n + n))` worst case for `k` separate
    /// [`UpdateLog::insert`] calls (each may memmove the tail) and
    /// `O(s log s)` for the previous sort-the-suffix merge.
    pub fn insert_batch(&mut self, msgs: &[UpdateMsg<A::Update>]) -> Option<usize> {
        let mut fresh: Vec<(Timestamp, A::Update)> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if m.ts.clock > self.floor
                && self
                    .entries
                    .binary_search_by(|(ts, _)| ts.cmp(&m.ts))
                    .is_err()
            {
                fresh.push((m.ts, m.update.clone()));
            }
        }
        self.merge_fresh(fresh)
    }

    /// [`UpdateLog::insert_batch`] for a burst the caller already
    /// owns: fresh updates move into the log instead of being cloned.
    pub fn insert_batch_owned(&mut self, msgs: Vec<UpdateMsg<A::Update>>) -> Option<usize> {
        let mut fresh: Vec<(Timestamp, A::Update)> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if m.ts.clock > self.floor
                && self
                    .entries
                    .binary_search_by(|(ts, _)| ts.cmp(&m.ts))
                    .is_err()
            {
                fresh.push((m.ts, m.update));
            }
        }
        self.merge_fresh(fresh)
    }

    /// Shared tail of the batched-insert paths: sort and dedup the
    /// fresh entries (none of which is present in the log), journal
    /// exactly that set, then merge them with the dirty suffix in one
    /// linear pass. Runs that straddle the end (`fresh` all-newer, or
    /// the suffix exhausted mid-merge) are moved with a bulk `extend`
    /// instead of per-entry pushes.
    fn merge_fresh(&mut self, mut fresh: Vec<(Timestamp, A::Update)>) -> Option<usize> {
        fresh.sort_unstable_by_key(|(ts, _)| *ts);
        fresh.dedup_by_key(|(ts, _)| *ts);
        let min_ts = fresh.first()?.0;
        if self.journaling {
            // Journaled *before* the merge consumes the batch, so the
            // owned path stays zero-copy in memory (the backend only
            // borrows to encode).
            self.backend.append_batch(&fresh);
        }
        let min_pos = self.entries.partition_point(|(ts, _)| *ts < min_ts);
        if min_pos == self.entries.len() {
            // Pure append: the whole batch is newer than the log.
            self.entries.extend(fresh);
            return Some(min_pos);
        }
        let tail = self.entries.split_off(min_pos);
        self.entries.reserve(tail.len() + fresh.len());
        let mut tail = tail.into_iter().peekable();
        let mut fresh = fresh.into_iter().peekable();
        // Two sorted runs with no timestamp in common (fresh was
        // deduplicated against the log above), so `<` is total here.
        while let (Some((t_ts, _)), Some((f_ts, _))) = (tail.peek(), fresh.peek()) {
            if t_ts < f_ts {
                self.entries.extend(tail.next());
            } else {
                self.entries.extend(fresh.next());
            }
        }
        self.entries.extend(tail);
        self.entries.extend(fresh);
        Some(min_pos)
    }

    /// The entries in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, A::Update)> {
        self.entries.iter()
    }

    /// Entry at a position.
    pub fn get(&self, pos: usize) -> Option<&(Timestamp, A::Update)> {
        self.entries.get(pos)
    }

    /// All timestamps, in order.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.entries.iter().map(|(ts, _)| *ts)
    }

    /// A bounded window of the retained suffix: up to `limit` entries
    /// stamped strictly above `since` — and, when `after` is set,
    /// strictly after `after` (the resume cursor of a chunked heal) —
    /// in timestamp order, plus whether more remain beyond the
    /// window. O(log n + limit): both bounds are downward-closed in
    /// the `(clock, pid)` sort order, so the window is one
    /// `partition_point` and a contiguous slice.
    pub fn suffix_window(
        &self,
        since: u64,
        after: Option<Timestamp>,
        limit: usize,
    ) -> (&[(Timestamp, A::Update)], bool) {
        let start = match after {
            Some(a) => self.entries.partition_point(|(ts, _)| *ts <= a),
            None => self.entries.partition_point(|(ts, _)| ts.clock <= since),
        };
        let end = (start + limit).min(self.entries.len());
        (&self.entries[start..end], end < self.entries.len())
    }

    /// Visit every retained entry stamped strictly above `since`, in
    /// timestamp order, without cloning — the digest-exchange fold of
    /// the chunked heal path.
    pub fn for_suffix(&self, since: u64, mut f: impl FnMut(Timestamp, &A::Update)) {
        let start = self.entries.partition_point(|(ts, _)| ts.clock <= since);
        for (ts, u) in &self.entries[start..] {
            f(*ts, u);
        }
    }

    /// Remove and return the prefix of entries with `ts.clock ≤ bound`
    /// — the stable prefix for garbage collection. Callers that folded
    /// the prefix into a base must follow up with
    /// [`UpdateLog::persist_base`] so a persistent backend can compact.
    pub fn drain_stable_prefix(&mut self, bound: u64) -> Vec<(Timestamp, A::Update)> {
        self.floor = self.floor.max(bound);
        let cut = self.entries.partition_point(|(ts, _)| ts.clock <= bound);
        self.entries.drain(..cut).collect()
    }

    /// Raise the duplicate-rejection floor without draining —
    /// recovery installs a persisted base whose prefix was compacted
    /// in an earlier run, and the reopened log must keep refusing
    /// redeliveries below that bound.
    pub(crate) fn raise_floor(&mut self, bound: u64) {
        self.floor = self.floor.max(bound);
    }

    /// Number of entries with `ts.clock ≤ cut` — the length of the
    /// log's prefix below a snapshot cut. Because entries are kept
    /// sorted by `(clock, pid)` and `clock ≤ cut` is downward-closed in
    /// that order, the counted entries always form a contiguous prefix.
    pub fn prefix_len(&self, cut: u64) -> usize {
        self.entries.partition_point(|(ts, _)| ts.clock <= cut)
    }

    /// Iterate the entries with `ts.clock ≤ cut`, oldest first — the
    /// exact update sequence a snapshot query at `cut` must fold.
    pub fn prefix_at(&self, cut: u64) -> impl Iterator<Item = &(Timestamp, A::Update)> {
        self.entries[..self.prefix_len(cut)].iter()
    }

    /// Persist a compacted base: `state` is the fold of every update
    /// with `ts.clock ≤ bound` (all of which have been drained); the
    /// retained entries are handed to the backend as the live tail.
    pub fn persist_base(&mut self, bound: u64, state: &A::State) {
        if self.journaling {
            self.backend.truncate_to_base(bound, state, &self.entries);
        }
    }

    /// Flush the backend, persisting `clock` as the recovery
    /// watermark. A no-op for [`MemBackend`].
    pub fn flush_backend(&mut self, clock: u64) {
        self.backend.flush(clock);
    }

    /// Direct backend access (recovery and tests).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal UQ-ADT over `&'static str` updates, so the log can be
    /// unit-tested without dragging in a real state machine.
    #[derive(Clone, Debug)]
    struct StrAdt;

    impl UqAdt for StrAdt {
        type Update = &'static str;
        type QueryIn = ();
        type QueryOut = ();
        type State = ();

        fn initial(&self) -> Self::State {}
        fn apply(&self, _state: &mut Self::State, _update: &Self::Update) {}
        fn observe(&self, _state: &Self::State, _query: &Self::QueryIn) -> Self::QueryOut {}
    }

    type Log = UpdateLog<StrAdt>;

    fn msg(clock: u64, pid: u32, u: &'static str) -> UpdateMsg<&'static str> {
        UpdateMsg {
            ts: Timestamp::new(clock, pid),
            update: u,
        }
    }

    #[test]
    fn insert_keeps_order() {
        let mut log = Log::new();
        assert_eq!(log.insert(&msg(2, 0, "b")), Some(0));
        assert_eq!(log.insert(&msg(1, 0, "a")), Some(0)); // late message
        assert_eq!(log.insert(&msg(3, 0, "c")), Some(2));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_timestamps_rejected() {
        let mut log = Log::new();
        assert!(log.insert(&msg(1, 0, "a")).is_some());
        assert!(log.insert(&msg(1, 0, "a")).is_none());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn pid_breaks_clock_ties() {
        let mut log = Log::new();
        log.insert(&msg(1, 1, "one"));
        log.insert(&msg(1, 0, "zero"));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["zero", "one"]);
    }

    #[test]
    fn push_newest_fast_path_and_fallback() {
        let mut log = Log::new();
        assert_eq!(log.push_newest(&msg(1, 0, "a")), Some(0));
        assert_eq!(log.push_newest(&msg(2, 0, "b")), Some(1));
        // wrong claim: older than the last entry → sorted insertion
        assert_eq!(log.push_newest(&msg(1, 1, "mid")), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "mid", "b"]);
    }

    #[test]
    fn push_newest_reports_duplicates_as_none() {
        let mut log = Log::new();
        assert_eq!(log.push_newest(&msg(1, 0, "a")), Some(0));
        assert_eq!(log.push_newest(&msg(1, 0, "a")), None);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn insert_batch_merges_and_reports_min_position() {
        let mut log = Log::new();
        log.insert(&msg(2, 0, "b"));
        log.insert(&msg(5, 0, "e"));
        log.insert(&msg(9, 0, "i"));
        // Batch straddles existing entries, out of order, with an
        // internal duplicate and one already-present timestamp.
        let batch = [
            msg(7, 0, "g"),
            msg(3, 0, "c"),
            msg(5, 0, "e"), // already in the log
            msg(3, 0, "c"), // duplicate within the batch
        ];
        assert_eq!(log.insert_batch(&batch), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["b", "c", "e", "g", "i"]);
    }

    #[test]
    fn insert_batch_of_duplicates_is_none() {
        let mut log = Log::new();
        log.insert(&msg(1, 0, "a"));
        assert_eq!(log.insert_batch(&[msg(1, 0, "a"), msg(1, 0, "a")]), None);
        assert_eq!(log.insert_batch(&[]), None);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn insert_batch_all_newer_appends() {
        let mut log = Log::new();
        log.insert(&msg(1, 0, "a"));
        assert_eq!(log.insert_batch(&[msg(3, 1, "c"), msg(2, 1, "b")]), Some(1));
        let order: Vec<&str> = log.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn owned_insert_paths_match_borrowed() {
        let mut by_ref = Log::new();
        let mut by_move = Log::new();
        let batch = [
            msg(7, 0, "g"),
            msg(3, 0, "c"),
            msg(5, 0, "e"),
            msg(3, 0, "c"),
        ];
        assert_eq!(by_ref.insert(&msg(9, 0, "i")), Some(0));
        assert_eq!(by_move.insert_owned(msg(9, 0, "i")), Some(0));
        assert_eq!(by_move.insert_owned(msg(9, 0, "i")), None);
        assert_eq!(
            by_ref.insert_batch(&batch),
            by_move.insert_batch_owned(batch.to_vec())
        );
        assert_eq!(by_ref, by_move);
        let order: Vec<&str> = by_move.iter().map(|(_, u)| *u).collect();
        assert_eq!(order, vec!["c", "e", "g", "i"]);
    }

    #[test]
    fn insert_batch_interleaved_runs_merge_in_order() {
        // Fresh entries alternate with retained ones, so the merge
        // must interleave (neither bulk-extend fast path applies).
        let mut log = Log::new();
        for c in [2u64, 4, 6, 8] {
            log.insert(&msg(c, 0, "old"));
        }
        let batch = [msg(5, 0, "n5"), msg(3, 0, "n3"), msg(9, 0, "n9")];
        assert_eq!(log.insert_batch(&batch), Some(1));
        let clocks: Vec<u64> = log.timestamps().map(|ts| ts.clock).collect();
        assert_eq!(clocks, vec![2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn drain_stable_prefix_cuts_by_clock() {
        let mut log = Log::new();
        log.insert(&msg(1, 0, "a"));
        log.insert(&msg(2, 1, "b"));
        log.insert(&msg(5, 0, "c"));
        let stable = log.drain_stable_prefix(2);
        assert_eq!(stable.len(), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(0).unwrap().1, "c");
    }

    /// A backend that records what it was asked to journal, so the
    /// mirroring contract is testable without disk.
    #[derive(Clone, Debug, Default)]
    struct Recording {
        appended: Vec<(Timestamp, &'static str)>,
        bases: Vec<(u64, usize)>, // (bound, tail length)
        flushes: Vec<u64>,
    }

    impl LogBackend<StrAdt> for Recording {
        fn append(&mut self, ts: Timestamp, u: &&'static str) {
            self.appended.push((ts, u));
        }

        fn truncate_to_base(
            &mut self,
            bound: u64,
            _state: &(),
            tail: &[(Timestamp, &'static str)],
        ) {
            self.bases.push((bound, tail.len()));
        }

        fn flush(&mut self, clock: u64) {
            self.flushes.push(clock);
        }

        fn load_base(&mut self) -> Option<(u64, ())> {
            None
        }

        fn scan_suffix(&mut self) -> Vec<(Timestamp, &'static str)> {
            Vec::new()
        }
    }

    #[test]
    fn backend_sees_exactly_the_fresh_entries() {
        let mut log: UpdateLog<StrAdt, Recording> = UpdateLog::with_backend(Recording::default());
        log.insert(&msg(2, 0, "b"));
        log.insert(&msg(2, 0, "b")); // duplicate: not journaled
        log.push_newest(&msg(5, 0, "e"));
        // Batch with one in-log duplicate and one internal duplicate:
        // only the two genuinely fresh entries reach the journal.
        log.insert_batch(&[
            msg(3, 0, "c"),
            msg(5, 0, "e"),
            msg(3, 0, "c"),
            msg(7, 0, "g"),
        ]);
        let journaled: Vec<&str> = log.backend_mut().appended.iter().map(|(_, u)| *u).collect();
        assert_eq!(journaled, vec!["b", "e", "c", "g"]);
    }

    #[test]
    fn journaling_can_be_suspended_for_recovery_replay() {
        let mut log: UpdateLog<StrAdt, Recording> = UpdateLog::with_backend(Recording::default());
        log.set_journaling(false);
        log.insert(&msg(1, 0, "a"));
        log.insert_batch(&[msg(2, 0, "b")]);
        assert!(log.backend_mut().appended.is_empty());
        log.set_journaling(true);
        log.insert(&msg(3, 0, "c"));
        assert_eq!(log.backend_mut().appended.len(), 1);
    }

    #[test]
    fn persist_base_hands_bound_and_tail_to_backend() {
        let mut log: UpdateLog<StrAdt, Recording> = UpdateLog::with_backend(Recording::default());
        for c in 1..=5u64 {
            log.insert(&msg(c, 0, "x"));
        }
        let drained = log.drain_stable_prefix(3);
        assert_eq!(drained.len(), 3);
        log.persist_base(3, &());
        log.flush_backend(9);
        let b = log.backend_mut();
        assert_eq!(b.bases, vec![(3, 2)]);
        assert_eq!(b.flushes, vec![9]);
    }
}
