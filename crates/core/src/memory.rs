//! **Algorithm 2** — the update-consistent shared memory.
//!
//! The memory object specialises Algorithm 1: because an overwritten
//! register value can never be read again, the log degenerates to the
//! last `(timestamp, value)` per register — last-writer-wins with the
//! same `(clock, pid)` order Algorithm 1 uses globally. Both reads and
//! writes are O(log #registers) map operations (the paper says
//! "constant computation time" counting state work), and memory grows
//! with the number of *registers*, not the number of operations —
//! the claims measured by experiment E9.

use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::timestamp::{LamportClock, Timestamp};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use uc_spec::{MemoryAdt, MemoryQuery, MemoryUpdate, UqAdt};

/// The wire message of Algorithm 2, line 6: `(clock, pid, x, v)`.
pub type MemWrite<X, V> = UpdateMsg<MemoryUpdate<X, V>>;

/// A replica of the shared memory object running Algorithm 2.
#[derive(Clone, Debug)]
pub struct UcMemory<X, V>
where
    X: Clone + Debug + Eq + Ord + Hash,
    V: Clone + Debug + Eq + Hash,
{
    adt: MemoryAdt<X, V>,
    pid: u32,
    clock: LamportClock,
    /// Per-register `(timestamp, value)` — `mem_i` in the paper.
    mem: BTreeMap<X, (Timestamp, V)>,
}

impl<X, V> UcMemory<X, V>
where
    X: Clone + Debug + Eq + Ord + Hash,
    V: Clone + Debug + Eq + Hash,
{
    /// A fresh replica for process `pid`; registers start at `v0`.
    pub fn new(v0: V, pid: u32) -> Self {
        UcMemory {
            adt: MemoryAdt::new(v0),
            pid,
            clock: LamportClock::new(),
            mem: BTreeMap::new(),
        }
    }

    /// `write(x, v)` — lines 4–7.
    pub fn write(&mut self, x: X, v: V) -> MemWrite<X, V> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        // The local replica receives its own broadcast instantly; the
        // local timestamp is the largest known, so it always wins.
        self.store(ts, &x, &v);
        UpdateMsg {
            ts,
            update: MemoryUpdate {
                register: x,
                value: v,
            },
        }
    }

    /// Receive a peer's write — lines 8–14 (keep the newer timestamp).
    pub fn on_deliver(&mut self, msg: &MemWrite<X, V>) {
        self.clock.merge(msg.ts.clock);
        self.store(msg.ts, &msg.update.register, &msg.update.value);
    }

    fn store(&mut self, ts: Timestamp, x: &X, v: &V) {
        match self.mem.get(x) {
            Some((existing, _)) if *existing >= ts => {}
            _ => {
                self.mem.insert(x.clone(), (ts, v.clone()));
            }
        }
    }

    /// `read(x)` — lines 15–18: O(1) state work, no clock tick.
    pub fn read(&self, x: &X) -> V {
        match self.mem.get(x) {
            Some((_, v)) => v.clone(),
            None => self.adt.initial_value().clone(),
        }
    }

    /// Number of registers ever written (the memory footprint).
    pub fn registers(&self) -> usize {
        self.mem.len()
    }
}

impl<X, V> Replica<MemoryAdt<X, V>> for UcMemory<X, V>
where
    X: Clone + Debug + Eq + Ord + Hash,
    V: Clone + Debug + Eq + Hash,
{
    type Msg = MemWrite<X, V>;

    fn pid(&self) -> u32 {
        self.pid
    }

    fn local_update(&mut self, u: MemoryUpdate<X, V>) -> Vec<Self::Msg> {
        vec![self.write(u.register, u.value)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_deliver(msg);
    }

    fn query(&mut self, q: &MemoryQuery<X>) -> V {
        self.read(&q.0)
    }

    fn materialize(&mut self) -> <MemoryAdt<X, V> as UqAdt>::State {
        // Canonical MemoryAdt state: v0-valued registers are implicit.
        self.mem
            .iter()
            .filter(|(_, (_, v))| v != self.adt.initial_value())
            .map(|(x, (_, v))| (x.clone(), v.clone()))
            .collect()
    }

    fn log_len(&self) -> usize {
        self.mem.len()
    }

    fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Last-writer timestamps per register — all Algorithm 2 retains.
    fn known_timestamps(&self) -> Vec<Timestamp> {
        self.mem.values().map(|(ts, _)| *ts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = UcMemory<&'static str, i32>;

    #[test]
    fn reads_default_to_v0() {
        let m: M = UcMemory::new(0, 0);
        assert_eq!(m.read(&"x"), 0);
    }

    #[test]
    fn local_write_read_roundtrip() {
        let mut m: M = UcMemory::new(0, 0);
        m.write("x", 7);
        assert_eq!(m.read(&"x"), 7);
    }

    #[test]
    fn last_writer_wins_across_replicas() {
        let mut a: M = UcMemory::new(0, 0);
        let mut b: M = UcMemory::new(0, 1);
        let wa = a.write("x", 1); // ts (1,0)
        let wb = b.write("x", 2); // ts (1,1) — wins the tie on pid
        a.on_deliver(&wb);
        b.on_deliver(&wa);
        assert_eq!(a.read(&"x"), 2);
        assert_eq!(b.read(&"x"), 2);
    }

    #[test]
    fn stale_write_does_not_regress() {
        let mut a: M = UcMemory::new(0, 0);
        let mut b: M = UcMemory::new(0, 1);
        let w1 = b.write("x", 1); // (1,1)
        a.write("y", 0); // ticks a's clock to 1
        a.on_deliver(&w1); // a learns (1,1)
        let w2 = a.write("x", 9); // (2,0) > (1,1)
        b.on_deliver(&w2);
        b.on_deliver(&w1); // duplicate/stale redelivery
        assert_eq!(b.read(&"x"), 9);
    }

    #[test]
    fn registers_are_independent() {
        let mut a: M = UcMemory::new(0, 0);
        let mut b: M = UcMemory::new(0, 1);
        let wa = a.write("x", 1);
        let wb = b.write("y", 2);
        a.on_deliver(&wb);
        b.on_deliver(&wa);
        for m in [&a, &b] {
            assert_eq!(m.read(&"x"), 1);
            assert_eq!(m.read(&"y"), 2);
        }
    }

    #[test]
    fn memory_is_bounded_by_register_count() {
        let mut a: M = UcMemory::new(0, 0);
        for i in 0..10_000 {
            a.write("x", i);
        }
        assert_eq!(a.registers(), 1, "old values are never retained");
    }

    #[test]
    fn materialize_is_canonical() {
        let mut a: M = UcMemory::new(0, 0);
        a.write("x", 5);
        a.write("x", 0); // back to v0 — canonical state drops it
        let s = {
            use crate::replica::Replica;
            a.materialize()
        };
        assert!(s.is_empty());
    }

    #[test]
    fn convergence_under_any_interleaving() {
        // 3 replicas, interleaved writes to 2 registers, delivered in
        // different orders — all replicas agree pointwise.
        let mut r: Vec<M> = (0..3).map(|p| UcMemory::new(0, p)).collect();
        let mut msgs = Vec::new();
        for round in 0..5 {
            for (p, rep) in r.iter_mut().enumerate() {
                let reg = if (round + p) % 2 == 0 { "x" } else { "y" };
                let w = rep.write(reg, (round * 3 + p) as i32);
                msgs.push((p, w));
            }
        }
        // Deliver to each replica in a different order.
        for (i, rep) in r.iter_mut().enumerate() {
            let mut order = msgs.clone();
            if i == 1 {
                order.reverse();
            }
            if i == 2 {
                order.rotate_left(7);
            }
            for (src, w) in &order {
                if *src != i {
                    rep.on_deliver(w);
                }
            }
        }
        let x: Vec<i32> = r.iter().map(|m| m.read(&"x")).collect();
        let y: Vec<i32> = r.iter().map(|m| m.read(&"y")).collect();
        assert!(x.windows(2).all(|w| w[0] == w[1]), "x diverged: {x:?}");
        assert!(y.windows(2).all(|w| w[0] == w[1]), "y diverged: {y:?}");
    }
}
