//! Messages of the generic construction.

use crate::timestamp::Timestamp;
use std::fmt::Debug;

/// The broadcast of Algorithm 1, line 6: `(clock_i, i, u)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct UpdateMsg<U> {
    /// The `(clock, pid)` timestamp.
    pub ts: Timestamp,
    /// The update payload.
    pub update: U,
}

impl<U: Debug> Debug for UpdateMsg<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg{:?} {:?}", self.ts, self.update)
    }
}

/// Messages of the garbage-collected variant: updates plus clock
/// heartbeats that advance stability when a process is silent
/// (§VII-C's "after some time old messages can be garbage collected").
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum GcMsg<U> {
    /// A timestamped update, as in Algorithm 1.
    Update(UpdateMsg<U>),
    /// A clock announcement with no payload.
    Heartbeat {
        /// The announcing process.
        pid: u32,
        /// The sender's clock at send time.
        clock: u64,
    },
}

impl<U: Debug> Debug for GcMsg<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcMsg::Update(m) => write!(f, "{m:?}"),
            GcMsg::Heartbeat { pid, clock } => write!(f, "hb(p{pid},{clock})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_renderings() {
        let m = UpdateMsg {
            ts: Timestamp::new(4, 1),
            update: "I(1)",
        };
        assert_eq!(format!("{m:?}"), "msg(4,1) \"I(1)\"");
        let g: GcMsg<&str> = GcMsg::Heartbeat { pid: 2, clock: 9 };
        assert_eq!(format!("{g:?}"), "hb(p2,9)");
    }
}
