//! Shared observability glue: exporting monitor counters into a
//! metrics registry.
//!
//! Both the sequential [`UcStore`](crate::store::UcStore) and the
//! [`IngestPool`](crate::pool::IngestPool) stream
//! [`MonitorStats`] as metrics; one derivation point here keeps the
//! metric names identical on every runtime (the bench smoke step
//! greps for them).

use uc_criteria::online::MonitorStats;
use uc_obs::Registry;

/// Mirror a monitor's counters into `reg` under `uc_monitor_*`
/// names. Counters use absolute mirroring ([`uc_obs::Counter::set`])
/// — the monitor's own counts are the source of truth.
pub fn export_monitor_stats(stats: &MonitorStats, reg: &Registry) {
    reg.gauge("uc_monitor_sampled_keys")
        .set(stats.sampled_keys as i64);
    reg.counter("uc_monitor_sampled_updates_total")
        .set(stats.sampled_updates);
    reg.counter("uc_monitor_sampled_queries_total")
        .set(stats.sampled_queries);
    reg.counter("uc_monitor_sampled_cuts_total")
        .set(stats.sampled_cuts);
    reg.counter("uc_monitor_uc_violations_total")
        .set(stats.uc_violations);
    reg.counter("uc_monitor_ec_violations_total")
        .set(stats.ec_violations);
    reg.counter("uc_monitor_sec_violations_total")
        .set(stats.sec_violations);
    reg.counter("uc_monitor_snap_violations_total")
        .set(stats.snap_violations);
    reg.counter("uc_monitor_below_floor_arrivals_total")
        .set(stats.below_floor_arrivals);
    reg.counter("uc_monitor_window_evictions_total")
        .set(stats.window_evictions);
    reg.gauge("uc_monitor_lossy_keys")
        .set(stats.lossy_keys as i64);
    reg.counter("uc_monitor_skipped_checks_total")
        .set(stats.skipped_checks);
    reg.counter("uc_monitor_finalized_updates_total")
        .set(stats.finalized_updates);
    reg.gauge("uc_monitor_stable_bound")
        .set(stats.stable_bound as i64);
    reg.counter("uc_monitor_ticks_total").set(stats.ticks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_every_monitor_counter() {
        let stats = MonitorStats {
            sampled_keys: 3,
            sampled_updates: 10,
            uc_violations: 1,
            stable_bound: 42,
            ..MonitorStats::default()
        };
        let reg = Registry::new();
        export_monitor_stats(&stats, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("uc_monitor_sampled_keys"), Some(3));
        assert_eq!(snap.counter("uc_monitor_sampled_updates_total"), Some(10));
        assert_eq!(snap.counter("uc_monitor_uc_violations_total"), Some(1));
        assert_eq!(snap.gauge("uc_monitor_stable_bound"), Some(42));
        let text = snap.render_prometheus();
        assert!(text.contains("uc_monitor_sec_violations_total 0"));
        assert!(text.contains("uc_monitor_ticks_total 0"));
    }
}
