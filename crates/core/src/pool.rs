//! The **persistent shard-worker ingest pool**: long-lived worker
//! threads, each owning a fixed set of a store's shards, fed by
//! lock-free claim-pattern inboxes, with epoch-published snapshots
//! for wait-free reads.
//!
//! [`UcStore::apply_batch_parallel`] spawns fresh scoped threads for
//! every burst, so its win is bounded by thread-spawn cost and it
//! serializes bursts behind each other. The pool amortizes that cost
//! once, at [`IngestPool::spawn`]:
//!
//! ```text
//!    PoolHandle (Clone, &self)      IngestPool handle (&mut, owns join)
//!    update/query/submit_batch ──── AtomicU64 LamportClock (wait-free
//!          │ shard = hash(key) % S,  worker = shard % W     stamping)
//!          ▼
//!   ┌ inbox 0 ─▶ Worker 0 {shards 0, W, 2W, …}   (long-lived thread)
//!   ├ inbox 1 ─▶ Worker 1 {shards 1, W+1, …}          │ per drain
//!   └ inbox W-1 ▶ …                                   ▼
//!     lock-free claim-pattern              epoch-published snapshots
//!     Treiber push + swap-claim            (wait-free query_snapshot)
//! ```
//!
//! * **lock-free ingest** — producers stamp on the shared atomic
//!   clock (one `fetch_add`) and CAS-push onto the owning worker's
//!   [`Inbox`](crate::inbox::Inbox); no mutex, no `sync_channel`
//!   slot-wait. The bounded inbox still provides backpressure:
//!   [`Backpressure::Park`] spins/yields the producer,
//!   [`Backpressure::Shed`] drops the burst and counts it;
//! * **determinism** — every key lives in exactly one shard, every
//!   shard on exactly one worker, and a single producer's pushes are
//!   FIFO through the claim-reverse drain, so per-key delivery order
//!   equals submission order: pool results are identical to the
//!   sequential [`UcStore::apply_batch`] path (states *and* repair
//!   event/step counts — the differential tests assert both). Each
//!   claimed job is processed separately, never coalesced, for the
//!   same reason;
//! * **wait-free reads** — after each drain the worker publishes the
//!   post-repair state of every touched key behind an RCU-style
//!   [`Published`](crate::snapshot::Published) cell;
//!   [`PoolHandle::query_snapshot`] is then a wait-free load that
//!   never blocks behind a repair or a queued burst (and never ticks
//!   the clock — it is a *weak* read of the latest published state;
//!   the strong FIFO read-your-writes read is [`PoolHandle::query`]).
//!   Publishing is armed **per shard** by the first snapshot read
//!   touching it; an [`IngestPool::flush`] after arming backfills the
//!   armed shards' keys (untouched shards pay nothing);
//! * **cut snapshots** — [`PoolHandle::snapshot_at`] pushes a
//!   [`Job::Cut`] barrier to every worker; each folds its keys' log
//!   prefixes stamped `≤ cut` without stopping ingest, and the handle
//!   reassembles a multi-key [`StoreSnapshot`] that is un-torn at the
//!   cut. Published snapshot entries carry the cut era
//!   (`PoolCore::cut_seq`), so [`PoolHandle::query_snapshot_multi`]
//!   can detect a concurrent cut republishing around it and retry;
//! * **barriers** — [`IngestPool::flush`] enqueues a barrier job on
//!   every worker and waits for all acks; because a producer's pushes
//!   are FIFO, a completed flush has observed every prior submission;
//! * **drain-on-drop** — dropping the handle closes the inboxes;
//!   workers finish every queued job before exiting, so submitted
//!   bursts are never silently discarded. [`IngestPool::finish`]
//!   additionally reassembles and returns the [`UcStore`];
//! * **poisoning** — a panic inside a worker (e.g. a panicking ADT
//!   fold) is caught and recorded in a lock-free `OnceLock`, so the
//!   per-call poison check is a plain load; every subsequent
//!   operation surfaces the [`PoolError`] instead of deadlocking;
//! * **crash soundness** — stamping composes with the persisted
//!   clock-floor lease: a `ClockLease` keeps an atomic copy of the
//!   on-disk floor, so the per-stamp check is one load, and only the
//!   slow path (once per [`CLOCK_LEASE`] stamps) serializes on a
//!   latch to write the floor *before* the stamp can be broadcast.
//!   While handles may stamp concurrently the floor only ever moves
//!   up; it collapses to the exact clock at the quiesce points
//!   ([`IngestPool::finish`] / drop), where the worker joins make the
//!   clock read cover every issued stamp.
//!
//! One caveat carries over from the sequential world: the GC
//! strategy's stability bookkeeping assumes per-sender FIFO delivery
//! (a documented [`StableGc`](crate::gc::StableGc) precondition).
//! Two handles racing *updates to the same key* through one shared
//! clock can reorder that key's self-stamps in flight, which violates
//! the precondition exactly as a non-FIFO network would. Partition
//! keys across concurrent handles (or use a full-log strategy) when
//! stamping concurrently.
//!
//! The pool implements [`Protocol`], so a pooled store runs unchanged
//! under the threaded cluster (real ingest concurrency) and the
//! deterministic simulator.

use crate::backend::{BackendFactory, MemFactory};
use crate::engine::CutError;
use crate::heal::{digest_slot, mismatched_slots, HealConfig, HealDigest, HealSession, HealTick};
use crate::inbox::{Inbox, PushError};
use crate::message::UpdateMsg;
use crate::snapshot::Published;
use crate::store::{
    collapse_heartbeats, repair_bytes_estimate, shard_index, split_by_shard, AvailabilityPolicy,
    Key, PartitionTracker, Shard, StoreInput, StoreMsg, StoreOutput, StoreSnapshot,
    StrategyFactory, UcStore,
};
use crate::timestamp::{LamportClock, Timestamp};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use uc_criteria::online::{MonitorConfig, MonitorStats, OnlineMonitor};
use uc_obs::{Health, Registry};
use uc_sim::{Ctx, LinkCounters, Pid, Protocol};
use uc_spec::UqAdt;

/// What a full worker inbox means for *peer traffic*
/// ([`IngestPool::submit_batch`] bursts and heartbeats). Locally
/// issued updates, strong queries, and barriers always park — a
/// stamped local update that was shed would simply be lost, and the
/// caller holds its broadcast message.
///
/// The same Park/Shed split governs the event reactor's node
/// mailboxes (`uc-runtime` re-exports this type), so one policy
/// vocabulary covers every bounded mailbox in the workspace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Lossless: the producer yields/parks until a slot frees up
    /// (the bounded depth throttles, never drops).
    #[default]
    Park,
    /// Lossy: bursts beyond the bound are dropped and counted in
    /// [`WorkerStats::shed`]. Bounds memory under overload at the
    /// cost of reliable broadcast (convergence becomes best-effort —
    /// rely on anti-entropy/retransmission to recover).
    Shed,
}

/// How an [`IngestPool`] is sized.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads; `0` means one per unit of available hardware
    /// parallelism. Capped at the store's shard count (an idle worker
    /// with no shards would be pure overhead).
    pub workers: usize,
    /// Bounded depth of each worker's job inbox: submissions beyond
    /// it park or shed (see [`Backpressure`]) instead of growing
    /// memory without bound.
    pub queue_depth: usize,
    /// Overflow policy for peer traffic on a full inbox.
    pub backpressure: Backpressure,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            queue_depth: 64,
            backpressure: Backpressure::Park,
        }
    }
}

/// Sentinel message for "the pool was shut down, not poisoned" (a
/// handle outliving [`IngestPool::finish`]/drop).
const POOL_CLOSED: &str = "pool closed (finish or drop already ran)";

/// A worker thread died mid-job (the pool is poisoned and every
/// subsequent operation reports this error), or the pool was already
/// shut down under a still-live [`PoolHandle`].
#[derive(Clone, Debug)]
pub struct PoolError {
    /// Index of the worker that panicked (or refused the job).
    pub worker: usize,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl PoolError {
    fn closed(worker: usize) -> Self {
        PoolError {
            worker,
            message: POOL_CLOSED.into(),
        }
    }
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message == POOL_CLOSED {
            write!(f, "ingest pool closed: worker {} is gone", self.worker)
        } else {
            write!(
                f,
                "ingest pool poisoned: worker {} panicked: {}",
                self.worker, self.message
            )
        }
    }
}

impl std::error::Error for PoolError {}

/// Why a barrier-cut snapshot ([`PoolHandle::snapshot_at`] /
/// [`PoolHandle::consistent_snapshot`]) could not be taken.
#[derive(Clone, Debug)]
pub enum SnapshotError {
    /// The pool is poisoned or closed — the underlying [`PoolError`].
    Pool(PoolError),
    /// The requested cut predates a key's compacted history.
    Cut(CutError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Pool(e) => write!(f, "snapshot failed: {e}"),
            SnapshotError::Cut(e) => write!(f, "snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Pool(e) => Some(e),
            SnapshotError::Cut(e) => Some(e),
        }
    }
}

/// Bounded retries for the era-coherent multi-key weak read before it
/// falls back to an unchecked (still wait-free) pass.
const SNAP_READ_RETRIES: usize = 8;

/// Point-in-time counters for one worker.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Ingest jobs (bursts) this worker has processed.
    pub batches: u64,
    /// Update messages ingested across those bursts.
    pub messages: u64,
    /// High-water mark of enqueued-but-unfinished jobs — how far
    /// submitters ran ahead of this worker. Counts the job being
    /// processed and in-flight push attempts, so it can read slightly
    /// above [`PoolConfig::queue_depth`].
    pub queue_high_water: usize,
    /// Peer bursts dropped under [`Backpressure::Shed`].
    pub shed: u64,
    /// Key states epoch-published for wait-free snapshot reads. The
    /// per-shard arming fix bounds this: arming one shard backfills
    /// only that shard's keys, not the whole store (the 10k-key
    /// first-query latency test asserts the bound).
    pub snapshots_published: u64,
}

/// Point-in-time counters for the whole pool (observability and the
/// pool benchmark's queue-depth metrics).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total bursts processed across workers.
    pub fn total_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Total update messages ingested across workers.
    pub fn total_messages(&self) -> u64 {
        self.workers.iter().map(|w| w.messages).sum()
    }

    /// Deepest queue observed on any worker.
    pub fn max_queue_high_water(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Total peer bursts shed across workers.
    pub fn total_shed(&self) -> u64 {
        self.workers.iter().map(|w| w.shed).sum()
    }

    /// Total key states epoch-published across workers.
    pub fn total_snapshots_published(&self) -> u64 {
        self.workers.iter().map(|w| w.snapshots_published).sum()
    }
}

/// Counters shared between the handles and one worker.
#[derive(Default)]
struct SharedCounters {
    depth: AtomicUsize,
    high_water: AtomicUsize,
    batches: AtomicU64,
    messages: AtomicU64,
    shed: AtomicU64,
    snaps_published: AtomicU64,
}

impl SharedCounters {
    fn on_enqueue(&self) {
        let d = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.high_water.fetch_max(d, Ordering::SeqCst);
    }

    fn on_done(&self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
    }

    fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Worker → handle mirror of one worker's monitor counters. The
/// worker stores absolute values after each monitor-touching job
/// (~15 relaxed stores); the pool aggregates across workers without
/// stopping them. Workers own disjoint shard (hence key) sets, so
/// summing per-key counters is exact.
#[derive(Default)]
struct MonitorCells {
    sampled_keys: AtomicU64,
    sampled_updates: AtomicU64,
    sampled_queries: AtomicU64,
    sampled_cuts: AtomicU64,
    uc_violations: AtomicU64,
    ec_violations: AtomicU64,
    sec_violations: AtomicU64,
    snap_violations: AtomicU64,
    below_floor_arrivals: AtomicU64,
    window_evictions: AtomicU64,
    lossy_keys: AtomicU64,
    skipped_checks: AtomicU64,
    finalized_updates: AtomicU64,
    stable_bound: AtomicU64,
    ticks: AtomicU64,
}

impl MonitorCells {
    fn publish(&self, s: &MonitorStats) {
        let o = Ordering::Relaxed;
        self.sampled_keys.store(s.sampled_keys, o);
        self.sampled_updates.store(s.sampled_updates, o);
        self.sampled_queries.store(s.sampled_queries, o);
        self.sampled_cuts.store(s.sampled_cuts, o);
        self.uc_violations.store(s.uc_violations, o);
        self.ec_violations.store(s.ec_violations, o);
        self.sec_violations.store(s.sec_violations, o);
        self.snap_violations.store(s.snap_violations, o);
        self.below_floor_arrivals.store(s.below_floor_arrivals, o);
        self.window_evictions.store(s.window_evictions, o);
        self.lossy_keys.store(s.lossy_keys, o);
        self.skipped_checks.store(s.skipped_checks, o);
        self.finalized_updates.store(s.finalized_updates, o);
        self.stable_bound.store(s.stable_bound, o);
        self.ticks.store(s.ticks, o);
    }

    fn load(&self) -> MonitorStats {
        let o = Ordering::Relaxed;
        MonitorStats {
            sampled_keys: self.sampled_keys.load(o),
            sampled_updates: self.sampled_updates.load(o),
            sampled_queries: self.sampled_queries.load(o),
            sampled_cuts: self.sampled_cuts.load(o),
            uc_violations: self.uc_violations.load(o),
            ec_violations: self.ec_violations.load(o),
            sec_violations: self.sec_violations.load(o),
            snap_violations: self.snap_violations.load(o),
            below_floor_arrivals: self.below_floor_arrivals.load(o),
            window_evictions: self.window_evictions.load(o),
            lossy_keys: self.lossy_keys.load(o),
            skipped_checks: self.skipped_checks.load(o),
            finalized_updates: self.finalized_updates.load(o),
            stable_bound: self.stable_bound.load(o),
            ticks: self.ticks.load(o),
        }
    }
}

/// One shard's slice of a burst: `(key, message)` pairs bound for
/// that shard's per-key engines.
type Bucket<A> = Vec<(Key, UpdateMsg<<A as UqAdt>::Update>)>;

/// A burst split per shard, tagged with global shard indices.
type ShardBuckets<A> = Vec<(usize, Bucket<A>)>;

/// The shards one worker owns, tagged with global shard indices.
type OwnedShards<A, S, B> = Vec<(usize, Shard<A, S, B>)>;

/// One unit of work on a worker's inbox.
enum Job<A: UqAdt> {
    /// Per-shard buckets of one submitted burst (global shard index).
    Ingest(ShardBuckets<A>),
    /// A locally issued update, already stamped by the shared clock.
    Update {
        /// Global shard index of `key`.
        shard: usize,
        key: Key,
        msg: UpdateMsg<A::Update>,
    },
    /// A query against the handle's already-ticked clock; the answer
    /// goes back through `reply`.
    Query {
        shard: usize,
        key: Key,
        now: u64,
        q: A::QueryIn,
        reply: Sender<A::QueryOut>,
    },
    /// A peer clock announcement: sweep every engine on this worker.
    Heartbeat { pid: u32, clock: u64 },
    /// Run per-key maintenance (compaction) on every engine.
    /// Carries the shared clock's value so an attached monitor can
    /// fold its own node's progress into the stability watermark.
    Maintain {
        /// The shared Lamport clock at push time.
        clock: u64,
    },
    /// Attach a streaming consistency monitor to this worker. Each
    /// worker owns a disjoint shard (hence key) set, so per-worker
    /// monitors never see each other's keys and their counters sum
    /// exactly. Keys that already have engines are excluded — the
    /// monitor never judges history it did not watch.
    AttachMonitor {
        /// Sampling / window / peer configuration.
        cfg: MonitorConfig,
        /// Handle-side mirror the worker publishes stats into.
        cells: Arc<MonitorCells>,
    },
    /// Flush every engine's storage backend (durability point).
    FlushBackends,
    /// Flush barrier: ack once every earlier job on this inbox is done.
    Barrier(Sender<()>),
    /// Cut barrier: evaluate the snapshot cut against every owned
    /// key's log (fold of the prefix stamped `≤ cut`) and reply with
    /// the per-key states — without stopping ingest on other workers.
    /// FIFO inboxes make the reply reflect every earlier submission.
    Cut {
        /// The cut timestamp.
        cut: u64,
        /// Per-key states at the cut, or the first [`CutError`] hit.
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<Vec<(Key, <A as UqAdt>::State)>, CutError>>,
    },
    /// Anti-entropy heal: collect every owned update stamped strictly
    /// above `since` — skipping shards whose divergence high water
    /// never passed it, and excluding `exclude_pid`'s own updates —
    /// and reply with the keyed suffix. Flushes each touched engine's
    /// backend first (heal is a durability point).
    CollectSuffix {
        since: u64,
        exclude_pid: u32,
        #[allow(clippy::type_complexity)]
        reply: Sender<Vec<(Key, UpdateMsg<<A as UqAdt>::Update>)>>,
    },
    /// Digest-guided heal, step 1: fold every owned suffix entry
    /// above `since` (excluding `exclude_pid`'s own updates) into a
    /// `groups * ranges` slot array. Workers own disjoint shards, so
    /// the handle xor-merges the per-worker arrays into the exact
    /// digests a sequential [`UcStore::digest_suffix`] would produce.
    DigestSuffix {
        since: u64,
        exclude_pid: u32,
        groups: u32,
        ranges: u32,
        reply: Sender<Vec<HealDigest>>,
    },
    /// Digest-guided heal, step 2: every owned `(shard, key)` whose
    /// shard's divergence high water passed `since` — the candidate
    /// universe a [`HealSession`] filters down to its mismatched
    /// slots.
    HealCandidates {
        since: u64,
        #[allow(clippy::type_complexity)]
        reply: Sender<Vec<(usize, Key)>>,
    },
    /// Digest-guided heal, step 3: one bounded-window suffix read for
    /// one key (the pooled
    /// [`ReplicaEngine::suffix_since_window`](crate::engine::ReplicaEngine::suffix_since_window)
    /// cursor) — O(limit) payload per job, never the whole tail.
    CollectWindow {
        shard: usize,
        key: Key,
        since: u64,
        after: Option<Timestamp>,
        limit: usize,
        #[allow(clippy::type_complexity)]
        reply: Sender<(Vec<UpdateMsg<<A as UqAdt>::Update>>, bool)>,
    },
    /// Pin (or release) every owned engine's compaction at a
    /// retention cap while partitioned peers are marked down — see
    /// [`RepairStrategy::set_retention_cap`](crate::engine::RepairStrategy::set_retention_cap).
    Retention { cap: Option<u64> },
}

/// One epoch-published snapshot entry: a key's post-repair state plus
/// the **cut era** it was published in (the value of
/// `PoolCore::cut_seq` at publication). Wait-free multi-key readers
/// ([`PoolHandle::query_snapshot_multi`]) compare eras to detect a
/// concurrent cut barrier and retry instead of returning a view that
/// straddles it.
struct SnapEntry<A: UqAdt> {
    state: A::State,
    cut_epoch: u64,
}

/// The key → snapshot-cell registry for one shard. The registry map
/// itself is epoch-published (its writer is the shard's owning
/// worker), so readers discover new keys with the same wait-free load
/// they use for the states.
type SnapMap<A> = HashMap<Key, Arc<Published<SnapEntry<A>>>>;

struct ShardSnapshots<A: UqAdt> {
    keys: Published<SnapMap<A>>,
}

impl<A: UqAdt> Default for ShardSnapshots<A> {
    fn default() -> Self {
        ShardSnapshots {
            keys: Published::new(),
        }
    }
}

/// The persisted clock-floor lease, shared by every handle. The
/// fast path (stamp already covered by the on-disk floor) is one
/// atomic load; the slow path — once per [`CLOCK_LEASE`] stamps —
/// serializes on the latch, re-checks, persists `issued +
/// CLOCK_LEASE`, and only then publishes the new floor, so a stamp
/// can never be broadcast before the disk write that makes it
/// unrepeatable lands. (Same crash-soundness argument as
/// [`UcStore::reserve_clock`]: a re-issued timestamp would silently
/// dedup away at peers and diverge the cluster.)
struct ClockLease {
    /// Highest floor known persisted; `u64::MAX` = nothing yet.
    persisted: AtomicU64,
    /// Serializes slow-path floor writes.
    latch: Mutex<()>,
}

const NO_FLOOR: u64 = u64::MAX;

impl ClockLease {
    fn new() -> Self {
        ClockLease {
            persisted: AtomicU64::new(NO_FLOOR),
            latch: Mutex::new(()),
        }
    }

    /// Ensure the persisted floor covers `issued` before it can be
    /// broadcast.
    fn reserve(&self, issued: u64, persist: impl Fn(u64)) {
        let p = self.persisted.load(Ordering::SeqCst);
        if p != NO_FLOOR && issued <= p {
            return;
        }
        let _g = self.latch.lock().unwrap_or_else(|e| e.into_inner());
        let p = self.persisted.load(Ordering::SeqCst);
        if p != NO_FLOOR && issued <= p {
            return;
        }
        let floor = issued + CLOCK_LEASE;
        persist(floor);
        // Publish only after the write: a concurrent stamper's fast
        // path must never trust a floor that is not on disk yet.
        self.persisted.store(floor, Ordering::SeqCst);
    }

    /// Raise the floor to `clock` if it is above the lease (possible
    /// after large peer-clock merges). Never lowers — with concurrent
    /// stampers a downward write could undercut a stamp that already
    /// passed its fast-path check.
    fn raise_to(&self, clock: u64, persist: impl Fn(u64)) {
        let _g = self.latch.lock().unwrap_or_else(|e| e.into_inner());
        let p = self.persisted.load(Ordering::SeqCst);
        if p == NO_FLOOR || clock > p {
            persist(clock);
            self.persisted.store(clock, Ordering::SeqCst);
        }
    }

    /// Collapse the floor to the exact clock. **Quiesced callers
    /// only** (finish/drop, after the workers joined): lowering the
    /// floor is sound only when no stamp above `clock` can be in
    /// flight.
    fn collapse(&self, clock: u64, persist: impl Fn(u64)) {
        let _g = self.latch.lock().unwrap_or_else(|e| e.into_inner());
        if self.persisted.load(Ordering::SeqCst) != clock {
            persist(clock);
            self.persisted.store(clock, Ordering::SeqCst);
        }
    }
}

/// State shared by every [`PoolHandle`], the [`IngestPool`], and the
/// workers. Generic over the ADT only — worker-side strategy and
/// backend state lives in each worker's `WorkerState`.
struct PoolCore<A: UqAdt> {
    pid: u32,
    clock: LamportClock,
    lease: ClockLease,
    num_shards: usize,
    backpressure: Backpressure,
    inboxes: Vec<Inbox<Job<A>>>,
    counters: Vec<SharedCounters>,
    snaps: Vec<ShardSnapshots<A>>,
    /// First worker panic wins; the per-call check is a plain load.
    poison: OnceLock<PoolError>,
    /// Per-shard snapshot arming, set by the first snapshot read of a
    /// key in that shard. Workers backfill and publish only armed
    /// shards, so the first snapshot query on a huge store pays for
    /// one shard's keys, not all of them.
    armed: Vec<AtomicBool>,
    /// Cut-barrier era: bumped by [`PoolHandle::snapshot_at`] before
    /// the cut jobs are pushed; published snapshot entries carry the
    /// era current at publication.
    cut_seq: AtomicU64,
}

impl<A: UqAdt> PoolCore<A> {
    fn worker_of(&self, shard: usize) -> usize {
        shard % self.inboxes.len()
    }
}

/// Everything a worker owns: its shards plus what engine creation
/// needs on first touch of a key.
struct WorkerState<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A>> {
    /// `(global shard index, shard)`, in ascending index order.
    shards: OwnedShards<A, F::Strategy, P::Backend>,
    adt: A,
    pid: u32,
    factory: F,
    persist: P,
    /// Streaming consistency monitor over this worker's keys (see
    /// [`Job::AttachMonitor`]); `None` until one is attached.
    monitor: Option<OnlineMonitor<A>>,
    /// Where monitor stats are mirrored for the handle to read.
    monitor_cells: Option<Arc<MonitorCells>>,
}

/// Flush every engine backend of a worker's owned shards — shared by
/// the `FlushBackends` job and both worker-exit paths (drain-on-drop
/// and poisoning), so the flush discipline cannot drift between them.
fn flush_owned_shards<A, S, B>(shards: &mut [(usize, Shard<A, S, B>)])
where
    A: UqAdt + Clone,
    S: crate::engine::RepairStrategy<A>,
    B: crate::backend::LogBackend<A>,
{
    for (_, shard) in shards {
        shard.flush_backends();
    }
}

/// Find `global` among a worker's owned shards (a handful of entries;
/// linear scan beats hashing).
fn shard_mut<A: UqAdt, S, B>(
    shards: &mut [(usize, Shard<A, S, B>)],
    global: usize,
) -> &mut Shard<A, S, B> {
    let slot = shards
        .iter()
        .position(|(idx, _)| *idx == global)
        .expect("shard routed to its owning worker");
    &mut shards[slot].1
}

impl<A, F, P> WorkerState<A, F, P>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    /// Flush every owned engine's storage backend (both worker-exit
    /// paths run this, so no join ever leaves an unsynced segment
    /// behind; the `FlushBackends` job shares the same helper).
    fn flush_backends(&mut self) {
        flush_owned_shards(&mut self.shards);
    }

    fn run(&mut self, job: Job<A>, counters: &SharedCounters) {
        let WorkerState {
            shards,
            adt,
            pid,
            factory,
            persist,
            monitor,
            monitor_cells,
        } = self;
        match job {
            Job::Ingest(buckets) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                for (global, bucket) in buckets {
                    counters
                        .messages
                        .fetch_add(bucket.len() as u64, Ordering::Relaxed);
                    if let Some(mon) = monitor.as_mut() {
                        for (key, msg) in &bucket {
                            mon.observe_update(*key, msg.ts.clock, msg.ts.pid, &msg.update);
                        }
                    }
                    shard_mut(shards, global).ingest(bucket, adt, *pid, factory, persist);
                }
            }
            Job::Update { shard, key, msg } => {
                counters.messages.fetch_add(1, Ordering::Relaxed);
                let sh = shard_mut(shards, shard);
                sh.note_clock(msg.ts.clock);
                if let Some(mon) = monitor.as_mut() {
                    mon.observe_update(key, msg.ts.clock, msg.ts.pid, &msg.update);
                }
                sh.engine_mut(key, adt, *pid, factory, persist)
                    .local_update_at(msg.ts, msg.update);
            }
            Job::Query {
                shard,
                key,
                now,
                q,
                reply,
            } => {
                let sh = shard_mut(shards, shard);
                let out = if sh.objects.contains_key(&key) {
                    let engine = sh.engine_mut(key, adt, *pid, factory, persist);
                    let out = engine.do_query_at(now, &q);
                    if let Some(mon) = monitor.as_mut() {
                        if mon.sampled(key) {
                            let state = engine.materialize();
                            mon.check_query_state(key, &state);
                        }
                    }
                    out
                } else {
                    // Untouched keys answer from the initial state
                    // without materializing an engine (same as
                    // `UcStore::query`).
                    if let Some(mon) = monitor.as_mut() {
                        mon.check_query_state(key, &adt.initial());
                    }
                    adt.observe(&adt.initial(), &q)
                };
                // The handle may have given up waiting (poisoned
                // pool); a dead reply channel is not this worker's
                // problem.
                let _ = reply.send(out);
            }
            Job::Heartbeat { pid, clock } => {
                if let Some(mon) = monitor.as_mut() {
                    mon.observe_heartbeat(pid, clock);
                }
                for (_, shard) in shards {
                    shard.observe_peer_clock(pid, clock);
                }
            }
            Job::Maintain { clock } => {
                if let Some(mon) = monitor.as_mut() {
                    // The maintenance tick doubles as the monitor's
                    // window roll: fold our own progress into the
                    // stability watermark, compact finalized prefixes,
                    // then EC-sweep the sampled keys' live states.
                    mon.observe_heartbeat(*pid, clock);
                    mon.tick();
                    for (_, shard) in shards.iter_mut() {
                        for (key, engine) in shard.objects.iter_mut() {
                            if mon.sampled(*key) {
                                let state = engine.materialize();
                                mon.check_tick_state(*key, &state);
                            }
                        }
                    }
                }
                for (_, shard) in shards {
                    shard.tick_maintenance();
                }
            }
            Job::FlushBackends => {
                flush_owned_shards(shards);
            }
            Job::Barrier(reply) => {
                let _ = reply.send(());
            }
            Job::Cut { cut, reply } => {
                let mut out = Vec::new();
                let mut failed = None;
                'shards: for (_, shard) in shards.iter_mut() {
                    for (key, engine) in shard.objects.iter_mut() {
                        match engine.state_at_cut(cut) {
                            Ok(state) => out.push((*key, state)),
                            Err(e) => {
                                failed = Some(e);
                                break 'shards;
                            }
                        }
                    }
                }
                if failed.is_none() {
                    if let Some(mon) = monitor.as_mut() {
                        for (key, state) in &out {
                            mon.observe_cut(cut, *key, state);
                        }
                    }
                }
                // A dead reply channel (caller gave up on a poisoned
                // pool) is not this worker's problem.
                let _ = reply.send(match failed {
                    Some(e) => Err(e),
                    None => Ok(out),
                });
            }
            Job::CollectSuffix {
                since,
                exclude_pid,
                reply,
            } => {
                let mut out = Vec::new();
                for (_, shard) in shards.iter_mut() {
                    if shard.high_water <= since {
                        continue;
                    }
                    for (key, engine) in shard.objects.iter_mut() {
                        for msg in engine.suffix_since(since) {
                            if msg.ts.pid != exclude_pid {
                                out.push((*key, msg));
                            }
                        }
                    }
                }
                // A dead reply channel (caller gave up on a poisoned
                // pool) is not this worker's problem.
                let _ = reply.send(out);
            }
            Job::DigestSuffix {
                since,
                exclude_pid,
                groups,
                ranges,
                reply,
            } => {
                let mut slots = vec![HealDigest::default(); (groups as usize) * (ranges as usize)];
                for (_, shard) in shards.iter_mut() {
                    if shard.high_water <= since {
                        continue;
                    }
                    for (key, engine) in shard.objects.iter_mut() {
                        let slot = digest_slot(*key, groups, ranges) as usize;
                        engine.digest_suffix(since, |ts, hash| {
                            if ts.pid != exclude_pid {
                                slots[slot].fold(hash);
                            }
                        });
                    }
                }
                let _ = reply.send(slots);
            }
            Job::HealCandidates { since, reply } => {
                let mut out = Vec::new();
                for (idx, shard) in shards.iter() {
                    if shard.high_water <= since {
                        continue;
                    }
                    out.extend(shard.objects.keys().map(|k| (*idx, *k)));
                }
                let _ = reply.send(out);
            }
            Job::CollectWindow {
                shard,
                key,
                since,
                after,
                limit,
                reply,
            } => {
                let sh = shard_mut(shards, shard);
                let out = match sh.objects.get_mut(&key) {
                    Some(engine) => engine.suffix_since_window(since, after, limit),
                    // The key vanished mid-plan (cannot happen while
                    // the session pins retention, but stay total).
                    None => (Vec::new(), false),
                };
                let _ = reply.send(out);
            }
            Job::Retention { cap } => {
                for (_, shard) in shards {
                    shard.set_retention_cap(cap);
                }
            }
            Job::AttachMonitor { cfg, cells } => {
                let mut mon = OnlineMonitor::new(adt.clone(), cfg);
                for (_, shard) in shards.iter() {
                    mon.exclude_keys(shard.objects.keys().copied());
                }
                *monitor = Some(mon);
                *monitor_cells = Some(cells);
            }
        }
        // Mirror the (worker-private) monitor counters for the handle
        // after every job — ~15 relaxed stores, only when attached.
        if let (Some(mon), Some(cells)) = (monitor.as_ref(), monitor_cells.as_ref()) {
            cells.publish(mon.stats());
        }
    }
}

/// Which `(shard, key)` states a job will dirty (for snapshot
/// republication after the drain).
fn note_touched<A: UqAdt>(job: &Job<A>, touched: &mut BTreeSet<(usize, Key)>) {
    match job {
        Job::Ingest(buckets) => {
            for (shard, bucket) in buckets {
                for (key, _) in bucket {
                    touched.insert((*shard, *key));
                }
            }
        }
        Job::Update { shard, key, .. } => {
            touched.insert((*shard, *key));
        }
        // Queries, heartbeats, maintenance, flushes, and barriers
        // never change a key's folded state (compaction moves log
        // entries into the base without changing the fold).
        _ => {}
    }
}

/// Worker-local snapshot publisher: mirrors of each owned shard's
/// key→cell registry, plus the per-worker epoch sequence. Each cell
/// and each registry has exactly one writer (this worker), which is
/// what [`Published::publish`]'s single-writer contract needs.
struct SnapPublisher<A: UqAdt> {
    mirrors: HashMap<usize, SnapMap<A>>,
    seq: u64,
}

impl<A: UqAdt> SnapPublisher<A> {
    fn new() -> Self {
        SnapPublisher {
            mirrors: HashMap::new(),
            seq: 0,
        }
    }

    /// Publish `key`'s current engine state (if the key has an
    /// engine), tagged with the current cut era. Registry publication
    /// for brand-new keys is deferred to `flush_registries` so a
    /// backfill costs one map clone per shard, not per key.
    fn publish_key<F, P>(
        &mut self,
        core: &PoolCore<A>,
        state: &mut WorkerState<A, F, P>,
        shard_idx: usize,
        key: Key,
        dirty_registries: &mut BTreeSet<usize>,
        counters: &SharedCounters,
    ) where
        A: Clone,
        F: StrategyFactory<A>,
        P: BackendFactory<A>,
    {
        let sh = shard_mut(&mut state.shards, shard_idx);
        let Some(engine) = sh.objects.get_mut(&key) else {
            return;
        };
        let snapshot = Arc::new(SnapEntry {
            state: engine.materialize(),
            cut_epoch: core.cut_seq.load(Ordering::SeqCst),
        });
        self.seq += 1;
        counters.snaps_published.fetch_add(1, Ordering::Relaxed);
        let mirror = self.mirrors.entry(shard_idx).or_default();
        match mirror.get(&key) {
            Some(cell) => cell.publish(self.seq, snapshot),
            None => {
                let cell = Arc::new(Published::new());
                cell.publish(self.seq, snapshot);
                mirror.insert(key, cell);
                dirty_registries.insert(shard_idx);
            }
        }
    }

    /// Publish the registries that gained keys this drain.
    fn flush_registries(&mut self, core: &PoolCore<A>, dirty: &mut BTreeSet<usize>) {
        for shard_idx in std::mem::take(dirty) {
            if let Some(mirror) = self.mirrors.get(&shard_idx) {
                self.seq += 1;
                core.snaps[shard_idx]
                    .keys
                    .publish(self.seq, Arc::new(mirror.clone()));
            }
        }
    }

    /// Backfill one shard: publish every key it currently holds (run
    /// once per shard, when the worker first observes that shard
    /// armed). Incremental by construction — other owned shards pay
    /// nothing until a snapshot read arms them too.
    fn publish_shard<F, P>(
        &mut self,
        core: &PoolCore<A>,
        state: &mut WorkerState<A, F, P>,
        shard_idx: usize,
        dirty_registries: &mut BTreeSet<usize>,
        counters: &SharedCounters,
    ) where
        A: Clone,
        F: StrategyFactory<A>,
        P: BackendFactory<A>,
    {
        let keys: Vec<Key> = shard_mut(&mut state.shards, shard_idx)
            .objects
            .keys()
            .copied()
            .collect();
        for key in keys {
            self.publish_key(core, state, shard_idx, key, dirty_registries, counters);
        }
    }
}

/// Publish whatever snapshot work is pending, **per armed shard**: a
/// shard observed armed for the first time gets a one-off backfill of
/// its keys; shards backfilled earlier publish only the keys touched
/// since the last publication; unarmed shards publish nothing (their
/// touched entries are dropped — arming them later triggers their own
/// backfill). Runs at the end of every drain *and* immediately before
/// a barrier/cut ack, so a completed [`IngestPool::flush`] guarantees
/// the published snapshots cover every earlier submission.
#[allow(clippy::too_many_arguments)]
fn publish_pending<A, F, P>(
    core: &PoolCore<A>,
    state: &mut WorkerState<A, F, P>,
    publisher: &mut SnapPublisher<A>,
    backfilled: &mut BTreeSet<usize>,
    touched: &mut BTreeSet<(usize, Key)>,
    dirty_registries: &mut BTreeSet<usize>,
    counters: &SharedCounters,
) where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    let mut newly: Vec<usize> = Vec::new();
    for (idx, _) in &state.shards {
        if core.armed[*idx].load(Ordering::SeqCst) && !backfilled.contains(idx) {
            newly.push(*idx);
        }
    }
    for &idx in &newly {
        publisher.publish_shard(core, state, idx, dirty_registries, counters);
        backfilled.insert(idx);
    }
    for (shard_idx, key) in std::mem::take(touched) {
        // A just-backfilled shard already published this key's current
        // state; an unarmed shard waits for its own arming backfill.
        if backfilled.contains(&shard_idx) && !newly.contains(&shard_idx) {
            publisher.publish_key(core, state, shard_idx, key, dirty_registries, counters);
        }
    }
    publisher.flush_registries(core, dirty_registries);
}

/// Worker main loop: claim-and-drain the inbox until it is closed and
/// drained (finish/drop), flush every owned backend, then hand the
/// shards back through the join handle. Each claimed job runs
/// separately (identical repair accounting to the sequential path);
/// after each drain — and before each barrier ack — the worker
/// epoch-publishes the post-repair states of the touched keys if
/// snapshot reads are armed.
///
/// A panicking job records its payload in the shared `OnceLock`
/// poison slot, **flushes the backends** (the journal entries
/// appended before the panic are valid — only the in-memory fold is
/// suspect, and recovery refolds from the journal anyway), closes its
/// inbox (so parked producers fail fast instead of deadlocking), and
/// exits.
fn worker_loop<A, F, P>(
    mut state: WorkerState<A, F, P>,
    core: Arc<PoolCore<A>>,
    widx: usize,
) -> OwnedShards<A, F::Strategy, P::Backend>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    let inbox = &core.inboxes[widx];
    let counters = &core.counters[widx];
    inbox.register_consumer(std::thread::current());
    let mut batch: Vec<Job<A>> = Vec::new();
    let mut touched: BTreeSet<(usize, Key)> = BTreeSet::new();
    let mut dirty_registries: BTreeSet<usize> = BTreeSet::new();
    let mut publisher: SnapPublisher<A> = SnapPublisher::new();
    // Owned shards already backfilled into the snapshot registries.
    let mut backfilled: BTreeSet<usize> = BTreeSet::new();
    let any_armed = |state: &WorkerState<A, F, P>| {
        state
            .shards
            .iter()
            .any(|(idx, _)| core.armed[*idx].load(Ordering::SeqCst))
    };
    loop {
        inbox.claim(&mut batch);
        if batch.is_empty() {
            if inbox.closed_and_drained() {
                // One more claim is guaranteed to see every push that
                // ever succeeded (the close gate drained).
                inbox.claim(&mut batch);
                if batch.is_empty() {
                    break;
                }
            } else {
                inbox.wait();
                continue;
            }
        }
        for job in std::mem::take(&mut batch) {
            if matches!(job, Job::Barrier(_) | Job::Cut { .. }) && any_armed(&state) {
                publish_pending(
                    &core,
                    &mut state,
                    &mut publisher,
                    &mut backfilled,
                    &mut touched,
                    &mut dirty_registries,
                    counters,
                );
            }
            note_touched(&job, &mut touched);
            let outcome = catch_unwind(AssertUnwindSafe(|| state.run(job, counters)));
            counters.on_done();
            if let Err(payload) = outcome {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                let _ = core.poison.set(PoolError {
                    worker: widx,
                    message,
                });
                // A panicking shard must never leave an unsynced
                // segment: flush before abandoning (under
                // catch_unwind — a second panic must not tear the
                // whole process down mid-poison).
                let _ = catch_unwind(AssertUnwindSafe(|| state.flush_backends()));
                // Refuse further pushes (parked producers fail fast)
                // and drop whatever is queued: dropping query reply
                // senders unblocks waiting handles.
                inbox.close();
                let mut rest = Vec::new();
                inbox.claim(&mut rest);
                drop(rest);
                // The shards may hold a half-repaired engine; abandon
                // them rather than hand corrupt state back to
                // `finish`.
                return Vec::new();
            }
        }
        if any_armed(&state) {
            publish_pending(
                &core,
                &mut state,
                &mut publisher,
                &mut backfilled,
                &mut touched,
                &mut dirty_registries,
                counters,
            );
        } else {
            touched.clear();
        }
    }
    // Drain-on-drop / finish: everything queued has been applied; make
    // it durable before the join completes.
    state.flush_backends();
    state.shards
}

/// A cloneable, `&self` handle to a pooled store: lock-free stamping
/// and ingest, wait-free snapshot reads. Any number of handles (from
/// any number of threads) may stamp and submit concurrently; see the
/// [module docs](self) for the GC-strategy FIFO caveat on same-key
/// concurrent stamping.
pub struct PoolHandle<A, P = MemFactory>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    P: BackendFactory<A> + Send + Sync + 'static,
{
    core: Arc<PoolCore<A>>,
    adt: A,
    persist: P,
}

impl<A, P> Clone for PoolHandle<A, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    P: BackendFactory<A> + Send + Sync + 'static,
{
    fn clone(&self) -> Self {
        PoolHandle {
            core: Arc::clone(&self.core),
            adt: self.adt.clone(),
            persist: self.persist.clone(),
        }
    }
}

impl<A, P> PoolHandle<A, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    P: BackendFactory<A> + Send + Sync + 'static,
{
    fn err_for(&self, worker: usize) -> PoolError {
        self.core
            .poison
            .get()
            .cloned()
            .unwrap_or_else(|| PoolError::closed(worker))
    }

    /// Push a job, applying `policy` on a full inbox. `Ok(true)` =
    /// enqueued, `Ok(false)` = shed (counted).
    fn push_job(
        &self,
        worker: usize,
        mut job: Job<A>,
        policy: Backpressure,
    ) -> Result<bool, PoolError> {
        let core = &*self.core;
        let mut spins = 0u32;
        loop {
            if let Some(e) = core.poison.get() {
                return Err(e.clone());
            }
            // Count the job *before* it becomes visible: the worker
            // may claim and finish it (decrementing the depth) before
            // a post-push increment would land, wrapping the counter.
            core.counters[worker].on_enqueue();
            match core.inboxes[worker].push(job) {
                Ok(()) => {
                    return Ok(true);
                }
                Err(PushError::Full(j)) => {
                    core.counters[worker].on_done();
                    match policy {
                        Backpressure::Park => {
                            job = j;
                            // Bounded-depth backpressure: yield first,
                            // then sleep-park — the worker is mid-drain
                            // and will recycle slots shortly.
                            spins += 1;
                            if spins < 64 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                        Backpressure::Shed => {
                            core.counters[worker].on_shed();
                            return Ok(false);
                        }
                    }
                }
                Err(PushError::Closed(_)) => {
                    core.counters[worker].on_done();
                    return Err(self.err_for(worker));
                }
            }
        }
    }

    /// Perform a local update on `key`: tick the shared atomic clock
    /// (wait-free), reserve the crash floor (one load on the fast
    /// path), CAS-push onto the owning worker, and return the
    /// broadcast message — without waiting for the worker (inbox
    /// backpressure is the only throttle; local updates always park,
    /// never shed).
    pub fn update(&self, key: Key, u: A::Update) -> Result<StoreMsg<A::Update>, PoolError> {
        let ts = Timestamp::new(self.core.clock.tick(), self.core.pid);
        self.core
            .lease
            .reserve(ts.clock, |floor| self.persist.persist_store_clock(floor));
        let shard = shard_index(key, self.core.num_shards);
        let msg = UpdateMsg { ts, update: u };
        self.push_job(
            self.core.worker_of(shard),
            Job::Update {
                shard,
                key,
                msg: msg.clone(),
            },
            Backpressure::Park,
        )?;
        Ok(StoreMsg::Update { key, msg })
    }

    /// Strong read: round-trips through the owning worker, whose FIFO
    /// inbox guarantees the answer reflects every earlier submission
    /// from this handle touching the key (read-your-writes). Ticks
    /// the clock (Algorithm 1 line 13). For the wait-free weak read,
    /// see [`PoolHandle::query_snapshot`].
    pub fn query(&self, key: Key, q: &A::QueryIn) -> Result<A::QueryOut, PoolError> {
        let now = self.core.clock.tick();
        let shard = shard_index(key, self.core.num_shards);
        let worker = self.core.worker_of(shard);
        let (reply, answer) = channel();
        self.push_job(
            worker,
            Job::Query {
                shard,
                key,
                now,
                q: q.clone(),
                reply,
            },
            Backpressure::Park,
        )?;
        answer.recv().map_err(|_| self.err_for(worker))
    }

    /// Wait-free weak read: a load of the latest epoch-published
    /// post-repair snapshot. Never blocks behind a repair, a queued
    /// burst, or a poisoned pool; never ticks the clock. Keys without
    /// a published snapshot yet (including everything before the
    /// first flush after arming) answer from the ADT's initial state.
    ///
    /// Snapshot publication is *armed* per shard by the first call
    /// touching it; follow with [`IngestPool::flush`] (or any flush
    /// barrier) to backfill that shard's already-materialized keys —
    /// other shards pay nothing until a snapshot read arms them too.
    /// Epochs are per-worker monotone: a reader never observes a key's
    /// state regress (see [`PoolHandle::query_snapshot_versioned`]).
    pub fn query_snapshot(&self, key: Key, q: &A::QueryIn) -> A::QueryOut {
        self.query_snapshot_versioned(key, q).1
    }

    /// [`PoolHandle::query_snapshot`], plus the snapshot's epoch
    /// (0 = answered from the initial state). Epochs for one key only
    /// ever increase — the monotonic-read regression tests assert it.
    pub fn query_snapshot_versioned(&self, key: Key, q: &A::QueryIn) -> (u64, A::QueryOut) {
        let shard = shard_index(key, self.core.num_shards);
        self.core.armed[shard].store(true, Ordering::SeqCst);
        if let Some((_, map)) = self.core.snaps[shard].keys.load() {
            if let Some(cell) = map.get(&key) {
                if let Some((epoch, entry)) = cell.load() {
                    return (epoch, self.adt.observe(&entry.state, q));
                }
            }
        }
        (0, self.adt.observe(&self.adt.initial(), q))
    }

    /// Wait-free **multi-key** weak read that never straddles a cut
    /// barrier: every published entry carries the cut era it was
    /// published in, so the reader loads the current era, reads all
    /// keys, and retries (bounded) when it observes an entry from a
    /// later era or the era moved mid-read — the signature of a
    /// concurrent [`PoolHandle::snapshot_at`] republishing states
    /// around it. After [`SNAP_READ_RETRIES`] collisions it returns
    /// the latest entries anyway (wait-freedom beats era coherence;
    /// callers that need a hard guarantee take a barrier-cut
    /// snapshot). Like [`PoolHandle::query_snapshot`]: never blocks,
    /// never ticks the clock, unpublished keys answer from the
    /// initial state.
    pub fn query_snapshot_multi(&self, reqs: &[(Key, A::QueryIn)]) -> Vec<(Key, A::QueryOut)> {
        for (key, _) in reqs {
            let shard = shard_index(*key, self.core.num_shards);
            self.core.armed[shard].store(true, Ordering::SeqCst);
        }
        for _ in 0..SNAP_READ_RETRIES {
            let era = self.core.cut_seq.load(Ordering::SeqCst);
            if let Some(outs) = self.read_snapshot_multi(reqs, Some(era)) {
                if self.core.cut_seq.load(Ordering::SeqCst) == era {
                    return outs;
                }
            }
        }
        self.read_snapshot_multi(reqs, None)
            .expect("an era-unchecked read always completes")
    }

    /// One pass over `reqs`; `None` when `era` is given and an entry
    /// from a later cut era is observed.
    fn read_snapshot_multi(
        &self,
        reqs: &[(Key, A::QueryIn)],
        era: Option<u64>,
    ) -> Option<Vec<(Key, A::QueryOut)>> {
        let mut outs = Vec::with_capacity(reqs.len());
        for (key, q) in reqs {
            let shard = shard_index(*key, self.core.num_shards);
            let entry = self.core.snaps[shard]
                .keys
                .load()
                .and_then(|(_, map)| map.get(key).cloned())
                .and_then(|cell| cell.load());
            match entry {
                Some((_, e)) => {
                    if era.is_some_and(|era| e.cut_epoch > era) {
                        return None;
                    }
                    outs.push((*key, self.adt.observe(&e.state, q)));
                }
                None => outs.push((*key, self.adt.observe(&self.adt.initial(), q))),
            }
        }
        Some(outs)
    }

    /// Barrier-cut snapshot at `cut`: bump the cut era, push a
    /// [`Job::Cut`] to every worker, and assemble the per-key states
    /// each worker folded from its logs' prefixes stamped `≤ cut` —
    /// workers keep ingesting around the cut (only the cut's own FIFO
    /// position orders it). Every key's state reflects exactly the
    /// updates stamped `≤ cut` that its worker had delivered when the
    /// cut job ran; submissions older than the cut job on the same
    /// handle are always covered (FIFO). Ticks the shared clock, so
    /// updates issued after the snapshot order after everything it
    /// could observe. Errors when `cut` predates a key's compaction
    /// bound, or when the pool is poisoned/closed.
    pub fn snapshot_at(&self, cut: u64) -> Result<StoreSnapshot<A>, SnapshotError> {
        self.core.clock.tick();
        self.snapshot_no_tick(cut)
    }

    /// A snapshot at the current clock, preceded by a full flush: every
    /// submission made before this call is applied, then the cut is
    /// taken strictly above every stamp issued so far — always
    /// answerable (never a [`CutError`]) and inclusive of everything
    /// flushed.
    pub fn consistent_snapshot(&self) -> Result<StoreSnapshot<A>, SnapshotError> {
        self.flush().map_err(SnapshotError::Pool)?;
        let cut = self.core.clock.tick();
        self.snapshot_no_tick(cut)
    }

    fn snapshot_no_tick(&self, cut: u64) -> Result<StoreSnapshot<A>, SnapshotError> {
        self.core.cut_seq.fetch_add(1, Ordering::SeqCst);
        let workers = self.core.inboxes.len();
        let mut acks = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (reply, ack) = channel();
            self.push_job(worker, Job::Cut { cut, reply }, Backpressure::Park)
                .map_err(SnapshotError::Pool)?;
            acks.push((worker, ack));
        }
        let mut states = BTreeMap::new();
        let mut cut_err: Option<CutError> = None;
        for (worker, ack) in acks {
            match ack.recv() {
                Ok(Ok(part)) => states.extend(part),
                Ok(Err(e)) => cut_err = Some(e),
                Err(_) => return Err(SnapshotError::Pool(self.err_for(worker))),
            }
        }
        if let Some(e) = cut_err {
            return Err(SnapshotError::Cut(e));
        }
        Ok(StoreSnapshot::new(self.adt.clone(), cut, states))
    }

    /// Ingest a whole peer burst: updates are bucketed by shard and
    /// pushed to their owning workers as one job each; heartbeats are
    /// collapsed and broadcast to every worker afterwards (exactly
    /// the sequential [`UcStore::apply_batch`] order, so results are
    /// identical). Under [`Backpressure::Shed`], bursts and
    /// heartbeats that meet a full inbox are dropped and counted.
    pub fn submit_batch(&self, msgs: Vec<StoreMsg<A::Update>>) -> Result<(), PoolError> {
        // Same routing helper as `UcStore::apply_batch`, so shard
        // assignment and clock accounting cannot drift between the
        // sequential and pooled ingest paths.
        let (buckets, heartbeats, max_clock) = split_by_shard(msgs, self.core.num_shards);
        self.core.clock.merge(max_clock);
        let policy = self.core.backpressure;
        let workers = self.core.inboxes.len();
        let mut jobs: Vec<ShardBuckets<A>> = (0..workers).map(|_| Vec::new()).collect();
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                jobs[self.core.worker_of(shard)].push((shard, bucket));
            }
        }
        for (worker, job) in jobs.into_iter().enumerate() {
            if !job.is_empty() {
                self.push_job(worker, Job::Ingest(job), policy)?;
            }
        }
        for (pid, clock) in collapse_heartbeats(heartbeats) {
            self.core.clock.merge(clock);
            for worker in 0..workers {
                self.push_job(worker, Job::Heartbeat { pid, clock }, policy)?;
            }
        }
        Ok(())
    }

    /// Barrier: block until every submission made before this call
    /// has been fully applied by its worker (and, if snapshot reads
    /// are armed, its post-repair state published).
    pub fn flush(&self) -> Result<(), PoolError> {
        let workers = self.core.inboxes.len();
        let mut acks = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (reply, ack) = channel();
            self.push_job(worker, Job::Barrier(reply), Backpressure::Park)?;
            acks.push((worker, ack));
        }
        for (worker, ack) in acks {
            ack.recv().map_err(|_| self.err_for(worker))?;
        }
        Ok(())
    }

    /// Collect every update stamped strictly above `since` across all
    /// workers, excluding those issued by `exclude_pid`, in timestamp
    /// order — the pooled heal path. Each worker's FIFO inbox orders
    /// the collection after every earlier submission from this
    /// handle, so the suffix covers everything submitted before the
    /// call.
    #[allow(clippy::type_complexity)]
    pub fn collect_suffix(
        &self,
        since: u64,
        exclude_pid: u32,
    ) -> Result<Vec<(Key, UpdateMsg<A::Update>)>, PoolError> {
        let workers = self.core.inboxes.len();
        let mut acks = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (reply, ack) = channel();
            self.push_job(
                worker,
                Job::CollectSuffix {
                    since,
                    exclude_pid,
                    reply,
                },
                Backpressure::Park,
            )?;
            acks.push((worker, ack));
        }
        let mut out = Vec::new();
        for (worker, ack) in acks {
            match ack.recv() {
                Ok(part) => out.extend(part),
                Err(_) => return Err(self.err_for(worker)),
            }
        }
        out.sort_by_key(|(_, m)| m.ts);
        Ok(out)
    }

    /// Per-(group, key-range) digests of the retained suffix above
    /// `since`, excluding `exclude_pid`'s updates — the pooled mirror
    /// of [`UcStore::digest_suffix`]. Each worker folds its disjoint
    /// shard set; the slot arrays xor-merge exactly (xor commutes and
    /// counts add), so the result is independent of worker layout.
    pub fn digest_suffix(
        &self,
        since: u64,
        exclude_pid: u32,
        groups: u32,
        ranges: u32,
    ) -> Result<Vec<HealDigest>, PoolError> {
        let workers = self.core.inboxes.len();
        let mut acks = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (reply, ack) = channel();
            self.push_job(
                worker,
                Job::DigestSuffix {
                    since,
                    exclude_pid,
                    groups,
                    ranges,
                    reply,
                },
                Backpressure::Park,
            )?;
            acks.push((worker, ack));
        }
        let mut slots = vec![HealDigest::default(); (groups as usize) * (ranges as usize)];
        for (worker, ack) in acks {
            match ack.recv() {
                Ok(part) => {
                    for (slot, d) in slots.iter_mut().zip(part) {
                        slot.count += d.count;
                        slot.xor ^= d.xor;
                    }
                }
                Err(_) => return Err(self.err_for(worker)),
            }
        }
        Ok(slots)
    }

    /// Every `(shard, key)` in shards whose divergence high water
    /// passed `since` — the candidate universe for a heal session's
    /// streaming plan (same pre-filter the digests use).
    #[allow(clippy::type_complexity)]
    pub fn heal_candidates(&self, since: u64) -> Result<Vec<(usize, Key)>, PoolError> {
        let workers = self.core.inboxes.len();
        let mut acks = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (reply, ack) = channel();
            self.push_job(
                worker,
                Job::HealCandidates { since, reply },
                Backpressure::Park,
            )?;
            acks.push((worker, ack));
        }
        let mut out = Vec::new();
        for (worker, ack) in acks {
            match ack.recv() {
                Ok(part) => out.extend(part),
                Err(_) => return Err(self.err_for(worker)),
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// One bounded-window suffix read against `key`'s owning worker —
    /// the pooled chunk reader (see
    /// [`ReplicaEngine::suffix_since_window`](crate::engine::ReplicaEngine::suffix_since_window)).
    #[allow(clippy::type_complexity)]
    pub fn collect_window(
        &self,
        shard: usize,
        key: Key,
        since: u64,
        after: Option<Timestamp>,
        limit: usize,
    ) -> Result<(Vec<UpdateMsg<A::Update>>, bool), PoolError> {
        let worker = self.core.worker_of(shard);
        let (reply, ack) = channel();
        self.push_job(
            worker,
            Job::CollectWindow {
                shard,
                key,
                since,
                after,
                limit,
                reply,
            },
            Backpressure::Park,
        )?;
        ack.recv().map_err(|_| self.err_for(worker))
    }

    /// Pin (or release) compaction on every worker's engines. FIFO
    /// inboxes order the pin before any later submission, so a
    /// following [`PoolHandle::collect_suffix`] streams under it.
    pub fn set_retention(&self, cap: Option<u64>) -> Result<(), PoolError> {
        for worker in 0..self.core.inboxes.len() {
            self.push_job(worker, Job::Retention { cap }, Backpressure::Park)?;
        }
        Ok(())
    }

    /// This replica's process id.
    pub fn pid(&self) -> u32 {
        self.core.pid
    }

    /// The shared Lamport clock's current value.
    pub fn clock(&self) -> u64 {
        self.core.clock.now()
    }
}

struct WorkerJoin<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A>> {
    #[allow(clippy::type_complexity)]
    thread: Option<JoinHandle<OwnedShards<A, F::Strategy, P::Backend>>>,
}

/// The owning handle to a pooled [`UcStore`]: routes work to the
/// persistent shard workers through lock-free claim inboxes and
/// reassembles the store on [`IngestPool::finish`]. Cheap cloneable
/// `&self` access for other threads comes from
/// [`IngestPool::handle`]. Generic over the store's
/// [`BackendFactory`], so pooled stores persist exactly like
/// sequential ones (to reopen a persistent pooled store, use
/// [`UcStore::reopen`] and pool the result). See the [module
/// docs](self).
pub struct IngestPool<A, F, P = MemFactory>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + Sync + 'static,
    P::Backend: Send + 'static,
{
    handle: PoolHandle<A, P>,
    factory: F,
    workers: Vec<WorkerJoin<A, F, P>>,
    /// Down-peer bookkeeping and the minority-read policy (protocol
    /// state — lives on the owning handle, not the workers).
    partition: PartitionTracker,
    /// Estimated wire bytes of every [`StoreMsg::Repair`] burst this
    /// pool has emitted on heal.
    heal_replay_bytes: u64,
    /// Chunked-heal tuning (see [`HealConfig`]).
    heal_cfg: HealConfig,
    /// Live digest-guided heal sessions, keyed by healing peer —
    /// protocol state on the owning handle, exactly like the
    /// sequential store's.
    heal_sessions: BTreeMap<Pid, HealSession>,
    heal_next_session: u64,
    heal_chunks: u64,
    heal_digest_skips: u64,
    heal_bytes_in_flight: u64,
    /// Shared protocol-side counters, folded into the owning
    /// runtime's [`uc_sim::Metrics`] when attached.
    link_counters: Option<Arc<LinkCounters>>,
    /// One mirror per worker of that worker's streaming-monitor
    /// counters; empty until [`IngestPool::attach_monitor`].
    monitor_cells: Vec<Arc<MonitorCells>>,
}

/// Same reservation width as the sequential store: one persisted
/// floor write buys this many locally issued timestamps.
const CLOCK_LEASE: u64 = 4096;

impl<A, F, P> IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + Sync + 'static,
    P::Backend: Send + 'static,
{
    /// Move `store`'s shards onto `cfg.workers` long-lived threads
    /// (shard `i` pins to worker `i % workers`) and return the handle.
    pub fn spawn(store: UcStore<A, F, P>, cfg: PoolConfig) -> Self {
        let (adt, pid, clock, factory, persist, shards) = store.into_parts();
        let num_shards = shards.len();
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = if cfg.workers == 0 { hw } else { cfg.workers }
            .min(num_shards)
            .max(1);
        let queue_depth = cfg.queue_depth.max(1);

        let mut owned: Vec<OwnedShards<A, F::Strategy, P::Backend>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (idx, shard) in shards.into_iter().enumerate() {
            owned[idx % workers].push((idx, shard));
        }
        let core = Arc::new(PoolCore {
            pid,
            clock,
            lease: ClockLease::new(),
            num_shards,
            backpressure: cfg.backpressure,
            inboxes: (0..workers).map(|_| Inbox::new(queue_depth)).collect(),
            counters: (0..workers).map(|_| SharedCounters::default()).collect(),
            snaps: (0..num_shards).map(|_| ShardSnapshots::default()).collect(),
            poison: OnceLock::new(),
            armed: (0..num_shards).map(|_| AtomicBool::new(false)).collect(),
            cut_seq: AtomicU64::new(0),
        });
        let joins = owned
            .into_iter()
            .enumerate()
            .map(|(widx, shards)| {
                let state = WorkerState {
                    shards,
                    adt: adt.clone(),
                    pid,
                    factory: factory.clone(),
                    persist: persist.clone(),
                    monitor: None,
                    monitor_cells: None,
                };
                let core = Arc::clone(&core);
                let thread = std::thread::spawn(move || worker_loop(state, core, widx));
                WorkerJoin {
                    thread: Some(thread),
                }
            })
            .collect();
        IngestPool {
            handle: PoolHandle { core, adt, persist },
            factory,
            workers: joins,
            partition: PartitionTracker::default(),
            heal_replay_bytes: 0,
            heal_cfg: HealConfig::default(),
            heal_sessions: BTreeMap::new(),
            heal_next_session: 0,
            heal_chunks: 0,
            heal_digest_skips: 0,
            heal_bytes_in_flight: 0,
            link_counters: None,
            monitor_cells: Vec::new(),
        }
    }

    /// A cloneable `&self` handle for concurrent producers/readers on
    /// other threads. Handles stay valid (but error on submission)
    /// after [`IngestPool::finish`]/drop; their snapshot reads keep
    /// answering from the last published state.
    pub fn handle(&self) -> PoolHandle<A, P> {
        self.handle.clone()
    }

    /// Perform a local update on `key` (see [`PoolHandle::update`]).
    pub fn update(&mut self, key: Key, u: A::Update) -> Result<StoreMsg<A::Update>, PoolError> {
        self.handle.update(key, u)
    }

    /// Strong read through the owning worker (see
    /// [`PoolHandle::query`]).
    pub fn query(&mut self, key: Key, q: &A::QueryIn) -> Result<A::QueryOut, PoolError> {
        self.handle.query(key, q)
    }

    /// Wait-free weak read of the latest published snapshot (see
    /// [`PoolHandle::query_snapshot`]).
    pub fn query_snapshot(&self, key: Key, q: &A::QueryIn) -> A::QueryOut {
        self.handle.query_snapshot(key, q)
    }

    /// Wait-free multi-key weak read that never straddles a cut (see
    /// [`PoolHandle::query_snapshot_multi`]).
    pub fn query_snapshot_multi(&self, reqs: &[(Key, A::QueryIn)]) -> Vec<(Key, A::QueryOut)> {
        self.handle.query_snapshot_multi(reqs)
    }

    /// Barrier-cut multi-key snapshot at `cut` (see
    /// [`PoolHandle::snapshot_at`]).
    pub fn snapshot_at(&mut self, cut: u64) -> Result<StoreSnapshot<A>, SnapshotError> {
        self.handle.snapshot_at(cut)
    }

    /// Flush, then snapshot at the current clock (see
    /// [`PoolHandle::consistent_snapshot`]).
    pub fn consistent_snapshot(&mut self) -> Result<StoreSnapshot<A>, SnapshotError> {
        self.handle.consistent_snapshot()
    }

    /// Ingest a whole peer burst (see [`PoolHandle::submit_batch`]).
    pub fn submit_batch(&mut self, msgs: Vec<StoreMsg<A::Update>>) -> Result<(), PoolError> {
        self.handle.submit_batch(msgs)
    }

    /// Barrier: block until every prior submission has been applied.
    pub fn flush(&mut self) -> Result<(), PoolError> {
        self.handle.flush()
    }

    /// Announce the shared clock (stability heartbeat covering every
    /// key at once).
    pub fn heartbeat(&self) -> StoreMsg<A::Update> {
        StoreMsg::Heartbeat {
            pid: self.handle.core.pid,
            clock: self.handle.core.clock.now(),
        }
    }

    /// Run per-key maintenance (compaction) on every worker's engines.
    pub fn tick_maintenance(&mut self) -> Result<(), PoolError> {
        let clock = self.handle.core.clock.now();
        for worker in 0..self.workers.len() {
            self.handle
                .push_job(worker, Job::Maintain { clock }, Backpressure::Park)?;
        }
        Ok(())
    }

    /// Flush every worker's storage backends and raise the persisted
    /// clock watermark if the clock overtook the lease. Asynchronous —
    /// the job lands in FIFO order behind all prior submissions;
    /// follow with [`IngestPool::flush`] to wait for durability.
    /// (Both worker-exit paths — drain-on-drop and poisoning — also
    /// flush, so dropping the handle never leaves an unsynced
    /// segment.) The floor is **not** collapsed downward here: with
    /// concurrent stampers that could undercut a stamp that already
    /// passed its lease check; exact collapse happens at the quiesced
    /// finish/drop points.
    pub fn flush_backends(&mut self) -> Result<(), PoolError> {
        for worker in 0..self.workers.len() {
            self.handle
                .push_job(worker, Job::FlushBackends, Backpressure::Park)?;
        }
        let core = &self.handle.core;
        core.lease.raise_to(core.clock.now(), |floor| {
            self.handle.persist.persist_store_clock(floor)
        });
        Ok(())
    }

    /// This replica's process id.
    pub fn pid(&self) -> u32 {
        self.handle.core.pid
    }

    /// The shared Lamport clock's current value.
    pub fn clock(&self) -> u64 {
        self.handle.core.clock.now()
    }

    /// Number of shards (unchanged from the pooled store).
    pub fn num_shards(&self) -> usize {
        self.handle.core.num_shards
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Choose how this pooled replica answers reads while in a
    /// minority partition — see
    /// [`AvailabilityPolicy`](crate::store::AvailabilityPolicy).
    /// Updates are never refused (writes stay wait-free).
    pub fn set_partition_policy(&mut self, policy: AvailabilityPolicy) {
        self.partition.set_policy(policy);
    }

    /// The partition tracker: down peers, outage-start watermarks,
    /// and the active read policy.
    pub fn partition(&self) -> &PartitionTracker {
        &self.partition
    }

    /// Attach shared link counters so heal-replay traffic is folded
    /// into the owning runtime's [`uc_sim::Metrics`].
    pub fn attach_link_counters(&mut self, counters: Arc<LinkCounters>) {
        self.link_counters = Some(counters);
    }

    /// Attach a streaming consistency monitor to every worker (same
    /// semantics as [`UcStore::attach_monitor`]: keys that already
    /// have engines are excluded, so attachment mid-run never
    /// manufactures violations). Each worker monitors its own disjoint
    /// key set; [`IngestPool::monitor_stats`] sums the mirrors.
    pub fn attach_monitor(&mut self, cfg: MonitorConfig) -> Result<(), PoolError> {
        let mut cells = Vec::with_capacity(self.workers.len());
        for worker in 0..self.workers.len() {
            let cell = Arc::new(MonitorCells::default());
            self.handle.push_job(
                worker,
                Job::AttachMonitor {
                    cfg: cfg.clone(),
                    cells: Arc::clone(&cell),
                },
                Backpressure::Park,
            )?;
            cells.push(cell);
        }
        self.monitor_cells = cells;
        Ok(())
    }

    /// Aggregated monitor counters across every worker, or `None` if
    /// no monitor is attached. Counters sum (workers watch disjoint
    /// keys); the stability watermark is the minimum across workers
    /// and `ticks` the maximum (each maintenance round ticks every
    /// worker once). Reads the workers' relaxed mirrors — pair with
    /// [`IngestPool::flush`] for a quiesced reading.
    pub fn monitor_stats(&self) -> Option<MonitorStats> {
        if self.monitor_cells.is_empty() {
            return None;
        }
        let mut total = MonitorStats::default();
        let mut bound = u64::MAX;
        for cell in &self.monitor_cells {
            let s = cell.load();
            total.sampled_keys += s.sampled_keys;
            total.sampled_updates += s.sampled_updates;
            total.sampled_queries += s.sampled_queries;
            total.sampled_cuts += s.sampled_cuts;
            total.uc_violations += s.uc_violations;
            total.ec_violations += s.ec_violations;
            total.sec_violations += s.sec_violations;
            total.snap_violations += s.snap_violations;
            total.below_floor_arrivals += s.below_floor_arrivals;
            total.window_evictions += s.window_evictions;
            total.lossy_keys += s.lossy_keys;
            total.skipped_checks += s.skipped_checks;
            total.finalized_updates += s.finalized_updates;
            bound = bound.min(s.stable_bound);
            total.ticks = total.ticks.max(s.ticks);
        }
        total.stable_bound = if bound == u64::MAX { 0 } else { bound };
        Some(total)
    }

    /// A point-in-time health report for this pooled replica in an
    /// `n`-replica cluster: availability posture, down peers, worker
    /// poisoning, and (when a monitor is attached) streaming-checker
    /// cleanliness. Same shape as [`UcStore::health`].
    pub fn health(&self, n: usize) -> Health {
        let mut h = Health::new(format!("{:?}", self.partition.policy()));
        h.down_peers = self.partition.down_peers().collect();
        h.in_minority =
            self.partition.in_minority(n) && self.partition.policy() == AvailabilityPolicy::Refuse;
        h.poisoned = self.handle.core.poison.get().map(|e| e.to_string());
        if let Some(stats) = self.monitor_stats() {
            h.monitor_clean = Some(stats.total_violations() == 0);
            h.monitor_violations = stats.total_violations();
            h.stable_bound = stats.stable_bound;
        }
        h.resolve()
    }

    /// Mirror this pool's throughput counters (and monitor counters,
    /// when attached) into `reg` under `uc_pool_*` / `uc_monitor_*`
    /// names.
    pub fn export_metrics(&self, reg: &Registry) {
        let stats = self.stats();
        let mut batches = 0;
        let mut messages = 0;
        let mut shed = 0;
        let mut snaps = 0;
        let mut high_water = 0u64;
        for w in &stats.workers {
            batches += w.batches;
            messages += w.messages;
            shed += w.shed;
            snaps += w.snapshots_published;
            high_water = high_water.max(w.queue_high_water as u64);
        }
        reg.counter("uc_pool_batches_total").set(batches);
        reg.counter("uc_pool_messages_total").set(messages);
        reg.counter("uc_pool_shed_total").set(shed);
        reg.counter("uc_pool_snapshots_published_total").set(snaps);
        reg.gauge("uc_pool_queue_high_water").set(high_water as i64);
        reg.gauge("uc_pool_heal_replay_bytes")
            .set(self.heal_replay_bytes as i64);
        reg.counter("uc_pool_heal_chunks_total")
            .set(self.heal_chunks);
        reg.counter("uc_pool_heal_digest_skips_total")
            .set(self.heal_digest_skips);
        reg.gauge("uc_pool_heal_bytes_in_flight")
            .set(self.heal_bytes_in_flight as i64);
        reg.gauge("uc_pool_heal_sessions")
            .set(self.heal_sessions.len() as i64);
        if let Some(mon) = self.monitor_stats() {
            crate::observe::export_monitor_stats(&mon, reg);
        }
    }

    /// Estimated wire bytes this pool has streamed in
    /// [`StoreMsg::Repair`] bursts on heal.
    pub fn heal_replay_bytes(&self) -> u64 {
        self.heal_replay_bytes
    }

    /// Report `peer` unreachable (idempotent; the earliest
    /// outage-start watermark wins — see [`UcStore::peer_down`]).
    /// Pins every worker's compaction at the earliest outage
    /// watermark so the missed suffix stays available for heal.
    pub fn peer_down(&mut self, peer: Pid) -> Result<(), PoolError> {
        // A flap mid-heal cancels the peer's session; the outage
        // re-opens at the *session's* watermark so the unacknowledged
        // remainder of the cancelled stream is re-covered next heal
        // (same resumability contract as [`UcStore::peer_down`]).
        let watermark = match self.cancel_heal_session(peer) {
            Some(session_since) => session_since.min(self.handle.core.clock.now()),
            None => self.handle.core.clock.now(),
        };
        self.partition.mark_down(peer, watermark);
        self.apply_retention()
    }

    /// Re-derive the workers' compaction pin from the down set *and*
    /// the live heal sessions (see [`UcStore::peer_down`] /
    /// `UcStore::apply_retention` for why healing requires both).
    fn apply_retention(&self) -> Result<(), PoolError> {
        let down = self.partition.down_peers().map(|(_, w)| w).min();
        let streaming = self.heal_sessions.values().map(|s| s.since).min();
        let cap = match (down, streaming) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        self.handle.set_retention(cap)
    }

    /// Report `peer` reachable again: if it was down and anything
    /// here diverged past its watermark, open a chunked heal session
    /// and return the [`StoreMsg::DigestRequest`] opener — the pooled
    /// mirror of [`UcStore::peer_up`]. The session then advances
    /// through [`IngestPool::apply_message_from`] (or the `Protocol`
    /// impl) as responses and acks arrive; it pins the workers'
    /// compaction at the watermark until its final chunk is
    /// acknowledged. Digests are folded under the outgoing (tighter)
    /// retention pin — the FIFO inboxes order the digest jobs before
    /// any release.
    pub fn peer_up(&mut self, peer: Pid) -> Result<Option<StoreMsg<A::Update>>, PoolError> {
        let Some(since) = self.partition.mark_up(peer) else {
            return Ok(None);
        };
        self.cancel_heal_session(peer);
        let groups = self.handle.core.num_shards as u32;
        let ranges = self.heal_cfg.ranges.max(1);
        let digests = self.handle.digest_suffix(since, peer, groups, ranges)?;
        if digests.iter().all(|d| d.count == 0) {
            // Nothing streamable outran the watermark: no session,
            // and the retention pin (if this was the last down peer)
            // lifts.
            self.apply_retention()?;
            return Ok(None);
        }
        let id = self.heal_next_session;
        self.heal_next_session += 1;
        self.heal_sessions.insert(
            peer,
            HealSession::new(peer, since, id, groups, ranges, digests.clone()),
        );
        // The peer left the down set but its session now pins
        // retention at the same watermark — net effect: no change
        // until the session completes.
        self.apply_retention()?;
        Ok(Some(StoreMsg::DigestRequest {
            session: id,
            since,
            groups,
            ranges,
            digests,
        }))
    }

    /// PR 8's monolithic heal (one [`StoreMsg::Repair`] carrying the
    /// whole suffix) — kept as the baseline the chunked path is
    /// benchmarked against; see [`UcStore::peer_up_monolithic`].
    pub fn peer_up_monolithic(
        &mut self,
        peer: Pid,
    ) -> Result<Option<StoreMsg<A::Update>>, PoolError> {
        let Some(since) = self.partition.mark_up(peer) else {
            return Ok(None);
        };
        // Collect under the outgoing (tighter) retention pin, *then*
        // relax it — the FIFO inboxes order the release after the
        // collection on every worker.
        let updates = self.handle.collect_suffix(since, peer)?;
        self.apply_retention()?;
        if updates.is_empty() {
            return Ok(None);
        }
        let bytes = repair_bytes_estimate::<A>(&updates);
        self.heal_replay_bytes += bytes;
        if let Some(c) = &self.link_counters {
            LinkCounters::add(&c.heal_replay_bytes, bytes);
        }
        Ok(Some(StoreMsg::Repair { updates }))
    }

    /// Apply one peer message, advancing any heal dialogue it belongs
    /// to, and return the messages to send back — the pooled mirror
    /// of [`UcStore::apply_message_from`]. Non-heal traffic takes the
    /// ordinary [`IngestPool::submit_batch`] path.
    #[allow(clippy::type_complexity)]
    pub fn apply_message_from(
        &mut self,
        from: Pid,
        msg: StoreMsg<A::Update>,
    ) -> Result<Vec<(Pid, StoreMsg<A::Update>)>, PoolError> {
        match msg {
            StoreMsg::DigestRequest {
                session,
                since,
                groups,
                ranges,
                digests,
            } => {
                let ours = self
                    .handle
                    .digest_suffix(since, self.pid(), groups, ranges)?;
                let mismatched = mismatched_slots(&digests, &ours);
                Ok(vec![(
                    from,
                    StoreMsg::DigestResponse {
                        session,
                        since,
                        mismatched,
                    },
                )])
            }
            StoreMsg::DigestResponse {
                session,
                since,
                mismatched,
            } => self.on_digest_response(from, session, since, &mismatched),
            StoreMsg::RepairChunk {
                session,
                seq,
                last: _,
                updates,
            } => {
                // Chunk payloads ride the deduplicating batch path —
                // redelivery and overlap are no-ops — then the ack
                // reopens the sender's window.
                self.submit_batch(vec![StoreMsg::Repair { updates }])?;
                Ok(vec![(from, StoreMsg::RepairAck { session, seq })])
            }
            StoreMsg::RepairAck { session, seq } => self.on_repair_ack(from, session, seq),
            other => {
                self.submit_batch(vec![other])?;
                Ok(Vec::new())
            }
        }
    }

    /// A [`StoreMsg::DigestResponse`] arrived: build the streaming
    /// plan and emit the first window of chunks (see
    /// `UcStore::on_digest_response`).
    #[allow(clippy::type_complexity)]
    fn on_digest_response(
        &mut self,
        from: Pid,
        session: u64,
        since: u64,
        mismatched: &[u32],
    ) -> Result<Vec<(Pid, StoreMsg<A::Update>)>, PoolError> {
        let Some(sess) = self.heal_sessions.get(&from) else {
            return Ok(Vec::new());
        };
        if sess.id != session || sess.since != since {
            return Ok(Vec::new());
        }
        let candidates = self.handle.heal_candidates(since)?;
        let sess = self.heal_sessions.get_mut(&from).expect("checked above");
        if let Some(skipped) = sess.begin_streaming(mismatched, candidates) {
            self.heal_digest_skips += skipped;
        }
        self.pump_heal_session(from)
    }

    /// A [`StoreMsg::RepairAck`] arrived: release its chunk from the
    /// flow-control window; refill it, or complete the session.
    #[allow(clippy::type_complexity)]
    fn on_repair_ack(
        &mut self,
        from: Pid,
        session: u64,
        seq: u64,
    ) -> Result<Vec<(Pid, StoreMsg<A::Update>)>, PoolError> {
        let Some(sess) = self.heal_sessions.get_mut(&from) else {
            return Ok(Vec::new());
        };
        if sess.id != session {
            return Ok(Vec::new());
        }
        let (released, complete) = sess.on_ack(seq);
        self.heal_bytes_in_flight = self.heal_bytes_in_flight.saturating_sub(released);
        if complete {
            self.heal_sessions.remove(&from);
            self.apply_retention()?;
            return Ok(Vec::new());
        }
        self.pump_heal_session(from)
    }

    /// Emit as many chunks to `peer`'s session as its window allows,
    /// pulling payloads through per-key bounded-window worker reads
    /// ([`PoolHandle::collect_window`]) — peak payload memory is
    /// O(chunk), never the whole suffix.
    #[allow(clippy::type_complexity)]
    fn pump_heal_session(
        &mut self,
        peer: Pid,
    ) -> Result<Vec<(Pid, StoreMsg<A::Update>)>, PoolError> {
        let Some(mut sess) = self.heal_sessions.remove(&peer) else {
            return Ok(Vec::new());
        };
        let per_entry = 8 + 12 + std::mem::size_of::<A::Update>() as u64;
        let cfg = self.heal_cfg.clone();
        // The fill closure cannot return `Result`; a worker failure
        // is captured and surfaced after the drive (the pool is
        // poisoned at that point anyway).
        let mut failed: Option<PoolError> = None;
        let chunks = {
            let handle = &self.handle;
            sess.fill_chunks(&cfg, per_entry, |si, key, since, after, limit| match handle
                .collect_window(si, key, since, after, limit)
            {
                Ok(out) => out,
                Err(e) => {
                    failed = Some(e);
                    (Vec::new(), false)
                }
            })
        };
        self.heal_sessions.insert(peer, sess);
        if let Some(e) = failed {
            return Err(e);
        }
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let bytes = per_entry * c.updates.len() as u64;
            self.heal_chunks += 1;
            self.heal_replay_bytes += bytes;
            self.heal_bytes_in_flight += bytes;
            if let Some(cnt) = &self.link_counters {
                LinkCounters::add(&cnt.heal_replay_bytes, bytes);
            }
            let sess = self.heal_sessions.get(&peer).expect("reinserted above");
            out.push((
                peer,
                StoreMsg::RepairChunk {
                    session: sess.id,
                    seq: c.seq,
                    last: c.last,
                    updates: c.updates,
                },
            ));
        }
        Ok(out)
    }

    /// Drop `peer`'s live heal session (flap, shutdown), releasing
    /// its in-flight gauge contribution; returns its watermark.
    fn cancel_heal_session(&mut self, peer: Pid) -> Option<u64> {
        let sess = self.heal_sessions.remove(&peer)?;
        self.heal_bytes_in_flight = self
            .heal_bytes_in_flight
            .saturating_sub(sess.inflight_bytes());
        Some(sess.since)
    }

    /// Advance every live heal session one tick — stalled sessions
    /// re-send their digest request or expire their oldest chunk to
    /// reopen the window (see [`UcStore::heal_tick`]).
    #[allow(clippy::type_complexity)]
    pub fn heal_tick(&mut self) -> Result<Vec<(Pid, StoreMsg<A::Update>)>, PoolError> {
        let peers: Vec<Pid> = self.heal_sessions.keys().copied().collect();
        let mut out = Vec::new();
        for peer in peers {
            let stall = self.heal_cfg.stall_ticks;
            let Some(sess) = self.heal_sessions.get_mut(&peer) else {
                continue;
            };
            match sess.on_tick(stall) {
                HealTick::Wait => {}
                HealTick::ResendDigest => {
                    out.push((
                        peer,
                        StoreMsg::DigestRequest {
                            session: sess.id,
                            since: sess.since,
                            groups: sess.groups,
                            ranges: sess.ranges,
                            digests: sess.digests.clone(),
                        },
                    ));
                }
                HealTick::Expired { released, complete } => {
                    self.heal_bytes_in_flight = self.heal_bytes_in_flight.saturating_sub(released);
                    if complete {
                        self.heal_sessions.remove(&peer);
                        self.apply_retention()?;
                    } else {
                        out.extend(self.pump_heal_session(peer)?);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Tune the chunked heal protocol; applies to sessions opened
    /// after the call.
    pub fn set_heal_config(&mut self, cfg: HealConfig) {
        self.heal_cfg = cfg;
    }

    /// The chunked-heal tuning in force.
    pub fn heal_config(&self) -> &HealConfig {
        &self.heal_cfg
    }

    /// Heal chunks emitted by this pool (counter).
    pub fn heal_chunks(&self) -> u64 {
        self.heal_chunks
    }

    /// Digest slots skipped because both sides agreed (counter).
    pub fn heal_digest_skips(&self) -> u64 {
        self.heal_digest_skips
    }

    /// Estimated bytes in unacknowledged heal chunks right now.
    pub fn heal_bytes_in_flight(&self) -> u64 {
        self.heal_bytes_in_flight
    }

    /// Live heal sessions, keyed by healing peer (observability).
    pub fn heal_sessions(&self) -> impl Iterator<Item = (&Pid, &HealSession)> {
        self.heal_sessions.iter()
    }

    /// Answer a read under the active partition policy: same contract
    /// as `UcStore::minority_read` — `DegradedMarked` wraps the
    /// answer, `Refuse` rejects without computing it.
    fn minority_read(
        &mut self,
        n: usize,
        answer: impl FnOnce(&mut Self) -> StoreOutput<A>,
    ) -> StoreOutput<A> {
        if !self.partition.in_minority(n) {
            return answer(self);
        }
        match self.partition.policy() {
            AvailabilityPolicy::Available => answer(self),
            AvailabilityPolicy::DegradedMarked => StoreOutput::Degraded(Box::new(answer(self))),
            AvailabilityPolicy::Refuse => StoreOutput::Refused {
                live: n.saturating_sub(self.partition.down_count()),
                cluster: n,
            },
        }
    }

    /// Snapshot the per-worker queue/throughput counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .handle
                .core
                .counters
                .iter()
                .map(|c| WorkerStats {
                    batches: c.batches.load(Ordering::Relaxed),
                    messages: c.messages.load(Ordering::Relaxed),
                    queue_high_water: c.high_water.load(Ordering::Relaxed),
                    shed: c.shed.load(Ordering::Relaxed),
                    snapshots_published: c.snaps_published.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Drain every inbox, stop the workers, and reassemble the
    /// [`UcStore`] (its clock reflecting everything the pool stamped
    /// or ingested). Fails if any worker panicked.
    pub fn finish(mut self) -> Result<UcStore<A, F, P>, PoolError> {
        let core = &self.handle.core;
        #[allow(clippy::type_complexity)]
        let mut shards: Vec<Option<Shard<A, F::Strategy, P::Backend>>> =
            (0..core.num_shards).map(|_| None).collect();
        for inbox in &core.inboxes {
            inbox.close();
        }
        for worker in 0..self.workers.len() {
            let Some(thread) = self.workers[worker].thread.take() else {
                continue;
            };
            match thread.join() {
                Ok(owned) => {
                    let returned = owned.len();
                    for (idx, shard) in owned {
                        shards[idx] = Some(shard);
                    }
                    // A worker that hit a panic returns no shards;
                    // surface the recorded error.
                    if returned == 0 {
                        return Err(self.handle.err_for(worker));
                    }
                }
                Err(_) => {
                    return Err(self.handle.err_for(worker));
                }
            }
        }
        if let Some(err) = core.poison.get() {
            return Err(err.clone());
        }
        let shards = shards
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .expect("every shard returned by exactly one worker");
        // Workers joined: the clock read covers every issued stamp,
        // so collapsing the floor to the exact clock is sound here.
        let core = &self.handle.core;
        core.lease.collapse(core.clock.now(), |floor| {
            self.handle.persist.persist_store_clock(floor)
        });
        Ok(UcStore::from_parts(
            self.handle.adt.clone(),
            core.pid,
            core.clock.clone(),
            self.factory.clone(),
            self.handle.persist.clone(),
            shards,
        ))
    }
}

/// Drain-on-drop: closing the inboxes lets every worker finish its
/// backlog — and flush its storage backends — before exiting; the join
/// guarantees no worker thread outlives the owning handle. Panics
/// (ours or a worker's) are swallowed — `Drop` must not double-panic.
impl<A, F, P> Drop for IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + Sync + 'static,
    P::Backend: Send + 'static,
{
    fn drop(&mut self) {
        for inbox in &self.handle.core.inboxes {
            inbox.close();
        }
        for w in &mut self.workers {
            if let Some(thread) = w.thread.take() {
                let _ = thread.join();
            }
        }
        let core = &self.handle.core;
        core.lease.collapse(core.clock.now(), |floor| {
            self.handle.persist.persist_store_clock(floor)
        });
    }
}

/// A pooled store is a [`Protocol`] node: invocations stamp on the
/// shared atomic clock and push to the owning worker, peer bursts
/// land on [`IngestPool::submit_batch`] — so the pool runs unchanged
/// under the threaded cluster and the deterministic simulator.
///
/// # Panics
///
/// `Protocol` has no error channel; a poisoned pool panics with the
/// underlying [`PoolError`] instead of silently dropping traffic.
impl<A, F, P> Protocol for IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    A::State: Send + Sync,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + Sync + 'static,
    P::Backend: Send + 'static,
{
    type Msg = StoreMsg<A::Update>;
    type Input = StoreInput<A>;
    type Output = StoreOutput<A>;

    fn on_invoke(&mut self, input: Self::Input, ctx: &mut Ctx<'_, Self::Msg>) -> Self::Output {
        match input {
            StoreInput::Update(key, u) => {
                let m = self.update(key, u).unwrap_or_else(|e| panic!("{e}"));
                let StoreMsg::Update { msg, .. } = &m else {
                    unreachable!("update produces an update message");
                };
                let ts = msg.ts;
                ctx.broadcast_others(m);
                StoreOutput::Ack { key, ts }
            }
            StoreInput::Query(key, q) => self.minority_read(ctx.n(), |s| StoreOutput::Value {
                key,
                out: s.query(key, &q).unwrap_or_else(|e| panic!("{e}")),
            }),
            StoreInput::Snapshot(reqs) => self.minority_read(ctx.n(), |s| {
                let snap = s.consistent_snapshot().unwrap_or_else(|e| panic!("{e}"));
                StoreOutput::Snapshot {
                    cut: snap.cut(),
                    outs: reqs
                        .into_iter()
                        .map(|(key, q)| {
                            let out = snap.query(key, &q);
                            (key, out)
                        })
                        .collect(),
                }
            }),
            StoreInput::PeerDown(p) => {
                if let Err(e) = self.peer_down(p) {
                    panic!("pooled replica lost workers marking a peer down: {e}");
                }
                StoreOutput::Membership {
                    peer: p,
                    down: true,
                }
            }
            StoreInput::PeerUp(p) => {
                match self.peer_up(p) {
                    Ok(Some(repair)) => ctx.send(p, repair),
                    Ok(None) => {}
                    Err(e) => panic!("{e}"),
                }
                StoreOutput::Membership {
                    peer: p,
                    down: false,
                }
            }
        }
    }

    fn on_message(&mut self, from: Pid, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        let replies = self
            .apply_message_from(from, msg)
            .unwrap_or_else(|e| panic!("{e}"));
        for (to, reply) in replies {
            ctx.send(to, reply);
        }
    }

    fn on_batch(&mut self, msgs: Vec<(Pid, Self::Msg)>, ctx: &mut Ctx<'_, Self::Msg>) {
        // Ingest the burst's plain traffic first, then answer its
        // heal control frames: a digest request answered after the
        // burst's updates are enqueued sees them (FIFO inboxes), so
        // converged-through-the-burst slots are skipped.
        let mut ingest = Vec::with_capacity(msgs.len());
        let mut frames = Vec::new();
        for (from, m) in msgs {
            match m {
                StoreMsg::Update { .. } | StoreMsg::Heartbeat { .. } | StoreMsg::Repair { .. } => {
                    ingest.push(m)
                }
                frame => frames.push((from, frame)),
            }
        }
        if !ingest.is_empty() {
            self.submit_batch(ingest).unwrap_or_else(|e| panic!("{e}"));
        }
        for (from, frame) in frames {
            let replies = self
                .apply_message_from(from, frame)
                .unwrap_or_else(|e| panic!("{e}"));
            for (to, reply) in replies {
                ctx.send(to, reply);
            }
        }
    }

    /// Timer-driven maintenance: announce the handle's clock to every
    /// peer, advance stalled heal sessions, and enqueue a compaction
    /// sweep plus a backend flush on every worker (same poisoning
    /// contract as the other `Protocol` entry points) — segment
    /// flushing rides the runtime's timer wheel, no flusher thread.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast_others(self.heartbeat());
        for (to, m) in self.heal_tick().unwrap_or_else(|e| panic!("{e}")) {
            ctx.send(to, m);
        }
        self.tick_maintenance().unwrap_or_else(|e| panic!("{e}"));
        self.flush_backends().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CheckpointFactory;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type Store = UcStore<SetAdt<u32>, CheckpointFactory>;

    fn store(pid: u32, shards: usize) -> Store {
        UcStore::new(SetAdt::new(), pid, shards, CheckpointFactory { every: 4 })
    }

    fn cfg(workers: usize) -> PoolConfig {
        PoolConfig {
            workers,
            queue_depth: 8,
            backpressure: Backpressure::Park,
        }
    }

    #[test]
    fn pooled_ingest_matches_sequential() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..500u64)
            .map(|i| producer.update(i % 13, SetUpdate::Insert(i as u32)))
            .collect();
        let mut seq = store(0, 4);
        for chunk in msgs.chunks(37) {
            seq.apply_batch(chunk);
        }
        let mut pool = store(0, 4).into_pool(cfg(3));
        for chunk in msgs.chunks(37) {
            pool.submit_batch(chunk.to_vec()).unwrap();
        }
        let mut pooled = pool.finish().unwrap();
        assert_eq!(seq.keys(), pooled.keys());
        for k in seq.keys() {
            assert_eq!(seq.materialize_key(k), pooled.materialize_key(k), "key {k}");
        }
        assert_eq!(seq.clock(), pooled.clock());
        assert_eq!(seq.total_repair_steps(), pooled.total_repair_steps());
        assert_eq!(seq.total_repair_events(), pooled.total_repair_events());
    }

    #[test]
    fn pool_updates_and_queries_round_trip() {
        let mut pool = store(0, 4).into_pool(cfg(2));
        let m = pool.update(7, SetUpdate::Insert(1)).unwrap();
        assert!(matches!(m, StoreMsg::Update { key: 7, .. }));
        pool.update(7, SetUpdate::Insert(2)).unwrap();
        // FIFO per shard: the query observes both updates.
        assert_eq!(
            pool.query(7, &SetQuery::Read).unwrap(),
            BTreeSet::from([1, 2])
        );
        // Untouched key answers from the initial state.
        assert_eq!(pool.query(99, &SetQuery::Read).unwrap(), BTreeSet::new());
        let s = pool.finish().unwrap();
        assert_eq!(s.key_count(), 1, "queries alone do not materialize keys");
    }

    #[test]
    fn worker_count_is_capped_by_shards() {
        let pool = store(0, 2).into_pool(cfg(16));
        assert_eq!(pool.num_workers(), 2);
        assert_eq!(pool.num_shards(), 2);
        drop(pool);
    }

    #[test]
    fn stats_count_batches_and_messages() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..64u64)
            .map(|i| producer.update(i % 8, SetUpdate::Insert(i as u32)))
            .collect();
        let mut pool = store(0, 4).into_pool(cfg(2));
        pool.submit_batch(msgs).unwrap();
        pool.flush().unwrap();
        let stats = pool.stats();
        assert_eq!(stats.total_messages(), 64);
        assert!(stats.total_batches() >= 1);
        assert!(stats.max_queue_high_water() >= 1);
        assert_eq!(stats.total_shed(), 0);
        pool.finish().unwrap();
    }

    #[test]
    fn heartbeats_reach_every_worker() {
        use crate::store::GcFactory;
        let mut a: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 1, 4, GcFactory { n: 2 });
        let msgs: Vec<_> = (0..30u64)
            .map(|i| a.update(i % 6, SetUpdate::Insert(i as u32)))
            .collect();
        let mut pool =
            UcStore::<SetAdt<u32>, GcFactory>::new(SetAdt::new(), 0, 4, GcFactory { n: 2 })
                .into_pool(cfg(2));
        pool.submit_batch(msgs).unwrap();
        pool.flush().unwrap();
        // Both cluster clocks announce, then maintenance compacts.
        let hb = pool.heartbeat();
        pool.submit_batch(vec![hb, a.heartbeat()]).unwrap();
        pool.tick_maintenance().unwrap();
        let mut s = pool.finish().unwrap();
        assert!(s.total_log_len() < 30, "retained {}", s.total_log_len());
        for k in 0..6u64 {
            assert_eq!(
                s.materialize_key(k),
                a.materialize_key(k),
                "gc semantics survived pooling, key {k}"
            );
        }
    }

    #[test]
    fn shed_policy_drops_and_counts_instead_of_parking() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..512u64)
            .map(|i| producer.update(i % 4, SetUpdate::Insert(i as u32)))
            .collect();
        let mut pool = store(0, 1).into_pool(PoolConfig {
            workers: 1,
            queue_depth: 1,
            backpressure: Backpressure::Shed,
        });
        // A burst per message against a depth-1 inbox must shed some.
        for m in msgs {
            pool.submit_batch(vec![m]).unwrap();
        }
        pool.flush().unwrap();
        let stats = pool.stats();
        assert!(
            stats.total_shed() > 0,
            "depth-1 shed inbox under 512 one-message bursts must drop"
        );
        assert_eq!(
            stats.total_messages() + stats.total_shed(),
            512,
            "every burst either ingested or counted as shed"
        );
        pool.finish().unwrap();
    }

    #[test]
    fn snapshot_reads_are_published_after_flush() {
        let mut pool = store(0, 4).into_pool(cfg(2));
        let reader = pool.handle();
        // Arm snapshots, then write and flush: the barrier backfills.
        assert_eq!(reader.query_snapshot(7, &SetQuery::Read), BTreeSet::new());
        pool.update(7, SetUpdate::Insert(1)).unwrap();
        pool.update(7, SetUpdate::Insert(2)).unwrap();
        pool.flush().unwrap();
        let (epoch, out) = reader.query_snapshot_versioned(7, &SetQuery::Read);
        assert_eq!(out, BTreeSet::from([1, 2]));
        assert!(epoch > 0, "published snapshot must carry an epoch");
        // Snapshot reads never tick the clock.
        let before = pool.clock();
        let _ = reader.query_snapshot(7, &SetQuery::Read);
        assert_eq!(pool.clock(), before);
        // Handles survive finish; snapshots keep answering.
        drop(pool.finish().unwrap());
        assert_eq!(
            reader.query_snapshot(7, &SetQuery::Read),
            BTreeSet::from([1, 2])
        );
        let err = reader
            .update(7, SetUpdate::Insert(3))
            .expect_err("updates after finish must fail");
        assert!(err.to_string().contains("closed"));
    }

    #[test]
    fn concurrent_handles_stamp_unique_timestamps() {
        let pool = store(0, 4).into_pool(cfg(2));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = pool.handle();
                std::thread::spawn(move || {
                    (0..250u64)
                        .map(|i| {
                            let StoreMsg::Update { msg, .. } =
                                h.update(t * 1000 + i, SetUpdate::Insert(i as u32)).unwrap()
                            else {
                                panic!("update returns an update message");
                            };
                            msg.ts
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen = BTreeSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(seen.insert(ts), "duplicate stamp {ts:?}");
            }
        }
        assert_eq!(pool.clock(), 1000);
        pool.finish().unwrap();
    }

    #[test]
    fn pooled_heal_matches_sequential() {
        // Same traffic, same outage window: the pooled monolithic
        // heal burst must carry exactly the updates the sequential
        // store would stream.
        let mut seq = store(0, 4);
        let mut pool = store(0, 4).into_pool(cfg(2));
        for i in 0..20u64 {
            let m = seq.update(i % 5, SetUpdate::Insert(i as u32));
            let StoreMsg::Update { key, msg } = &m else {
                unreachable!()
            };
            // Mirror the stamp into the pool via the peer-ingest path
            // so both sides hold identical timestamps.
            pool.submit_batch(vec![StoreMsg::Update {
                key: *key,
                msg: msg.clone(),
            }])
            .unwrap();
        }
        pool.flush().unwrap();
        seq.peer_down(1);
        pool.peer_down(1).expect("live pool");
        let watermark = seq.clock();
        assert_eq!(pool.partition().down_peers().next(), Some((1, watermark)));
        for i in 20..30u64 {
            let m = seq.update(i % 5, SetUpdate::Insert(i as u32));
            let StoreMsg::Update { key, msg } = &m else {
                unreachable!()
            };
            pool.submit_batch(vec![StoreMsg::Update {
                key: *key,
                msg: msg.clone(),
            }])
            .unwrap();
        }
        let seq_burst = seq
            .peer_up_monolithic(1)
            .expect("sequential heal streams a burst");
        let pool_burst = pool
            .peer_up_monolithic(1)
            .unwrap()
            .expect("pooled heal streams a burst");
        let (StoreMsg::Repair { updates: a }, StoreMsg::Repair { updates: b }) =
            (&seq_burst, &pool_burst)
        else {
            panic!("heal produces repair bursts");
        };
        assert_eq!(a, b);
        assert!(pool.heal_replay_bytes() > 0);
        assert!(
            pool.peer_up_monolithic(1).unwrap().is_none(),
            "heal is one-shot"
        );
        pool.finish().unwrap();
    }

    #[test]
    fn pooled_chunked_heal_streams_digest_guided_chunks() {
        // Drive a full digest-guided chunked heal from a pool to a
        // sequential healed peer by ping-ponging the protocol frames —
        // the pooled mirror of `UcStore::heal_peer`.
        let mut pool = store(0, 4).into_pool(cfg(2));
        pool.set_heal_config(HealConfig {
            chunk: 4,
            window: 2,
            ..HealConfig::default()
        });
        let mut peer = store(1, 4);
        pool.peer_down(1).unwrap();
        for i in 0..30u64 {
            pool.update(i % 5, SetUpdate::Insert(i as u32)).unwrap();
        }
        let opener = pool
            .peer_up(1)
            .unwrap()
            .expect("divergence opens a session");
        assert!(matches!(opener, StoreMsg::DigestRequest { .. }));
        let mut chunks = 0u64;
        let mut to_peer = vec![opener];
        while !to_peer.is_empty() {
            let mut to_pool = Vec::new();
            for m in to_peer.drain(..) {
                if matches!(m, StoreMsg::RepairChunk { .. }) {
                    chunks += 1;
                }
                to_pool.extend(peer.apply_message_from(0, m).into_iter().map(|(_, m)| m));
            }
            for m in to_pool {
                to_peer.extend(
                    pool.apply_message_from(1, m)
                        .unwrap()
                        .into_iter()
                        .map(|(_, m)| m),
                );
            }
        }
        assert!(chunks >= 8, "30 entries / chunk=4 needs ≥ 8, got {chunks}");
        assert_eq!(pool.heal_chunks(), chunks);
        assert_eq!(pool.heal_bytes_in_flight(), 0, "all chunks acked");
        assert!(
            pool.heal_sessions().next().is_none(),
            "session completes on the last ack"
        );
        assert_eq!(pool.partition().down_count(), 0);
        let mut healer = pool.finish().unwrap();
        for k in 0..5u64 {
            assert_eq!(
                healer.materialize_key(k),
                peer.materialize_key(k),
                "key {k}"
            );
        }
    }
}
