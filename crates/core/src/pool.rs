//! The **persistent shard-worker ingest pool**: long-lived worker
//! threads, each owning a fixed set of a store's shards, fed by
//! bounded per-worker queues.
//!
//! [`UcStore::apply_batch_parallel`] spawns fresh scoped threads for
//! every burst, so its win is bounded by thread-spawn cost and it
//! serializes bursts behind each other. The pool amortizes that cost
//! once, at [`IngestPool::spawn`]:
//!
//! ```text
//!            IngestPool handle          (owns clock + pid)
//!   update/query/submit_batch ── LamportClock  (ticks & stamps here)
//!          │ shard = hash(key) % S,  worker = shard % W
//!          ▼
//!   ┌ queue 0 ─▶ Worker 0 {shards 0, W, 2W, …}   (long-lived thread)
//!   ├ queue 1 ─▶ Worker 1 {shards 1, W+1, …}
//!   └ queue W-1 ▶ …
//!        bounded sync_channel (backpressure)      per-shard engines
//! ```
//!
//! * **determinism** — every key lives in exactly one shard, every
//!   shard on exactly one worker, and each worker's queue is FIFO, so
//!   the per-key delivery order equals submission order: pool results
//!   are identical to the sequential [`UcStore::apply_batch`] path
//!   (states *and* repair-step counts — the differential tests assert
//!   both);
//! * **barriers** — [`IngestPool::flush`] enqueues a barrier job on
//!   every worker and waits for all acks; because queues are FIFO, a
//!   completed flush has observed every prior submission;
//! * **drain-on-drop** — dropping the handle closes the queues;
//!   workers finish every queued job before exiting, so submitted
//!   bursts are never silently discarded. [`IngestPool::finish`]
//!   additionally reassembles and returns the [`UcStore`];
//! * **poisoning** — a panic inside a worker (e.g. a panicking ADT
//!   fold) is caught, recorded, and surfaced as a [`PoolError`] from
//!   every subsequent operation instead of deadlocking the handle;
//! * **wait-free handle** — updates tick the handle's clock, stamp,
//!   and enqueue without waiting for the worker (backpressure on a
//!   full queue is the only blocking); queries round-trip to the
//!   owning worker, which is bounded local work, never a wait on
//!   another *process*.
//!
//! The pool implements [`Protocol`], so a pooled store runs unchanged
//! under the threaded cluster (real ingest concurrency) and the
//! deterministic simulator.

use crate::backend::{BackendFactory, MemFactory};
use crate::message::UpdateMsg;
use crate::store::{
    collapse_heartbeats, shard_index, split_by_shard, Key, Shard, StoreInput, StoreMsg,
    StoreOutput, StrategyFactory, UcStore,
};
use crate::timestamp::{LamportClock, Timestamp};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use uc_sim::{Ctx, Pid, Protocol};
use uc_spec::UqAdt;

/// How an [`IngestPool`] is sized.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads; `0` means one per unit of available hardware
    /// parallelism. Capped at the store's shard count (an idle worker
    /// with no shards would be pure overhead).
    pub workers: usize,
    /// Bounded depth of each worker's job queue: submissions beyond
    /// it block the caller (backpressure) instead of growing memory
    /// without bound.
    pub queue_depth: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

/// A worker thread died mid-job; the pool is poisoned and every
/// subsequent operation reports this error.
#[derive(Clone, Debug)]
pub struct PoolError {
    /// Index of the worker that panicked.
    pub worker: usize,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest pool poisoned: worker {} panicked: {}",
            self.worker, self.message
        )
    }
}

impl std::error::Error for PoolError {}

/// Point-in-time counters for one worker.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Ingest jobs (bursts) this worker has processed.
    pub batches: u64,
    /// Update messages ingested across those bursts.
    pub messages: u64,
    /// High-water mark of enqueued-but-unfinished jobs — how far the
    /// submitter ran ahead of this worker. Counts the job being
    /// processed and a sender blocked on a full queue, so it can read
    /// up to [`PoolConfig::queue_depth`]` + 2`.
    pub queue_high_water: usize,
}

/// Point-in-time counters for the whole pool (observability and the
/// pool benchmark's queue-depth metrics).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total bursts processed across workers.
    pub fn total_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches).sum()
    }

    /// Total update messages ingested across workers.
    pub fn total_messages(&self) -> u64 {
        self.workers.iter().map(|w| w.messages).sum()
    }

    /// Deepest queue observed on any worker.
    pub fn max_queue_high_water(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.queue_high_water)
            .max()
            .unwrap_or(0)
    }
}

/// Counters shared between the handle and one worker.
#[derive(Default)]
struct SharedCounters {
    depth: AtomicUsize,
    high_water: AtomicUsize,
    batches: AtomicU64,
    messages: AtomicU64,
}

impl SharedCounters {
    fn on_enqueue(&self) {
        let d = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.high_water.fetch_max(d, Ordering::SeqCst);
    }

    fn on_done(&self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One shard's slice of a burst: `(key, message)` pairs bound for
/// that shard's per-key engines.
type Bucket<A> = Vec<(Key, UpdateMsg<<A as UqAdt>::Update>)>;

/// A burst split per shard, tagged with global shard indices.
type ShardBuckets<A> = Vec<(usize, Bucket<A>)>;

/// The shards one worker owns, tagged with global shard indices.
type OwnedShards<A, S, B> = Vec<(usize, Shard<A, S, B>)>;

/// One unit of work on a worker's queue.
enum Job<A: UqAdt> {
    /// Per-shard buckets of one submitted burst (global shard index).
    Ingest(ShardBuckets<A>),
    /// A locally issued update, already stamped by the handle's clock.
    Update {
        /// Global shard index of `key`.
        shard: usize,
        key: Key,
        msg: UpdateMsg<A::Update>,
    },
    /// A query against the handle's already-ticked clock; the answer
    /// goes back through `reply`.
    Query {
        shard: usize,
        key: Key,
        now: u64,
        q: A::QueryIn,
        reply: Sender<A::QueryOut>,
    },
    /// A peer clock announcement: sweep every engine on this worker.
    Heartbeat { pid: u32, clock: u64 },
    /// Run per-key maintenance (compaction) on every engine.
    Maintain,
    /// Flush every engine's storage backend (durability point).
    FlushBackends,
    /// Flush barrier: ack once every earlier job on this queue is done.
    Barrier(Sender<()>),
}

/// Everything a worker owns: its shards plus what engine creation
/// needs on first touch of a key.
struct WorkerState<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A>> {
    /// `(global shard index, shard)`, in ascending index order.
    shards: OwnedShards<A, F::Strategy, P::Backend>,
    adt: A,
    pid: u32,
    factory: F,
    persist: P,
}

/// Flush every engine backend of a worker's owned shards — shared by
/// the `FlushBackends` job and both worker-exit paths (drain-on-drop
/// and poisoning), so the flush discipline cannot drift between them.
fn flush_owned_shards<A, S, B>(shards: &mut [(usize, Shard<A, S, B>)])
where
    A: UqAdt + Clone,
    S: crate::engine::RepairStrategy<A>,
    B: crate::backend::LogBackend<A>,
{
    for (_, shard) in shards {
        shard.flush_backends();
    }
}

/// Find `global` among a worker's owned shards (a handful of entries;
/// linear scan beats hashing).
fn shard_mut<A: UqAdt, S, B>(
    shards: &mut [(usize, Shard<A, S, B>)],
    global: usize,
) -> &mut Shard<A, S, B> {
    let slot = shards
        .iter()
        .position(|(idx, _)| *idx == global)
        .expect("shard routed to its owning worker");
    &mut shards[slot].1
}

impl<A, F, P> WorkerState<A, F, P>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    /// Flush every owned engine's storage backend (both worker-exit
    /// paths run this, so no join ever leaves an unsynced segment
    /// behind; the `FlushBackends` job shares the same helper).
    fn flush_backends(&mut self) {
        flush_owned_shards(&mut self.shards);
    }

    fn run(&mut self, job: Job<A>, counters: &SharedCounters) {
        let WorkerState {
            shards,
            adt,
            pid,
            factory,
            persist,
        } = self;
        match job {
            Job::Ingest(buckets) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                for (global, bucket) in buckets {
                    counters
                        .messages
                        .fetch_add(bucket.len() as u64, Ordering::Relaxed);
                    shard_mut(shards, global).ingest(bucket, adt, *pid, factory, persist);
                }
            }
            Job::Update { shard, key, msg } => {
                counters.messages.fetch_add(1, Ordering::Relaxed);
                shard_mut(shards, shard)
                    .engine_mut(key, adt, *pid, factory, persist)
                    .local_update_at(msg.ts, msg.update);
            }
            Job::Query {
                shard,
                key,
                now,
                q,
                reply,
            } => {
                let sh = shard_mut(shards, shard);
                let out = if sh.objects.contains_key(&key) {
                    sh.engine_mut(key, adt, *pid, factory, persist)
                        .do_query_at(now, &q)
                } else {
                    // Untouched keys answer from the initial state
                    // without materializing an engine (same as
                    // `UcStore::query`).
                    adt.observe(&adt.initial(), &q)
                };
                // The handle may have given up waiting (poisoned
                // pool); a dead reply channel is not this worker's
                // problem.
                let _ = reply.send(out);
            }
            Job::Heartbeat { pid, clock } => {
                for (_, shard) in shards {
                    shard.observe_peer_clock(pid, clock);
                }
            }
            Job::Maintain => {
                for (_, shard) in shards {
                    shard.tick_maintenance();
                }
            }
            Job::FlushBackends => {
                flush_owned_shards(shards);
            }
            Job::Barrier(reply) => {
                let _ = reply.send(());
            }
        }
    }
}

/// Worker main loop: drain jobs until every sender is gone (drop or
/// [`IngestPool::finish`]), flush every owned backend, then hand the
/// shards back through the join handle. A panicking job records its
/// payload in `poison`, **flushes the backends** (the journal entries
/// appended before the panic are valid — only the in-memory fold is
/// suspect, and recovery refolds from the journal anyway), and exits —
/// dropping the receiver disconnects the queue, so blocked or later
/// submissions fail fast instead of deadlocking.
fn worker_loop<A, F, P>(
    mut state: WorkerState<A, F, P>,
    rx: Receiver<Job<A>>,
    counters: Arc<SharedCounters>,
    poison: Arc<Mutex<Option<String>>>,
) -> OwnedShards<A, F::Strategy, P::Backend>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    while let Ok(job) = rx.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| state.run(job, &counters)));
        counters.on_done();
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            *poison.lock().unwrap_or_else(|p| p.into_inner()) = Some(message);
            // A panicking shard must never leave an unsynced segment:
            // flush before abandoning (under catch_unwind — a second
            // panic must not tear the whole process down mid-poison).
            let _ = catch_unwind(AssertUnwindSafe(|| state.flush_backends()));
            // The shards may hold a half-repaired engine; abandon them
            // rather than hand corrupt state back to `finish`.
            return Vec::new();
        }
    }
    // Drain-on-drop / finish: everything queued has been applied; make
    // it durable before the join completes.
    state.flush_backends();
    state.shards
}

struct WorkerHandle<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A>> {
    tx: Option<SyncSender<Job<A>>>,
    #[allow(clippy::type_complexity)]
    thread: Option<JoinHandle<OwnedShards<A, F::Strategy, P::Backend>>>,
    counters: Arc<SharedCounters>,
    poison: Arc<Mutex<Option<String>>>,
}

/// The handle to a pooled [`UcStore`]: owns the store's clock and pid,
/// routes work to the persistent shard workers, and reassembles the
/// store on [`IngestPool::finish`]. Generic over the store's
/// [`BackendFactory`], so pooled stores persist exactly like
/// sequential ones (to reopen a persistent pooled store, use
/// [`UcStore::reopen`] and pool the result). See the [module
/// docs](self).
pub struct IngestPool<A, F, P = MemFactory>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + 'static,
    P::Backend: Send + 'static,
{
    adt: A,
    pid: u32,
    clock: LamportClock,
    factory: F,
    persist: P,
    /// Clock floor last persisted (see `reserve_clock`); `None` until
    /// the first persist after spawn.
    persisted_floor: Option<u64>,
    num_shards: usize,
    workers: Vec<WorkerHandle<A, F, P>>,
    poisoned: Option<PoolError>,
}

/// Same reservation width as the sequential store: one persisted
/// floor write buys this many locally issued timestamps.
const CLOCK_LEASE: u64 = 4096;

impl<A, F, P> IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + 'static,
    P::Backend: Send + 'static,
{
    /// Move `store`'s shards onto `cfg.workers` long-lived threads
    /// (shard `i` pins to worker `i % workers`) and return the handle.
    pub fn spawn(store: UcStore<A, F, P>, cfg: PoolConfig) -> Self {
        let (adt, pid, clock, factory, persist, shards) = store.into_parts();
        let num_shards = shards.len();
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = if cfg.workers == 0 { hw } else { cfg.workers }
            .min(num_shards)
            .max(1);
        let queue_depth = cfg.queue_depth.max(1);

        let mut owned: Vec<OwnedShards<A, F::Strategy, P::Backend>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (idx, shard) in shards.into_iter().enumerate() {
            owned[idx % workers].push((idx, shard));
        }
        let handles = owned
            .into_iter()
            .map(|shards| {
                let state = WorkerState {
                    shards,
                    adt: adt.clone(),
                    pid,
                    factory: factory.clone(),
                    persist: persist.clone(),
                };
                let (tx, rx) = std::sync::mpsc::sync_channel(queue_depth);
                let counters = Arc::new(SharedCounters::default());
                let poison = Arc::new(Mutex::new(None));
                let (c, p) = (Arc::clone(&counters), Arc::clone(&poison));
                let thread = std::thread::spawn(move || worker_loop(state, rx, c, p));
                WorkerHandle {
                    tx: Some(tx),
                    thread: Some(thread),
                    counters,
                    poison,
                }
            })
            .collect();
        IngestPool {
            adt,
            pid,
            clock,
            factory,
            persist,
            persisted_floor: None,
            num_shards,
            workers: handles,
            poisoned: None,
        }
    }

    /// Which worker owns `key`'s shard.
    fn worker_of(&self, shard: usize) -> usize {
        shard % self.workers.len()
    }

    /// Record (and return) the poison state of `worker`, joining its
    /// thread to harvest the panic message.
    fn poison(&mut self, worker: usize) -> PoolError {
        if let Some(err) = &self.poisoned {
            return err.clone();
        }
        let w = &mut self.workers[worker];
        w.tx = None;
        if let Some(thread) = w.thread.take() {
            let _ = thread.join();
        }
        let message = w
            .poison
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
            .unwrap_or_else(|| "worker exited unexpectedly".into());
        let err = PoolError { worker, message };
        self.poisoned = Some(err.clone());
        err
    }

    fn send(&mut self, worker: usize, job: Job<A>) -> Result<(), PoolError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let Some(tx) = self.workers[worker].tx.as_ref() else {
            return Err(self.poison(worker));
        };
        self.workers[worker].counters.on_enqueue();
        match tx.send(job) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.workers[worker].counters.on_done();
                Err(self.poison(worker))
            }
        }
    }

    /// Perform a local update on `key`: tick the shared clock, stamp,
    /// enqueue the application on the owning worker, and return the
    /// broadcast message — without waiting for the worker (the queue's
    /// backpressure is the only blocking).
    pub fn update(&mut self, key: Key, u: A::Update) -> Result<StoreMsg<A::Update>, PoolError> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        self.reserve_clock(ts.clock);
        let shard = shard_index(key, self.num_shards);
        let msg = UpdateMsg { ts, update: u };
        self.send(
            self.worker_of(shard),
            Job::Update {
                shard,
                key,
                msg: msg.clone(),
            },
        )?;
        Ok(StoreMsg::Update { key, msg })
    }

    /// Answer a query on `key` from the owning worker. The clock ticks
    /// here (Algorithm 1 line 13) and the worker's FIFO queue
    /// guarantees the answer reflects every earlier submission
    /// touching the key.
    pub fn query(&mut self, key: Key, q: &A::QueryIn) -> Result<A::QueryOut, PoolError> {
        let now = self.clock.tick();
        let shard = shard_index(key, self.num_shards);
        let worker = self.worker_of(shard);
        let (reply, answer) = channel();
        self.send(
            worker,
            Job::Query {
                shard,
                key,
                now,
                q: q.clone(),
                reply,
            },
        )?;
        answer.recv().map_err(|_| self.poison(worker))
    }

    /// Ingest a whole peer burst: updates are bucketed by shard and
    /// enqueued on their owning workers as one job each; heartbeats
    /// are collapsed and broadcast to every worker afterwards (exactly
    /// the sequential [`UcStore::apply_batch`] order, so results are
    /// identical).
    pub fn submit_batch(&mut self, msgs: Vec<StoreMsg<A::Update>>) -> Result<(), PoolError> {
        // Same routing helper as `UcStore::apply_batch`, so shard
        // assignment and clock accounting cannot drift between the
        // sequential and pooled ingest paths.
        let (buckets, heartbeats, max_clock) = split_by_shard(msgs, self.num_shards);
        self.clock.merge(max_clock);
        let mut jobs: Vec<ShardBuckets<A>> = (0..self.workers.len()).map(|_| Vec::new()).collect();
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                jobs[self.worker_of(shard)].push((shard, bucket));
            }
        }
        for (worker, job) in jobs.into_iter().enumerate() {
            if !job.is_empty() {
                self.send(worker, Job::Ingest(job))?;
            }
        }
        for (pid, clock) in collapse_heartbeats(heartbeats) {
            self.clock.merge(clock);
            for worker in 0..self.workers.len() {
                self.send(worker, Job::Heartbeat { pid, clock })?;
            }
        }
        Ok(())
    }

    /// Barrier: block until every submission made before this call has
    /// been fully applied by its worker.
    pub fn flush(&mut self) -> Result<(), PoolError> {
        let mut acks = Vec::with_capacity(self.workers.len());
        for worker in 0..self.workers.len() {
            let (reply, ack) = channel();
            self.send(worker, Job::Barrier(reply))?;
            acks.push((worker, ack));
        }
        for (worker, ack) in acks {
            ack.recv().map_err(|_| self.poison(worker))?;
        }
        Ok(())
    }

    /// Announce the shared clock (stability heartbeat covering every
    /// key at once).
    pub fn heartbeat(&self) -> StoreMsg<A::Update> {
        StoreMsg::Heartbeat {
            pid: self.pid,
            clock: self.clock.now(),
        }
    }

    /// Run per-key maintenance (compaction) on every worker's engines.
    pub fn tick_maintenance(&mut self) -> Result<(), PoolError> {
        for worker in 0..self.workers.len() {
            self.send(worker, Job::Maintain)?;
        }
        Ok(())
    }

    /// Flush every worker's storage backends and persist the handle's
    /// clock watermark. Asynchronous — the job is enqueued in FIFO
    /// order behind all prior submissions; follow with
    /// [`IngestPool::flush`] to wait for durability. (Both worker-exit
    /// paths — drain-on-drop and poisoning — also flush, so dropping
    /// the handle never leaves an unsynced segment.)
    pub fn flush_backends(&mut self) -> Result<(), PoolError> {
        for worker in 0..self.workers.len() {
            self.send(worker, Job::FlushBackends)?;
        }
        // Collapsing the floor from its lease to the actual clock is
        // safe even though the flush jobs are asynchronous: the clock
        // covers every timestamp the handle has issued, so it is a
        // valid recovery floor regardless of what is still queued.
        self.persist_clock_floor(self.clock.now());
        Ok(())
    }

    /// Persist `floor` as the recovery clock floor, skipping the write
    /// when unchanged (idle ticks cost no IO).
    fn persist_clock_floor(&mut self, floor: u64) {
        if self.persisted_floor != Some(floor) {
            self.persist.persist_store_clock(floor);
            self.persisted_floor = Some(floor);
        }
    }

    /// Ensure the persisted recovery floor covers `issued` (leased
    /// `CLOCK_LEASE` ahead) — same crash-soundness argument as
    /// [`UcStore::reserve_clock`]: a broadcast timestamp must never be
    /// re-issuable after a crash-reopen, or peers' dedup silently
    /// drops the reissue and the cluster diverges.
    fn reserve_clock(&mut self, issued: u64) {
        if self.persisted_floor.is_none_or(|f| issued > f) {
            self.persist_clock_floor(issued + CLOCK_LEASE);
        }
    }

    /// This replica's process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The shared Lamport clock's current value.
    pub fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Number of shards (unchanged from the pooled store).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot the per-worker queue/throughput counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .workers
                .iter()
                .map(|w| WorkerStats {
                    batches: w.counters.batches.load(Ordering::Relaxed),
                    messages: w.counters.messages.load(Ordering::Relaxed),
                    queue_high_water: w.counters.high_water.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Drain every queue, stop the workers, and reassemble the
    /// [`UcStore`] (its clock reflecting everything the pool stamped
    /// or ingested). Fails if any worker panicked.
    pub fn finish(mut self) -> Result<UcStore<A, F, P>, PoolError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        #[allow(clippy::type_complexity)]
        let mut shards: Vec<Option<Shard<A, F::Strategy, P::Backend>>> =
            (0..self.num_shards).map(|_| None).collect();
        for worker in 0..self.workers.len() {
            let w = &mut self.workers[worker];
            w.tx = None; // closing the queue ends the worker's loop
            let Some(thread) = w.thread.take() else {
                continue;
            };
            match thread.join() {
                Ok(owned) => {
                    let returned = owned.len();
                    for (idx, shard) in owned {
                        shards[idx] = Some(shard);
                    }
                    // A worker that hit a panic *after* recording it
                    // returns no shards; surface the recorded error.
                    if returned == 0 {
                        if let Some(message) =
                            w.poison.lock().unwrap_or_else(|p| p.into_inner()).clone()
                        {
                            return Err(PoolError { worker, message });
                        }
                    }
                }
                Err(_) => {
                    return Err(self.poison(worker));
                }
            }
        }
        let shards = shards
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .expect("every shard returned by exactly one worker");
        // Workers flushed their backends before joining; persist the
        // store-level watermark to match.
        self.persist_clock_floor(self.clock.now());
        Ok(UcStore::from_parts(
            self.adt.clone(),
            self.pid,
            self.clock.clone(),
            self.factory.clone(),
            self.persist.clone(),
            shards,
        ))
    }
}

/// Drain-on-drop: closing the queues lets every worker finish its
/// backlog — and flush its storage backends — before exiting; the join
/// guarantees no thread outlives the handle. Panics (ours or a
/// worker's) are swallowed — `Drop` must not double-panic.
impl<A, F, P> Drop for IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + 'static,
    P::Backend: Send + 'static,
{
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(thread) = w.thread.take() {
                let _ = thread.join();
            }
        }
        self.persist_clock_floor(self.clock.now());
    }
}

/// A pooled store is a [`Protocol`] node: invocations stamp on the
/// handle and enqueue to the owning worker, peer bursts land on
/// [`IngestPool::submit_batch`] — so the pool runs unchanged under
/// the threaded cluster and the deterministic simulator.
///
/// # Panics
///
/// `Protocol` has no error channel; a poisoned pool panics with the
/// underlying [`PoolError`] instead of silently dropping traffic.
impl<A, F, P> Protocol for IngestPool<A, F, P>
where
    A: UqAdt + Clone + Send + 'static,
    A::Update: Send,
    A::QueryIn: Send,
    A::QueryOut: Send,
    F: StrategyFactory<A> + Send + 'static,
    F::Strategy: Send + 'static,
    P: BackendFactory<A> + Send + 'static,
    P::Backend: Send + 'static,
{
    type Msg = StoreMsg<A::Update>;
    type Input = StoreInput<A>;
    type Output = StoreOutput<A>;

    fn on_invoke(&mut self, input: Self::Input, ctx: &mut Ctx<'_, Self::Msg>) -> Self::Output {
        match input {
            StoreInput::Update(key, u) => {
                let m = self.update(key, u).unwrap_or_else(|e| panic!("{e}"));
                let StoreMsg::Update { msg, .. } = &m else {
                    unreachable!("update produces an update message");
                };
                let ts = msg.ts;
                ctx.broadcast_others(m);
                StoreOutput::Ack { key, ts }
            }
            StoreInput::Query(key, q) => StoreOutput::Value {
                key,
                out: self.query(key, &q).unwrap_or_else(|e| panic!("{e}")),
            },
        }
    }

    fn on_message(&mut self, _from: Pid, msg: Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.submit_batch(vec![msg])
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn on_batch(&mut self, msgs: Vec<(Pid, Self::Msg)>, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.submit_batch(msgs.into_iter().map(|(_, m)| m).collect())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Timer-driven maintenance: announce the handle's clock to every
    /// peer and enqueue a compaction sweep plus a backend flush on
    /// every worker (same poisoning contract as the other `Protocol`
    /// entry points) — segment flushing rides the runtime's timer
    /// wheel, no flusher thread.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast_others(self.heartbeat());
        self.tick_maintenance().unwrap_or_else(|e| panic!("{e}"));
        self.flush_backends().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CheckpointFactory;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type Store = UcStore<SetAdt<u32>, CheckpointFactory>;

    fn store(pid: u32, shards: usize) -> Store {
        UcStore::new(SetAdt::new(), pid, shards, CheckpointFactory { every: 4 })
    }

    fn cfg(workers: usize) -> PoolConfig {
        PoolConfig {
            workers,
            queue_depth: 8,
        }
    }

    #[test]
    fn pooled_ingest_matches_sequential() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..500u64)
            .map(|i| producer.update(i % 13, SetUpdate::Insert(i as u32)))
            .collect();
        let mut seq = store(0, 4);
        for chunk in msgs.chunks(37) {
            seq.apply_batch(chunk);
        }
        let mut pool = store(0, 4).into_pool(cfg(3));
        for chunk in msgs.chunks(37) {
            pool.submit_batch(chunk.to_vec()).unwrap();
        }
        let mut pooled = pool.finish().unwrap();
        assert_eq!(seq.keys(), pooled.keys());
        for k in seq.keys() {
            assert_eq!(seq.materialize_key(k), pooled.materialize_key(k), "key {k}");
        }
        assert_eq!(seq.clock(), pooled.clock());
        assert_eq!(seq.total_repair_steps(), pooled.total_repair_steps());
        assert_eq!(seq.total_repair_events(), pooled.total_repair_events());
    }

    #[test]
    fn pool_updates_and_queries_round_trip() {
        let mut pool = store(0, 4).into_pool(cfg(2));
        let m = pool.update(7, SetUpdate::Insert(1)).unwrap();
        assert!(matches!(m, StoreMsg::Update { key: 7, .. }));
        pool.update(7, SetUpdate::Insert(2)).unwrap();
        // FIFO per shard: the query observes both updates.
        assert_eq!(
            pool.query(7, &SetQuery::Read).unwrap(),
            BTreeSet::from([1, 2])
        );
        // Untouched key answers from the initial state.
        assert_eq!(pool.query(99, &SetQuery::Read).unwrap(), BTreeSet::new());
        let s = pool.finish().unwrap();
        assert_eq!(s.key_count(), 1, "queries alone do not materialize keys");
    }

    #[test]
    fn worker_count_is_capped_by_shards() {
        let pool = store(0, 2).into_pool(cfg(16));
        assert_eq!(pool.num_workers(), 2);
        assert_eq!(pool.num_shards(), 2);
        drop(pool);
    }

    #[test]
    fn stats_count_batches_and_messages() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..64u64)
            .map(|i| producer.update(i % 8, SetUpdate::Insert(i as u32)))
            .collect();
        let mut pool = store(0, 4).into_pool(cfg(2));
        pool.submit_batch(msgs).unwrap();
        pool.flush().unwrap();
        let stats = pool.stats();
        assert_eq!(stats.total_messages(), 64);
        assert!(stats.total_batches() >= 1);
        assert!(stats.max_queue_high_water() >= 1);
        pool.finish().unwrap();
    }

    #[test]
    fn heartbeats_reach_every_worker() {
        use crate::store::GcFactory;
        let mut a: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 1, 4, GcFactory { n: 2 });
        let msgs: Vec<_> = (0..30u64)
            .map(|i| a.update(i % 6, SetUpdate::Insert(i as u32)))
            .collect();
        let mut pool =
            UcStore::<SetAdt<u32>, GcFactory>::new(SetAdt::new(), 0, 4, GcFactory { n: 2 })
                .into_pool(cfg(2));
        pool.submit_batch(msgs).unwrap();
        pool.flush().unwrap();
        // Both cluster clocks announce, then maintenance compacts.
        let hb = pool.heartbeat();
        pool.submit_batch(vec![hb, a.heartbeat()]).unwrap();
        pool.tick_maintenance().unwrap();
        let mut s = pool.finish().unwrap();
        assert!(s.total_log_len() < 30, "retained {}", s.total_log_len());
        for k in 0..6u64 {
            assert_eq!(
                s.materialize_key(k),
                a.materialize_key(k),
                "gc semantics survived pooling, key {k}"
            );
        }
    }
}
