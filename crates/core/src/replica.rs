//! The replica abstraction shared by Algorithm 1, its optimised
//! variants, and Algorithm 2.

use std::fmt::Debug;
use uc_spec::UqAdt;

/// A wait-free replica of a UQ-ADT object.
///
/// The contract mirrors Algorithm 1's interface:
/// * [`Replica::local_update`] performs an update locally (applying it
///   to the replica's own knowledge immediately — the sender receives
///   its broadcast instantaneously) and returns the messages to
///   reliably broadcast to every other process;
/// * [`Replica::on_message`] ingests a peer's message;
/// * [`Replica::query`] answers from local knowledge only (it may
///   mutate caches and the Lamport clock, hence `&mut`);
/// * nothing ever waits: both operations complete synchronously.
pub trait Replica<A: UqAdt> {
    /// Wire message type.
    type Msg: Clone + Debug;

    /// This replica's process id.
    fn pid(&self) -> u32;

    /// Apply an update locally; returns messages to broadcast to every
    /// other process.
    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg>;

    /// Ingest a message from a peer.
    fn on_message(&mut self, msg: &Self::Msg);

    /// Ingest a whole burst of peer messages at once. The default is a
    /// per-message loop; replicas built on the
    /// [`ReplicaEngine`](crate::engine::ReplicaEngine) override it to
    /// merge the batch into the log with a **single**
    /// rollback-and-refold, which is the batching hot path both
    /// `uc-sim` runtimes flush through.
    fn on_batch(&mut self, msgs: &[Self::Msg]) {
        for m in msgs {
            self.on_message(m);
        }
    }

    /// [`Replica::on_batch`] for a burst the caller already owns —
    /// both runtimes hand flushed messages over by value, so
    /// engine-backed replicas move the updates into their logs instead
    /// of cloning them. The default borrows and delegates.
    fn on_batch_owned(&mut self, msgs: Vec<Self::Msg>) {
        self.on_batch(&msgs);
    }

    /// Answer a query from local knowledge.
    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut;

    /// Periodic maintenance (e.g. heartbeats for stability-based GC);
    /// returns messages to broadcast.
    fn tick(&mut self) -> Vec<Self::Msg> {
        Vec::new()
    }

    /// The state this replica would converge to if no further message
    /// arrived — the full fold of its known updates.
    fn materialize(&mut self) -> A::State;

    /// Number of retained log entries (memory-footprint metric for the
    /// §VII-C storage experiments).
    fn log_len(&self) -> usize;

    /// Current Lamport clock value.
    fn clock(&self) -> u64;

    /// Timestamps of the updates this replica currently knows — the
    /// visible-update set used to extract strong-update-consistency
    /// witnesses (Proposition 4). Replicas that discard history (the
    /// GC variant's compacted base, Algorithm 2's per-register map)
    /// return only what they retain; witness tracing requires a
    /// full-log replica.
    fn known_timestamps(&self) -> Vec<crate::timestamp::Timestamp>;
}

/// Hash a state canonically (used for convergence digests).
pub fn state_digest<S: std::hash::Hash>(state: &S) -> u64 {
    use std::hash::{BuildHasher, BuildHasherDefault};
    use uc_history::fxhash::FxHasher;
    BuildHasherDefault::<FxHasher>::default().hash_one(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_states() {
        let a = state_digest(&vec![1, 2, 3]);
        let b = state_digest(&vec![1, 2, 3]);
        let c = state_digest(&vec![3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
