//! Glue between [`Replica`]s and the `uc-sim` runtimes, plus the
//! trace-to-history pipeline that turns a simulated execution into a
//! checkable [`History`] with a strong-update-consistency witness
//! (the Proposition 4 experiment, E5).

use crate::message::{GcMsg, UpdateMsg};
use crate::replica::Replica;
use crate::timestamp::Timestamp;
use std::fmt;
use std::marker::PhantomData;
use uc_criteria::SucWitness;
use uc_history::builder::BuildError;
use uc_history::{EventId, History, HistoryBuilder, ProcessId};
use uc_sim::{Ctx, InvocationRecord, Pid, Protocol};
use uc_spec::UqAdt;

/// Messages whose update timestamp can be extracted (for tagging
/// update invocations in traces).
pub trait TimestampedMsg {
    /// The carried update timestamp, if this message is an update.
    fn update_ts(&self) -> Option<Timestamp>;
}

impl<U> TimestampedMsg for UpdateMsg<U> {
    fn update_ts(&self) -> Option<Timestamp> {
        Some(self.ts)
    }
}

impl<U> TimestampedMsg for GcMsg<U> {
    fn update_ts(&self) -> Option<Timestamp> {
        match self {
            GcMsg::Update(m) => Some(m.ts),
            GcMsg::Heartbeat { .. } => None,
        }
    }
}

/// Application-level invocation: an update or a query of the ADT.
pub enum OpInput<A: UqAdt> {
    /// Perform an update.
    Update(A::Update),
    /// Ask a query.
    Query(A::QueryIn),
}

impl<A: UqAdt> Clone for OpInput<A> {
    fn clone(&self) -> Self {
        match self {
            OpInput::Update(u) => OpInput::Update(u.clone()),
            OpInput::Query(q) => OpInput::Query(q.clone()),
        }
    }
}

impl<A: UqAdt> fmt::Debug for OpInput<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpInput::Update(u) => write!(f, "{u:?}"),
            OpInput::Query(q) => write!(f, "{q:?}?"),
        }
    }
}

/// Application-level response.
pub enum OpOutput<A: UqAdt> {
    /// Update acknowledged; carries the timestamp the replica assigned
    /// (to correlate trace events with log entries) and the replica's
    /// known-update set right after applying it (the visibility the
    /// growth condition constrains), populated when tracing.
    Ack {
        /// Timestamp assigned to the update.
        ts: Option<Timestamp>,
        /// Timestamps visible at this update (including itself).
        seen: Vec<Timestamp>,
    },
    /// Query answered; `seen` is the replica's known-update set at
    /// query time (the visibility witness), populated when tracing.
    Value {
        /// The query output.
        out: A::QueryOut,
        /// Timestamps visible to the query.
        seen: Vec<Timestamp>,
    },
}

impl<A: UqAdt> Clone for OpOutput<A> {
    fn clone(&self) -> Self {
        match self {
            OpOutput::Ack { ts, seen } => OpOutput::Ack {
                ts: *ts,
                seen: seen.clone(),
            },
            OpOutput::Value { out, seen } => OpOutput::Value {
                out: out.clone(),
                seen: seen.clone(),
            },
        }
    }
}

impl<A: UqAdt> fmt::Debug for OpOutput<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpOutput::Ack { ts, .. } => write!(f, "ack{ts:?}"),
            OpOutput::Value { out, .. } => write!(f, "{out:?}"),
        }
    }
}

/// Wraps a [`Replica`] as a [`Protocol`] node for either runtime.
pub struct ReplicaNode<A: UqAdt, R: Replica<A>> {
    /// The wrapped replica.
    pub replica: R,
    /// Record visibility sets in query outputs (needed for witness
    /// extraction; costs O(log) per query).
    pub record_visibility: bool,
    _ph: PhantomData<fn() -> A>,
}

impl<A: UqAdt, R: Replica<A>> ReplicaNode<A, R> {
    /// Wrap a replica, with visibility recording enabled.
    pub fn traced(replica: R) -> Self {
        ReplicaNode {
            replica,
            record_visibility: true,
            _ph: PhantomData,
        }
    }

    /// Wrap a replica without visibility recording (benchmarks).
    pub fn untraced(replica: R) -> Self {
        ReplicaNode {
            replica,
            record_visibility: false,
            _ph: PhantomData,
        }
    }
}

impl<A, R> Protocol for ReplicaNode<A, R>
where
    A: UqAdt,
    R: Replica<A>,
    R::Msg: TimestampedMsg,
{
    type Msg = R::Msg;
    type Input = OpInput<A>;
    type Output = OpOutput<A>;

    fn on_invoke(&mut self, input: Self::Input, ctx: &mut Ctx<'_, Self::Msg>) -> Self::Output {
        match input {
            OpInput::Update(u) => {
                let msgs = self.replica.local_update(u);
                let ts = msgs.iter().find_map(TimestampedMsg::update_ts);
                let seen = if self.record_visibility {
                    self.replica.known_timestamps()
                } else {
                    Vec::new()
                };
                for m in msgs {
                    ctx.broadcast_others(m);
                }
                OpOutput::Ack { ts, seen }
            }
            OpInput::Query(q) => {
                let seen = if self.record_visibility {
                    self.replica.known_timestamps()
                } else {
                    Vec::new()
                };
                let out = self.replica.query(&q);
                OpOutput::Value { out, seen }
            }
        }
    }

    fn on_message(&mut self, _from: Pid, msg: Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.replica.on_message(&msg);
    }

    /// Runtime flushes land on the replica's batched ingest path: one
    /// rollback + refold per burst for engine-backed replicas, with
    /// the flushed messages moved (never cloned) into the log.
    fn on_batch(&mut self, msgs: Vec<(Pid, Self::Msg)>, _ctx: &mut Ctx<'_, Self::Msg>) {
        let msgs: Vec<Self::Msg> = msgs.into_iter().map(|(_, m)| m).collect();
        self.replica.on_batch_owned(msgs);
    }

    /// Timer-driven maintenance: broadcast whatever the replica's
    /// periodic [`Replica::tick`] emits (clock heartbeats for the GC
    /// variant, nothing for the full-log ones).
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for m in self.replica.tick() {
            ctx.broadcast_others(m);
        }
    }
}

/// Failure modes of trace conversion.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying history failed to build.
    Build(BuildError),
    /// An update record carried no timestamp (non-timestamped message
    /// type, or a heartbeat-only batch).
    MissingTimestamp(usize),
    /// A query record referenced a timestamp with no matching update
    /// event (e.g. a GC replica whose compacted entries are gone).
    UnknownTimestamp(Timestamp),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Build(e) => write!(f, "history build failed: {e}"),
            TraceError::MissingTimestamp(i) => {
                write!(f, "update record #{i} has no timestamp")
            }
            TraceError::UnknownTimestamp(ts) => {
                write!(f, "query saw unknown update timestamp {ts:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// How to ω-flag trace events (the "repeated forever" reading of
/// post-quiescence reads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OmegaMarking<'a> {
    /// No ω events: the trace is a plain finite history.
    #[default]
    None,
    /// Flag the **final query** of every process — appropriate when
    /// every process ends with a post-quiescence read. A process whose
    /// trace ends with updates still contributes its last query as the
    /// ω event (the "repeated forever" reading places the repeated
    /// instances after those trailing updates, so the query is emitted
    /// at the end of its process chain to keep ω events program-order
    /// maximal).
    ///
    /// Note what that ω claim asserts for an update-terminated
    /// process: its *recorded* output must still hold in the converged
    /// state, i.e. the trailing updates must not change the query's
    /// answer. If they do, the UC check correctly fails the history —
    /// the trace simply contains no post-quiescence read for that
    /// process, so its mid-run output is not a convergence witness.
    /// End every process with a read (or use
    /// [`OmegaMarking::FinalQueriesOf`] to exclude it) when that claim
    /// is not intended.
    FinalQueries,
    /// Flag final queries only for the listed (surviving) processes.
    /// A crashed process's history simply ends: the paper places no
    /// delivery obligation on its finitely many events, so ω-marking
    /// it would wrongly demand eventual delivery.
    FinalQueriesOf(&'a [Pid]),
}

impl<'a> OmegaMarking<'a> {
    /// The ω-marking matching a store's
    /// [`AvailabilityPolicy`](crate::store::AvailabilityPolicy) after
    /// a partition run. Under the default `Available` policy every
    /// replica's final read is a convergence witness
    /// ([`OmegaMarking::FinalQueries`]); under `DegradedMarked` or
    /// `Refuse` the minority side's reads were flagged or rejected —
    /// they assert nothing about the converged state, so only the
    /// `majority` side's final reads are ω-marked.
    pub fn for_policy(policy: crate::store::AvailabilityPolicy, majority: &'a [Pid]) -> Self {
        use crate::store::AvailabilityPolicy;
        match policy {
            AvailabilityPolicy::Available => OmegaMarking::FinalQueries,
            AvailabilityPolicy::DegradedMarked | AvailabilityPolicy::Refuse => {
                OmegaMarking::FinalQueriesOf(majority)
            }
        }
    }
}

/// Convert a simulation trace into a [`History`] plus the SUC witness
/// Algorithm 1's replicas imply: `≤` is the timestamp order, and each
/// query's visible set is the log it replayed.
pub fn trace_to_history<A, P>(
    adt: A,
    n: usize,
    records: &[InvocationRecord<P>],
    omega: OmegaMarking<'_>,
) -> Result<(History<A>, SucWitness), TraceError>
where
    A: UqAdt + Clone,
    P: Protocol<Input = OpInput<A>, Output = OpOutput<A>>,
{
    // ω-eligibility: the final *query* record of each eligible
    // process. Tracking the last record of any kind here was a
    // paper-semantics bug — a process whose trace ended with an update
    // contributed no ω-query at all, so Definition 4's "all but
    // finitely many queries" check ran on a history with too few (or
    // zero) ω events.
    let mut last_query_of_pid: Vec<Option<usize>> = vec![None; n];
    let mut last_record_of_pid: Vec<Option<usize>> = vec![None; n];
    for (i, r) in records.iter().enumerate() {
        let eligible = match omega {
            OmegaMarking::None => false,
            OmegaMarking::FinalQueries => true,
            OmegaMarking::FinalQueriesOf(pids) => pids.contains(&r.pid),
        };
        if eligible {
            if matches!(r.input, OpInput::Query(_)) {
                last_query_of_pid[r.pid as usize] = Some(i);
            }
            last_record_of_pid[r.pid as usize] = Some(i);
        }
    }

    let mut b = HistoryBuilder::new(adt);
    let procs: Vec<ProcessId> = (0..n).map(|_| b.process()).collect();
    let mut ts_to_event: Vec<(Timestamp, EventId)> = Vec::new();
    let mut pending_queries: Vec<(EventId, Vec<Timestamp>)> = Vec::new();
    let mut pending_updates: Vec<(EventId, Vec<Timestamp>)> = Vec::new();
    // ω queries followed by same-process updates in the trace: the
    // "repeated forever" instances happen after those updates, so the
    // event is emitted once all of its process's records are in (ω
    // events must be program-order maximal).
    type Deferred<A> = (
        ProcessId,
        <A as UqAdt>::QueryIn,
        <A as UqAdt>::QueryOut,
        Vec<Timestamp>,
    );
    let mut deferred: Vec<Deferred<A>> = Vec::new();

    for (i, r) in records.iter().enumerate() {
        let p = procs[r.pid as usize];
        match (&r.input, &r.output) {
            (OpInput::Update(u), out) => {
                let OpOutput::Ack { ts: Some(ts), seen } = out else {
                    return Err(TraceError::MissingTimestamp(i));
                };
                let e = b.update(p, u.clone());
                ts_to_event.push((*ts, e));
                if !seen.is_empty() {
                    pending_updates.push((e, seen.clone()));
                }
            }
            (OpInput::Query(qi), OpOutput::Value { out, seen }) => {
                let omega = last_query_of_pid[r.pid as usize] == Some(i);
                if omega && last_record_of_pid[r.pid as usize] != Some(i) {
                    deferred.push((p, qi.clone(), out.clone(), seen.clone()));
                    continue;
                }
                let e = if omega {
                    b.omega_query(p, qi.clone(), out.clone())
                } else {
                    b.query(p, qi.clone(), out.clone())
                };
                pending_queries.push((e, seen.clone()));
            }
            // An update answered with Value or a query with Ack cannot
            // be produced by ReplicaNode.
            (OpInput::Query(_), OpOutput::Ack { .. }) => {
                return Err(TraceError::MissingTimestamp(i))
            }
        }
    }
    for (p, qi, out, seen) in deferred {
        let e = b.omega_query(p, qi, out);
        pending_queries.push((e, seen));
    }

    let h = b.build().map_err(TraceError::Build)?;
    ts_to_event.sort_by_key(|(ts, _)| *ts);
    let update_order: Vec<EventId> = ts_to_event.iter().map(|(_, e)| *e).collect();
    let lookup = |ts: &Timestamp| -> Result<EventId, TraceError> {
        ts_to_event
            .binary_search_by(|(t, _)| t.cmp(ts))
            .map(|i| ts_to_event[i].1)
            .map_err(|_| TraceError::UnknownTimestamp(*ts))
    };
    let mut visible = Vec::with_capacity(pending_queries.len() + pending_updates.len());
    for (e, seen) in pending_queries.into_iter().chain(pending_updates) {
        let mut v = Vec::with_capacity(seen.len());
        for ts in &seen {
            v.push(lookup(ts)?);
        }
        visible.push((e, v));
    }
    Ok((
        h,
        SucWitness {
            update_order,
            visible,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use std::collections::BTreeSet;
    use uc_criteria::verify_witness;
    use uc_sim::{LatencyModel, SimConfig, Simulation};
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type Node = ReplicaNode<SetAdt<u32>, GenericReplica<SetAdt<u32>>>;

    fn sim(n: usize, seed: u64) -> Simulation<Node> {
        Simulation::new(
            SimConfig {
                n,
                seed,
                latency: LatencyModel::Uniform(5, 80),
                fifo_links: false,
            },
            |pid| ReplicaNode::traced(GenericReplica::new(SetAdt::new(), pid)),
        )
    }

    #[test]
    fn simulated_run_produces_verifiable_suc_witness() {
        let mut s = sim(3, 42);
        // Concurrent conflicting updates plus mid-run queries.
        s.schedule_invoke(0, 0, OpInput::Update(SetUpdate::Insert(1)));
        s.schedule_invoke(0, 1, OpInput::Update(SetUpdate::Delete(1)));
        s.schedule_invoke(2, 2, OpInput::Update(SetUpdate::Insert(2)));
        s.schedule_invoke(10, 0, OpInput::Query(SetQuery::Read));
        s.schedule_invoke(12, 1, OpInput::Query(SetQuery::Read));
        s.run_to_quiescence();
        // Post-quiescence reads on every process.
        let t = s.now() + 1;
        for p in 0..3 {
            s.schedule_invoke(t + p as u64, p, OpInput::Query(SetQuery::Read));
        }
        s.run_to_quiescence();
        let (h, w) = trace_to_history(
            SetAdt::<u32>::new(),
            3,
            s.records(),
            OmegaMarking::FinalQueries,
        )
        .unwrap();
        assert_eq!(verify_witness(&h, &w), Ok(()));
    }

    #[test]
    fn update_terminated_trace_still_omega_marks_the_final_query() {
        // Regression: ω-marking used to track each process's last
        // *record*, so a process whose trace ended with an update
        // contributed no ω-query and the UC verdict was computed on a
        // history with a missing ω event.
        let mut s = sim(2, 21);
        s.schedule_invoke(0, 0, OpInput::Update(SetUpdate::Insert(1)));
        s.schedule_invoke(5, 0, OpInput::Query(SetQuery::Read));
        // p0's trace ends with an update (idempotent re-insert).
        s.schedule_invoke(10, 0, OpInput::Update(SetUpdate::Insert(1)));
        s.run_to_quiescence();
        let t = s.now() + 1;
        s.schedule_invoke(t, 1, OpInput::Query(SetQuery::Read));
        s.run_to_quiescence();

        let (h, _w) = trace_to_history(
            SetAdt::<u32>::new(),
            2,
            s.records(),
            OmegaMarking::FinalQueries,
        )
        .unwrap();
        // Both processes contribute an ω query; p0's is its mid-trace
        // read, emitted at the end of its chain (after the trailing
        // update) per the "repeated forever" reading.
        for p in 0..2u32 {
            let chain = h.chain(ProcessId(p));
            let last = *chain.last().expect("nonempty chain");
            assert!(
                h.event(last).omega && h.event(last).is_query(),
                "process {p} must end with an ω query"
            );
        }
        assert_eq!(h.chain(ProcessId(0)).len(), 3);
        // The history is update consistent: every linearization of the
        // three inserts converges to {1}, which answers both ω reads.
        assert!(uc_criteria::check_uc(&h).holds());
    }

    #[test]
    fn omega_marking_none_and_final_queries_of_unchanged() {
        // FinalQueriesOf must also mark the listed pids' final
        // queries, and None must mark nothing.
        let mut s = sim(2, 3);
        s.schedule_invoke(0, 0, OpInput::Update(SetUpdate::Insert(2)));
        s.schedule_invoke(1, 0, OpInput::Query(SetQuery::Read));
        s.schedule_invoke(2, 0, OpInput::Update(SetUpdate::Insert(3)));
        s.schedule_invoke(3, 1, OpInput::Query(SetQuery::Read));
        s.run_to_quiescence();
        let (h, _) =
            trace_to_history(SetAdt::<u32>::new(), 2, s.records(), OmegaMarking::None).unwrap();
        assert_eq!(h.omegas_mask(), 0);
        let (h, _) = trace_to_history(
            SetAdt::<u32>::new(),
            2,
            s.records(),
            OmegaMarking::FinalQueriesOf(&[0]),
        )
        .unwrap();
        let last0 = *h.chain(ProcessId(0)).last().unwrap();
        assert!(h.event(last0).omega, "listed pid's final query marked");
        let last1 = *h.chain(ProcessId(1)).last().unwrap();
        assert!(!h.event(last1).omega, "unlisted pid unmarked");
    }

    #[test]
    fn mid_run_queries_record_partial_visibility() {
        let mut s = sim(2, 7);
        s.schedule_invoke(0, 0, OpInput::Update(SetUpdate::Insert(5)));
        // Query on p1 before the message can arrive (latency ≥ 5).
        s.schedule_invoke(1, 1, OpInput::Query(SetQuery::Read));
        s.run_to_quiescence();
        let recs = s.records();
        let OpOutput::Value { out, seen } = &recs[1].output else {
            panic!("second record must be the query");
        };
        assert!(out.is_empty());
        assert!(seen.is_empty(), "p1 cannot have seen the update yet");
    }

    #[test]
    fn replicas_converge_in_simulation() {
        let mut s = sim(3, 1234);
        for i in 0..30u32 {
            let pid = (i % 3) as Pid;
            let op = if i % 4 == 0 {
                SetUpdate::Delete(i % 6)
            } else {
                SetUpdate::Insert(i % 6)
            };
            s.schedule_invoke((i * 3) as u64, pid, OpInput::Update(op));
        }
        s.run_to_quiescence();
        let states: Vec<BTreeSet<u32>> = (0..3)
            .map(|p| s.process_mut(p).replica.materialize())
            .collect();
        assert_eq!(states[0], states[1]);
        assert_eq!(states[1], states[2]);
    }

    #[test]
    fn batched_delivery_converges_identically_with_fewer_repairs() {
        use crate::cached::CachedReplica;
        use uc_sim::DeliveryMode;
        type CNode = ReplicaNode<SetAdt<u32>, CachedReplica<SetAdt<u32>>>;
        let run = |batched: bool| {
            let mut s: Simulation<CNode> = Simulation::new(
                SimConfig {
                    n: 3,
                    seed: 9,
                    latency: LatencyModel::Uniform(5, 80),
                    fifo_links: false,
                },
                |pid| {
                    ReplicaNode::untraced(CachedReplica::with_checkpoint_every(
                        SetAdt::new(),
                        pid,
                        8,
                    ))
                },
            );
            if batched {
                s.set_delivery_mode(DeliveryMode::Batched { window: 40 });
            }
            for i in 0..60u32 {
                let pid = (i % 3) as Pid;
                s.schedule_invoke(i as u64, pid, OpInput::Update(SetUpdate::Insert(i)));
            }
            s.run_to_quiescence();
            let batches = s.metrics.batches_delivered;
            let mut states = Vec::new();
            let mut repairs = 0;
            for p in 0..3 {
                let node = s.process_mut(p);
                states.push(node.replica.materialize());
                repairs += node.replica.repair_events();
            }
            (states, repairs, batches)
        };
        let (seq_states, seq_repairs, _) = run(false);
        let (bat_states, bat_repairs, bat_batches) = run(true);
        assert_eq!(seq_states[0], seq_states[1]);
        assert_eq!(seq_states[1], seq_states[2]);
        assert_eq!(seq_states, bat_states, "batching must not change outcomes");
        assert!(
            bat_batches > 0,
            "the workload must actually exercise batching"
        );
        assert!(
            bat_repairs <= seq_repairs,
            "batched repairs {bat_repairs} vs per-message {seq_repairs}"
        );
    }

    #[test]
    fn crash_does_not_block_survivors() {
        let mut s = sim(3, 5);
        s.schedule_crash(1, 2);
        for i in 0..10u32 {
            s.schedule_invoke(
                2 + i as u64,
                (i % 2) as Pid,
                OpInput::Update(SetUpdate::Insert(i)),
            );
        }
        s.run_to_quiescence();
        let a = s.process_mut(0).replica.materialize();
        let b = s.process_mut(1).replica.materialize();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10, "survivors see all updates");
    }
}
