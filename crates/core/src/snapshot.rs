//! **Epoch-published snapshots**: the RCU-style cell behind the
//! pool's wait-free reads.
//!
//! A [`Published<T>`] is a single-writer, multi-reader cell holding
//! an `(epoch, Arc<T>)` pair. The writer (a pool worker, after a
//! repair) installs a new snapshot without ever blocking readers of
//! the current one, and readers take a consistent snapshot without
//! ever waiting behind the writer's repair work:
//!
//! ```text
//!                current ──┐ (atomic slot index)
//!                          ▼
//!        slot 0        slot 1        slot 2
//!      [epoch 41]    [epoch 42]    [epoch 40]   ← writer overwrites
//!         ▲ readers     ▲ readers                 only NON-current
//!                                                 slots, round-robin
//! ```
//!
//! * **Reader**: load `current`, shared-acquire that slot, re-check
//!   `current` (retry if a publish moved it — bounded, with a
//!   consistent-but-one-stale escape hatch), clone the `Arc`. The
//!   shared acquisition is one atomic increment; readers of the
//!   current slot run fully in parallel and are *never* blocked by a
//!   publish, because publishes only ever write non-current slots.
//! * **Writer**: exclusive-acquire the next slot round-robin (waits
//!   only for stragglers still reading a two-generations-old value —
//!   an `Arc` clone, nanoseconds), install `(epoch, value)`, then
//!   move `current`. The repair that *produced* the value happens
//!   entirely before, outside any lock.
//!
//! Epochs are chosen by the writer and must be strictly increasing;
//! readers use them for monotonic-read checks (a reader that saw
//! epoch `e` never again observes `e' < e` — the slot contents only
//! ever move forward and `current` always points at the newest).
//!
//! The workspace forbids `unsafe`, so the cell is built from a slot
//! ring of `RwLock`s plus an atomic index instead of the classic
//! hazard-pointer/epoch-reclamation scheme; the locks are only ever
//! held across pointer-sized copies, never computation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Ring size: one current slot, one write target, one spare so a
/// straggling reader of the oldest value rarely collides with the
/// writer.
const SLOTS: usize = 3;

/// One `(epoch, value)` slot of the ring.
type Slot<T> = RwLock<Option<(u64, Arc<T>)>>;

/// A single-writer multi-reader epoch-published value. See the
/// [module docs](self).
pub struct Published<T> {
    current: AtomicUsize,
    slots: [Slot<T>; SLOTS],
}

impl<T> Default for Published<T> {
    fn default() -> Self {
        Published::new()
    }
}

impl<T> Published<T> {
    /// An empty cell (readers get `None` until the first publish).
    pub fn new() -> Self {
        Published {
            current: AtomicUsize::new(0),
            slots: [RwLock::new(None), RwLock::new(None), RwLock::new(None)],
        }
    }

    /// Wait-free snapshot read: the latest published `(epoch, value)`,
    /// or `None` before the first publish. Never blocks behind a
    /// publish of the current value; may briefly share a straggler
    /// slot with the writer (see module docs).
    pub fn load(&self) -> Option<(u64, Arc<T>)> {
        for _ in 0..8 {
            let i = self.current.load(Ordering::SeqCst);
            let guard = self.slots[i].read().expect("snapshot slot never poisoned");
            if self.current.load(Ordering::SeqCst) == i {
                return guard.clone();
            }
            // A publish moved `current` mid-acquire; retry for the
            // freshest value.
        }
        // Escape hatch under a publish storm: whatever the (then-)
        // current slot holds is a consistent pair and at least as new
        // as anything this reader saw before.
        let i = self.current.load(Ordering::SeqCst);
        self.slots[i]
            .read()
            .expect("snapshot slot never poisoned")
            .clone()
    }

    /// The latest epoch, or 0 before the first publish.
    pub fn epoch(&self) -> u64 {
        self.load().map_or(0, |(e, _)| e)
    }

    /// Install a new snapshot. **Single-writer**: concurrent publishes
    /// on one cell are a protocol violation (the pool guarantees it —
    /// each key's cell is written only by the worker owning its
    /// shard). `epoch` must exceed every previously published epoch.
    pub fn publish(&self, epoch: u64, value: Arc<T>) {
        let cur = self.current.load(Ordering::SeqCst);
        let next = (cur + 1) % SLOTS;
        *self.slots[next]
            .write()
            .expect("snapshot slot never poisoned") = Some((epoch, value));
        self.current.store(next, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_then_publish_then_load() {
        let cell: Published<u32> = Published::new();
        assert!(cell.load().is_none());
        cell.publish(1, Arc::new(7));
        assert_eq!(cell.load().map(|(e, v)| (e, *v)), Some((1, 7)));
        cell.publish(2, Arc::new(8));
        assert_eq!(cell.load().map(|(e, v)| (e, *v)), Some((2, 8)));
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn readers_observe_monotone_epochs_under_publish_storm() {
        let cell: Arc<Published<u64>> = Arc::new(Published::new());
        cell.publish(1, Arc::new(1));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let (e, v) = cell.load().expect("published");
                        assert_eq!(e, *v, "epoch/value pair torn");
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                    }
                })
            })
            .collect();
        for e in 2..=5_000u64 {
            cell.publish(e, Arc::new(e));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 5_000);
    }
}
