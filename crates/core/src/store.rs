//! The **sharded multi-object store**: many independent UQ-ADT
//! objects multiplexed over one replica.
//!
//! Algorithm 1 replicates a *single* object. A production replica
//! serves millions of keys, each an independent object, as in the
//! partitionable-systems follow-up (Perrin et al., *Update Consistency
//! in Partitionable Systems*) — availability and convergence are
//! per-object properties, so the store can run one Algorithm 1
//! instance per key. [`UcStore`] does exactly that:
//!
//! ```text
//!                UcStore<A, F>           (one per replica)
//!   update(key,u)/query(key,q) ── LamportClock + pid  (shared)
//!          │ hash(key) % shards
//!          ▼
//!   Shard 0        Shard 1        …      Shard S-1
//!   {key → ReplicaEngine<A, F::Strategy>}   (per-key log + repair)
//! ```
//!
//! * **one clock, one pid** — every keyed update is stamped from the
//!   store's single Lamport clock ([`ReplicaEngine::local_update_at`]),
//!   so timestamps are unique across keys and cross-key causality is
//!   preserved (an update issued after a query on another key orders
//!   after everything that query saw);
//! * **per-key engines** — each key has its own timestamp-sorted log
//!   and [`RepairStrategy`], so a late message repairs only its own
//!   key's suffix (*repair locality*: an out-of-order burst on a hot
//!   key never refolds cold keys);
//! * **shard map** — keys are grouped `hash(key) % shards`
//!   (`FxHasher`); shards are the unit of batched delivery and of
//!   parallel ingest ([`UcStore::apply_batch_parallel`] drives each
//!   shard on its own scoped thread), so hot keys don't serialize cold
//!   ones;
//! * **per-shard batched delivery** — [`UcStore::apply_batch`] splits
//!   a burst by shard, groups each shard's sub-batch by key
//!   (stable-sorted, so per-sender FIFO within a key survives), and
//!   ingests each key's run through
//!   [`ReplicaEngine::on_deliver_batch`] /
//!   [`UpdateLog::insert_batch`](crate::log::UpdateLog::insert_batch)
//!   — one repair per key per burst;
//! * **Protocol impl** — the store is a
//!   [`Protocol`](uc_sim::Protocol) node and runs unchanged under the
//!   deterministic simulator and the threaded cluster.
//!
//! Strategies are chosen per store through a [`StrategyFactory`]
//! (engines are created lazily on first touch of a key): all four
//! Algorithm 1 variants are available as [`NaiveFactory`],
//! [`CheckpointFactory`], [`UndoFactory`] and [`GcFactory`].

use crate::backend::{BackendFactory, LogBackend, MemFactory};
use crate::engine::{CutError, RepairStrategy, ReplicaEngine};
use crate::gc::StableGc;
use crate::generic::NaiveReplay;
use crate::heal::{mismatched_slots, HealConfig, HealDigest, HealSession, HealTick};
use crate::message::UpdateMsg;
use crate::timestamp::{LamportClock, Timestamp};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use uc_criteria::online::{MonitorConfig, MonitorStats, OnlineMonitor};
use uc_history::fxhash::FxHasher;
use uc_obs::{Health, Registry, TraceKind, TraceRing};
use uc_sim::{Ctx, LinkCounters, Pid, Protocol};
use uc_spec::UqAdt;

/// Object identifier within a store.
pub type Key = u64;

/// Builds one [`RepairStrategy`] per key, on first touch. Factories
/// carry the strategy's configuration (checkpoint spacing, cluster
/// size, …) so a store can be generic over how its objects repair.
pub trait StrategyFactory<A: UqAdt>: Clone {
    /// The strategy this factory produces.
    type Strategy: RepairStrategy<A>;

    /// Build a fresh strategy for one key's engine.
    fn make(&self, adt: &A) -> Self::Strategy;

    /// Reject replica configurations the strategy cannot serve; called
    /// once from [`UcStore::new`], before any engine exists. Default:
    /// accept everything.
    ///
    /// # Panics
    ///
    /// Implementations panic on invalid configurations (e.g.
    /// [`GcFactory`] on `pid ≥ n`, which would otherwise stall
    /// stability silently: the replica's own clock observations and
    /// its peers' view of them would all be ignored, so no log would
    /// ever compact).
    fn validate_replica(&self, pid: u32) {
        let _ = pid;
    }
}

/// Per-key engines replay their log on every query (Algorithm 1
/// verbatim).
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveFactory;

impl<A: UqAdt> StrategyFactory<A> for NaiveFactory {
    type Strategy = NaiveReplay<A>;

    fn make(&self, adt: &A) -> Self::Strategy {
        NaiveReplay::new(adt)
    }
}

/// Per-key engines keep checkpoints every `every` updates (§VII-C
/// caching).
#[derive(Clone, Copy, Debug)]
pub struct CheckpointFactory {
    /// Checkpoint spacing.
    pub every: usize,
}

impl<A: UqAdt> StrategyFactory<A> for CheckpointFactory {
    type Strategy = crate::cached::CheckpointRepair<A>;

    fn make(&self, adt: &A) -> Self::Strategy {
        crate::cached::CheckpointRepair::with_spacing(adt, self.every)
    }
}

/// Per-key engines repair by undo/redo (§VII-C repositioning).
#[derive(Clone, Copy, Debug, Default)]
pub struct UndoFactory;

impl<A: uc_spec::UndoableUqAdt> StrategyFactory<A> for UndoFactory {
    type Strategy = crate::undo::UndoRepair<A>;

    fn make(&self, adt: &A) -> Self::Strategy {
        crate::undo::UndoRepair::new(adt)
    }
}

/// Per-key engines compact their stable prefix (§VII-C garbage
/// collection) for a cluster of `n` replicas.
#[derive(Clone, Copy, Debug)]
pub struct GcFactory {
    /// Cluster size (stability needs everyone's clock).
    pub n: usize,
}

impl<A: UqAdt> StrategyFactory<A> for GcFactory {
    type Strategy = StableGc<A>;

    fn make(&self, adt: &A) -> Self::Strategy {
        StableGc::new(adt, self.n)
    }

    fn validate_replica(&self, pid: u32) {
        // Same guard as `GcReplica::new`: a replica outside the
        // cluster would be ignored by every stability tracker
        // (including its own), freezing GC cluster-wide with no
        // diagnostic.
        assert!(
            (pid as usize) < self.n,
            "GcFactory: pid {pid} must be within the cluster of {}",
            self.n
        );
    }
}

/// Wire message of the store: a keyed Algorithm 1 update, or a clock
/// heartbeat advancing every key's stability knowledge at once.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum StoreMsg<U> {
    /// A timestamped update of one object.
    Update {
        /// The object the update targets.
        key: Key,
        /// The Algorithm 1 broadcast for that object.
        msg: UpdateMsg<U>,
    },
    /// A clock announcement with no payload (one heartbeat covers all
    /// keys — the clock is shared).
    Heartbeat {
        /// The announcing replica.
        pid: u32,
        /// Its clock at send time.
        clock: u64,
    },
    /// An anti-entropy reconciliation burst sent to a healed peer: the
    /// keyed updates it missed while unreachable (everything stamped
    /// above the sender's clock watermark at outage start, excluding
    /// the peer's own updates). Delivery is idempotent — receivers
    /// ingest through the normal deduplicating batch path, so repair
    /// bursts may overlap retransmissions or each other freely.
    Repair {
        /// The missed keyed updates, in timestamp order.
        updates: Vec<(Key, UpdateMsg<U>)>,
    },
    /// Chunked-heal opener: the healing side's per-(group, key-range)
    /// digests of everything it would stream above the outage
    /// watermark. The healed peer compares against its own view and
    /// answers [`StoreMsg::DigestResponse`] with the slots that
    /// differ; matching slots are skipped entirely, so converged
    /// peers exchange O(groups) bytes instead of O(suffix). See
    /// [`heal`](crate::heal).
    DigestRequest {
        /// Session id (echoed by every reply; stale sessions ignore
        /// replies carrying another id).
        session: u64,
        /// The outage-start watermark the digests cover (`clock >
        /// since`).
        since: u64,
        /// Digest group count — the *sender's* shard count; the
        /// receiver evaluates slots with these parameters regardless
        /// of its own sharding.
        groups: u32,
        /// Key-range fan-out per group.
        ranges: u32,
        /// `groups * ranges` digest slots, flattened as
        /// `group * ranges + range`.
        digests: Vec<crate::heal::HealDigest>,
    },
    /// The healed peer's verdict on a [`StoreMsg::DigestRequest`]:
    /// the flat slot indices whose digests differ from its own view
    /// (computed over the same watermark, excluding its own updates).
    /// Only these slots are streamed.
    DigestResponse {
        /// Echoed session id.
        session: u64,
        /// Echoed watermark.
        since: u64,
        /// Flat indices of the differing digest slots, ascending.
        mismatched: Vec<u32>,
    },
    /// One bounded chunk of a heal stream — the flow-controlled
    /// successor of [`StoreMsg::Repair`]. Receivers ingest the
    /// payload through the same deduplicating batch path (so
    /// redelivered or overlapping chunks are no-ops) and acknowledge
    /// with [`StoreMsg::RepairAck`]; the sender keeps at most
    /// `HealConfig::window` chunks unacknowledged.
    RepairChunk {
        /// Echoed session id.
        session: u64,
        /// Session-local chunk sequence number (1-based).
        seq: u64,
        /// True on the session's final chunk; its ack completes the
        /// heal on the sending side.
        last: bool,
        /// The chunk payload, in streaming-plan order.
        updates: Vec<(Key, UpdateMsg<U>)>,
    },
    /// Flow-control acknowledgement of one [`StoreMsg::RepairChunk`];
    /// each ack reopens the sender's window by one chunk.
    RepairAck {
        /// Echoed session id.
        session: u64,
        /// The acknowledged chunk's sequence number.
        seq: u64,
    },
}

impl<U: fmt::Debug> fmt::Debug for StoreMsg<U> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreMsg::Update { key, msg } => write!(f, "k{key}:{msg:?}"),
            StoreMsg::Heartbeat { pid, clock } => write!(f, "hb(p{pid},{clock})"),
            StoreMsg::Repair { updates } => write!(f, "repair[{}]", updates.len()),
            StoreMsg::DigestRequest {
                session,
                since,
                groups,
                ranges,
                ..
            } => write!(f, "digest-req(s{session},>{since},{groups}x{ranges})"),
            StoreMsg::DigestResponse {
                session,
                mismatched,
                ..
            } => write!(f, "digest-resp(s{session},{} slots)", mismatched.len()),
            StoreMsg::RepairChunk {
                session,
                seq,
                last,
                updates,
            } => write!(
                f,
                "chunk(s{session},#{seq}{},{})",
                if *last { ",last" } else { "" },
                updates.len()
            ),
            StoreMsg::RepairAck { session, seq } => write!(f, "chunk-ack(s{session},#{seq})"),
        }
    }
}

/// Application-level invocation against a store.
pub enum StoreInput<A: UqAdt> {
    /// Update one object.
    Update(Key, A::Update),
    /// Query one object.
    Query(Key, A::QueryIn),
    /// Query several objects from one consistent cut at the current
    /// clock — the multi-key read that can never be torn (see
    /// [`UcStore::consistent_snapshot`]).
    Snapshot(Vec<(Key, A::QueryIn)>),
    /// Failure-detector verdict: `peer` became unreachable. The store
    /// records its clock watermark at this moment — everything stamped
    /// above it is the divergence the peer must be repaired with on
    /// heal. Answered with [`StoreOutput::Membership`].
    PeerDown(Pid),
    /// `peer` is reachable again: reconcile-on-heal. The store streams
    /// the suffix the peer missed (straight out of per-key segment
    /// files where the backend supports it) as a
    /// [`StoreMsg::Repair`] burst addressed to the peer, and lifts the
    /// minority-partition posture if this was the last down peer.
    PeerUp(Pid),
}

impl<A: UqAdt> Clone for StoreInput<A> {
    fn clone(&self) -> Self {
        match self {
            StoreInput::Update(k, u) => StoreInput::Update(*k, u.clone()),
            StoreInput::Query(k, q) => StoreInput::Query(*k, q.clone()),
            StoreInput::Snapshot(reqs) => StoreInput::Snapshot(reqs.clone()),
            StoreInput::PeerDown(p) => StoreInput::PeerDown(*p),
            StoreInput::PeerUp(p) => StoreInput::PeerUp(*p),
        }
    }
}

impl<A: UqAdt> fmt::Debug for StoreInput<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreInput::Update(k, u) => write!(f, "k{k}:{u:?}"),
            StoreInput::Query(k, q) => write!(f, "k{k}:{q:?}?"),
            StoreInput::Snapshot(reqs) => {
                write!(f, "snap?")?;
                for (k, q) in reqs {
                    write!(f, " k{k}:{q:?}")?;
                }
                Ok(())
            }
            StoreInput::PeerDown(p) => write!(f, "down(p{p})"),
            StoreInput::PeerUp(p) => write!(f, "up(p{p})"),
        }
    }
}

/// A failure detector ([`uc_sim::HeartbeatDetector`]) can drive the
/// store's membership verdicts directly from missed heartbeats.
impl<A: UqAdt> uc_sim::MembershipInput for StoreInput<A> {
    fn peer_down(peer: Pid) -> Self {
        StoreInput::PeerDown(peer)
    }
    fn peer_up(peer: Pid) -> Self {
        StoreInput::PeerUp(peer)
    }
}

/// Application-level response from a store.
pub enum StoreOutput<A: UqAdt> {
    /// Update acknowledged with its assigned timestamp.
    Ack {
        /// The updated object.
        key: Key,
        /// Timestamp the store assigned.
        ts: Timestamp,
    },
    /// Query answered from local knowledge.
    Value {
        /// The queried object.
        key: Key,
        /// The query output.
        out: A::QueryOut,
    },
    /// Multi-key snapshot answered from one consistent cut.
    Snapshot {
        /// The cut timestamp every answer reflects.
        cut: u64,
        /// Per-key query outputs, in request order.
        outs: Vec<(Key, A::QueryOut)>,
    },
    /// Acknowledges a [`StoreInput::PeerDown`] / [`StoreInput::PeerUp`]
    /// membership report.
    Membership {
        /// The reported peer.
        peer: Pid,
        /// Whether the peer is now considered down.
        down: bool,
    },
    /// A minority-partition answer under
    /// [`AvailabilityPolicy::DegradedMarked`]: the wrapped output was
    /// computed from local knowledge only and may miss concurrent
    /// majority-side updates — callers decide whether that is good
    /// enough.
    Degraded(Box<StoreOutput<A>>),
    /// A read refused under [`AvailabilityPolicy::Refuse`]: this
    /// replica could reach only `live` of `cluster` processes, not a
    /// strict majority.
    Refused {
        /// Reachable processes (including this replica).
        live: usize,
        /// Cluster size.
        cluster: usize,
    },
}

impl<A: UqAdt> Clone for StoreOutput<A> {
    fn clone(&self) -> Self {
        match self {
            StoreOutput::Ack { key, ts } => StoreOutput::Ack { key: *key, ts: *ts },
            StoreOutput::Value { key, out } => StoreOutput::Value {
                key: *key,
                out: out.clone(),
            },
            StoreOutput::Snapshot { cut, outs } => StoreOutput::Snapshot {
                cut: *cut,
                outs: outs.clone(),
            },
            StoreOutput::Membership { peer, down } => StoreOutput::Membership {
                peer: *peer,
                down: *down,
            },
            StoreOutput::Degraded(inner) => StoreOutput::Degraded(inner.clone()),
            StoreOutput::Refused { live, cluster } => StoreOutput::Refused {
                live: *live,
                cluster: *cluster,
            },
        }
    }
}

impl<A: UqAdt> fmt::Debug for StoreOutput<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreOutput::Ack { key, ts } => write!(f, "k{key}:ack{ts:?}"),
            StoreOutput::Value { key, out } => write!(f, "k{key}:{out:?}"),
            StoreOutput::Snapshot { cut, outs } => {
                write!(f, "snap@{cut}")?;
                for (k, out) in outs {
                    write!(f, " k{k}:{out:?}")?;
                }
                Ok(())
            }
            StoreOutput::Membership { peer, down } => {
                write!(f, "p{peer}:{}", if *down { "down" } else { "up" })
            }
            StoreOutput::Degraded(inner) => write!(f, "degraded({inner:?})"),
            StoreOutput::Refused { live, cluster } => write!(f, "refused({live}/{cluster})"),
        }
    }
}

/// How a replica answers reads while it can reach only a **minority**
/// of the cluster — the CAP posture of the partitionable-systems
/// follow-up (Perrin et al., *Update Consistency in Partitionable
/// Systems*). Updates always stay wait-free and local (they propagate
/// after heal); the policy governs queries and snapshots only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AvailabilityPolicy {
    /// Stay fully available (the paper's default, AP): answer from
    /// local knowledge; convergence is restored by
    /// reconciliation-on-heal.
    #[default]
    Available,
    /// Answer from local knowledge but wrap the output in
    /// [`StoreOutput::Degraded`], so callers know the read may miss
    /// concurrent majority-side updates.
    DegradedMarked,
    /// Refuse minority-side reads outright with
    /// [`StoreOutput::Refused`] (CP posture).
    Refuse,
}

/// Per-replica partition bookkeeping: which peers the failure
/// detector reported down, the local clock watermark frozen at each
/// outage start (the lower bound of the divergence window to replay
/// on heal), and the availability policy for minority-side reads.
#[derive(Clone, Debug, Default)]
pub struct PartitionTracker {
    policy: AvailabilityPolicy,
    /// peer → local clock watermark when it was first reported down.
    down: std::collections::BTreeMap<Pid, u64>,
}

impl PartitionTracker {
    /// The minority-read policy in force.
    pub fn policy(&self) -> AvailabilityPolicy {
        self.policy
    }

    /// Set the minority-read policy.
    pub fn set_policy(&mut self, policy: AvailabilityPolicy) {
        self.policy = policy;
    }

    /// Is `peer` currently considered down?
    pub fn is_down(&self, peer: Pid) -> bool {
        self.down.contains_key(&peer)
    }

    /// Number of peers currently considered down.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// The down peers with their outage-start clock watermarks.
    pub fn down_peers(&self) -> impl Iterator<Item = (Pid, u64)> + '_ {
        self.down.iter().map(|(p, w)| (*p, *w))
    }

    /// With `n` processes total, is the reachable side (everyone not
    /// reported down, including this replica) **not** a strict
    /// majority?
    pub fn in_minority(&self, n: usize) -> bool {
        2 * n.saturating_sub(self.down.len()) <= n
    }

    /// Record `peer` down at local clock `watermark`. A repeated
    /// report keeps the original (earliest) watermark — the divergence
    /// window only ever grows while the peer stays down.
    pub(crate) fn mark_down(&mut self, peer: Pid, watermark: u64) {
        self.down.entry(peer).or_insert(watermark);
    }

    /// Clear `peer`'s down record, returning the outage-start
    /// watermark if it was down.
    pub(crate) fn mark_up(&mut self, peer: Pid) -> Option<u64> {
        self.down.remove(&peer)
    }
}

/// An immutable multi-key view of a store at one cut timestamp,
/// returned by [`UcStore::snapshot_at`] and the pool's barrier-cut
/// snapshot. **Provably un-torn**: every key's state is the fold of
/// exactly the delivered updates stamped `clock ≤ cut`, and because
/// the `(clock, pid)` total order on updates makes a clock cut
/// downward-closed, no pair of keys can ever expose a later update
/// while missing an earlier one.
pub struct StoreSnapshot<A: UqAdt> {
    adt: A,
    cut: u64,
    states: std::collections::BTreeMap<Key, A::State>,
}

impl<A: UqAdt> StoreSnapshot<A> {
    pub(crate) fn new(adt: A, cut: u64, states: std::collections::BTreeMap<Key, A::State>) -> Self {
        StoreSnapshot { adt, cut, states }
    }

    /// The cut timestamp every state in this view reflects.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// The state of `key` at the cut; `None` for keys with no engine
    /// at snapshot time (their state is the ADT's initial state —
    /// see [`StoreSnapshot::query`], which answers them uniformly).
    pub fn state(&self, key: Key) -> Option<&A::State> {
        self.states.get(&key)
    }

    /// Answer a query for `key` against the snapshot. Untouched keys
    /// answer from the initial state, mirroring [`UcStore::query`].
    pub fn query(&self, key: Key, q: &A::QueryIn) -> A::QueryOut {
        match self.states.get(&key) {
            Some(state) => self.adt.observe(state, q),
            None => self.adt.observe(&self.adt.initial(), q),
        }
    }

    /// Keys captured in this snapshot, sorted.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.states.keys().copied()
    }

    /// Number of keys captured.
    pub fn key_count(&self) -> usize {
        self.states.len()
    }
}

impl<A: UqAdt + Clone> Clone for StoreSnapshot<A> {
    fn clone(&self) -> Self {
        StoreSnapshot {
            adt: self.adt.clone(),
            cut: self.cut,
            states: self.states.clone(),
        }
    }
}

impl<A: UqAdt> fmt::Debug for StoreSnapshot<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreSnapshot")
            .field("cut", &self.cut)
            .field("states", &self.states)
            .finish()
    }
}

/// Collapse a burst's heartbeats to one per announcing pid (the max
/// clock). `observe_clock` is a running max, so the end state is
/// identical — but each applied heartbeat sweeps every engine in every
/// shard, so a burst carrying one heartbeat per peer would otherwise
/// repeat that full sweep per peer redundancy-free.
pub(crate) fn collapse_heartbeats(mut hbs: Vec<(u32, u64)>) -> Vec<(u32, u64)> {
    hbs.sort_unstable();
    hbs.dedup_by(|later, earlier| {
        // Sorted ascending, so within a pid the max clock is last;
        // keep it by overwriting the earlier entry.
        if later.0 == earlier.0 {
            earlier.1 = later.1;
            true
        } else {
            false
        }
    });
    hbs
}

/// One shard: the keys (and their engines) that hash to it, plus its
/// own global index (the coordinate backend factories open per-key
/// storage under). Crate visibility: shards are the unit of ownership
/// the [`IngestPool`](crate::pool::IngestPool) hands to its persistent
/// workers.
#[derive(Clone, Debug)]
pub(crate) struct Shard<A: UqAdt, S, B = crate::backend::MemBackend> {
    pub(crate) idx: usize,
    pub(crate) objects: HashMap<Key, ReplicaEngine<A, S, B>, BuildHasherDefault<FxHasher>>,
    /// Highest update-timestamp clock this shard has ingested or
    /// issued — the per-shard divergence high-water mark. Heal skips
    /// shards whose high water never passed the outage-start
    /// watermark (nothing there can be missing on the healed peer).
    pub(crate) high_water: u64,
    /// Compaction pin while peers are marked down (see
    /// [`RepairStrategy::set_retention_cap`]); kept on the shard so
    /// lazily created engines inherit it.
    pub(crate) retention_cap: Option<u64>,
}

impl<A: UqAdt, S, B> Shard<A, S, B> {
    pub(crate) fn empty(idx: usize) -> Self {
        Shard {
            idx,
            objects: HashMap::default(),
            high_water: 0,
            retention_cap: None,
        }
    }

    /// Raise the divergence high-water mark to cover `clock`.
    pub(crate) fn note_clock(&mut self, clock: u64) {
        self.high_water = self.high_water.max(clock);
    }
}

impl<A: UqAdt + Clone, S: RepairStrategy<A>, B: LogBackend<A>> Shard<A, S, B> {
    pub(crate) fn engine_mut<F, P>(
        &mut self,
        key: Key,
        adt: &A,
        pid: u32,
        factory: &F,
        persist: &P,
    ) -> &mut ReplicaEngine<A, S, B>
    where
        F: StrategyFactory<A, Strategy = S>,
        P: BackendFactory<A, Backend = B>,
    {
        let idx = self.idx;
        let cap = self.retention_cap;
        self.objects.entry(key).or_insert_with(|| {
            let mut engine = ReplicaEngine::with_backend(
                adt.clone(),
                pid,
                factory.make(adt),
                persist.open(idx, key),
            );
            engine.set_retention_cap(cap);
            engine
        })
    }

    /// Ingest one shard's sub-batch: stable-sort by key (preserving
    /// arrival order within a key, hence per-sender FIFO), then hand
    /// each key's contiguous run to its engine as **one** owned batch
    /// — one repair per key per burst, with the updates moved (never
    /// cloned) into the key's log via `UpdateLog::insert_batch_owned`.
    pub(crate) fn ingest<F, P>(
        &mut self,
        mut bucket: Vec<(Key, UpdateMsg<A::Update>)>,
        adt: &A,
        pid: u32,
        factory: &F,
        persist: &P,
    ) where
        F: StrategyFactory<A, Strategy = S>,
        P: BackendFactory<A, Backend = B>,
    {
        for (_, m) in &bucket {
            self.high_water = self.high_water.max(m.ts.clock);
        }
        bucket.sort_by_key(|(k, _)| *k);
        let mut iter = bucket.into_iter().peekable();
        while let Some((key, first)) = iter.next() {
            let mut msgs = vec![first];
            while let Some((_, m)) = iter.next_if(|(k, _)| *k == key) {
                msgs.push(m);
            }
            self.engine_mut(key, adt, pid, factory, persist)
                .on_deliver_batch_owned(msgs);
        }
    }

    /// Pin (or release) compaction on every engine in this shard and
    /// remember the cap for engines created later.
    pub(crate) fn set_retention_cap(&mut self, cap: Option<u64>) {
        self.retention_cap = cap;
        for engine in self.objects.values_mut() {
            engine.set_retention_cap(cap);
        }
    }

    /// Sweep a heartbeat over every engine in this shard.
    pub(crate) fn observe_peer_clock(&mut self, pid: u32, clock: u64) {
        for engine in self.objects.values_mut() {
            engine.observe_peer_clock(pid, clock);
        }
    }

    /// Run per-key maintenance (compaction) on every engine.
    pub(crate) fn tick_maintenance(&mut self) {
        for engine in self.objects.values_mut() {
            engine.tick_maintenance();
        }
    }

    /// Flush every engine's storage backend (durability point).
    pub(crate) fn flush_backends(&mut self) {
        for engine in self.objects.values_mut() {
            engine.flush_backend();
        }
    }
}

/// Which shard of `shards` a key routes to (`FxHasher`, shared by
/// [`UcStore::shard_of`] and the pool's bucketing).
pub(crate) fn shard_index(key: Key, shards: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u64(key);
    (h.finish() % shards as u64) as usize
}

/// Split a burst into per-shard update buckets plus the heartbeat
/// list, returning the burst's maximum carried clock (callers merge
/// it into their Lamport clock). One routing function for the
/// sequential ingest path and the pool's submit, so shard routing and
/// clock accounting can never drift between them.
#[allow(clippy::type_complexity)]
pub(crate) fn split_by_shard<U>(
    msgs: impl IntoIterator<Item = StoreMsg<U>>,
    shards: usize,
) -> (Vec<Vec<(Key, UpdateMsg<U>)>>, Vec<(u32, u64)>, u64) {
    let mut buckets: Vec<Vec<(Key, UpdateMsg<U>)>> = (0..shards).map(|_| Vec::new()).collect();
    let mut heartbeats = Vec::new();
    let mut max_clock = 0u64;
    for m in msgs {
        match m {
            StoreMsg::Update { key, msg } => {
                max_clock = max_clock.max(msg.ts.clock);
                buckets[shard_index(key, shards)].push((key, msg));
            }
            StoreMsg::Heartbeat { pid, clock } => {
                max_clock = max_clock.max(clock);
                heartbeats.push((pid, clock));
            }
            // A repair burst is just keyed updates in bulk: route each
            // through the same per-shard buckets, so heal ingest is
            // byte-identical to ordinary (deduplicating) delivery. A
            // heal *chunk* is the same thing in bounded pieces.
            StoreMsg::Repair { updates } | StoreMsg::RepairChunk { updates, .. } => {
                for (key, msg) in updates {
                    max_clock = max_clock.max(msg.ts.clock);
                    buckets[shard_index(key, shards)].push((key, msg));
                }
            }
            // Pure heal-protocol control frames carry no updates and
            // need a replying context; the ingest paths drop them —
            // the protocol runtimes route them through
            // `apply_message_from` before ever batching.
            StoreMsg::DigestRequest { .. }
            | StoreMsg::DigestResponse { .. }
            | StoreMsg::RepairAck { .. } => {}
        }
    }
    (buckets, heartbeats, max_clock)
}

/// A sharded multi-object replica: one Algorithm 1 engine per key,
/// one Lamport clock and pid for the whole store, one
/// [`BackendFactory`] deciding where per-key logs and GC bases live
/// (default: the in-memory [`MemFactory`]). See the [module
/// docs](self) for the architecture.
pub struct UcStore<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A> = MemFactory> {
    adt: A,
    pid: u32,
    clock: LamportClock,
    factory: F,
    persist: P,
    /// Clock floor last persisted via
    /// [`BackendFactory::persist_store_clock`] — see
    /// [`UcStore::reserve_clock`]. `None` until the first persist.
    persisted_floor: Option<u64>,
    /// Down-peer bookkeeping and the minority-read policy.
    partition: PartitionTracker,
    /// Estimated wire bytes of every heal burst or chunk this store
    /// has emitted (observability; also folded into runtime metrics
    /// via the attached [`LinkCounters`]).
    heal_replay_bytes: u64,
    /// Chunked-heal tuning (chunk size, flow-control window, digest
    /// range fan-out).
    heal_cfg: HealConfig,
    /// Live chunked-heal sessions, one per healing peer. A session
    /// pins compaction at its watermark exactly like a down peer
    /// (see [`UcStore::apply_retention`]).
    heal_sessions: std::collections::BTreeMap<Pid, HealSession>,
    /// Monotone session-id source (ids disambiguate replies from
    /// cancelled sessions after a flap).
    heal_next_session: u64,
    /// Heal chunks emitted (counter).
    heal_chunks: u64,
    /// Digest slots skipped because both sides agreed (counter).
    heal_digest_skips: u64,
    /// Estimated bytes currently in unacknowledged chunks (gauge).
    heal_bytes_in_flight: u64,
    /// Shared protocol-side counters, folded into the owning
    /// runtime's [`uc_sim::Metrics`] when attached.
    link_counters: Option<Arc<LinkCounters>>,
    /// Streaming consistency monitor ([`UcStore::attach_monitor`]):
    /// shadows a sampled fraction of keys and streams UC/EC/SEC/SNAP
    /// verdicts as counters.
    monitor: Option<OnlineMonitor<A>>,
    /// Ring-buffer event trace ([`UcStore::attach_trace`]); clones
    /// share the buffer, so one ring can span store and runtime.
    trace: Option<TraceRing>,
    shards: Vec<Shard<A, F::Strategy, P::Backend>>,
}

/// How far ahead of the issued clock the persisted recovery floor is
/// pushed on a local update: one floor write buys this many local
/// timestamps before the next one.
const CLOCK_LEASE: u64 = 4096;

impl<A: UqAdt, F: StrategyFactory<A>, P: BackendFactory<A>> fmt::Debug for UcStore<A, F, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UcStore")
            .field("pid", &self.pid)
            .field("clock", &self.clock.now())
            .field("shards", &self.shards.len())
            .field(
                "keys",
                &self.shards.iter().map(|s| s.objects.len()).sum::<usize>(),
            )
            .finish_non_exhaustive()
    }
}

impl<A, F, P> Clone for UcStore<A, F, P>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    F::Strategy: Clone,
    P: BackendFactory<A>,
    P::Backend: Clone,
{
    fn clone(&self) -> Self {
        UcStore {
            adt: self.adt.clone(),
            pid: self.pid,
            clock: self.clock.clone(),
            factory: self.factory.clone(),
            persist: self.persist.clone(),
            persisted_floor: self.persisted_floor,
            partition: self.partition.clone(),
            heal_replay_bytes: self.heal_replay_bytes,
            heal_cfg: self.heal_cfg.clone(),
            heal_sessions: self.heal_sessions.clone(),
            heal_next_session: self.heal_next_session,
            heal_chunks: self.heal_chunks,
            heal_digest_skips: self.heal_digest_skips,
            heal_bytes_in_flight: self.heal_bytes_in_flight,
            link_counters: self.link_counters.clone(),
            monitor: self.monitor.clone(),
            trace: self.trace.clone(),
            shards: self.shards.clone(),
        }
    }
}

impl<A, F> UcStore<A, F>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
{
    /// A fresh in-memory store for replica `pid` with `shards` shards
    /// (≥ 1). Pinned to [`MemFactory`] so pre-refactor call sites stay
    /// inference-clean; use [`UcStore::with_persistence`] for a
    /// persistent backend.
    ///
    /// # Panics
    ///
    /// On zero shards, or when the factory rejects the replica
    /// configuration ([`StrategyFactory::validate_replica`]).
    pub fn new(adt: A, pid: u32, shards: usize, factory: F) -> Self {
        Self::with_persistence(adt, pid, shards, factory, MemFactory)
    }
}

impl<A, F, P> UcStore<A, F, P>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    /// A fresh store whose per-key logs live behind `persist`'s
    /// backends (engines open theirs lazily, on first touch of a key).
    ///
    /// # Panics
    ///
    /// On zero shards, when the factory rejects the replica
    /// configuration ([`StrategyFactory::validate_replica`]), or when
    /// `persist` refuses the bind ([`BackendFactory::bind_replica`])
    /// — in particular, a persistent factory pointed at a root that
    /// already holds a bound store panics here: use
    /// [`UcStore::reopen`] for surviving state.
    pub fn with_persistence(adt: A, pid: u32, shards: usize, factory: F, persist: P) -> Self {
        Self::assemble(adt, pid, shards, factory, persist, true)
    }

    fn assemble(adt: A, pid: u32, shards: usize, factory: F, persist: P, fresh: bool) -> Self {
        assert!(shards >= 1, "a store needs at least one shard");
        factory.validate_replica(pid);
        persist.bind_replica(pid, shards, fresh);
        UcStore {
            adt,
            pid,
            clock: LamportClock::new(),
            factory,
            persist,
            persisted_floor: None,
            partition: PartitionTracker::default(),
            heal_replay_bytes: 0,
            heal_cfg: HealConfig::default(),
            heal_sessions: std::collections::BTreeMap::new(),
            heal_next_session: 0,
            heal_chunks: 0,
            heal_digest_skips: 0,
            heal_bytes_in_flight: 0,
            link_counters: None,
            monitor: None,
            trace: None,
            shards: (0..shards).map(Shard::empty).collect(),
        }
    }

    /// Reopen a store from its persisted state: every key `persist`
    /// knows about is rebuilt as `fold(base) + replay(tail)`
    /// ([`ReplicaEngine::recover`]), and the shared Lamport clock is
    /// restored to the maximum of the store-level watermark and every
    /// recovered engine's clock. The replica configuration (`pid`,
    /// `shards`, strategy factory) must match the store that wrote the
    /// state — shard routing is `hash(key) % shards`, so a different
    /// shard count would look keys up in the wrong place; persistent
    /// factories record the configuration on first use and panic on a
    /// mismatch here ([`BackendFactory::bind_replica`]).
    pub fn reopen(adt: A, pid: u32, shards: usize, factory: F, persist: P) -> Self {
        let mut store = Self::assemble(adt, pid, shards, factory, persist, false);
        let floor = store.persist.load_store_clock();
        store.persisted_floor = Some(floor);
        let mut clock = floor;
        for si in 0..store.shards.len() {
            for (key, backend) in store.persist.open_all(si) {
                let engine = ReplicaEngine::recover(
                    store.adt.clone(),
                    pid,
                    store.factory.make(&store.adt),
                    backend,
                );
                clock = clock.max(engine.clock());
                store.shards[si].objects.insert(key, engine);
            }
        }
        store.clock.merge(clock);
        store
    }

    /// Flush every engine's storage backend and persist the shared
    /// clock watermark — the durability point. The runtimes call this
    /// from [`Protocol::on_tick`], so segment flushing rides the
    /// virtual timer wheel with no dedicated threads; a no-op for
    /// in-memory stores.
    ///
    /// The persisted clock floor is collapsed from its lease back to
    /// the actual clock: every timestamp issued so far just became
    /// durable in some engine's journal (engines flush first), so the
    /// exact value is a safe recovery floor again.
    pub fn flush_backends(&mut self) {
        for shard in &mut self.shards {
            shard.flush_backends();
        }
        self.persist_clock_floor(self.clock.now());
    }

    /// Persist `floor` as the recovery clock floor, skipping the write
    /// when it is already the persisted value (idle ticks cost no IO).
    fn persist_clock_floor(&mut self, floor: u64) {
        if self.persisted_floor != Some(floor) {
            self.persist.persist_store_clock(floor);
            self.persisted_floor = Some(floor);
        }
    }

    /// Ensure the persisted recovery floor covers `issued`, leasing
    /// [`CLOCK_LEASE`] clocks ahead so the floor write amortizes.
    ///
    /// This is what makes crash recovery sound for *broadcast*
    /// timestamps: an update is stamped, broadcast, and only durable
    /// at the next flush — without the floor, a crash inside that
    /// window would reopen the store below timestamps its peers
    /// already hold, and the re-issued duplicates would be silently
    /// deduplicated away (permanent divergence). With it,
    /// [`UcStore::reopen`] restores the clock to at least the floor,
    /// which is at least every timestamp ever issued.
    fn reserve_clock(&mut self, issued: u64) {
        if self.persisted_floor.is_none_or(|f| issued > f) {
            self.persist_clock_floor(issued + CLOCK_LEASE);
        }
    }

    /// Which shard a key routes to.
    pub fn shard_of(&self, key: Key) -> usize {
        shard_index(key, self.shards.len())
    }

    /// Decompose the store into its parts (the pool takes ownership of
    /// the shards and hands them to its persistent workers).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        A,
        u32,
        LamportClock,
        F,
        P,
        Vec<Shard<A, F::Strategy, P::Backend>>,
    ) {
        (
            self.adt,
            self.pid,
            self.clock,
            self.factory,
            self.persist,
            self.shards,
        )
    }

    /// Reassemble a store from parts returned by
    /// [`UcStore::into_parts`] (the pool's drain path).
    pub(crate) fn from_parts(
        adt: A,
        pid: u32,
        clock: LamportClock,
        factory: F,
        persist: P,
        shards: Vec<Shard<A, F::Strategy, P::Backend>>,
    ) -> Self {
        assert!(!shards.is_empty(), "a store needs at least one shard");
        UcStore {
            adt,
            pid,
            clock,
            factory,
            persist,
            // Unknown after a pool round-trip; the next reserve or
            // flush re-persists (at worst one redundant small write).
            persisted_floor: None,
            // Partition bookkeeping stays with whoever ran the
            // protocol (the pool tracks its own); a reassembled store
            // starts with a clean membership view.
            partition: PartitionTracker::default(),
            heal_replay_bytes: 0,
            heal_cfg: HealConfig::default(),
            heal_sessions: std::collections::BTreeMap::new(),
            heal_next_session: 0,
            heal_chunks: 0,
            heal_digest_skips: 0,
            heal_bytes_in_flight: 0,
            link_counters: None,
            // Observability attachments stay with whoever ran the
            // protocol; the pool streams its own monitor counters.
            monitor: None,
            trace: None,
            shards,
        }
    }

    fn engine_mut(&mut self, key: Key) -> &mut ReplicaEngine<A, F::Strategy, P::Backend> {
        let si = self.shard_of(key);
        let UcStore {
            adt,
            pid,
            factory,
            persist,
            shards,
            ..
        } = self;
        shards[si].engine_mut(key, adt, *pid, factory, persist)
    }

    /// Perform a local update on `key`: tick the shared clock, stamp
    /// (reserving the clock floor — see [`UcStore::reserve_clock`]),
    /// apply to the key's engine, and return the broadcast message.
    pub fn update(&mut self, key: Key, u: A::Update) -> StoreMsg<A::Update> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        self.reserve_clock(ts.clock);
        if let Some(mon) = &mut self.monitor {
            mon.observe_update(key, ts.clock, ts.pid, &u);
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceKind::Update, key, ts.clock);
        }
        let si = self.shard_of(key);
        self.shards[si].note_clock(ts.clock);
        let msg = self.engine_mut(key).local_update_at(ts, u);
        StoreMsg::Update { key, msg }
    }

    /// Answer a query on `key` from local knowledge. Ticks the shared
    /// clock (Algorithm 1 line 13), so updates issued afterwards — on
    /// *any* key — order after everything this query saw.
    pub fn query(&mut self, key: Key, q: &A::QueryIn) -> A::QueryOut {
        let now = self.clock.tick();
        // An untouched key answers from the initial state without
        // instantiating an engine.
        let si = self.shard_of(key);
        if !self.shards[si].objects.contains_key(&key) {
            if let Some(mon) = &mut self.monitor {
                mon.check_query_state(key, &self.adt.initial());
            }
            return self.adt.observe(&self.adt.initial(), q);
        }
        let out = self.engine_mut(key).do_query_at(now, q);
        // Sampled keys verify the served state against the monitor's
        // shadow fold (the online UC check); unsampled keys pay one
        // branch.
        if self.monitor.as_ref().is_some_and(|m| m.sampled(key)) {
            let state = self.engine_mut(key).materialize();
            if let Some(mon) = &mut self.monitor {
                mon.check_query_state(key, &state);
            }
        }
        out
    }

    /// An immutable multi-key view at cut `cut`: every instantiated
    /// key's state is the fold of exactly the delivered updates
    /// stamped `clock ≤ cut`. Ticks the shared clock (like
    /// [`UcStore::query`], Algorithm 1 line 13) so updates issued
    /// after the snapshot order after everything it could observe.
    /// Errors when `cut` predates a key's compaction bound (the
    /// prefix needed to rebuild that key's state was folded away —
    /// retry with `cut ≥` the reported bound, or take a
    /// [`UcStore::consistent_snapshot`]).
    pub fn snapshot_at(&mut self, cut: u64) -> Result<StoreSnapshot<A>, CutError> {
        self.clock.tick();
        self.snapshot_no_tick(cut)
    }

    /// A snapshot at the current clock — always answerable (a key's
    /// compaction bound never exceeds the clocks it has heard, and the
    /// cut is taken strictly above our own), and inclusive of every
    /// update delivered so far.
    pub fn consistent_snapshot(&mut self) -> StoreSnapshot<A> {
        let cut = self.clock.tick();
        self.snapshot_no_tick(cut)
            .expect("a cut at the current clock can never predate compaction")
    }

    fn snapshot_no_tick(&mut self, cut: u64) -> Result<StoreSnapshot<A>, CutError> {
        let mut states = std::collections::BTreeMap::new();
        for shard in &mut self.shards {
            for (key, engine) in shard.objects.iter_mut() {
                states.insert(*key, engine.state_at_cut(cut)?);
            }
        }
        if let Some(mon) = &mut self.monitor {
            // Online SNAP check: every sampled key's recorded state
            // must equal the shadow fold of the prefix ≤ cut (a torn
            // cut surfaces here within the same call).
            for (key, state) in &states {
                mon.observe_cut(cut, *key, state);
            }
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceKind::Snapshot, 0, cut);
        }
        Ok(StoreSnapshot::new(self.adt.clone(), cut, states))
    }

    /// Ingest one peer message.
    pub fn apply_message(&mut self, m: &StoreMsg<A::Update>) {
        match m {
            StoreMsg::Update { key, msg } => {
                self.clock.merge(msg.ts.clock);
                if let Some(mon) = &mut self.monitor {
                    mon.observe_update(*key, msg.ts.clock, msg.ts.pid, &msg.update);
                }
                let si = self.shard_of(*key);
                self.shards[si].note_clock(msg.ts.clock);
                self.engine_mut(*key).on_deliver(msg);
            }
            StoreMsg::Heartbeat { pid, clock } => {
                self.clock.merge(*clock);
                if let Some(mon) = &mut self.monitor {
                    mon.observe_heartbeat(*pid, *clock);
                }
                for shard in &mut self.shards {
                    shard.observe_peer_clock(*pid, *clock);
                }
            }
            StoreMsg::Repair { updates } | StoreMsg::RepairChunk { updates, .. } => {
                for (key, msg) in updates {
                    self.clock.merge(msg.ts.clock);
                    if let Some(mon) = &mut self.monitor {
                        mon.observe_update(*key, msg.ts.clock, msg.ts.pid, &msg.update);
                    }
                    let si = self.shard_of(*key);
                    self.shards[si].note_clock(msg.ts.clock);
                    self.engine_mut(*key).on_deliver(msg);
                }
                if let Some(tr) = &self.trace {
                    tr.record(TraceKind::Heal, 0, updates.len() as u64);
                }
            }
            // Heal-protocol control frames need a reply channel; this
            // reply-less entry point can only drop them. Drive the
            // chunk protocol through `apply_message_from` (or the
            // `Protocol` impl, which routes there).
            StoreMsg::DigestRequest { .. }
            | StoreMsg::DigestResponse { .. }
            | StoreMsg::RepairAck { .. } => {}
        }
    }

    /// Ingest one peer message *with a reply path*: heal-protocol
    /// frames (digest exchange, chunk delivery, flow-control acks)
    /// are answered and advanced here, everything else lands on
    /// [`UcStore::apply_message`]. Returns the messages to send,
    /// addressed per recipient — the `Protocol` impl forwards them
    /// via `ctx.send`; direct-drive callers (tests, examples,
    /// [`UcStore::heal_peer`]) deliver them by hand.
    pub fn apply_message_from(
        &mut self,
        from: Pid,
        msg: StoreMsg<A::Update>,
    ) -> Vec<(Pid, StoreMsg<A::Update>)> {
        match msg {
            StoreMsg::DigestRequest {
                session,
                since,
                groups,
                ranges,
                digests,
            } => {
                // Compare the healing side's view against our own
                // (excluding our own updates — those are exactly what
                // it excluded too) and name the slots that differ.
                let ours = self.digest_suffix(since, self.pid, groups, ranges);
                let mismatched = mismatched_slots(&digests, &ours);
                vec![(
                    from,
                    StoreMsg::DigestResponse {
                        session,
                        since,
                        mismatched,
                    },
                )]
            }
            StoreMsg::DigestResponse {
                session,
                since,
                mismatched,
            } => self.on_digest_response(from, session, since, &mismatched),
            StoreMsg::RepairChunk {
                session,
                seq,
                last: _,
                updates,
            } => {
                // Chunk payloads ride the deduplicating batch path —
                // redelivery and overlap are no-ops — then the ack
                // reopens the sender's window.
                let n = updates.len() as u64;
                self.ingest_burst(std::iter::once(StoreMsg::Repair { updates }));
                if let Some(tr) = &self.trace {
                    tr.record(TraceKind::Heal, 0, n);
                }
                vec![(from, StoreMsg::RepairAck { session, seq })]
            }
            StoreMsg::RepairAck { session, seq } => self.on_repair_ack(from, session, seq),
            other => {
                self.apply_message(&other);
                Vec::new()
            }
        }
    }

    /// Ingest a whole burst with per-shard batched delivery: updates
    /// are bucketed by shard, grouped by key, and merged into each
    /// key's log with a single repair
    /// ([`ReplicaEngine::on_deliver_batch`]); heartbeats are folded in
    /// afterwards (processing them last can only delay stability,
    /// never violate it).
    pub fn apply_batch(&mut self, msgs: &[StoreMsg<A::Update>]) {
        self.ingest_burst(msgs.iter().cloned());
    }

    /// [`UcStore::apply_batch`] for a burst the caller already owns:
    /// messages move straight into per-key batches with no cloning —
    /// the path both runtimes' flushes take
    /// ([`Protocol::on_batch`](uc_sim::Protocol::on_batch) hands over
    /// owned messages).
    pub fn apply_batch_owned(&mut self, msgs: Vec<StoreMsg<A::Update>>) {
        self.ingest_burst(msgs);
    }

    /// Feed a burst's per-shard buckets to the monitor and trace (the
    /// batched-ingest observation point, shared by the sequential and
    /// scoped-thread paths). Heartbeats are observed where they are
    /// applied ([`UcStore::apply_message`]).
    #[allow(clippy::type_complexity)]
    fn observe_buckets(&mut self, buckets: &[Vec<(Key, UpdateMsg<A::Update>)>]) {
        if let Some(mon) = &mut self.monitor {
            for (key, msg) in buckets.iter().flatten() {
                mon.observe_update(*key, msg.ts.clock, msg.ts.pid, &msg.update);
            }
        }
        if let Some(tr) = &self.trace {
            let n: usize = buckets.iter().map(Vec::len).sum();
            if n > 0 {
                tr.record(TraceKind::Ingest, 0, n as u64);
            }
        }
    }

    fn ingest_burst(&mut self, msgs: impl IntoIterator<Item = StoreMsg<A::Update>>) {
        let (buckets, heartbeats) = self.bucket_by_shard(msgs);
        self.observe_buckets(&buckets);
        let UcStore {
            adt,
            pid,
            factory,
            persist,
            shards,
            ..
        } = self;
        for (shard, bucket) in shards.iter_mut().zip(buckets) {
            if !bucket.is_empty() {
                shard.ingest(bucket, adt, *pid, factory, persist);
            }
        }
        for (pid, clock) in collapse_heartbeats(heartbeats) {
            self.apply_message(&StoreMsg::Heartbeat { pid, clock });
        }
    }

    /// Like [`UcStore::apply_batch`], but each shard ingests its
    /// bucket on its own scoped thread. Adaptive: falls back to the
    /// sequential path when there is nothing to win — a single shard,
    /// a host without hardware parallelism, or a burst too small to
    /// amortize thread spawns. For sustained ingest, prefer
    /// [`UcStore::into_pool`](crate::pool::IngestPool): the pool's
    /// persistent workers amortize the per-burst spawn cost this path
    /// pays every call.
    pub fn apply_batch_parallel(&mut self, msgs: &[StoreMsg<A::Update>])
    where
        A: Send + Sync,
        A::Update: Send,
        F: Sync,
        F::Strategy: Send,
        A::State: Send,
        P: Sync,
        P::Backend: Send,
    {
        const MIN_PARALLEL_BURST: usize = 256;
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
        if self.shards.len() == 1 || workers == 1 || msgs.len() < MIN_PARALLEL_BURST {
            return self.apply_batch(msgs);
        }
        self.apply_batch_scoped(msgs)
    }

    /// The scoped-thread ingest path, unconditionally: one thread
    /// spawn per non-empty shard bucket per call. Public so the pool
    /// benchmark can compare spawn-per-burst against the persistent
    /// pool without the adaptive fallback masking the difference;
    /// production callers want [`UcStore::apply_batch_parallel`].
    pub fn apply_batch_scoped(&mut self, msgs: &[StoreMsg<A::Update>])
    where
        A: Send + Sync,
        A::Update: Send,
        F: Sync,
        F::Strategy: Send,
        A::State: Send,
        P: Sync,
        P::Backend: Send,
    {
        let (buckets, heartbeats) = self.bucket_by_shard(msgs.iter().cloned());
        self.observe_buckets(&buckets);
        let UcStore {
            adt,
            pid,
            factory,
            persist,
            shards,
            ..
        } = self;
        std::thread::scope(|scope| {
            for (shard, bucket) in shards.iter_mut().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                let (adt, pid, factory, persist) = (&*adt, *pid, &*factory, &*persist);
                scope.spawn(move || shard.ingest(bucket, adt, pid, factory, persist));
            }
        });
        for (pid, clock) in collapse_heartbeats(heartbeats) {
            self.apply_message(&StoreMsg::Heartbeat { pid, clock });
        }
    }

    /// Split a burst into per-shard update buckets plus the heartbeat
    /// list, merging every carried clock into the shared clock.
    #[allow(clippy::type_complexity)]
    fn bucket_by_shard(
        &mut self,
        msgs: impl IntoIterator<Item = StoreMsg<A::Update>>,
    ) -> (Vec<Vec<(Key, UpdateMsg<A::Update>)>>, Vec<(u32, u64)>) {
        let (buckets, heartbeats, max_clock) = split_by_shard(msgs, self.shards.len());
        self.clock.merge(max_clock);
        (buckets, heartbeats)
    }

    /// Announce the shared clock (stability heartbeat covering every
    /// key at once).
    pub fn heartbeat(&self) -> StoreMsg<A::Update> {
        StoreMsg::Heartbeat {
            pid: self.pid,
            clock: self.clock.now(),
        }
    }

    /// Run per-key maintenance (compaction) on every engine, then the
    /// monitor's window maintenance (stability compaction plus the
    /// online EC convergence sweep over sampled keys).
    pub fn tick_maintenance(&mut self) {
        for shard in &mut self.shards {
            shard.tick_maintenance();
        }
        self.monitor_tick();
    }

    /// The monitor's slice of a maintenance tick: advance its
    /// stability watermark with our own clock, compact now-final
    /// windows, and compare every sampled key's materialized state
    /// against its shadow fold (the online EC check).
    fn monitor_tick(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (pid, clock) = (self.pid, self.clock.now());
        let sampled: Vec<Key> = {
            let mon = self.monitor.as_mut().expect("checked above");
            mon.observe_heartbeat(pid, clock);
            mon.tick();
            self.shards
                .iter()
                .flat_map(|s| s.objects.keys().copied())
                .filter(|k| mon.sampled(*k))
                .collect()
        };
        for key in sampled {
            let state = self.engine_mut(key).materialize();
            if let Some(mon) = &mut self.monitor {
                mon.check_tick_state(key, &state);
            }
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceKind::Tick, 0, clock);
        }
    }

    /// Hand the store to a persistent shard-worker ingest pool: its
    /// shards move to long-lived worker threads fed by bounded
    /// queues, and the returned [`IngestPool`](crate::pool::IngestPool)
    /// handle routes updates, queries, and batched peer ingest to the
    /// owning workers. [`IngestPool::finish`](crate::pool::IngestPool::finish)
    /// drains the queues and returns the store.
    pub fn into_pool(self, cfg: crate::pool::PoolConfig) -> crate::pool::IngestPool<A, F, P>
    where
        A: Send + 'static,
        A::Update: Send,
        A::QueryIn: Send,
        A::QueryOut: Send,
        A::State: Send + Sync,
        F: Send + 'static,
        F::Strategy: Send + 'static,
        P: Send + Sync + 'static,
        P::Backend: Send + 'static,
    {
        crate::pool::IngestPool::spawn(self, cfg)
    }

    /// The state `key` would converge to with no further input
    /// (initial state for untouched keys).
    pub fn materialize_key(&mut self, key: Key) -> A::State {
        let si = self.shard_of(key);
        if !self.shards[si].objects.contains_key(&key) {
            return self.adt.initial();
        }
        self.engine_mut(key).materialize()
    }

    /// All keys this store has engines for, sorted.
    pub fn keys(&self) -> Vec<Key> {
        let mut out: Vec<Key> = self
            .shards
            .iter()
            .flat_map(|s| s.objects.keys().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// This replica's process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The shared Lamport clock's current value.
    pub fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of keys with instantiated engines.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.len()).sum()
    }

    /// Retained log entries summed over all keys.
    pub fn total_log_len(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.objects.values())
            .map(|e| e.log_len())
            .sum()
    }

    /// Repair events summed over all keys (at most one per key per
    /// batch).
    pub fn total_repair_events(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.objects.values())
            .map(|e| e.repair_events())
            .sum()
    }

    /// Repair steps (state transitions spent repairing) summed over
    /// all keys — the repair-locality metric: per-key logs keep this
    /// proportional to the touched key's suffix, not the whole store.
    pub fn total_repair_steps(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.objects.values())
            .map(|e| e.repair_steps())
            .sum()
    }

    /// Access one key's engine (observability, tests).
    pub fn engine(&self, key: Key) -> Option<&ReplicaEngine<A, F::Strategy, P::Backend>> {
        self.shards[self.shard_of(key)].objects.get(&key)
    }

    /// Choose how this replica answers reads while it sits in a
    /// minority partition — see [`AvailabilityPolicy`]. Updates are
    /// never refused (the store stays wait-free / AP for writes).
    pub fn set_partition_policy(&mut self, policy: AvailabilityPolicy) {
        self.partition.set_policy(policy);
    }

    /// The partition tracker: which peers are reported down, since
    /// which clock watermark, and the active read policy.
    pub fn partition(&self) -> &PartitionTracker {
        &self.partition
    }

    /// Attach shared link counters so heal-replay traffic is folded
    /// into the owning runtime's [`uc_sim::Metrics`].
    pub fn attach_link_counters(&mut self, counters: Arc<LinkCounters>) {
        self.link_counters = Some(counters);
    }

    /// Estimated wire bytes this store has streamed in
    /// [`StoreMsg::Repair`] bursts on heal.
    pub fn heal_replay_bytes(&self) -> u64 {
        self.heal_replay_bytes
    }

    /// Attach a streaming consistency monitor. Keys that already have
    /// engines are excluded from sampling — their prefix was never
    /// observed, so judging them would only produce false positives.
    /// Replaces any previously attached monitor.
    pub fn attach_monitor(&mut self, cfg: MonitorConfig) {
        let mut mon = OnlineMonitor::new(self.adt.clone(), cfg);
        mon.exclude_keys(self.keys());
        self.monitor = Some(mon);
    }

    /// The attached monitor, if any.
    pub fn monitor(&self) -> Option<&OnlineMonitor<A>> {
        self.monitor.as_ref()
    }

    /// The attached monitor's counters, if any.
    pub fn monitor_stats(&self) -> Option<&MonitorStats> {
        self.monitor.as_ref().map(|m| m.stats())
    }

    /// Attach a ring-buffer event trace (clones share the buffer, so
    /// the caller keeps a handle to drain).
    pub fn attach_trace(&mut self, ring: TraceRing) {
        self.trace = Some(ring);
    }

    /// The attached trace ring, if any.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Fold availability posture, down-peer watermarks, and the
    /// monitor verdict into one health report. `n` is the cluster
    /// size (what the protocol reads off `Ctx::n`).
    pub fn health(&self, n: usize) -> Health {
        let mut h = Health::new(format!("{:?}", self.partition.policy()));
        h.down_peers = self.partition.down_peers().collect();
        // "Unavailable" means reads are actually refused: a minority
        // under `Refuse`. The wait-free postures keep serving and
        // degrade through the down-peer list instead.
        h.in_minority =
            self.partition.in_minority(n) && self.partition.policy() == AvailabilityPolicy::Refuse;
        if let Some(stats) = self.monitor_stats() {
            h.monitor_clean = Some(stats.clean());
            h.monitor_violations = stats.total_violations();
            h.stable_bound = stats.stable_bound;
        }
        h.resolve()
    }

    /// Mirror this store's counters (and the monitor's, when
    /// attached) into a metrics registry under `uc_store_*` /
    /// `uc_monitor_*` names.
    pub fn export_metrics(&self, reg: &Registry) {
        reg.gauge("uc_store_keys").set(self.key_count() as i64);
        reg.gauge("uc_store_log_len")
            .set(self.total_log_len() as i64);
        reg.gauge("uc_store_clock").set(self.clock.now() as i64);
        reg.counter("uc_store_repair_events_total")
            .set(self.total_repair_events());
        reg.counter("uc_store_repair_steps_total")
            .set(self.total_repair_steps());
        reg.counter("uc_store_heal_replay_bytes_total")
            .set(self.heal_replay_bytes);
        reg.counter("uc_store_heal_chunks_total")
            .set(self.heal_chunks);
        reg.counter("uc_store_heal_digest_skips_total")
            .set(self.heal_digest_skips);
        reg.gauge("uc_store_heal_bytes_in_flight")
            .set(self.heal_bytes_in_flight as i64);
        reg.gauge("uc_store_heal_sessions")
            .set(self.heal_sessions.len() as i64);
        if let Some(stats) = self.monitor_stats() {
            crate::observe::export_monitor_stats(stats, reg);
        }
    }

    /// Report `peer` unreachable. Records the outage-start watermark
    /// (the current clock): everything stamped above it while the peer
    /// stays down is, conservatively, divergence the heal must replay.
    /// Idempotent — repeated reports keep the earliest watermark.
    ///
    /// The watermark is taken at failure-*detection* time, not at the
    /// last point known delivered: updates stamped between the actual
    /// link failure and this verdict sit below the watermark and are
    /// never replayed by [`UcStore::peer_up`]. They are still
    /// delivered — the reliable link keeps retransmitting everything
    /// it has queued — *unless* its bounded retry queue sheds them
    /// first. That composition is a sizing contract, not an accident:
    /// `RetryConfig::queue_cap` must hold every message issued within
    /// the failure detector's detection window, so that nothing is
    /// shed before the verdict lands and everything shed afterwards is
    /// above the watermark. Undersized queues are observable
    /// (`LinkStats::shed` / `gaps_skipped`, `Metrics::
    /// messages_dropped`) rather than silent.
    pub fn peer_down(&mut self, peer: Pid) {
        // A flap mid-heal cancels the peer's session; the outage
        // watermark re-opens at the *session's* watermark (not the
        // current clock), so the unacknowledged remainder of the
        // cancelled stream is re-covered by the next heal —
        // resumability through idempotent chunk ingest.
        let watermark = match self.cancel_heal_session(peer) {
            Some(session_since) => session_since.min(self.clock.now()),
            None => self.clock.now(),
        };
        self.partition.mark_down(peer, watermark);
        self.apply_retention();
    }

    /// Re-derive the compaction pin from the down set *and* the live
    /// heal sessions: while any peer is marked down — or any session
    /// is still streaming its suffix — no engine may compact past the
    /// earliest watermark involved. Otherwise an *incoming* heal
    /// burst (carrying the majority's high clocks) would advance
    /// stability and fold this replica's own partition-era updates
    /// into the base before they were streamed back out.
    fn apply_retention(&mut self) {
        let down = self.partition.down_peers().map(|(_, w)| w).min();
        let streaming = self.heal_sessions.values().map(|s| s.since).min();
        let cap = match (down, streaming) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        for shard in &mut self.shards {
            shard.set_retention_cap(cap);
        }
    }

    /// Report `peer` reachable again. If it was down and anything
    /// here moved past its outage-start watermark, opens a chunked
    /// heal session and returns the [`StoreMsg::DigestRequest`] to
    /// send it — the opener of the digest-guided, flow-controlled
    /// heal dialogue (see [`heal`](crate::heal)). The session then
    /// advances through [`UcStore::apply_message_from`] (or the
    /// `Protocol` impl) as responses and acks arrive, and keeps
    /// compaction pinned at the watermark until its final chunk is
    /// acknowledged. `None` when the peer was not down or no shard's
    /// high water passed the watermark (nothing to reconcile).
    ///
    /// For the pre-digest monolithic burst (one
    /// [`StoreMsg::Repair`] carrying the whole suffix), see
    /// [`UcStore::peer_up_monolithic`].
    pub fn peer_up(&mut self, peer: Pid) -> Option<StoreMsg<A::Update>> {
        let since = self.partition.mark_up(peer)?;
        // A cancelled session to this peer cannot exist (sessions are
        // cancelled when the peer goes down), but clear defensively
        // so a stale one can never absorb the new session's replies.
        self.cancel_heal_session(peer);
        if self.shards.iter().all(|s| s.high_water <= since) {
            // Nothing here outran the watermark: no session, and the
            // retention pin (if this was the last down peer) lifts.
            self.apply_retention();
            return None;
        }
        let groups = self.shards.len() as u32;
        let ranges = self.heal_cfg.ranges.max(1);
        let digests = self.digest_suffix(since, peer, groups, ranges);
        let id = self.heal_next_session;
        self.heal_next_session += 1;
        self.heal_sessions.insert(
            peer,
            HealSession::new(peer, since, id, groups, ranges, digests.clone()),
        );
        // The peer left the down set but its session now pins
        // retention at the same watermark — net effect: no change
        // until the session completes.
        self.apply_retention();
        Some(StoreMsg::DigestRequest {
            session: id,
            since,
            groups,
            ranges,
            digests,
        })
    }

    /// PR 8's monolithic heal: collect the peer's entire missed
    /// suffix and return it as one [`StoreMsg::Repair`] burst. Kept
    /// as the baseline the chunked path is benchmarked against (peak
    /// memory here is O(suffix)) and for callers that want the
    /// one-shot semantics in tests. `None` when the peer was not down
    /// or nothing diverged.
    pub fn peer_up_monolithic(&mut self, peer: Pid) -> Option<StoreMsg<A::Update>> {
        let since = self.partition.mark_up(peer)?;
        // Collect under the outgoing (tighter) retention pin, *then*
        // relax it — releasing first would let an interleaved
        // compaction fold the very suffix being streamed.
        let updates = self.collect_suffix_since(since, peer);
        self.apply_retention();
        if updates.is_empty() {
            return None;
        }
        let bytes = repair_bytes_estimate::<A>(&updates);
        self.heal_replay_bytes += bytes;
        if let Some(c) = &self.link_counters {
            LinkCounters::add(&c.heal_replay_bytes, bytes);
        }
        Some(StoreMsg::Repair { updates })
    }

    /// Per-(group, key-range) digests of the retained suffix above
    /// `since`, excluding `exclude`'s own updates — what
    /// [`StoreMsg::DigestRequest`] carries and what its receiver
    /// recomputes locally. Folded straight off each engine's
    /// in-memory sorted log (no cloning, no storage round-trip);
    /// shards whose high water never passed `since` contribute
    /// nothing without touching their engines.
    pub fn digest_suffix(
        &mut self,
        since: u64,
        exclude: Pid,
        groups: u32,
        ranges: u32,
    ) -> Vec<HealDigest> {
        let mut slots = vec![HealDigest::default(); (groups as usize) * (ranges as usize)];
        for shard in &mut self.shards {
            if shard.high_water <= since {
                continue;
            }
            for (key, engine) in shard.objects.iter_mut() {
                let slot = crate::heal::digest_slot(*key, groups, ranges) as usize;
                engine.digest_suffix(since, |ts, hash| {
                    if ts.pid != exclude {
                        slots[slot].fold(hash);
                    }
                });
            }
        }
        slots
    }

    /// A [`StoreMsg::DigestResponse`] arrived: build the streaming
    /// plan from the mismatched slots and emit the first window of
    /// chunks. Replies carrying a stale session id (or arriving with
    /// no session at all) are dropped.
    fn on_digest_response(
        &mut self,
        from: Pid,
        session: u64,
        since: u64,
        mismatched: &[u32],
    ) -> Vec<(Pid, StoreMsg<A::Update>)> {
        let Some(sess) = self.heal_sessions.get(&from) else {
            return Vec::new();
        };
        if sess.id != session || sess.since != since {
            return Vec::new();
        }
        // Candidate keys: everything in shards whose high water
        // passed the watermark — the same pre-filter the digests
        // used, so plan and digest always cover the same universe.
        let mut candidates: Vec<(usize, Key)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.high_water <= since {
                continue;
            }
            candidates.extend(shard.objects.keys().map(|k| (si, *k)));
        }
        let sess = self.heal_sessions.get_mut(&from).expect("checked above");
        if let Some(skipped) = sess.begin_streaming(mismatched, candidates) {
            self.heal_digest_skips += skipped;
        }
        self.pump_heal_session(from)
    }

    /// A [`StoreMsg::RepairAck`] arrived: release its chunk from the
    /// flow-control window and either refill the window or, when the
    /// final chunk is acknowledged, complete the session (lifting its
    /// retention pin).
    fn on_repair_ack(
        &mut self,
        from: Pid,
        session: u64,
        seq: u64,
    ) -> Vec<(Pid, StoreMsg<A::Update>)> {
        let Some(sess) = self.heal_sessions.get_mut(&from) else {
            return Vec::new();
        };
        if sess.id != session {
            return Vec::new();
        }
        let (released, complete) = sess.on_ack(seq);
        self.heal_bytes_in_flight = self.heal_bytes_in_flight.saturating_sub(released);
        if complete {
            self.heal_sessions.remove(&from);
            self.apply_retention();
            return Vec::new();
        }
        self.pump_heal_session(from)
    }

    /// Emit as many chunks to `peer`'s session as its window allows,
    /// reading payloads through the bounded-window engine cursors
    /// (O(chunk) peak memory — segment backends serve straight from
    /// their files) and accounting every emitted chunk's estimated
    /// bytes in the in-flight gauge and heal counters.
    fn pump_heal_session(&mut self, peer: Pid) -> Vec<(Pid, StoreMsg<A::Update>)> {
        let Some(mut sess) = self.heal_sessions.remove(&peer) else {
            return Vec::new();
        };
        let per_entry = 8 + 12 + std::mem::size_of::<A::Update>() as u64;
        let cfg = self.heal_cfg.clone();
        let chunks = {
            let shards = &mut self.shards;
            sess.fill_chunks(&cfg, per_entry, |si, key, since, after, limit| {
                match shards[si].objects.get_mut(&key) {
                    Some(engine) => engine.suffix_since_window(since, after, limit),
                    // The key vanished mid-plan (cannot happen while
                    // the session pins retention, but stay total).
                    None => (Vec::new(), false),
                }
            })
        };
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let bytes = per_entry * c.updates.len() as u64;
            self.heal_chunks += 1;
            self.heal_replay_bytes += bytes;
            self.heal_bytes_in_flight += bytes;
            if let Some(cnt) = &self.link_counters {
                LinkCounters::add(&cnt.heal_replay_bytes, bytes);
            }
            out.push((
                peer,
                StoreMsg::RepairChunk {
                    session: sess.id,
                    seq: c.seq,
                    last: c.last,
                    updates: c.updates,
                },
            ));
        }
        self.heal_sessions.insert(peer, sess);
        out
    }

    /// Drop `peer`'s live heal session (flap, shutdown), releasing
    /// its in-flight gauge contribution; returns its watermark so the
    /// caller can re-open the outage there.
    fn cancel_heal_session(&mut self, peer: Pid) -> Option<u64> {
        let sess = self.heal_sessions.remove(&peer)?;
        self.heal_bytes_in_flight = self
            .heal_bytes_in_flight
            .saturating_sub(sess.inflight_bytes());
        Some(sess.since)
    }

    /// Advance every live heal session one tick: stalled sessions
    /// re-send their digest request or expire their oldest
    /// unacknowledged chunk to reopen the window (liveness on raw
    /// lossy links — over [`ReliableLink`](uc_sim) the expired
    /// chunk's data still arrives; without one the next heal cycle
    /// re-covers it). Returns the messages to send, like
    /// [`UcStore::apply_message_from`].
    pub fn heal_tick(&mut self) -> Vec<(Pid, StoreMsg<A::Update>)> {
        let peers: Vec<Pid> = self.heal_sessions.keys().copied().collect();
        let mut out = Vec::new();
        for peer in peers {
            let stall = self.heal_cfg.stall_ticks;
            let Some(sess) = self.heal_sessions.get_mut(&peer) else {
                continue;
            };
            match sess.on_tick(stall) {
                HealTick::Wait => {}
                HealTick::ResendDigest => {
                    out.push((
                        peer,
                        StoreMsg::DigestRequest {
                            session: sess.id,
                            since: sess.since,
                            groups: sess.groups,
                            ranges: sess.ranges,
                            digests: sess.digests.clone(),
                        },
                    ));
                }
                HealTick::Expired { released, complete } => {
                    self.heal_bytes_in_flight = self.heal_bytes_in_flight.saturating_sub(released);
                    if complete {
                        self.heal_sessions.remove(&peer);
                        self.apply_retention();
                    } else {
                        out.extend(self.pump_heal_session(peer));
                    }
                }
            }
        }
        out
    }

    /// Drive a full chunked heal of `healed` synchronously: open the
    /// session ([`UcStore::peer_up`]) and ping-pong the protocol
    /// frames between the two stores until the session completes.
    /// The direct-drive harness for tests, benches, and examples that
    /// do not run a message-passing runtime; returns the number of
    /// chunks streamed (0 when nothing diverged).
    pub fn heal_peer<F2, P2>(&mut self, healed: &mut UcStore<A, F2, P2>) -> u64
    where
        F2: StrategyFactory<A>,
        P2: BackendFactory<A>,
    {
        let peer = healed.pid();
        let me = self.pid;
        let Some(opener) = self.peer_up(peer) else {
            return 0;
        };
        let mut chunks = 0u64;
        let mut to_peer = vec![opener];
        while !to_peer.is_empty() {
            let mut to_me = Vec::new();
            for m in to_peer.drain(..) {
                if matches!(m, StoreMsg::RepairChunk { .. }) {
                    chunks += 1;
                }
                to_me.extend(healed.apply_message_from(me, m).into_iter().map(|(_, m)| m));
            }
            for m in to_me {
                to_peer.extend(self.apply_message_from(peer, m).into_iter().map(|(_, m)| m));
            }
        }
        chunks
    }

    /// Tune the chunked heal protocol (chunk size, window, digest
    /// range fan-out, stall threshold). Applies to sessions opened
    /// after the call.
    pub fn set_heal_config(&mut self, cfg: HealConfig) {
        self.heal_cfg = cfg;
    }

    /// The chunked-heal tuning in force.
    pub fn heal_config(&self) -> &HealConfig {
        &self.heal_cfg
    }

    /// Heal chunks emitted by this store (counter).
    pub fn heal_chunks(&self) -> u64 {
        self.heal_chunks
    }

    /// Digest slots skipped because both sides agreed (counter) —
    /// the O(divergence) win made visible.
    pub fn heal_digest_skips(&self) -> u64 {
        self.heal_digest_skips
    }

    /// Estimated bytes in unacknowledged heal chunks right now
    /// (gauge; bounded by `window * chunk * entry-size` per session).
    pub fn heal_bytes_in_flight(&self) -> u64 {
        self.heal_bytes_in_flight
    }

    /// Live heal sessions, keyed by healing peer (observability).
    pub fn heal_sessions(&self) -> impl Iterator<Item = (&Pid, &HealSession)> {
        self.heal_sessions.iter()
    }

    /// Every update stamped strictly above `since`, across all keys,
    /// excluding those issued by `exclude_pid`, in timestamp order.
    /// Shards whose divergence high water never passed `since` are
    /// skipped without touching their engines.
    pub fn collect_suffix_since(
        &mut self,
        since: u64,
        exclude_pid: Pid,
    ) -> Vec<(Key, UpdateMsg<A::Update>)> {
        let mut out: Vec<(Key, UpdateMsg<A::Update>)> = Vec::new();
        for shard in &mut self.shards {
            if shard.high_water <= since {
                continue;
            }
            let keys: Vec<Key> = shard.objects.keys().copied().collect();
            for key in keys {
                let engine = shard.objects.get_mut(&key).expect("key just listed");
                for msg in engine.suffix_since(since) {
                    if msg.ts.pid != exclude_pid {
                        out.push((key, msg));
                    }
                }
            }
        }
        out.sort_by_key(|(_, m)| m.ts);
        out
    }

    /// Per-down-peer divergence: `(peer, outage-start watermark,
    /// shards whose high water passed it)`. Observability for
    /// dashboards and tests; the heal path recomputes from the same
    /// high-water marks.
    pub fn divergence(&self) -> Vec<(Pid, u64, usize)> {
        self.partition
            .down_peers()
            .map(|(peer, since)| {
                let shards = self.shards.iter().filter(|s| s.high_water > since).count();
                (peer, since, shards)
            })
            .collect()
    }
}

/// Estimated wire bytes of a repair burst: per entry, 8 (key) + 12
/// (timestamp clock+pid) + the update's in-memory size. An estimate —
/// the real encoding varies per backend — but monotone in burst size,
/// which is what the metric is for.
pub(crate) fn repair_bytes_estimate<A: UqAdt>(updates: &[(Key, UpdateMsg<A::Update>)]) -> u64 {
    let per = 8 + 12 + std::mem::size_of::<A::Update>() as u64;
    per * updates.len() as u64
}

impl<A: UqAdt + Clone, F: StrategyFactory<A>, P: BackendFactory<A>> UcStore<A, F, P> {
    /// Answer a read under the active [`AvailabilityPolicy`]: in a
    /// majority (or with the default `Available` policy) `answer` runs
    /// as-is; in a minority, `DegradedMarked` wraps the answer and
    /// `Refuse` rejects without computing it. `n` is the cluster size
    /// (the protocol reads it off [`Ctx::n`]).
    pub(crate) fn minority_read(
        &mut self,
        n: usize,
        answer: impl FnOnce(&mut Self) -> StoreOutput<A>,
    ) -> StoreOutput<A> {
        if !self.partition.in_minority(n) {
            return answer(self);
        }
        match self.partition.policy() {
            AvailabilityPolicy::Available => answer(self),
            AvailabilityPolicy::DegradedMarked => StoreOutput::Degraded(Box::new(answer(self))),
            AvailabilityPolicy::Refuse => StoreOutput::Refused {
                live: n.saturating_sub(self.partition.down_count()),
                cluster: n,
            },
        }
    }
}

/// The store is a wait-free [`Protocol`] node: invocations complete
/// locally, peer traffic flows through (batched) message delivery —
/// so it runs unchanged under both `uc-sim` runtimes.
impl<A, F, P> Protocol for UcStore<A, F, P>
where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: BackendFactory<A>,
{
    type Msg = StoreMsg<A::Update>;
    type Input = StoreInput<A>;
    type Output = StoreOutput<A>;

    fn on_invoke(&mut self, input: Self::Input, ctx: &mut Ctx<'_, Self::Msg>) -> Self::Output {
        match input {
            StoreInput::Update(key, u) => {
                let m = self.update(key, u);
                let StoreMsg::Update { msg, .. } = &m else {
                    unreachable!("update produces an update message");
                };
                let ts = msg.ts;
                ctx.broadcast_others(m);
                StoreOutput::Ack { key, ts }
            }
            StoreInput::Query(key, q) => self.minority_read(ctx.n(), |s| StoreOutput::Value {
                key,
                out: s.query(key, &q),
            }),
            StoreInput::Snapshot(reqs) => self.minority_read(ctx.n(), |s| {
                let snap = s.consistent_snapshot();
                StoreOutput::Snapshot {
                    cut: snap.cut(),
                    outs: reqs
                        .into_iter()
                        .map(|(key, q)| {
                            let out = snap.query(key, &q);
                            (key, out)
                        })
                        .collect(),
                }
            }),
            StoreInput::PeerDown(p) => {
                self.peer_down(p);
                StoreOutput::Membership {
                    peer: p,
                    down: true,
                }
            }
            StoreInput::PeerUp(p) => {
                if let Some(opener) = self.peer_up(p) {
                    ctx.send(p, opener);
                }
                StoreOutput::Membership {
                    peer: p,
                    down: false,
                }
            }
        }
    }

    fn on_message(&mut self, from: Pid, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        for (to, reply) in self.apply_message_from(from, msg) {
            ctx.send(to, reply);
        }
    }

    /// Runtime flushes land on the per-shard batched ingest path,
    /// moving (never cloning) the flushed messages. Heal-protocol
    /// control frames are peeled off first and answered through
    /// [`UcStore::apply_message_from`] — *after* the ingest, so a
    /// digest response computed for a request sharing the burst
    /// reflects the burst's own updates (maximizing skips); chunk
    /// payloads join the batch and their acks follow it.
    fn on_batch(&mut self, msgs: Vec<(Pid, Self::Msg)>, ctx: &mut Ctx<'_, Self::Msg>) {
        let mut ingest: Vec<Self::Msg> = Vec::with_capacity(msgs.len());
        let mut acks: Vec<(Pid, Self::Msg)> = Vec::new();
        let mut frames: Vec<(Pid, Self::Msg)> = Vec::new();
        for (from, m) in msgs {
            match m {
                StoreMsg::Update { .. } | StoreMsg::Heartbeat { .. } | StoreMsg::Repair { .. } => {
                    ingest.push(m)
                }
                StoreMsg::RepairChunk {
                    session,
                    seq,
                    last: _,
                    updates,
                } => {
                    let n = updates.len() as u64;
                    ingest.push(StoreMsg::Repair { updates });
                    if let Some(tr) = &self.trace {
                        tr.record(TraceKind::Heal, 0, n);
                    }
                    acks.push((from, StoreMsg::RepairAck { session, seq }));
                }
                other => frames.push((from, other)),
            }
        }
        self.ingest_burst(ingest);
        for (to, ack) in acks {
            ctx.send(to, ack);
        }
        for (from, m) in frames {
            for (to, reply) in self.apply_message_from(from, m) {
                ctx.send(to, reply);
            }
        }
    }

    /// Timer-driven maintenance: announce the shared clock (one
    /// heartbeat advances every key's stability knowledge on every
    /// peer), advance stalled heal sessions (digest re-sends, window
    /// expiry), compact every key's stable prefix, and flush the
    /// storage backends. On a timer-driven runtime this is what keeps
    /// GC stores compacting — and segment-backed stores durable —
    /// without any dedicated heartbeat or flusher thread.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast_others(self.heartbeat());
        for (to, m) in self.heal_tick() {
            ctx.send(to, m);
        }
        self.tick_maintenance();
        self.flush_backends();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type Store = UcStore<SetAdt<u32>, CheckpointFactory>;

    fn store(pid: u32, shards: usize) -> Store {
        UcStore::new(SetAdt::new(), pid, shards, CheckpointFactory { every: 4 })
    }

    #[test]
    fn keys_are_independent_objects() {
        let mut s = store(0, 4);
        s.update(1, SetUpdate::Insert(10));
        s.update(2, SetUpdate::Insert(20));
        s.update(1, SetUpdate::Delete(10));
        assert_eq!(s.query(1, &SetQuery::Read), BTreeSet::new());
        assert_eq!(s.query(2, &SetQuery::Read), BTreeSet::from([20]));
        assert_eq!(s.query(3, &SetQuery::Read), BTreeSet::new());
        assert_eq!(s.key_count(), 2, "queries alone do not materialize keys");
    }

    #[test]
    fn timestamps_are_unique_across_keys() {
        let mut s = store(0, 2);
        let mut seen = BTreeSet::new();
        for k in 0..10u64 {
            let StoreMsg::Update { msg, .. } = s.update(k, SetUpdate::Insert(k as u32)) else {
                panic!("update message expected");
            };
            assert!(seen.insert(msg.ts), "duplicate timestamp {:?}", msg.ts);
        }
        assert_eq!(s.clock(), 10, "one shared clock ticks per update");
    }

    #[test]
    fn cross_key_causality_through_the_shared_clock() {
        // p1 updates key A; p0 sees it, then updates key B: p0's
        // update must order after p1's in the shared timestamp order.
        let mut p1 = store(1, 2);
        let ma = p1.update(7, SetUpdate::Insert(1));
        let mut p0 = store(0, 2);
        p0.apply_message(&ma);
        let StoreMsg::Update { msg: mb, .. } = p0.update(8, SetUpdate::Insert(2)) else {
            panic!()
        };
        let StoreMsg::Update { msg: ma, .. } = ma else {
            panic!()
        };
        assert!(mb.ts > ma.ts, "cross-key causality violated");
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let s = store(0, 8);
        for k in 0..1000u64 {
            let a = s.shard_of(k);
            assert!(a < 8);
            assert_eq!(a, s.shard_of(k));
        }
        // All shards get some keys (fx hash spreads u64 keys).
        let used: BTreeSet<usize> = (0..1000u64).map(|k| s.shard_of(k)).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn convergence_across_replicas_any_delivery_order() {
        let mut a = store(0, 3);
        let mut b = store(1, 3);
        let ma: Vec<_> = (0..20u64)
            .map(|i| a.update(i % 5, SetUpdate::Insert(i as u32)))
            .collect();
        let mb: Vec<_> = (0..20u64)
            .map(|i| b.update(i % 5, SetUpdate::Delete((19 - i) as u32)))
            .collect();
        // a gets b's stream reversed, b gets a's in order.
        for m in mb.iter().rev() {
            a.apply_message(m);
        }
        b.apply_batch(&ma);
        for k in 0..5u64 {
            assert_eq!(a.materialize_key(k), b.materialize_key(k), "key {k}");
        }
    }

    #[test]
    fn batched_ingest_matches_per_message_and_repairs_once_per_key() {
        let mut producer = store(1, 1);
        let mut late = store(2, 1);
        // Old messages from `late` order before producer's history.
        let late_msgs: Vec<_> = (0..12u64)
            .map(|i| late.update(i % 3, SetUpdate::Insert(100 + i as u32)))
            .collect();
        let base: Vec<_> = (0..60u64)
            .map(|i| producer.update(i % 3, SetUpdate::Insert(i as u32)))
            .collect();

        let build = |shards: usize| {
            let mut s = store(0, shards);
            s.apply_batch(&base);
            s
        };
        let mut per_msg = build(2);
        for m in &late_msgs {
            per_msg.apply_message(m);
        }
        let mut batched = build(2);
        let before = batched.total_repair_events();
        batched.apply_batch(&late_msgs);
        assert!(
            batched.total_repair_events() - before <= 3,
            "at most one repair per touched key"
        );
        for k in 0..3u64 {
            assert_eq!(per_msg.materialize_key(k), batched.materialize_key(k));
        }
    }

    #[test]
    fn parallel_ingest_matches_sequential() {
        // Large enough to clear the adaptive threshold, so the scoped
        // thread path actually runs on multicore hosts (on a 1-core
        // host the adaptive fallback makes this exercise the
        // sequential path, which must be equivalent anyway).
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..600u64)
            .map(|i| producer.update(i % 17, SetUpdate::Insert(i as u32)))
            .collect();
        let mut seq = store(0, 4);
        seq.apply_batch(&msgs);
        let mut par = store(0, 4);
        par.apply_batch_parallel(&msgs);
        assert_eq!(seq.keys(), par.keys());
        for k in seq.keys() {
            assert_eq!(seq.materialize_key(k), par.materialize_key(k), "key {k}");
        }
        assert_eq!(seq.clock(), par.clock());
    }

    #[test]
    fn gc_store_compacts_per_key_after_heartbeats() {
        let mut a: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: 2 });
        let mut b: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 1, 2, GcFactory { n: 2 });
        let msgs: Vec<_> = (0..30u64)
            .map(|i| a.update(i % 3, SetUpdate::Insert(i as u32)))
            .collect();
        b.apply_batch(&msgs);
        assert_eq!(b.total_log_len(), 30);
        // Clocks cross, then maintenance compacts every key.
        a.apply_message(&b.heartbeat());
        b.apply_message(&a.heartbeat());
        a.tick_maintenance();
        b.tick_maintenance();
        assert!(b.total_log_len() < 30, "retained {}", b.total_log_len());
        assert!(a.total_log_len() < 30);
        for k in 0..3u64 {
            assert_eq!(a.materialize_key(k), b.materialize_key(k));
        }
    }

    #[test]
    fn heartbeat_from_unknown_pid_is_harmless_storewide() {
        let mut s: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: 2 });
        s.update(1, SetUpdate::Insert(1));
        s.apply_message(&StoreMsg::Heartbeat { pid: 42, clock: 9 });
        assert_eq!(s.materialize_key(1), BTreeSet::from([1]));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = store(0, 0);
    }

    #[test]
    #[should_panic(expected = "within the cluster")]
    fn gc_store_rejects_out_of_cluster_pid() {
        // Without this guard the misconfiguration would not panic — it
        // would silently freeze stability cluster-wide (every replica,
        // including this one, ignores clocks from pid ≥ n).
        let _: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 2, 1, GcFactory { n: 2 });
    }

    #[test]
    fn owned_batch_ingest_matches_borrowed() {
        let mut producer = store(1, 1);
        let msgs: Vec<_> = (0..40u64)
            .map(|i| producer.update(i % 4, SetUpdate::Insert(i as u32)))
            .collect();
        let mut borrowed = store(0, 3);
        borrowed.apply_batch(&msgs);
        let mut owned = store(0, 3);
        owned.apply_batch_owned(msgs);
        for k in 0..4u64 {
            assert_eq!(borrowed.materialize_key(k), owned.materialize_key(k));
        }
        assert_eq!(borrowed.clock(), owned.clock());
    }

    #[test]
    fn partition_tracker_minority_and_watermarks() {
        let mut t = PartitionTracker::default();
        assert!(!t.in_minority(3));
        t.mark_down(1, 10);
        // 2 of 3 reachable: still a strict majority.
        assert!(!t.in_minority(3));
        t.mark_down(2, 20);
        assert!(t.in_minority(3));
        // Repeated report keeps the earliest watermark.
        t.mark_down(1, 99);
        assert_eq!(t.down_peers().collect::<Vec<_>>(), vec![(1, 10), (2, 20)]);
        assert_eq!(t.mark_up(1), Some(10));
        assert_eq!(t.mark_up(1), None);
        assert!(!t.in_minority(3));
        // Even split (2 of 4 reachable) is not a strict majority.
        let mut even = PartitionTracker::default();
        even.mark_down(1, 1);
        even.mark_down(2, 1);
        assert!(even.in_minority(4));
    }

    #[test]
    fn monolithic_peer_up_streams_missed_suffix_and_skips_own_updates() {
        let mut s = store(0, 4);
        let mut peer = store(1, 4);
        // Pre-outage traffic reaches the peer normally.
        let pre = s.update(1, SetUpdate::Insert(1));
        peer.apply_message(&pre);
        s.peer_down(1);
        let watermark = s.clock();
        // Updates stamped after the outage start — this is the
        // divergence peer 1 must be repaired with.
        s.update(1, SetUpdate::Insert(2));
        s.update(2, SetUpdate::Insert(3));
        // A delivered update *from* peer 1 itself: it already has it.
        peer.apply_message(&StoreMsg::Heartbeat {
            pid: 0,
            clock: s.clock(),
        });
        let from_peer = peer.update(3, SetUpdate::Insert(9));
        s.apply_message(&from_peer);
        let expected_shards: BTreeSet<usize> =
            [1u64, 2, 3].iter().map(|k| s.shard_of(*k)).collect();
        assert_eq!(s.divergence(), vec![(1, watermark, expected_shards.len())]);
        let Some(StoreMsg::Repair { updates }) = s.peer_up_monolithic(1) else {
            panic!("expected a repair burst");
        };
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|(_, m)| m.ts.clock > watermark));
        assert!(updates.iter().all(|(_, m)| m.ts.pid == 0));
        assert!(updates.windows(2).all(|w| w[0].1.ts < w[1].1.ts));
        assert!(s.heal_replay_bytes() > 0);
        // Heal delivered: the peer converges to the full state.
        peer.apply_message(&StoreMsg::Repair { updates });
        assert_eq!(peer.materialize_key(1), BTreeSet::from([1, 2]));
        assert_eq!(peer.materialize_key(2), BTreeSet::from([3]));
        // Nothing diverged since: a second heal has nothing to send.
        s.peer_down(1);
        assert!(s.peer_up_monolithic(1).is_none());
        assert!(s.heal_sessions().next().is_none());
    }

    #[test]
    fn chunked_peer_up_opens_digest_session_and_heals() {
        let mut s = store(0, 4);
        let mut peer = store(1, 4);
        let pre = s.update(1, SetUpdate::Insert(1));
        peer.apply_message(&pre);
        s.peer_down(1);
        let watermark = s.clock();
        // 30 diverging updates over several keys, chunk size 4: the
        // heal must stream multiple flow-controlled chunks.
        s.set_heal_config(HealConfig {
            chunk: 4,
            window: 2,
            ..HealConfig::default()
        });
        for i in 0..30u64 {
            s.update(i % 5, SetUpdate::Insert(100 + i as u32));
        }
        // An update from peer 1 itself: excluded from the stream.
        peer.apply_message(&StoreMsg::Heartbeat {
            pid: 0,
            clock: s.clock(),
        });
        let from_peer = peer.update(3, SetUpdate::Insert(9));
        s.apply_message(&from_peer);

        let chunks = s.heal_peer(&mut peer);
        assert!(chunks >= 8, "30 entries / chunk=4 needs ≥ 8, got {chunks}");
        assert_eq!(s.heal_chunks(), chunks);
        assert!(s.heal_replay_bytes() > 0);
        assert_eq!(s.heal_bytes_in_flight(), 0, "all chunks acked");
        assert!(
            s.heal_sessions().next().is_none(),
            "session completes on the last ack"
        );
        assert_eq!(s.partition().down_count(), 0);
        // Convergence: the healed peer matches the healer everywhere,
        // and nothing below the watermark was re-streamed (dedup
        // would hide it, so check convergence is the invariant).
        for k in 0..5u64 {
            assert_eq!(s.materialize_key(k), peer.materialize_key(k), "key {k}");
        }
        assert_eq!(
            peer.materialize_key(3),
            BTreeSet::from([9, 103, 108, 113, 118, 123, 128]),
            "peer's own insert survives alongside the streamed run"
        );
        let _ = watermark;
        // Re-heal with nothing new: peer_up returns None (fast path —
        // no shard outran the watermark), no session, no chunks.
        s.peer_down(1);
        let before = s.heal_chunks();
        assert_eq!(s.heal_peer(&mut peer), 0);
        assert_eq!(s.heal_chunks(), before);
        assert_eq!(s.partition().down_count(), 0);
    }

    #[test]
    fn digest_exchange_skips_converged_slots() {
        // Both sides hold the same diverging suffix (converged via
        // another path): every slot digest matches, so the heal
        // session streams nothing but its empty final chunk.
        let mut s = store(0, 8);
        let mut peer = store(1, 8);
        s.peer_down(1);
        for i in 0..20u64 {
            let m = s.update(i, SetUpdate::Insert(i as u32));
            // The "other path": the peer already got everything.
            peer.apply_message(&m);
        }
        let total_slots = 8 * s.heal_config().ranges as u64;
        let chunks = s.heal_peer(&mut peer);
        assert_eq!(chunks, 1, "only the empty completion chunk");
        assert_eq!(
            s.heal_digest_skips(),
            total_slots,
            "every slot agreed and was skipped"
        );
        for i in 0..20u64 {
            assert_eq!(s.materialize_key(i), peer.materialize_key(i));
        }
    }

    #[test]
    fn digest_never_skips_differing_contents_of_same_shape() {
        // Same keys, same update *count*, different payloads: digests
        // must mismatch (payload hash reaches the digest), so the
        // heal streams the real suffix — the collision-resistance
        // gate of the skip decision.
        let mut s = store(0, 2);
        let mut peer = store(1, 2);
        s.peer_down(1);
        s.update(7, SetUpdate::Insert(1));
        // The peer holds a different update under an identical shape
        // (one entry on the same key, from a third replica).
        let mut other = store(2, 2);
        other.update(7, SetUpdate::Insert(999));
        let StoreMsg::Update { key, msg } = other.update(7, SetUpdate::Insert(2)) else {
            panic!()
        };
        peer.apply_message(&StoreMsg::Update { key, msg });
        let chunks = s.heal_peer(&mut peer);
        assert!(chunks >= 1);
        assert!(
            peer.materialize_key(7).contains(&1),
            "diverged key was streamed despite equal counts"
        );
        // And the healer's own digest path never skipped that slot.
        assert!(
            s.heal_digest_skips() < 2 * s.heal_config().ranges as u64,
            "the touched slot must not be counted skipped"
        );
    }

    #[test]
    fn flap_mid_heal_cancels_session_and_reheals_idempotently() {
        let mut s = store(0, 2);
        let mut peer = store(1, 2);
        s.peer_down(1);
        s.set_heal_config(HealConfig {
            chunk: 2,
            window: 1,
            ..HealConfig::default()
        });
        for i in 0..10u64 {
            s.update(i % 3, SetUpdate::Insert(i as u32));
        }
        // Open the session and deliver only the digest exchange plus
        // the first chunk — then the peer flaps before acking.
        let opener = s.peer_up(1).expect("divergence exists");
        let resp = peer.apply_message_from(0, opener);
        assert_eq!(resp.len(), 1);
        let mut first_chunks = s.apply_message_from(1, resp.into_iter().next().unwrap().1);
        assert!(!first_chunks.is_empty());
        let (_, first_chunk) = first_chunks.remove(0);
        let _ack = peer.apply_message_from(0, first_chunk);
        assert!(s.heal_bytes_in_flight() > 0, "chunk unacked");
        let watermark_before = s
            .heal_sessions()
            .next()
            .map(|(_, sess)| sess.since)
            .expect("session live");
        // Flap: the session cancels, the outage re-opens at the
        // session watermark, and the gauge drains.
        s.peer_down(1);
        assert!(s.heal_sessions().next().is_none());
        assert_eq!(s.heal_bytes_in_flight(), 0);
        assert_eq!(
            s.partition().down_peers().collect::<Vec<_>>(),
            vec![(1, watermark_before)],
            "re-opened outage covers the cancelled stream"
        );
        // The stale ack from the first session is ignored.
        // (peer already ingested chunk 1 — redelivery below dedups.)
        // Full re-heal: everything converges despite the overlap.
        let chunks = s.heal_peer(&mut peer);
        assert!(chunks >= 1);
        for k in 0..3u64 {
            assert_eq!(s.materialize_key(k), peer.materialize_key(k), "key {k}");
        }
    }

    #[test]
    fn repair_ingest_is_idempotent() {
        let mut producer = store(1, 2);
        let msgs: Vec<_> = (0..10u64)
            .map(|i| producer.update(i % 3, SetUpdate::Insert(i as u32)))
            .collect();
        let mut s = store(0, 2);
        s.apply_batch(&msgs);
        let updates: Vec<_> = msgs
            .iter()
            .map(|m| {
                let StoreMsg::Update { key, msg } = m else {
                    unreachable!()
                };
                (*key, msg.clone())
            })
            .collect();
        let before: Vec<_> = (0..3u64).map(|k| s.materialize_key(k)).collect();
        let log_before = s.total_log_len();
        // A repair burst overlapping everything already delivered
        // (e.g. a heal racing retransmissions) must be a no-op.
        s.apply_message(&StoreMsg::Repair {
            updates: updates.clone(),
        });
        s.apply_batch(&[StoreMsg::Repair { updates }]);
        assert_eq!(s.total_log_len(), log_before);
        for k in 0..3u64 {
            assert_eq!(s.materialize_key(k), before[k as usize]);
        }
    }

    #[test]
    fn divergence_skips_quiet_shards() {
        // Many shards, one touched after the outage: heal must not
        // report (or walk) the quiet ones.
        let mut s = store(0, 8);
        for k in 0..8u64 {
            s.update(k, SetUpdate::Insert(k as u32));
        }
        s.peer_down(1);
        let watermark = s.clock();
        s.update(0, SetUpdate::Insert(100));
        let touched = s.shard_of(0);
        let (_, since, shards) = s.divergence()[0];
        assert_eq!(since, watermark);
        assert_eq!(shards, 1);
        let suffix = s.collect_suffix_since(watermark, 1);
        assert_eq!(suffix.len(), 1);
        assert_eq!(s.shard_of(suffix[0].0), touched);
    }

    #[test]
    fn minority_reads_follow_policy() {
        let n = 3;
        let mut s = store(0, 2);
        s.update(1, SetUpdate::Insert(7));
        // Majority: every policy answers normally.
        for policy in [
            AvailabilityPolicy::Available,
            AvailabilityPolicy::DegradedMarked,
            AvailabilityPolicy::Refuse,
        ] {
            s.set_partition_policy(policy);
            let out = s.minority_read(n, |s| StoreOutput::Value {
                key: 1,
                out: s.query(1, &SetQuery::Read),
            });
            assert!(matches!(out, StoreOutput::Value { .. }), "{policy:?}");
        }
        // Minority (1 of 3 reachable).
        s.peer_down(1);
        s.peer_down(2);
        s.set_partition_policy(AvailabilityPolicy::Available);
        let out = s.minority_read(n, |s| StoreOutput::Value {
            key: 1,
            out: s.query(1, &SetQuery::Read),
        });
        assert!(matches!(out, StoreOutput::Value { .. }));
        s.set_partition_policy(AvailabilityPolicy::DegradedMarked);
        let out = s.minority_read(n, |s| StoreOutput::Value {
            key: 1,
            out: s.query(1, &SetQuery::Read),
        });
        let StoreOutput::Degraded(inner) = out else {
            panic!("expected a degraded wrapper, got {out:?}");
        };
        assert!(matches!(*inner, StoreOutput::Value { .. }));
        s.set_partition_policy(AvailabilityPolicy::Refuse);
        let out = s.minority_read(n, |s| StoreOutput::Value {
            key: 1,
            out: s.query(1, &SetQuery::Read),
        });
        assert!(matches!(
            out,
            StoreOutput::Refused {
                live: 1,
                cluster: 3
            }
        ));
        // Heal one peer back: 2 of 3 is a majority again.
        s.peer_down(1);
        let _ = s.peer_up(1);
        let out = s.minority_read(n, |s| StoreOutput::Value {
            key: 1,
            out: s.query(1, &SetQuery::Read),
        });
        assert!(matches!(out, StoreOutput::Value { .. }));
    }
}
