//! Lamport timestamps (§VII-B): the total order Algorithm 1 builds
//! over updates.
//!
//! A logical Lamport clock is only a pre-total order (distinct events
//! may share a time), so events are stamped with the pair
//! `(clock, pid)` compared lexicographically — process ids are unique
//! and totally ordered, making the pair order total. The clock
//! contains the happened-before relation, so the timestamp order
//! respects program order and message causality.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A `(clock, pid)` Lamport timestamp, ordered lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// The logical time.
    pub clock: u64,
    /// The issuing process (tie-breaker).
    pub pid: u32,
}

impl Timestamp {
    /// Build a timestamp.
    pub fn new(clock: u64, pid: u32) -> Self {
        Timestamp { clock, pid }
    }

    /// Encoded size in bytes of the pair, for the §VII-C message-size
    /// accounting: both components are varint-sized, growing
    /// logarithmically with the number of operations and processes.
    pub fn wire_size(&self) -> u64 {
        fn varint(mut x: u64) -> u64 {
            let mut n = 1;
            while x >= 0x80 {
                x >>= 7;
                n += 1;
            }
            n
        }
        varint(self.clock) + varint(self.pid as u64)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.clock, self.pid)
    }
}

/// A process-local Lamport clock (lines 2, 5, 9, 13 of Algorithm 1),
/// backed by an `AtomicU64` so any number of handles may stamp
/// through one clock concurrently without a lock.
///
/// `tick` is a single unconditional `fetch_add` — the degenerate,
/// always-succeeding compare-and-swap, so stamping is *wait-free* —
/// and `merge` is a `fetch_max` (a bounded CAS retry under
/// contention, lock-free). Two concurrent `tick`s can never return
/// the same value, so `(clock, pid)` pairs stamped through a shared
/// clock are unique by construction; [`ReplicaEngine`] re-asserts
/// this when the stamp reaches the log (a duplicate would silently
/// dedup away at peers and diverge the cluster).
///
/// The methods take `&self`; single-owner call sites that used to
/// hold `&mut` compile unchanged.
///
/// [`ReplicaEngine`]: crate::engine::ReplicaEngine
#[derive(Debug, Default)]
pub struct LamportClock {
    current: AtomicU64,
}

impl LamportClock {
    /// A clock at 0.
    pub fn new() -> Self {
        LamportClock {
            current: AtomicU64::new(0),
        }
    }

    /// A clock starting at `value` (recovery from a persisted floor).
    pub fn at(value: u64) -> Self {
        LamportClock {
            current: AtomicU64::new(value),
        }
    }

    /// Current value.
    pub fn now(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// `clock ← clock + 1` (performed on every update *and* query in
    /// Algorithm 1), returning the new value. Wait-free: one atomic
    /// increment, unique per caller even under contention.
    pub fn tick(&self) -> u64 {
        self.current.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// `clock ← max(clock, observed)` (line 9, on message receipt).
    /// Lock-free running max.
    pub fn merge(&self, observed: u64) {
        self.current.fetch_max(observed, Ordering::SeqCst);
    }
}

/// Clones observe the current value; the copies tick independently
/// afterwards (exactly the old non-atomic semantics).
impl Clone for LamportClock {
    fn clone(&self) -> Self {
        LamportClock::at(self.now())
    }
}

impl PartialEq for LamportClock {
    fn eq(&self, other: &Self) -> bool {
        self.now() == other.now()
    }
}

impl Eq for LamportClock {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        assert!(Timestamp::new(1, 5) < Timestamp::new(2, 0));
        assert!(Timestamp::new(2, 0) < Timestamp::new(2, 1));
        assert_eq!(Timestamp::new(3, 3), Timestamp::new(3, 3));
    }

    #[test]
    fn tick_is_strictly_increasing() {
        let c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn merge_takes_max() {
        let c = LamportClock::new();
        c.tick();
        c.merge(10);
        assert_eq!(c.now(), 10);
        c.merge(3);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn happened_before_is_respected() {
        // Receive at 10, then local tick: local events stamp > 10.
        let c = LamportClock::new();
        c.merge(10);
        assert!(c.tick() > 10);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        use std::collections::BTreeSet;
        use std::sync::Arc;
        let clock = Arc::new(LamportClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || (0..1000).map(|_| clock.tick()).collect::<Vec<u64>>())
            })
            .collect();
        let mut seen = BTreeSet::new();
        for t in threads {
            for v in t.join().unwrap() {
                assert!(seen.insert(v), "duplicate stamp {v}");
            }
        }
        assert_eq!(clock.now(), 4000);
    }

    #[test]
    fn wire_size_grows_logarithmically() {
        assert_eq!(Timestamp::new(1, 1).wire_size(), 2);
        assert_eq!(Timestamp::new(300, 1).wire_size(), 3);
        assert!(Timestamp::new(u64::MAX, 1).wire_size() <= 11);
    }
}
