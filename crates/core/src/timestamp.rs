//! Lamport timestamps (§VII-B): the total order Algorithm 1 builds
//! over updates.
//!
//! A logical Lamport clock is only a pre-total order (distinct events
//! may share a time), so events are stamped with the pair
//! `(clock, pid)` compared lexicographically — process ids are unique
//! and totally ordered, making the pair order total. The clock
//! contains the happened-before relation, so the timestamp order
//! respects program order and message causality.

use std::fmt;

/// A `(clock, pid)` Lamport timestamp, ordered lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// The logical time.
    pub clock: u64,
    /// The issuing process (tie-breaker).
    pub pid: u32,
}

impl Timestamp {
    /// Build a timestamp.
    pub fn new(clock: u64, pid: u32) -> Self {
        Timestamp { clock, pid }
    }

    /// Encoded size in bytes of the pair, for the §VII-C message-size
    /// accounting: both components are varint-sized, growing
    /// logarithmically with the number of operations and processes.
    pub fn wire_size(&self) -> u64 {
        fn varint(mut x: u64) -> u64 {
            let mut n = 1;
            while x >= 0x80 {
                x >>= 7;
                n += 1;
            }
            n
        }
        varint(self.clock) + varint(self.pid as u64)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.clock, self.pid)
    }
}

/// A process-local Lamport clock (lines 2, 5, 9, 13 of Algorithm 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LamportClock {
    current: u64,
}

impl LamportClock {
    /// A clock at 0.
    pub fn new() -> Self {
        LamportClock { current: 0 }
    }

    /// Current value.
    pub fn now(&self) -> u64 {
        self.current
    }

    /// `clock ← clock + 1` (performed on every update *and* query in
    /// Algorithm 1), returning the new value.
    pub fn tick(&mut self) -> u64 {
        self.current += 1;
        self.current
    }

    /// `clock ← max(clock, observed)` (line 9, on message receipt).
    pub fn merge(&mut self, observed: u64) {
        self.current = self.current.max(observed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        assert!(Timestamp::new(1, 5) < Timestamp::new(2, 0));
        assert!(Timestamp::new(2, 0) < Timestamp::new(2, 1));
        assert_eq!(Timestamp::new(3, 3), Timestamp::new(3, 3));
    }

    #[test]
    fn tick_is_strictly_increasing() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn merge_takes_max() {
        let mut c = LamportClock::new();
        c.tick();
        c.merge(10);
        assert_eq!(c.now(), 10);
        c.merge(3);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn happened_before_is_respected() {
        // Receive at 10, then local tick: local events stamp > 10.
        let mut c = LamportClock::new();
        c.merge(10);
        assert!(c.tick() > 10);
    }

    #[test]
    fn wire_size_grows_logarithmically() {
        assert_eq!(Timestamp::new(1, 1).wire_size(), 2);
        assert_eq!(Timestamp::new(300, 1).wire_size(), 3);
        assert!(Timestamp::new(u64::MAX, 1).wire_size() <= 11);
    }
}
