//! The **undo-based repositioning** variant (§VII-C, after Karsenty &
//! Beaudouin-Lafon's ICDCS'93 groupware algorithm): each update `u`
//! has an inverse, so a late message at position `p` is integrated by
//! undoing the suffix `log[p..]` (LIFO), applying the newcomer, and
//! replaying the suffix — "which saves computation time" relative to
//! replaying from `s0`, at the cost of requiring an
//! [`UndoableUqAdt`] and storing one undo token per entry.

use crate::message::UpdateMsg;
use crate::replica::Replica;
use crate::timestamp::{LamportClock, Timestamp};
use uc_spec::UndoableUqAdt;

/// Algorithm 1 with undo-based late-message integration; queries are
/// O(1).
#[derive(Clone, Debug)]
pub struct UndoReplica<A: UndoableUqAdt> {
    adt: A,
    pid: u32,
    clock: LamportClock,
    /// Timestamp-sorted entries with the token captured when each was
    /// applied at its current position.
    entries: Vec<(Timestamp, A::Update, A::UndoToken)>,
    state: A::State,
    /// Undo + redo steps performed (observability for the E8 bench).
    pub repair_steps: u64,
}

impl<A: UndoableUqAdt> UndoReplica<A> {
    /// A fresh replica for process `pid`.
    pub fn new(adt: A, pid: u32) -> Self {
        let state = adt.initial();
        UndoReplica {
            adt,
            pid,
            clock: LamportClock::new(),
            entries: Vec::new(),
            state,
            repair_steps: 0,
        }
    }

    /// Perform a local update.
    pub fn update(&mut self, u: A::Update) -> UpdateMsg<A::Update> {
        let ts = Timestamp::new(self.clock.tick(), self.pid);
        let msg = UpdateMsg {
            ts,
            update: u.clone(),
        };
        self.integrate(ts, u);
        msg
    }

    /// Receive a peer's update.
    pub fn on_deliver(&mut self, msg: &UpdateMsg<A::Update>) {
        self.clock.merge(msg.ts.clock);
        self.integrate(msg.ts, msg.update.clone());
    }

    fn integrate(&mut self, ts: Timestamp, u: A::Update) {
        let pos = match self
            .entries
            .binary_search_by(|(t, _, _)| t.cmp(&ts))
        {
            Ok(_) => return, // duplicate delivery
            Err(pos) => pos,
        };
        // Undo the suffix (LIFO), apply, redo.
        let mut suffix: Vec<(Timestamp, A::Update)> = Vec::with_capacity(self.entries.len() - pos);
        while self.entries.len() > pos {
            let (t, upd, tok) = self.entries.pop().expect("suffix entry");
            self.adt.undo(&mut self.state, &tok);
            self.repair_steps += 1;
            suffix.push((t, upd));
        }
        let tok = self.adt.apply_with_undo(&mut self.state, &u);
        self.repair_steps += 1;
        self.entries.push((ts, u, tok));
        for (t, upd) in suffix.into_iter().rev() {
            let tok = self.adt.apply_with_undo(&mut self.state, &upd);
            self.repair_steps += 1;
            self.entries.push((t, upd, tok));
        }
    }

    /// Answer a query from the maintained state — O(1) state work.
    pub fn do_query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.clock.tick();
        self.adt.observe(&self.state, q)
    }

    /// Known timestamps (witness extraction).
    pub fn known_timestamps(&self) -> Vec<Timestamp> {
        self.entries.iter().map(|(t, _, _)| *t).collect()
    }
}

impl<A: UndoableUqAdt> Replica<A> for UndoReplica<A> {
    type Msg = UpdateMsg<A::Update>;

    fn pid(&self) -> u32 {
        self.pid
    }

    fn local_update(&mut self, u: A::Update) -> Vec<Self::Msg> {
        vec![self.update(u)]
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.on_deliver(msg);
    }

    fn query(&mut self, q: &A::QueryIn) -> A::QueryOut {
        self.do_query(q)
    }

    fn materialize(&mut self) -> A::State {
        self.state.clone()
    }

    fn log_len(&self) -> usize {
        self.entries.len()
    }

    fn clock(&self) -> u64 {
        self.clock.now()
    }

    fn known_timestamps(&self) -> Vec<Timestamp> {
        UndoReplica::known_timestamps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type U = UndoReplica<SetAdt<u32>>;
    type G = GenericReplica<SetAdt<u32>>;

    #[test]
    fn agrees_with_naive_replay() {
        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..60u32 {
            let op = if i % 4 == 0 {
                SetUpdate::Delete(i % 7)
            } else {
                SetUpdate::Insert(i % 7)
            };
            u.update(op);
            g.update(op);
        }
        assert_eq!(u.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
    }

    #[test]
    fn late_message_repositions_correctly() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Delete(5)); // ts (1,1)

        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..20u32 {
            u.update(SetUpdate::Insert(i % 8));
            g.update(SetUpdate::Insert(i % 8));
        }
        u.on_deliver(&late);
        g.on_deliver(&late);
        // The delete is repositioned near the beginning, so 5 was
        // re-inserted afterwards and must be present.
        let got = u.do_query(&SetQuery::Read);
        assert_eq!(got, g.do_query(&SetQuery::Read));
        assert!(got.contains(&5));
    }

    #[test]
    fn repair_cost_proportional_to_suffix() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        for _ in 0..98 {
            peer.update(SetUpdate::Insert(0));
        }
        let near_tail = peer.update(SetUpdate::Insert(1)); // clock 99

        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        for i in 0..100u32 {
            u.update(SetUpdate::Insert(i % 3));
        }
        let before = u.repair_steps;
        u.on_deliver(&near_tail); // (99,1) sorts after (99,0), before (100,0)
        let cost = u.repair_steps - before;
        assert!(cost <= 3, "near-tail integration cost {cost}");
    }

    #[test]
    fn duplicate_deliveries_ignored() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let m = peer.update(SetUpdate::Insert(3));
        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        u.on_deliver(&m);
        u.on_deliver(&m);
        assert_eq!(u.log_len(), 1);
        assert_eq!(u.do_query(&SetQuery::Read), BTreeSet::from([3]));
    }

    #[test]
    fn interleaved_remote_streams_converge() {
        let mut a: U = UndoReplica::new(SetAdt::new(), 0);
        let mut b: G = GenericReplica::new(SetAdt::new(), 1);
        let mut msgs_a = Vec::new();
        let mut msgs_b = Vec::new();
        for i in 0..10u32 {
            msgs_a.push(a.update(SetUpdate::Insert(i)));
            msgs_b.push(b.update(SetUpdate::Delete(i / 2)));
        }
        // Cross-deliver in reverse order (maximally late).
        for m in msgs_b.iter().rev() {
            a.on_deliver(m);
        }
        for m in msgs_a.iter().rev() {
            b.on_deliver(m);
        }
        assert_eq!(a.materialize(), b.materialize());
    }
}
