//! The **undo-based repositioning** strategy (§VII-C, after Karsenty &
//! Beaudouin-Lafon's ICDCS'93 groupware algorithm): each update `u`
//! has an inverse, so a late message at position `p` is integrated by
//! undoing the suffix `log[p..]` (LIFO), applying the newcomer, and
//! replaying the suffix — "which saves computation time" relative to
//! replaying from `s0`, at the cost of requiring an
//! [`UndoableUqAdt`] and storing one undo token per entry. A batch of
//! late messages pays the undo/redo of the shared suffix **once**
//! (see [`crate::engine::ReplicaEngine::on_deliver_batch`]).

use crate::backend::LogBackend;
use crate::engine::{EngineCtx, RepairStrategy, ReplicaEngine};
use crate::log::UpdateLog;
use uc_spec::UndoableUqAdt;

/// Fully folded state plus a LIFO stack of undo tokens, one per log
/// entry (`tokens[i]` undoes `log[i]` from the state it was applied
/// in).
#[derive(Clone, Debug)]
pub struct UndoRepair<A: UndoableUqAdt> {
    state: A::State,
    tokens: Vec<A::UndoToken>,
    repair_steps: u64,
    repair_events: u64,
}

impl<A: UndoableUqAdt> UndoRepair<A> {
    /// A fresh strategy.
    pub fn new(adt: &A) -> Self {
        UndoRepair {
            state: adt.initial(),
            tokens: Vec::new(),
            repair_steps: 0,
            repair_events: 0,
        }
    }

    /// Undo down to `pos`, then redo the (already updated) log suffix
    /// capturing fresh tokens — the single repair primitive.
    fn repair_from<B: LogBackend<A>>(&mut self, adt: &A, log: &UpdateLog<A, B>, pos: usize) {
        if pos < self.tokens.len() {
            self.repair_events += 1;
        }
        while self.tokens.len() > pos {
            let tok = self.tokens.pop().expect("suffix token");
            adt.undo(&mut self.state, &tok);
            self.repair_steps += 1;
        }
        for i in pos..log.len() {
            let (_, u) = log.get(i).expect("in range");
            let tok = adt.apply_with_undo(&mut self.state, u);
            self.tokens.push(tok);
            self.repair_steps += 1;
        }
    }
}

impl<A: UndoableUqAdt> RepairStrategy<A> for UndoRepair<A> {
    fn on_insert<B: LogBackend<A>>(
        &mut self,
        adt: &A,
        log: &mut UpdateLog<A, B>,
        pos: usize,
        _ctx: &EngineCtx,
    ) {
        self.repair_from(adt, log, pos);
    }

    // on_batch_insert: the default (one `on_insert` at the minimum
    // position) already undoes and redoes the shared suffix once.

    fn current_state<B: LogBackend<A>>(&mut self, _adt: &A, log: &UpdateLog<A, B>) -> &A::State {
        debug_assert_eq!(self.tokens.len(), log.len(), "state must be fully folded");
        &self.state
    }

    fn repair_steps(&self) -> u64 {
        self.repair_steps
    }

    fn repair_events(&self) -> u64 {
        self.repair_events
    }
}

/// Algorithm 1 with undo-based late-message integration; queries are
/// O(1).
pub type UndoReplica<A> = ReplicaEngine<A, UndoRepair<A>>;

impl<A: UndoableUqAdt> UndoReplica<A> {
    /// A fresh replica for process `pid`.
    pub fn new(adt: A, pid: u32) -> Self {
        let strategy = UndoRepair::new(&adt);
        ReplicaEngine::with_strategy(adt, pid, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::GenericReplica;
    use crate::replica::Replica;
    use std::collections::BTreeSet;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    type U = UndoReplica<SetAdt<u32>>;
    type G = GenericReplica<SetAdt<u32>>;

    #[test]
    fn agrees_with_naive_replay() {
        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..60u32 {
            let op = if i % 4 == 0 {
                SetUpdate::Delete(i % 7)
            } else {
                SetUpdate::Insert(i % 7)
            };
            u.update(op);
            g.update(op);
        }
        assert_eq!(u.do_query(&SetQuery::Read), g.do_query(&SetQuery::Read));
    }

    #[test]
    fn late_message_repositions_correctly() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let late = peer.update(SetUpdate::Delete(5)); // ts (1,1)

        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        let mut g: G = GenericReplica::new(SetAdt::new(), 0);
        for i in 0..20u32 {
            u.update(SetUpdate::Insert(i % 8));
            g.update(SetUpdate::Insert(i % 8));
        }
        u.on_deliver(&late);
        g.on_deliver(&late);
        // The delete is repositioned near the beginning, so 5 was
        // re-inserted afterwards and must be present.
        let got = u.do_query(&SetQuery::Read);
        assert_eq!(got, g.do_query(&SetQuery::Read));
        assert!(got.contains(&5));
    }

    #[test]
    fn repair_cost_proportional_to_suffix() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        for _ in 0..98 {
            peer.update(SetUpdate::Insert(0));
        }
        let near_tail = peer.update(SetUpdate::Insert(1)); // clock 99

        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        for i in 0..100u32 {
            u.update(SetUpdate::Insert(i % 3));
        }
        let before = u.repair_steps();
        u.on_deliver(&near_tail); // (99,1) sorts after (99,0), before (100,0)
        let cost = u.repair_steps() - before;
        assert!(cost <= 3, "near-tail integration cost {cost}");
    }

    #[test]
    fn duplicate_deliveries_ignored() {
        let mut peer: G = GenericReplica::new(SetAdt::new(), 1);
        let m = peer.update(SetUpdate::Insert(3));
        let mut u: U = UndoReplica::new(SetAdt::new(), 0);
        u.on_deliver(&m);
        u.on_deliver(&m);
        assert_eq!(u.log_len(), 1);
        assert_eq!(u.do_query(&SetQuery::Read), BTreeSet::from([3]));
    }

    #[test]
    fn interleaved_remote_streams_converge() {
        let mut a: U = UndoReplica::new(SetAdt::new(), 0);
        let mut b: G = GenericReplica::new(SetAdt::new(), 1);
        let mut msgs_a = Vec::new();
        let mut msgs_b = Vec::new();
        for i in 0..10u32 {
            msgs_a.push(a.update(SetUpdate::Insert(i)));
            msgs_b.push(b.update(SetUpdate::Delete(i / 2)));
        }
        // Cross-deliver in reverse order (maximally late).
        for m in msgs_b.iter().rev() {
            a.on_deliver(m);
        }
        for m in msgs_a.iter().rev() {
            b.on_deliver(m);
        }
        assert_eq!(Replica::materialize(&mut a), Replica::materialize(&mut b));
    }
}
