//! Helpers shared by the differential test suites.

use uc_sim::SplitMix64;

/// Shuffle a delivery schedule and duplicate ~20% of it (reliable
/// broadcast is at-least-once from a defensive replica's point of
/// view). Deterministic in the PRNG state, so failures replay.
pub fn shuffle_with_dups<T: Clone>(rng: &mut SplitMix64, mut sched: Vec<T>) -> Vec<T> {
    let dups = sched.len() / 5;
    for _ in 0..dups {
        let i = (rng.next_u64() % sched.len() as u64) as usize;
        sched.push(sched[i].clone());
    }
    // Fisher–Yates.
    for i in (1..sched.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        sched.swap(i, j);
    }
    sched
}
