//! Contended stress tests for the lock-free ingest path: N producer
//! threads stamping through cloned [`PoolHandle`]s × M reader threads
//! doing wait-free snapshot loads, for all four repair strategies.
//!
//! Assertions:
//! * the finished pooled store equals a sequential reference that
//!   ingests the same broadcast messages in timestamp order — per-key
//!   states (and their digest), clock, and repair event/step counters;
//! * every concurrent stamp is unique (the engine's
//!   `push_newest(...).expect(..)` would abort on a duplicate);
//! * no reader ever observes a key's snapshot epoch regress
//!   (monotonic reads for the epoch-published snapshots);
//! * a reader's wait-free query returns while a worker is parked
//!   mid-repair (the acceptance criterion for non-blocking reads).
//!
//! Producers stamp **disjoint key ranges**: the GC strategy's
//! stability bookkeeping assumes per-sender FIFO delivery per key,
//! and two handles racing updates to one key through the shared clock
//! would violate that precondition (see the pool module docs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use uc_core::{
    state_digest, Backpressure, CheckpointFactory, GcFactory, NaiveFactory, PoolConfig, StoreMsg,
    StrategyFactory, UcStore, UndoFactory,
};
use uc_spec::{SetAdt, SetQuery, SetUpdate, UqAdt};

const PRODUCERS: u64 = 4;
const OPS_PER_PRODUCER: u64 = 250;
const KEYS_PER_PRODUCER: u64 = 5;
const READERS: usize = 2;
const SHARDS: usize = 8;

fn contended_pool_matches_sequential<F>(factory: F)
where
    F: StrategyFactory<SetAdt<u32>> + Send + Sync + 'static,
    F::Strategy: Send + 'static,
{
    let cfg = PoolConfig {
        workers: 2,
        queue_depth: 16,
        backpressure: Backpressure::Park,
    };
    let pool = UcStore::new(SetAdt::<u32>::new(), 0, SHARDS, factory.clone()).into_pool(cfg);

    // Readers: hammer wait-free snapshot loads over every key while
    // the producers stamp, asserting per-key epoch monotonicity.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let h = pool.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let total_keys = PRODUCERS * KEYS_PER_PRODUCER;
                let mut last: BTreeMap<u64, u64> = BTreeMap::new();
                let mut loads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for key in 0..total_keys {
                        let (epoch, _) = h.query_snapshot_versioned(key, &SetQuery::Read);
                        let prev = last.entry(key).or_insert(0);
                        assert!(
                            epoch >= *prev,
                            "key {key}: snapshot epoch regressed {} -> {epoch}",
                            *prev
                        );
                        *prev = epoch;
                        loads += 1;
                    }
                }
                loads
            })
        })
        .collect();

    // Producers: disjoint key ranges, every handle stamping through
    // the one shared atomic clock.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let h = pool.handle();
            std::thread::spawn(move || {
                let mut msgs = Vec::new();
                for i in 0..OPS_PER_PRODUCER {
                    let key = p * KEYS_PER_PRODUCER + (i % KEYS_PER_PRODUCER);
                    let value = (p * OPS_PER_PRODUCER + i) as u32;
                    msgs.push(h.update(key, SetUpdate::Insert(value)).unwrap());
                }
                msgs
            })
        })
        .collect();

    let mut msgs: Vec<StoreMsg<SetUpdate<u32>>> = Vec::new();
    for p in producers {
        msgs.extend(p.join().unwrap());
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must have made progress");
    }

    // Every concurrent stamp is unique.
    let mut stamps: Vec<_> = msgs
        .iter()
        .map(|m| match m {
            StoreMsg::Update { msg, .. } => msg.ts,
            other => panic!("producers only issue updates, got {other:?}"),
        })
        .collect();
    stamps.sort();
    let before = stamps.len();
    stamps.dedup();
    assert_eq!(stamps.len(), before, "duplicate concurrent stamps");

    let mut pooled = pool.finish().unwrap();

    // Sequential reference: same messages, delivered one at a time in
    // timestamp order — per key that is exactly the order each
    // producer issued them, which is also the order the pool's FIFO
    // inboxes applied them.
    let mut reference = UcStore::new(SetAdt::<u32>::new(), 0, SHARDS, factory);
    msgs.sort_by_key(|m| match m {
        StoreMsg::Update { msg, .. } => msg.ts,
        other => panic!("producers only issue updates, got {other:?}"),
    });
    for m in &msgs {
        reference.apply_batch(std::slice::from_ref(m));
    }

    assert_eq!(pooled.clock(), reference.clock(), "clock mismatch");
    assert_eq!(pooled.clock(), PRODUCERS * OPS_PER_PRODUCER);
    assert_eq!(
        pooled.total_repair_events(),
        reference.total_repair_events(),
        "repair event mismatch"
    );
    assert_eq!(
        pooled.total_repair_steps(),
        reference.total_repair_steps(),
        "repair step mismatch"
    );
    assert_eq!(pooled.keys(), reference.keys());
    let pooled_states: BTreeMap<u64, _> = pooled
        .keys()
        .into_iter()
        .map(|k| (k, pooled.materialize_key(k)))
        .collect();
    let reference_states: BTreeMap<u64, _> = reference
        .keys()
        .into_iter()
        .map(|k| (k, reference.materialize_key(k)))
        .collect();
    assert_eq!(pooled_states, reference_states);
    assert_eq!(
        state_digest(&pooled_states),
        state_digest(&reference_states)
    );
}

#[test]
fn contended_naive_matches_sequential() {
    contended_pool_matches_sequential(NaiveFactory);
}

#[test]
fn contended_checkpoint_matches_sequential() {
    contended_pool_matches_sequential(CheckpointFactory { every: 4 });
}

#[test]
fn contended_undo_matches_sequential() {
    contended_pool_matches_sequential(UndoFactory);
}

#[test]
fn contended_gc_matches_sequential() {
    contended_pool_matches_sequential(GcFactory { n: 2 });
}

/// A set ADT whose fold parks on a gate when it applies the sentinel
/// value: lets a test freeze a worker *mid-repair* deterministically.
#[derive(Clone)]
struct GatedSet {
    gate: Arc<GateInner>,
}

struct GateInner {
    /// Folding the sentinel blocks until this flips true.
    open: Mutex<bool>,
    cv: std::sync::Condvar,
    /// Signals the moment a fold reached the gate.
    reached: mpsc::Sender<()>,
}

const GATE_SENTINEL: u32 = u32::MAX;

impl GatedSet {
    fn new() -> (Self, mpsc::Receiver<()>) {
        let (reached, entered) = mpsc::channel();
        (
            GatedSet {
                gate: Arc::new(GateInner {
                    open: Mutex::new(false),
                    cv: std::sync::Condvar::new(),
                    reached,
                }),
            },
            entered,
        )
    }

    fn open(&self) {
        *self.gate.open.lock().unwrap() = true;
        self.gate.cv.notify_all();
    }
}

impl UqAdt for GatedSet {
    type Update = SetUpdate<u32>;
    type QueryIn = SetQuery;
    type QueryOut = std::collections::BTreeSet<u32>;
    type State = std::collections::BTreeSet<u32>;

    fn initial(&self) -> Self::State {
        std::collections::BTreeSet::new()
    }

    fn apply(&self, state: &mut Self::State, update: &Self::Update) {
        if let SetUpdate::Insert(GATE_SENTINEL) = update {
            let _ = self.gate.reached.send(());
            let mut open = self.gate.open.lock().unwrap();
            while !*open {
                open = self.gate.cv.wait(open).unwrap();
            }
        }
        let inner = SetAdt::<u32>::new();
        inner.apply(state, update);
    }

    fn observe(&self, state: &Self::State, query: &Self::QueryIn) -> Self::QueryOut {
        SetAdt::<u32>::new().observe(state, query)
    }
}

/// Acceptance: a reader's wait-free snapshot query completes while
/// the worker owning the key is parked inside a repair fold. With the
/// old blocking round-trip the read below would deadlock (the worker
/// can't reach the query job while stuck in the fold).
#[test]
fn snapshot_query_returns_while_repair_is_parked() {
    let (adt, entered) = GatedSet::new();
    let mut pool =
        UcStore::new(adt.clone(), 0, 1, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
            workers: 1,
            queue_depth: 16,
            backpressure: Backpressure::Park,
        });
    let reader = pool.handle();

    // Arm snapshots and publish a first state for key 7.
    assert_eq!(
        reader.query_snapshot(7, &SetQuery::Read),
        std::collections::BTreeSet::new()
    );
    pool.update(7, SetUpdate::Insert(1)).unwrap();
    pool.flush().unwrap();
    let (epoch_before, seen) = reader.query_snapshot_versioned(7, &SetQuery::Read);
    assert_eq!(seen, std::collections::BTreeSet::from([1]));
    assert!(epoch_before > 0);

    // Park the worker mid-fold: the sentinel insert blocks inside
    // `apply` until the gate opens.
    pool.update(7, SetUpdate::Insert(GATE_SENTINEL)).unwrap();
    entered
        .recv_timeout(Duration::from_secs(10))
        .expect("worker reached the gated fold");

    // The worker is provably parked inside a repair. A wait-free read
    // on another thread must still return (the old round-trip query
    // would hang here, so run it with a deadline).
    let (tx, rx) = mpsc::channel();
    let h = reader.clone();
    std::thread::spawn(move || {
        let out = h.query_snapshot(7, &SetQuery::Read);
        let _ = tx.send(out);
    });
    let out = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("snapshot query must not block behind the parked repair");
    assert_eq!(
        out,
        std::collections::BTreeSet::from([1]),
        "reader sees the last published state, not the in-flight fold"
    );

    // Release the worker; the new state (including the sentinel)
    // publishes on the next drain.
    adt.open();
    pool.flush().unwrap();
    let (epoch_after, after) = reader.query_snapshot_versioned(7, &SetQuery::Read);
    assert!(epoch_after > epoch_before, "post-repair state republished");
    assert_eq!(after, std::collections::BTreeSet::from([1, GATE_SENTINEL]));
    pool.finish().unwrap();
}
