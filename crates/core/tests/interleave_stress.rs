//! Schedule-perturbation stress for the lock-free primitives, driven
//! by the `interleave` shim (a pragmatic loom stand-in — see
//! `crates/shims/README.md`): the real inbox and clock code runs on
//! real threads while seeded yield/spin/sleep injection at the racy
//! seams pushes the OS scheduler into interleavings an unperturbed
//! run rarely exposes.
//!
//! Covered seams:
//! * **inbox claim/drain** — producers CAS-pushing against a consumer
//!   swap-claiming, through full-inbox backpressure and the
//!   close/drain handoff: nothing lost, nothing duplicated,
//!   per-producer FIFO preserved;
//! * **clock CAS** — concurrent `tick` (fetch_add) and `merge`
//!   (fetch_max running max): stamps stay unique, the clock never
//!   regresses, and merges are monotone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uc_core::{Inbox, LamportClock, PushError};

const SEEDS: u64 = 6;
const PRODUCERS: u64 = 3;
const ITEMS_PER_PRODUCER: u64 = 400;

#[test]
fn perturbed_inbox_loses_nothing_and_keeps_fifo() {
    interleave::explore(SEEDS, |run| {
        let inbox: Arc<Inbox<(u64, u64)>> = Arc::new(Inbox::new(8));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inbox = Arc::clone(&inbox);
                let mut sched = run.schedule(p + 1);
                std::thread::spawn(move || {
                    for i in 0..ITEMS_PER_PRODUCER {
                        let mut item = (p, i);
                        loop {
                            sched.point(); // race the freelist pop / head CAS
                            match inbox.push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(it)) => {
                                    item = it;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => {
                                    panic!("inbox closed under a live producer")
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let inbox = Arc::clone(&inbox);
            let mut sched = run.schedule(0);
            std::thread::spawn(move || {
                inbox.register_consumer(std::thread::current());
                let mut batch = Vec::new();
                let mut got: Vec<Vec<u64>> = (0..PRODUCERS).map(|_| Vec::new()).collect();
                loop {
                    sched.point(); // race the swap-claim against pushes
                    inbox.claim(&mut batch);
                    if batch.is_empty() {
                        if inbox.closed_and_drained() {
                            inbox.claim(&mut batch);
                            if batch.is_empty() {
                                break;
                            }
                        } else {
                            inbox.wait();
                            continue;
                        }
                    }
                    for (p, i) in batch.drain(..) {
                        got[p as usize].push(i);
                    }
                }
                got
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        inbox.close();
        let got = consumer.join().unwrap();
        for (p, seq) in got.iter().enumerate() {
            assert_eq!(
                seq.len() as u64,
                ITEMS_PER_PRODUCER,
                "seed {}: producer {p} lost items",
                run.seed()
            );
            assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "seed {}: producer {p} order broken (per-producer FIFO)",
                run.seed()
            );
        }
    });
}

#[test]
fn perturbed_close_drains_every_accepted_push() {
    // The close/drain gate: producers race `close()` itself; every
    // push that reported Ok must be claimable afterwards, every push
    // after close must be refused.
    interleave::explore(SEEDS, |run| {
        let inbox: Arc<Inbox<u64>> = Arc::new(Inbox::new(4));
        let accepted = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inbox = Arc::clone(&inbox);
                let accepted = Arc::clone(&accepted);
                let mut sched = run.schedule(p + 1);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        sched.point();
                        match inbox.push(p * 1000 + i) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => return,
                        }
                    }
                })
            })
            .collect();
        // Close midway through the contention window.
        let mut sched = run.schedule(99);
        for _ in 0..32 {
            sched.point();
        }
        inbox.close();
        for p in producers {
            p.join().unwrap();
        }
        let mut drained = Vec::new();
        let mut batch = Vec::new();
        loop {
            inbox.claim(&mut batch);
            if batch.is_empty() && inbox.closed_and_drained() {
                inbox.claim(&mut batch);
                if batch.is_empty() {
                    break;
                }
            }
            drained.append(&mut batch);
        }
        assert_eq!(
            drained.len() as u64,
            accepted.load(Ordering::SeqCst),
            "seed {}: accepted pushes must all drain after close",
            run.seed()
        );
    });
}

#[test]
fn perturbed_clock_ticks_stay_unique_and_monotone() {
    interleave::explore(SEEDS, |run| {
        let clock = Arc::new(LamportClock::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let clock = Arc::clone(&clock);
                let mut sched = run.schedule(t);
                std::thread::spawn(move || {
                    let mut stamps = Vec::new();
                    let mut last_seen = 0;
                    for _ in 0..500 {
                        sched.point(); // race fetch_add against fetch_max
                        match sched.choose(4) {
                            // Mostly tick; stamps must be unique and
                            // each thread's stamps strictly increase.
                            0..=2 => {
                                let v = clock.tick();
                                assert!(v > last_seen, "tick regressed");
                                last_seen = v;
                                stamps.push(v);
                            }
                            // Sometimes merge a peer clock ahead of
                            // everything seen; now() must cover it.
                            _ => {
                                let peer = last_seen + sched.choose(3);
                                clock.merge(peer);
                                let now = clock.now();
                                assert!(now >= peer, "merge lost: {now} < {peer}");
                                last_seen = last_seen.max(now);
                            }
                        }
                    }
                    stamps
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        let issued = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            issued,
            "seed {}: concurrent ticks produced a duplicate stamp",
            run.seed()
        );
    });
}
