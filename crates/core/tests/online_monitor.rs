//! Violation-detection tests for the streaming consistency monitor
//! riding the store and pool hot paths.
//!
//! Each detection test injects a *specific* defect through a custom
//! [`RepairStrategy`] (or a hand-built wire message) and asserts the
//! monitor flags it in its very next check — while the clean
//! differentials prove zero false positives across all four shipped
//! strategies under perturbed, duplicated, compacted delivery.

use uc_core::backend::LogBackend;
use uc_core::engine::{CutError, EngineCtx, RepairStrategy};
use uc_core::pool::{Backpressure, IngestPool, PoolConfig};
use uc_core::store::{
    CheckpointFactory, GcFactory, NaiveFactory, StoreMsg, StrategyFactory, UcStore, UndoFactory,
};
use uc_core::{Timestamp, UpdateLog, UpdateMsg};
use uc_criteria::online::MonitorConfig;
use uc_obs::HealthStatus;
use uc_spec::{CounterAdt, CounterQuery, CounterUpdate, UqAdt};

const KEYS: u64 = 8;

fn monitored_cfg() -> MonitorConfig {
    MonitorConfig::full().with_peers([0, 1])
}

/// Drive two monitored replicas (plus an unmonitored twin of the
/// first) through a perturbed full exchange — reordered delivery,
/// duplicates, heartbeats, maintenance — and require convergence,
/// twin equality (the monitor never perturbs results), and a clean
/// monitor on both ends. `fifo` keeps per-link order: stability-based
/// GC requires it (the reliable link provides it in production), so
/// its differential perturbs with duplicates only.
fn clean_differential<F>(factory: F, fifo: bool)
where
    F: StrategyFactory<CounterAdt> + Clone,
{
    let mut a = UcStore::new(CounterAdt, 0, 4, factory.clone());
    let mut twin = UcStore::new(CounterAdt, 0, 4, factory.clone());
    let mut b = UcStore::new(CounterAdt, 1, 4, factory);
    a.attach_monitor(monitored_cfg());
    b.attach_monitor(monitored_cfg());

    let mut msgs_a = Vec::new();
    for i in 0..20u64 {
        let m = a.update(i % KEYS, CounterUpdate::Add(i as i64 + 1));
        twin.apply_message(&m);
        msgs_a.push(m);
    }
    let mut msgs_b = Vec::new();
    for i in 0..20u64 {
        msgs_b.push(b.update(i % KEYS, CounterUpdate::Add(-(i as i64) - 100)));
    }

    // Deliver b's stream to a (and the twin) — reversed unless the
    // strategy needs FIFO — with every third message duplicated; a's
    // stream to b in submitted order.
    let order: Vec<&StoreMsg<CounterUpdate>> = if fifo {
        msgs_b.iter().collect()
    } else {
        msgs_b.iter().rev().collect()
    };
    for (i, m) in order.into_iter().enumerate() {
        a.apply_message(m);
        twin.apply_message(m);
        if i % 3 == 0 {
            a.apply_message(m);
            twin.apply_message(m);
        }
    }
    for m in &msgs_a {
        b.apply_message(m);
    }

    // Stability: exchange heartbeats, then let both ends compact.
    let hb_a = a.heartbeat();
    let hb_b = b.heartbeat();
    a.apply_message(&hb_b);
    twin.apply_message(&hb_b);
    b.apply_message(&hb_a);
    a.tick_maintenance();
    twin.tick_maintenance();
    b.tick_maintenance();

    for k in 0..KEYS {
        let va = a.query(k, &CounterQuery::Read);
        let vt = twin.query(k, &CounterQuery::Read);
        let vb = b.query(k, &CounterQuery::Read);
        assert_eq!(
            va, vt,
            "monitored and unmonitored twins diverged on key {k}"
        );
        assert_eq!(va, vb, "replicas did not converge on key {k}");
    }

    let sa = a.monitor_stats().expect("monitor attached");
    assert!(
        sa.clean(),
        "false positive on a clean run: {sa:?} ({})",
        std::any::type_name::<F>()
    );
    assert!(sa.sampled_updates >= 40, "both streams observed");
    assert!(sa.sampled_queries >= KEYS, "every query checked");
    let sb = b.monitor_stats().expect("monitor attached");
    assert!(sb.clean(), "false positive on replica b: {sb:?}");
}

#[test]
fn clean_run_is_clean_under_naive() {
    clean_differential(NaiveFactory, false);
}

#[test]
fn clean_run_is_clean_under_checkpoint() {
    clean_differential(CheckpointFactory { every: 4 }, false);
}

#[test]
fn clean_run_is_clean_under_undo() {
    clean_differential(UndoFactory, false);
}

#[test]
fn clean_run_is_clean_under_gc() {
    clean_differential(GcFactory { n: 2 }, true);
}

/// A strategy with an injected fold bug: the log's first update is
/// applied twice. Queries answer from the corrupt fold.
#[derive(Clone, Copy, Debug)]
struct DoubleFoldFactory;

struct DoubleFold {
    state: i64,
}

impl RepairStrategy<CounterAdt> for DoubleFold {
    fn on_insert<B: LogBackend<CounterAdt>>(
        &mut self,
        _adt: &CounterAdt,
        _log: &mut UpdateLog<CounterAdt, B>,
        _pos: usize,
        _ctx: &EngineCtx,
    ) {
    }

    fn current_state<B: LogBackend<CounterAdt>>(
        &mut self,
        adt: &CounterAdt,
        log: &UpdateLog<CounterAdt, B>,
    ) -> &i64 {
        let mut st = adt.initial();
        for (i, (_, u)) in log.iter().enumerate() {
            adt.apply(&mut st, u);
            if i == 0 {
                // The injected defect under test.
                adt.apply(&mut st, u);
            }
        }
        self.state = st;
        &self.state
    }
}

impl StrategyFactory<CounterAdt> for DoubleFoldFactory {
    type Strategy = DoubleFold;

    fn make(&self, _adt: &CounterAdt) -> DoubleFold {
        DoubleFold { state: 0 }
    }
}

#[test]
fn double_fold_is_caught_by_the_first_query_check() {
    let mut s = UcStore::new(CounterAdt, 0, 2, DoubleFoldFactory);
    s.attach_monitor(MonitorConfig::full());
    s.update(7, CounterUpdate::Add(5));
    let v = s.query(7, &CounterQuery::Read);
    assert_eq!(v, 10, "the injected bug double-folds the first update");
    let stats = s.monitor_stats().unwrap();
    assert_eq!(stats.uc_violations, 1, "flagged on the very first check");
    assert_eq!(stats.snap_violations, 0);
    assert_eq!(stats.sec_violations, 0);
    assert_eq!(s.health(1).status, HealthStatus::Degraded);
}

/// A strategy whose snapshot path ignores the cut: every cut answers
/// with the *full* fold, tearing multi-key snapshots.
#[derive(Clone, Copy, Debug)]
struct TornCutFactory;

struct TornCut {
    state: i64,
}

impl RepairStrategy<CounterAdt> for TornCut {
    fn on_insert<B: LogBackend<CounterAdt>>(
        &mut self,
        _adt: &CounterAdt,
        _log: &mut UpdateLog<CounterAdt, B>,
        _pos: usize,
        _ctx: &EngineCtx,
    ) {
    }

    fn current_state<B: LogBackend<CounterAdt>>(
        &mut self,
        adt: &CounterAdt,
        log: &UpdateLog<CounterAdt, B>,
    ) -> &i64 {
        self.state = adt.run_updates(log.iter().map(|(_, u)| u));
        &self.state
    }

    fn state_at_cut<B: LogBackend<CounterAdt>>(
        &mut self,
        adt: &CounterAdt,
        log: &UpdateLog<CounterAdt, B>,
        _cut: u64,
    ) -> Result<i64, CutError> {
        // The injected defect: the cut is ignored, so updates stamped
        // above it leak into the "snapshot".
        Ok(adt.run_updates(log.iter().map(|(_, u)| u)))
    }
}

impl StrategyFactory<CounterAdt> for TornCutFactory {
    type Strategy = TornCut;

    fn make(&self, _adt: &CounterAdt) -> TornCut {
        TornCut { state: 0 }
    }
}

#[test]
fn torn_cut_is_caught_by_the_first_snapshot() {
    let mut s = UcStore::new(CounterAdt, 0, 2, TornCutFactory);
    s.attach_monitor(MonitorConfig::full());
    s.update(1, CounterUpdate::Add(1)); // clock 1
    s.update(1, CounterUpdate::Add(2)); // clock 2
    s.update(1, CounterUpdate::Add(4)); // clock 3
    let snap = s.snapshot_at(1).expect("cut is answerable");
    drop(snap);
    let stats = s.monitor_stats().unwrap();
    assert!(
        stats.snap_violations >= 1,
        "cut 1 must fold only the first update: {stats:?}"
    );
    assert_eq!(stats.uc_violations, 0, "no spurious query-side flags");
}

#[test]
fn replay_below_the_dedup_floor_is_informational_not_a_violation() {
    let mut s = UcStore::new(CounterAdt, 0, 2, GcFactory { n: 2 });
    s.attach_monitor(monitored_cfg());
    let m1 = s.update(3, CounterUpdate::Add(1));
    s.update(3, CounterUpdate::Add(2));
    // Peer 1 announces a clock past both updates: stability advances,
    // the engine compacts, and the monitor finalizes its window.
    s.apply_message(&StoreMsg::Heartbeat { pid: 1, clock: 10 });
    s.tick_maintenance();
    let stats = s.monitor_stats().unwrap();
    assert!(
        stats.finalized_updates >= 2,
        "the stable prefix folded into the shadow base: {stats:?}"
    );
    // A straggler replays an already-finalized update. The engine
    // drops it at its dedup floor; the monitor must count it as
    // informational rather than manufacture a violation.
    s.apply_message(&m1);
    let stats = s.monitor_stats().unwrap();
    assert!(stats.below_floor_arrivals >= 1, "{stats:?}");
    assert!(stats.clean(), "a below-floor replay is not a violation");
    assert_eq!(s.query(3, &CounterQuery::Read), 3);
    assert!(s.monitor_stats().unwrap().clean());
}

#[test]
fn stamp_reuse_with_diverging_payloads_is_a_sec_violation() {
    let mut s = UcStore::new(CounterAdt, 0, 2, NaiveFactory);
    s.attach_monitor(MonitorConfig::full());
    let ts = Timestamp::new(5, 9);
    s.apply_message(&StoreMsg::Update {
        key: 2,
        msg: UpdateMsg {
            ts,
            update: CounterUpdate::Add(1),
        },
    });
    s.apply_message(&StoreMsg::Update {
        key: 2,
        msg: UpdateMsg {
            ts,
            update: CounterUpdate::Add(2),
        },
    });
    let stats = s.monitor_stats().unwrap();
    assert!(stats.sec_violations >= 1, "{stats:?}");
    assert_eq!(s.health(1).status, HealthStatus::Degraded);
}

#[test]
fn pool_monitor_stays_clean_then_flags_injected_stamp_reuse() {
    let store: UcStore<CounterAdt, NaiveFactory> = UcStore::new(CounterAdt, 0, 4, NaiveFactory);
    let mut pool = IngestPool::spawn(
        store,
        PoolConfig {
            workers: 2,
            queue_depth: 64,
            backpressure: Backpressure::Park,
        },
    );
    pool.attach_monitor(MonitorConfig::full()).unwrap();

    for i in 0..10u64 {
        pool.update(i % 4, CounterUpdate::Add(i as i64 + 1))
            .unwrap();
    }
    let burst: Vec<_> = (0..10u64)
        .map(|i| StoreMsg::Update {
            key: i % 4,
            msg: UpdateMsg {
                ts: Timestamp::new(100 + i, 1),
                update: CounterUpdate::Add(1),
            },
        })
        .collect();
    pool.submit_batch(burst).unwrap();
    // Queries route through the owning workers, exercising the pooled
    // query-side check.
    for k in 0..4u64 {
        pool.query(k, &CounterQuery::Read).unwrap();
    }
    pool.tick_maintenance().unwrap();
    pool.flush().unwrap();

    let stats = pool.monitor_stats().expect("monitor attached");
    assert!(stats.clean(), "clean pooled run flagged: {stats:?}");
    assert!(stats.sampled_updates >= 20);
    assert!(stats.sampled_queries >= 4);
    assert_eq!(pool.health(2).status, HealthStatus::Healthy);

    // Same stamp as an earlier burst entry, different payload.
    pool.submit_batch(vec![StoreMsg::Update {
        key: 0,
        msg: UpdateMsg {
            ts: Timestamp::new(100, 1),
            update: CounterUpdate::Add(7),
        },
    }])
    .unwrap();
    pool.flush().unwrap();
    let stats = pool.monitor_stats().unwrap();
    assert!(stats.sec_violations >= 1, "{stats:?}");
    let health = pool.health(2);
    assert_eq!(health.status, HealthStatus::Degraded);
    assert_eq!(health.monitor_clean, Some(false));
    pool.finish().unwrap();
}

#[test]
fn attach_after_traffic_never_judges_unseen_history() {
    let mut s = UcStore::new(CounterAdt, 0, 2, NaiveFactory);
    s.update(4, CounterUpdate::Add(9));
    s.attach_monitor(MonitorConfig::full());
    // Key 4's history predates the monitor: its query must not be
    // compared against an (empty) shadow.
    assert_eq!(s.query(4, &CounterQuery::Read), 9);
    // Fresh keys are watched from their first update.
    s.update(5, CounterUpdate::Add(2));
    assert_eq!(s.query(5, &CounterQuery::Read), 2);
    let stats = s.monitor_stats().unwrap();
    assert!(stats.clean(), "{stats:?}");
    assert!(stats.sampled_updates >= 1);
}
