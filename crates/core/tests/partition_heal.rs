//! Partition/heal differential suite: replicas separated by a network
//! partition — with updates continuing on **both** sides — must, after
//! reconciliation-on-heal, converge byte-identical to the reference
//! fold a never-partitioned run produces, for all four repair
//! strategies, for majority and minority divergence directions, with
//! in-memory and on-disk segment backends, and across a crash in the
//! middle of applying a heal burst.
//!
//! The scenarios drive three replicas directly (delivery is explicit,
//! so exactly which side sees which message is under test control) and
//! compare every replica against per-key naive-replay references fed
//! each update exactly once — update consistency makes that fold the
//! unique converged state, independent of strategy and delivery order.
//! A final simulator scenario runs the whole stack end to end:
//! [`ReliableLink`]-wrapped stores on a seeded lossy, partitioned
//! topology, with failure-detector verdicts injected as invocations
//! and retransmit/heal metrics asserted observable.

use std::collections::HashMap;
use uc_core::{
    CheckpointFactory, GcFactory, GenericReplica, HealConfig, Key, NaiveFactory, StoreInput,
    StoreMsg, StoreOutput, StrategyFactory, UcStore, UndoFactory,
};
use uc_sim::{
    Ctx, HeartbeatDetector, LatencyModel, LinkCounters, LinkModel, Pid, Protocol, ReliableLink,
    RetryConfig, SimConfig, Simulation, SplitMix64, Topology,
};
use uc_spec::{SetAdt, SetQuery, SetUpdate};
use uc_storage::{ScratchDir, SegmentFactory};

type Adt = SetAdt<u32>;
type Msg = StoreMsg<SetUpdate<u32>>;

const KEYS: u64 = 6;

/// Deterministic update for step `i` issued by `pid`.
fn step_update(rng: &mut SplitMix64) -> (Key, SetUpdate<u32>) {
    let key = rng.next_u64() % KEYS;
    let v = (rng.next_u64() % 12) as u32;
    let u = if rng.next_u64().is_multiple_of(3) {
        SetUpdate::Delete(v)
    } else {
        SetUpdate::Insert(v)
    };
    (key, u)
}

/// Per-key naive references fed every update exactly once — the
/// canonical converged fold every healed replica must match.
fn references(all: &[Msg]) -> HashMap<Key, GenericReplica<Adt>> {
    let mut refs: HashMap<Key, GenericReplica<Adt>> = HashMap::new();
    for m in all {
        let StoreMsg::Update { key, msg } = m else {
            continue;
        };
        refs.entry(*key)
            .or_insert_with(|| GenericReplica::new(SetAdt::new(), 0))
            .on_deliver(msg);
    }
    refs
}

fn assert_matches_reference<F, P>(
    store: &mut UcStore<Adt, F, P>,
    refs: &mut HashMap<Key, GenericReplica<Adt>>,
    label: &str,
) where
    F: StrategyFactory<Adt>,
    P: uc_core::BackendFactory<Adt>,
{
    for k in 0..KEYS {
        let expect = refs
            .get_mut(&k)
            .map(|r| r.materialize())
            .unwrap_or_default();
        assert_eq!(
            store.materialize_key(k),
            expect,
            "{label}: key {k} diverged"
        );
    }
}

/// Two distinct nodes of the cluster, mutably — the borrow dance a
/// direct-drive [`UcStore::heal_peer`] between vector elements needs.
fn two_nodes<F: StrategyFactory<Adt>>(
    nodes: &mut [UcStore<Adt, F>],
    a: usize,
    b: usize,
) -> (&mut UcStore<Adt, F>, &mut UcStore<Adt, F>) {
    assert_ne!(a, b);
    if a < b {
        let (l, r) = nodes.split_at_mut(b);
        (&mut l[a], &mut r[0])
    } else {
        let (l, r) = nodes.split_at_mut(a);
        (&mut r[0], &mut l[b])
    }
}

/// The three-replica partition/heal scenario. `minority_updates`
/// controls whether the cut-off replica (pid 2) keeps issuing updates
/// while partitioned (writes stay wait-free on both sides).
fn run_heal_differential<F>(factory: F, seed: u64, minority_updates: bool)
where
    F: StrategyFactory<Adt>,
{
    let mut rng = SplitMix64::new(seed);
    let mut nodes: Vec<UcStore<Adt, F>> = (0..3)
        .map(|pid| UcStore::new(SetAdt::new(), pid, 1 + (seed as usize % 4), factory.clone()))
        .collect();
    let mut all: Vec<Msg> = Vec::new();

    // Phase 1: fully connected — every update reaches everyone.
    for i in 0..24u64 {
        let p = (i % 3) as usize;
        let (key, u) = step_update(&mut rng);
        let m = nodes[p].update(key, u);
        for (q, node) in nodes.iter_mut().enumerate() {
            if q != p {
                node.apply_message(&m);
            }
        }
        all.push(m);
    }

    // Partition {0, 1} | {2}: failure detectors fire on both sides.
    nodes[0].peer_down(2);
    nodes[1].peer_down(2);
    nodes[2].peer_down(0);
    nodes[2].peer_down(1);
    assert!(!nodes[0].partition().in_minority(3));
    assert!(nodes[2].partition().in_minority(3));

    // Phase 2: both sides keep accepting updates; delivery respects
    // the partition.
    for i in 0..24u64 {
        let p = (i % 3) as usize;
        if p == 2 && !minority_updates {
            continue;
        }
        let (key, u) = step_update(&mut rng);
        let m = nodes[p].update(key, u);
        match p {
            0 => nodes[1].apply_message(&m),
            1 => nodes[0].apply_message(&m),
            _ => {} // pid 2 is alone; its broadcasts are lost
        }
        all.push(m);
    }

    // Heal, through the digest-guided chunked dialogue. Both majority
    // replicas repair the minority one (the streams overlap — chunk
    // delivery must be idempotent), and the minority replica repairs
    // each majority replica with its own partition-era updates.
    let heals: [(usize, usize); 4] = [(0, 2), (1, 2), (2, 0), (2, 1)];
    for (src, peer) in heals {
        let (healer, healed) = two_nodes(&mut nodes, src, peer);
        healer.heal_peer(healed);
    }
    for n in &nodes {
        assert_eq!(n.partition().down_count(), 0, "heal clears the tracker");
    }
    if minority_updates {
        assert!(
            nodes[2].heal_replay_bytes() > 0,
            "minority-side divergence must be streamed back"
        );
    }
    assert!(nodes[0].heal_replay_bytes() > 0);

    // For the GC strategy: full stability coverage, then compaction —
    // semantics must survive compacting the healed log.
    let top = nodes.iter().map(|n| n.clock()).max().unwrap();
    for node in &mut nodes {
        for pid in 0..3u32 {
            node.apply_message(&StoreMsg::Heartbeat { pid, clock: top });
        }
        node.tick_maintenance();
    }

    let mut refs = references(&all);
    for (p, node) in nodes.iter_mut().enumerate() {
        assert_matches_reference(node, &mut refs, &format!("seed {seed} replica {p}"));
    }
}

#[test]
fn heal_converges_to_reference_naive() {
    for seed in 0..8 {
        run_heal_differential(NaiveFactory, 0xA110 ^ seed, seed % 2 == 0);
    }
}

#[test]
fn heal_converges_to_reference_checkpoint() {
    for seed in 0..8 {
        run_heal_differential(
            CheckpointFactory {
                every: 1 + (seed as usize % 5),
            },
            0xA111 ^ seed,
            seed % 2 == 0,
        );
    }
}

#[test]
fn heal_converges_to_reference_undo() {
    for seed in 0..8 {
        run_heal_differential(UndoFactory, 0xA112 ^ seed, seed % 2 == 0);
    }
}

#[test]
fn heal_converges_to_reference_gc() {
    // StableGc compacts only prefixes every peer has observed; a
    // partitioned peer's frozen clock pins the bound below the outage
    // watermark, which is exactly what keeps the heal suffix complete
    // (asserted inside: healed replicas match the reference even after
    // a full post-heal compaction round).
    for seed in 0..8 {
        run_heal_differential(GcFactory { n: 3 }, 0xA113 ^ seed, seed % 2 == 0);
    }
}

/// Segment-backed heal source and sink: the repair burst a
/// segment-backed replica streams (straight out of its per-key
/// journal segments) must be identical to the burst an in-memory
/// replica holding the same log produces — and a crash halfway
/// through *applying* a heal burst, followed by recovery from disk
/// and a redelivered (overlapping) burst, must still converge.
#[test]
fn segment_heal_stream_matches_memory_and_survives_crash_mid_heal() {
    let tmp_a = ScratchDir::new("heal-src");
    let tmp_c = ScratchDir::new("heal-dst");
    let persist_a = SegmentFactory::at(tmp_a.path()).expect("scratch");
    let persist_c = SegmentFactory::at(tmp_c.path()).expect("scratch");
    let factory = CheckpointFactory { every: 4 };
    // A (pid 0) on segments: the heal *source*. B (pid 1) in memory:
    // the differential control. C (pid 2) on segments: the heal
    // *sink*, crashed mid-burst.
    let mut a: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::with_persistence(SetAdt::new(), 0, 2, factory, persist_a.clone());
    let mut b: UcStore<Adt, CheckpointFactory> = UcStore::new(SetAdt::new(), 1, 2, factory);
    let mut c: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::with_persistence(SetAdt::new(), 2, 2, factory, persist_c.clone());

    let mut rng = SplitMix64::new(0x5E6);
    let mut all: Vec<Msg> = Vec::new();
    for _ in 0..16u64 {
        let (key, u) = step_update(&mut rng);
        let m = a.update(key, u);
        b.apply_message(&m);
        c.apply_message(&m);
        all.push(m);
    }
    c.flush_backends();

    // Partition: C drops off; A and B keep going in lockstep.
    a.peer_down(2);
    b.peer_down(2);
    for _ in 0..16u64 {
        let (key, u) = step_update(&mut rng);
        let m = a.update(key, u);
        b.apply_message(&m);
        all.push(m);
    }

    // Heal-source differential: the segment-backed replica's burst
    // (served by LogBackend::stream_suffix from its journal segments)
    // must equal the in-memory replica's (served by filtering the
    // sorted log).
    let Some(StoreMsg::Repair { updates: from_seg }) = a.peer_up_monolithic(2) else {
        panic!("segment-backed heal must stream a burst");
    };
    let Some(StoreMsg::Repair { updates: from_mem }) = b.peer_up_monolithic(2) else {
        panic!("in-memory heal must stream a burst");
    };
    assert_eq!(
        from_seg, from_mem,
        "segment heal stream diverged from memory"
    );
    assert!(a.heal_replay_bytes() > 0);

    // Crash mid-heal: C applies half the burst, makes it durable, and
    // dies. Reopen from disk, then redeliver the *whole* burst (the
    // healer cannot know how far the crashed receiver got) — dedup
    // absorbs the overlap.
    let half = from_seg.len() / 2;
    c.apply_message(&StoreMsg::Repair {
        updates: from_seg[..half].to_vec(),
    });
    c.flush_backends();
    drop(c); // kill
    let mut c: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::reopen(SetAdt::new(), 2, 2, factory, persist_c);
    c.apply_message(&StoreMsg::Repair { updates: from_seg });

    let mut refs = references(&all);
    assert_matches_reference(&mut a, &mut refs, "segment source");
    assert_matches_reference(&mut b, &mut refs, "memory control");
    assert_matches_reference(&mut c, &mut refs, "crashed-and-healed sink");
}

/// Crash in the middle of a *chunked* heal: the sink durably applies
/// only the first flow-controlled chunk and dies before acking; the
/// healer sees the flap, cancels its session (re-opening the outage at
/// the session watermark), and the post-reopen re-heal — whose chunks
/// overlap everything already applied — converges through idempotent
/// dedup. The resumability contract of the digest-guided heal path.
#[test]
fn chunked_heal_crash_mid_stream_reopens_and_reheals() {
    let tmp_a = ScratchDir::new("chunk-heal-src");
    let tmp_c = ScratchDir::new("chunk-heal-dst");
    let persist_a = SegmentFactory::at(tmp_a.path()).expect("scratch");
    let persist_c = SegmentFactory::at(tmp_c.path()).expect("scratch");
    let factory = CheckpointFactory { every: 4 };
    let mut a: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::with_persistence(SetAdt::new(), 0, 2, factory, persist_a);
    // Tiny chunks, window 1: the stream pauses on every unacked chunk,
    // so "crash after the first chunk" is a reachable protocol state.
    a.set_heal_config(HealConfig {
        chunk: 3,
        window: 1,
        ..HealConfig::default()
    });
    let mut c: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::with_persistence(SetAdt::new(), 2, 2, factory, persist_c.clone());

    let mut rng = SplitMix64::new(0xC4A5);
    let mut all: Vec<Msg> = Vec::new();
    for _ in 0..12u64 {
        let (key, u) = step_update(&mut rng);
        let m = a.update(key, u);
        c.apply_message(&m);
        all.push(m);
    }
    c.flush_backends();
    a.peer_down(2);
    for _ in 0..16u64 {
        let (key, u) = step_update(&mut rng);
        let m = a.update(key, u);
        all.push(m);
    }

    // Drive the dialogue by hand up to the first chunk.
    let opener = a.peer_up(2).expect("divergence opens a session");
    let mut resp = c.apply_message_from(0, opener);
    assert_eq!(resp.len(), 1, "digest request answers with one response");
    let mut chunks = a.apply_message_from(2, resp.remove(0).1);
    assert_eq!(chunks.len(), 1, "window 1 streams one chunk at a time");
    let (_, first_chunk) = chunks.remove(0);
    // C applies it durably… and crashes before its ack is delivered.
    let _lost_ack = c.apply_message_from(0, first_chunk);
    c.flush_backends();
    drop(c);
    assert!(a.heal_bytes_in_flight() > 0, "chunk still unacked");

    // The healer's detector fires again: session cancelled, outage
    // re-opened at the session watermark (not the current clock).
    let session_since = a.heal_sessions().next().map(|(_, s)| s.since).unwrap();
    a.peer_down(2);
    assert!(
        a.heal_sessions().next().is_none(),
        "flap cancels the session"
    );
    assert_eq!(a.heal_bytes_in_flight(), 0, "gauge drains on cancel");
    assert_eq!(
        a.partition().down_peers().collect::<Vec<_>>(),
        vec![(2, session_since)],
        "re-opened outage covers the cancelled stream"
    );

    // Recover the sink from disk and re-heal from scratch: the first
    // chunk is re-streamed (the healer cannot know it landed) and
    // deduplicated on arrival.
    let mut c: UcStore<Adt, CheckpointFactory, SegmentFactory> =
        UcStore::reopen(SetAdt::new(), 2, 2, factory, persist_c);
    let streamed = a.heal_peer(&mut c);
    assert!(streamed >= 2, "re-heal streams the full chunked suffix");
    assert!(a.heal_sessions().next().is_none());
    assert_eq!(a.heal_bytes_in_flight(), 0);

    let mut refs = references(&all);
    assert_matches_reference(&mut a, &mut refs, "chunked source");
    assert_matches_reference(&mut c, &mut refs, "crashed-and-rehealed sink");
}

/// Regression (review): stability GC over reordering links. A
/// heartbeat carrying a high clock must not overtake a same-sender
/// in-flight update — `StableGc` would advance the compaction bound
/// (and the log's duplicate-rejection floor) past the update's clock,
/// and every insert path would then silently reject the update when
/// its retransmission finally landed: permanent divergence with no
/// peer ever marked down, so the heal retention cap never applies.
/// `ReliableLink` releases payloads in per-channel sequence order,
/// which makes the race impossible by construction; this runs full
/// `StableGc` stores over a lossy, duplicating, heavily reordering
/// topology (no partition window) with aggressive heartbeat ticks and
/// asserts convergence *after compaction genuinely advanced*. Every
/// inserted value is unique, so one silently rejected update shows up
/// as a missing element on the receiving side.
#[test]
fn gc_store_survives_reordered_heartbeats_without_silent_rejection() {
    type Node = ReliableLink<UcStore<Adt, GcFactory>>;
    let n = 3;
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n,
            seed: 0x0DD5,
            latency: LatencyModel::Constant(1),
            fifo_links: false,
        },
        |pid| {
            ReliableLink::new(
                UcStore::new(SetAdt::new(), pid, 2, GcFactory { n: 3 }),
                RetryConfig {
                    base: 30,
                    max_backoff: 240,
                    jitter: 7,
                    queue_cap: 1024,
                },
                0x0DD5 ^ pid as u64,
            )
        },
    );
    sim.set_topology(Topology::uniform(
        n,
        LinkModel {
            latency: LatencyModel::Uniform(1, 30),
            // Reorder jitter swamps the base latency: arrival order is
            // rampantly non-FIFO, exactly the overtaking-heartbeat
            // setup from the review.
            reorder: 60,
            loss: 0.25,
            duplicate: 0.15,
            ..LinkModel::default()
        },
    ));
    // Frequent ticks: every one broadcasts the shared clock, so the
    // stability bound chases the in-flight updates as closely as the
    // delivery layer allows.
    sim.schedule_ticks(20, 8_000);
    let mut rng = SplitMix64::new(0x0DD6);
    for i in 0..120u64 {
        let pid = (i % 3) as Pid;
        let key = rng.next_u64() % KEYS;
        sim.schedule_invoke(
            10 + i * 50,
            pid,
            StoreInput::Update(key, SetUpdate::Insert(i as u32)),
        );
    }
    sim.run_to_quiescence();

    // The race is only exercised if stability actually advanced.
    let compacted: u64 = (0..n as Pid)
        .map(|p| {
            let store = sim.process(p).inner();
            (0..KEYS)
                .filter_map(|k| store.engine(k))
                .map(|e| e.strategy().compacted())
                .sum::<u64>()
        })
        .sum();
    assert!(compacted > 0, "heartbeats must have driven compaction");
    for k in 0..KEYS {
        let expect = sim.process_mut(0).inner_mut().materialize_key(k);
        for p in 1..n as Pid {
            assert_eq!(
                expect,
                sim.process_mut(p).inner_mut().materialize_key(k),
                "key {k} diverged on replica {p}: an update was silently rejected"
            );
        }
    }
}

/// Minority reads follow the configured availability policy through
/// the `Protocol` surface (what the runtimes and ω-marking see).
#[test]
fn protocol_minority_posture() {
    use uc_core::AvailabilityPolicy;
    let mut store: UcStore<Adt, NaiveFactory> = UcStore::new(SetAdt::new(), 0, 2, NaiveFactory);
    store.set_partition_policy(AvailabilityPolicy::Refuse);
    let mut out = Vec::new();
    let mut ctx: Ctx<'_, Msg> = Ctx::new(0, 3, 1, &mut out);
    let ack = store.on_invoke(StoreInput::Update(1, SetUpdate::Insert(7)), &mut ctx);
    assert!(matches!(ack, StoreOutput::Ack { .. }));
    // Majority: reads answer normally.
    let val = store.on_invoke(StoreInput::Query(1, SetQuery::Read), &mut ctx);
    assert!(matches!(val, StoreOutput::Value { .. }));
    // Lose the majority: reads refuse, writes stay wait-free.
    store.on_invoke(StoreInput::PeerDown(1), &mut ctx);
    store.on_invoke(StoreInput::PeerDown(2), &mut ctx);
    let refused = store.on_invoke(StoreInput::Query(1, SetQuery::Read), &mut ctx);
    assert!(
        matches!(
            refused,
            StoreOutput::Refused {
                live: 1,
                cluster: 3
            }
        ),
        "got {refused:?}"
    );
    let snap = store.on_invoke(StoreInput::Snapshot(vec![(1, SetQuery::Read)]), &mut ctx);
    assert!(matches!(snap, StoreOutput::Refused { .. }));
    let ack = store.on_invoke(StoreInput::Update(1, SetUpdate::Insert(8)), &mut ctx);
    assert!(
        matches!(ack, StoreOutput::Ack { .. }),
        "writes never refuse"
    );
    // Degraded marking wraps instead of refusing.
    store.set_partition_policy(AvailabilityPolicy::DegradedMarked);
    let StoreOutput::Degraded(inner) =
        store.on_invoke(StoreInput::Query(1, SetQuery::Read), &mut ctx)
    else {
        panic!("expected a degraded wrapper");
    };
    assert!(matches!(*inner, StoreOutput::Value { .. }));
    // Heal back to a majority: posture lifts, and the healed peer is
    // sent the digest request that opens the chunked heal dialogue.
    store.on_invoke(StoreInput::PeerUp(1), &mut ctx);
    let val = store.on_invoke(StoreInput::Query(1, SetQuery::Read), &mut ctx);
    assert!(!matches!(val, StoreOutput::Degraded(_)));
    assert!(
        out.iter()
            .any(|(to, m)| *to == 1 && matches!(m, StoreMsg::DigestRequest { .. })),
        "heal must open a digest-guided session with the healed peer"
    );
}

/// End-to-end on the deterministic simulator: [`ReliableLink`]-wrapped
/// stores on a lossy topology with a partition window. Retry/backoff
/// recovers what loss drops, the repair burst redundantly covers the
/// partition window, and every replica converges per key — with the
/// injected faults observable in the harness metrics.
#[test]
fn reliable_link_store_converges_through_lossy_partition() {
    type Node = ReliableLink<UcStore<Adt, CheckpointFactory>>;
    let n = 3;
    let counters = LinkCounters::new();
    let mut topo = Topology::uniform(n, LinkModel::lossy(LatencyModel::Uniform(2, 9), 0.10));
    // Hard partition window: {0, 1} | {2}.
    topo.partition(vec![vec![0, 1], vec![2]], 2_000, 5_000);
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n,
            seed: 0xFA17,
            latency: LatencyModel::Uniform(2, 9),
            fifo_links: false,
        },
        |pid| {
            let mut store = UcStore::new(SetAdt::new(), pid, 2, CheckpointFactory { every: 8 });
            // Heal bursts accrue to the same shared counters the
            // links report through.
            store.attach_link_counters(counters.clone());
            ReliableLink::new(
                store,
                RetryConfig {
                    base: 40,
                    max_backoff: 400,
                    jitter: 9,
                    queue_cap: 256,
                },
                0xFA17 ^ pid as u64,
            )
            .with_counters(counters.clone())
        },
    );
    sim.set_topology(topo);
    sim.attach_link_counters(counters.clone());
    // Retransmit timers ride the tick wheel.
    sim.schedule_ticks(50, 9_000);

    let mut rng = SplitMix64::new(0xFA18);
    // Updates before, during, and after the partition — including on
    // the minority side.
    for i in 0..90u64 {
        let t = 20 + i * 80; // spans 20..7220
        let pid = (i % 3) as Pid;
        let key = rng.next_u64() % KEYS;
        let v = (rng.next_u64() % 10) as u32;
        sim.schedule_invoke(t, pid, StoreInput::Update(key, SetUpdate::Insert(v)));
    }
    // Failure-detector verdicts at partition start…
    sim.schedule_invoke(2_100, 0, StoreInput::PeerDown(2));
    sim.schedule_invoke(2_100, 1, StoreInput::PeerDown(2));
    sim.schedule_invoke(2_100, 2, StoreInput::PeerDown(0));
    sim.schedule_invoke(2_100, 2, StoreInput::PeerDown(1));
    // …and heal verdicts once the window closes: every side streams
    // the suffix its peer missed (redundant with retransmission —
    // dedup absorbs the overlap).
    sim.schedule_invoke(5_200, 0, StoreInput::PeerUp(2));
    sim.schedule_invoke(5_200, 1, StoreInput::PeerUp(2));
    sim.schedule_invoke(5_200, 2, StoreInput::PeerUp(0));
    sim.schedule_invoke(5_200, 2, StoreInput::PeerUp(1));
    sim.run_to_quiescence();

    for k in 0..KEYS {
        let expect = sim.process_mut(0).inner_mut().materialize_key(k);
        for p in 1..n as Pid {
            assert_eq!(
                expect,
                sim.process_mut(p).inner_mut().materialize_key(k),
                "key {k} diverged on replica {p}"
            );
        }
    }
    // The trait accessor folds the shared `LinkCounters` into the
    // harness metrics; the raw field would miss them.
    let m = uc_sim::ClusterHarness::metrics(&sim);
    assert!(m.messages_dropped > 0, "loss + outage must drop messages");
    assert!(m.retransmits > 0, "drops must trigger retransmission");
    assert!(
        m.heal_replay_bytes > 0,
        "the PeerUp verdicts must stream repair bursts"
    );
}

/// End-to-end with **no injected membership verdicts**: a
/// [`HeartbeatDetector`] between the reliable link and the store
/// derives `peer_down`/`peer_up` from missed heartbeats alone, over a
/// lossy topology that partitions *twice* (a flap). Detection freezes
/// the divergence watermark, recovery opens the digest-guided chunked
/// heal, and the second outage exercises cancel-and-reheal — all
/// driven by the detector, and every replica still converges.
#[test]
fn heartbeat_detector_drives_chunked_heal_through_flapping_partition() {
    type Node = ReliableLink<HeartbeatDetector<UcStore<Adt, CheckpointFactory>>>;
    let n = 3;
    let counters = LinkCounters::new();
    let mut topo = Topology::uniform(n, LinkModel::lossy(LatencyModel::Uniform(2, 9), 0.08));
    // Two outage windows for {0, 1} | {2}: the second starts after the
    // first heal completes, so sessions are opened, finished, and
    // re-opened purely by detector verdicts.
    topo.partition(vec![vec![0, 1], vec![2]], 1_500, 3_500);
    topo.partition(vec![vec![0, 1], vec![2]], 5_500, 7_000);
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n,
            seed: 0xBEA7,
            latency: LatencyModel::Uniform(2, 9),
            fifo_links: false,
        },
        |pid| {
            let mut store = UcStore::new(SetAdt::new(), pid, 2, CheckpointFactory { every: 8 });
            store.attach_link_counters(counters.clone());
            // Ticks fire every 50: a miss threshold of 6 suspects a
            // peer after ~300 time units of silence — well inside
            // each 1500+-unit outage window.
            ReliableLink::new(
                HeartbeatDetector::new(store, 6),
                RetryConfig {
                    base: 40,
                    max_backoff: 400,
                    jitter: 9,
                    queue_cap: 512,
                },
                0xBEA7 ^ pid as u64,
            )
            .with_counters(counters.clone())
        },
    );
    sim.set_topology(topo);
    sim.attach_link_counters(counters.clone());
    sim.schedule_ticks(50, 10_000);

    let mut rng = SplitMix64::new(0xBEA8);
    // Updates before, during, and between both outage windows,
    // including on the minority side.
    for i in 0..100u64 {
        let t = 20 + i * 80; // spans 20..7940
        let pid = (i % 3) as Pid;
        let key = rng.next_u64() % KEYS;
        let v = (rng.next_u64() % 10) as u32;
        sim.schedule_invoke(t, pid, StoreInput::Update(key, SetUpdate::Insert(v)));
    }
    sim.run_to_quiescence();

    // The detector did the failure detection: both sides suspected
    // across both windows and recovered — no test-injected verdicts.
    for p in 0..n as Pid {
        let det = sim.process(p).inner();
        assert!(
            det.down_verdicts() >= 2,
            "replica {p}: two outage windows must trip ≥ 2 down verdicts, got {}",
            det.down_verdicts()
        );
        assert!(
            det.up_verdicts() >= det.down_verdicts().min(2),
            "replica {p}: recoveries must be reported back up"
        );
        assert_eq!(
            det.inner().partition().down_count(),
            0,
            "replica {p}: all outages healed by the end"
        );
    }
    for k in 0..KEYS {
        let expect = sim
            .process_mut(0)
            .inner_mut()
            .inner_mut()
            .materialize_key(k);
        for p in 1..n as Pid {
            assert_eq!(
                expect,
                sim.process_mut(p)
                    .inner_mut()
                    .inner_mut()
                    .materialize_key(k),
                "key {k} diverged on replica {p}"
            );
        }
    }
    let m = uc_sim::ClusterHarness::metrics(&sim);
    assert!(
        m.heal_replay_bytes > 0,
        "detector-driven heals must stream chunks"
    );
}
