//! Lifecycle edges of the persistent shard-worker ingest pool:
//! drain-on-drop, flush barriers, and panic poisoning.
//!
//! The observability trick: instrumented UQ-ADTs whose transition
//! function reports into shared state (an `Arc`), so a test can see
//! exactly which updates a worker folded even after the pool (and the
//! store inside it) is gone. Instrumentation lives in the ADT, not
//! the pool — the pool under test is the production code path.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uc_core::{CheckpointFactory, PoolConfig, StoreMsg, UcStore};
use uc_spec::{SetAdt, SetQuery, SetUpdate, UqAdt};

/// A set ADT that records every element it ever applies into a shared
/// journal (dedup across repair re-folds is the point: an element in
/// the journal was folded *at least once*, i.e. its update was not
/// lost).
#[derive(Clone, Debug)]
struct JournaledSet {
    inner: SetAdt<u32>,
    journal: Arc<Mutex<BTreeSet<u32>>>,
    applies: Arc<AtomicU64>,
}

impl JournaledSet {
    fn new() -> Self {
        JournaledSet {
            inner: SetAdt::new(),
            journal: Arc::new(Mutex::new(BTreeSet::new())),
            applies: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl UqAdt for JournaledSet {
    type Update = SetUpdate<u32>;
    type QueryIn = SetQuery;
    type QueryOut = BTreeSet<u32>;
    type State = BTreeSet<u32>;

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn apply(&self, state: &mut Self::State, update: &Self::Update) {
        let (SetUpdate::Insert(e) | SetUpdate::Delete(e)) = update;
        self.journal.lock().unwrap().insert(*e);
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply(state, update);
    }

    fn observe(&self, state: &Self::State, query: &Self::QueryIn) -> Self::QueryOut {
        self.inner.observe(state, query)
    }
}

/// A set ADT whose fold panics on one poison-pill element.
#[derive(Clone, Debug)]
struct PanickySet {
    inner: SetAdt<u32>,
    pill: u32,
}

impl UqAdt for PanickySet {
    type Update = SetUpdate<u32>;
    type QueryIn = SetQuery;
    type QueryOut = BTreeSet<u32>;
    type State = BTreeSet<u32>;

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn apply(&self, state: &mut Self::State, update: &Self::Update) {
        if let SetUpdate::Insert(e) = update {
            assert!(*e != self.pill, "poison pill folded");
        }
        self.inner.apply(state, update);
    }

    fn observe(&self, state: &Self::State, query: &Self::QueryIn) -> Self::QueryOut {
        self.inner.observe(state, query)
    }
}

/// A remote producer's keyed burst: `count` inserts spread over `keys`
/// keys, elements `0..count`.
fn burst<A>(adt: A, keys: u64, count: u32) -> Vec<StoreMsg<SetUpdate<u32>>>
where
    A: UqAdt<Update = SetUpdate<u32>> + Clone,
{
    let mut producer = UcStore::new(adt, 1, 1, CheckpointFactory { every: 4 });
    (0..count)
        .map(|i| producer.update(u64::from(i) % keys, SetUpdate::Insert(i)))
        .collect()
}

#[test]
fn drop_while_queued_drains_fully() {
    // Submit many small bursts and drop the handle immediately: the
    // workers must fold every queued update before exiting — nothing
    // in a queue may be discarded.
    let adt = JournaledSet::new();
    let journal = Arc::clone(&adt.journal);
    let msgs = burst(adt.clone(), 7, 400);
    let pool_adt = JournaledSet {
        inner: SetAdt::new(),
        journal: Arc::clone(&adt.journal),
        applies: Arc::clone(&adt.applies),
    };
    journal.lock().unwrap().clear(); // forget the producer's folds
    let mut pool =
        UcStore::new(pool_adt, 0, 4, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
            workers: 2,
            queue_depth: 256,
            ..PoolConfig::default()
        });
    for chunk in msgs.chunks(3) {
        pool.submit_batch(chunk.to_vec()).unwrap();
    }
    drop(pool); // no flush, no finish — drop alone must drain
    let folded = journal.lock().unwrap().clone();
    let expect: BTreeSet<u32> = (0..400).collect();
    assert_eq!(folded, expect, "drop discarded queued updates");
}

#[test]
fn flush_barrier_observes_all_prior_submissions() {
    let adt = JournaledSet::new();
    let journal = Arc::clone(&adt.journal);
    let msgs = burst(adt.clone(), 5, 200);
    let pool_adt = JournaledSet {
        inner: SetAdt::new(),
        journal: Arc::clone(&adt.journal),
        applies: Arc::clone(&adt.applies),
    };
    journal.lock().unwrap().clear();
    let mut pool =
        UcStore::new(pool_adt, 0, 4, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
            workers: 3,
            queue_depth: 64,
            ..PoolConfig::default()
        });
    for chunk in msgs.chunks(9) {
        pool.submit_batch(chunk.to_vec()).unwrap();
    }
    pool.flush().unwrap();
    // The barrier has acked: every prior submission is applied *now*,
    // while the pool is still running.
    let folded = journal.lock().unwrap().clone();
    let expect: BTreeSet<u32> = (0..200).collect();
    assert_eq!(folded, expect, "flush acked before prior work finished");
    // And the pool is still usable afterwards.
    let q = pool.query(0, &SetQuery::Read).unwrap();
    assert!(!q.is_empty());
    pool.finish().unwrap();
}

#[test]
fn panicking_fold_poisons_with_clear_error_not_deadlock() {
    let adt = PanickySet {
        inner: SetAdt::new(),
        pill: u32::MAX,
    };
    // Producer never folds the pill (its ADT has a different pill).
    let safe = PanickySet {
        inner: SetAdt::new(),
        pill: 0xDEAD_BEEF,
    };
    let mut producer = UcStore::new(safe, 1, 1, CheckpointFactory { every: 4 });
    let mut msgs: Vec<_> = (0..40u32)
        .map(|i| producer.update(u64::from(i) % 3, SetUpdate::Insert(i)))
        .collect();
    msgs.push(producer.update(1, SetUpdate::Insert(u32::MAX))); // the pill
    let mut pool = UcStore::new(adt, 0, 2, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
        workers: 2,
        queue_depth: 64,
        ..PoolConfig::default()
    });
    pool.submit_batch(msgs).unwrap();
    // The worker owning the pill's shard dies mid-fold. The flush
    // barrier must surface that as an error — not hang waiting for an
    // ack that will never come.
    let err = pool.flush().expect_err("poisoned pool must fail the flush");
    assert!(
        err.to_string().contains("poison pill folded"),
        "error must carry the panic message, got: {err}"
    );
    // Every subsequent operation fails fast with the same diagnosis.
    let err2 = pool
        .submit_batch(vec![producer.update(1, SetUpdate::Insert(7))])
        .expect_err("poisoned pool must reject new submissions");
    assert!(err2.to_string().contains("ingest pool poisoned"));
    let err3 = pool
        .finish()
        .expect_err("finish must refuse corrupt shards");
    assert!(err3.to_string().contains("poison pill folded"));
}

#[test]
fn healthy_shards_survive_until_finish_even_under_load() {
    // Sanity companion to the poisoning test: with no pill in the
    // stream, the same configuration finishes cleanly and the
    // reassembled store holds every update.
    let adt = PanickySet {
        inner: SetAdt::new(),
        pill: u32::MAX,
    };
    let mut producer = UcStore::new(adt.clone(), 1, 1, CheckpointFactory { every: 4 });
    let msgs: Vec<_> = (0..60u32)
        .map(|i| producer.update(u64::from(i) % 5, SetUpdate::Insert(i)))
        .collect();
    let mut pool = UcStore::new(adt, 0, 2, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
        workers: 2,
        queue_depth: 8,
        ..PoolConfig::default()
    });
    for chunk in msgs.chunks(11) {
        pool.submit_batch(chunk.to_vec()).unwrap();
    }
    let mut store = pool.finish().unwrap();
    let total: usize = store
        .keys()
        .into_iter()
        .map(|k| store.materialize_key(k).len())
        .sum();
    assert_eq!(total, 60);
}
