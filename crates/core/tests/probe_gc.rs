use uc_core::{GcFactory, StoreMsg, UcStore};
use uc_spec::{SetAdt, SetUpdate};

#[test]
fn probe_receiver_only_gc() {
    let mut a: UcStore<SetAdt<u32>, GcFactory> =
        UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: 2 });
    let mut b: UcStore<SetAdt<u32>, GcFactory> =
        UcStore::new(SetAdt::new(), 1, 2, GcFactory { n: 2 });
    let msgs: Vec<_> = (0..30u64)
        .map(|i| a.update(i % 3, SetUpdate::Insert(i as u32)))
        .collect();
    b.apply_batch(&msgs);
    a.apply_message(&b.heartbeat());
    b.apply_message(&a.heartbeat());
    a.tick_maintenance();
    b.tick_maintenance();
    for k in 0..3u64 {
        let e = b.engine(k).unwrap();
        println!(
            "b key {k}: bound={} compacted={}",
            e.strategy().stability_bound(),
            e.strategy().compacted()
        );
    }
    println!("b total_log_len = {}", b.total_log_len());
    // What if b NEVER heartbeats (pure receiver, no local activity)?
    let mut c: UcStore<SetAdt<u32>, GcFactory> =
        UcStore::new(SetAdt::new(), 1, 2, GcFactory { n: 2 });
    c.apply_batch(&msgs);
    c.apply_message(&StoreMsg::Heartbeat { pid: 0, clock: 30 });
    c.tick_maintenance();
    println!(
        "c (never announced own clock) total_log_len = {}",
        c.total_log_len()
    );
    for k in 0..3u64 {
        let e = c.engine(k).unwrap();
        println!(
            "c key {k}: bound={} compacted={}",
            e.strategy().stability_bound(),
            e.strategy().compacted()
        );
    }
}
