//! Property tests for the replica variants: observational equivalence
//! across Algorithm 1's naive/cached/undo implementations, convergence
//! under arbitrary delivery permutations, and Algorithm 2 vs a
//! sequential oracle.

use proptest::prelude::*;
use uc_core::{CachedReplica, GenericReplica, Replica, UcMemory, UndoReplica};
use uc_spec::{MemoryAdt, MemoryUpdate, SetAdt, SetQuery, SetUpdate, UqAdt};

#[derive(Clone, Copy, Debug)]
enum Cmd {
    Ins(u8),
    Del(u8),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![(0u8..6).prop_map(Cmd::Ins), (0u8..6).prop_map(Cmd::Del)]
}

fn to_update(c: Cmd) -> SetUpdate<u32> {
    match c {
        Cmd::Ins(v) => SetUpdate::Insert(v as u32),
        Cmd::Del(v) => SetUpdate::Delete(v as u32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The three Algorithm 1 variants are observationally equivalent:
    /// same local updates + same (shuffled) remote stream → same
    /// query answers at every step.
    #[test]
    fn variants_agree_on_interleaved_streams(
        local in proptest::collection::vec(cmd(), 0..12),
        remote in proptest::collection::vec(cmd(), 0..12),
        shuffle_seed: u64,
    ) {
        // Remote peer produces a timestamped stream.
        let mut peer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
        let remote_msgs: Vec<_> = remote.iter().map(|&c| peer.update(to_update(c))).collect();
        // Shuffle the delivery order deterministically.
        let mut order: Vec<usize> = (0..remote_msgs.len()).collect();
        let mut s = shuffle_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut g: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
        let mut ca: CachedReplica<SetAdt<u32>> =
            CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 3);
        let mut un: UndoReplica<SetAdt<u32>> = UndoReplica::new(SetAdt::new(), 0);

        // Interleave: one local update, then one remote delivery.
        let mut ri = 0;
        for &c in &local {
            let u = to_update(c);
            g.update(u);
            ca.update(u);
            un.update(u);
            if ri < order.len() {
                let m = &remote_msgs[order[ri]];
                g.on_deliver(m);
                ca.on_deliver(m);
                un.on_deliver(m);
                ri += 1;
            }
            let qg = g.do_query(&SetQuery::Read);
            prop_assert_eq!(&qg, &ca.do_query(&SetQuery::Read));
            prop_assert_eq!(&qg, &un.do_query(&SetQuery::Read));
        }
        // Drain any remaining remote messages.
        while ri < order.len() {
            let m = &remote_msgs[order[ri]];
            g.on_deliver(m);
            ca.on_deliver(m);
            un.on_deliver(m);
            ri += 1;
        }
        let qg = g.materialize();
        prop_assert_eq!(&qg, &ca.materialize());
        prop_assert_eq!(&qg, &un.materialize());
    }

    /// Final state is delivery-order independent (the heart of update
    /// consistency): every permutation of the same message set yields
    /// the same state on a fresh replica.
    #[test]
    fn delivery_order_independence(
        cmds in proptest::collection::vec(cmd(), 1..8),
        seed: u64,
    ) {
        let mut producer: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
        let msgs: Vec<_> = cmds.iter().map(|&c| producer.update(to_update(c))).collect();
        let expect = producer.materialize();

        // Try several pseudo-random permutations.
        let mut s = seed;
        for _ in 0..4 {
            let mut order: Vec<usize> = (0..msgs.len()).collect();
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(99991);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            let mut r: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
            for &i in &order {
                r.on_deliver(&msgs[i]);
            }
            prop_assert_eq!(r.materialize(), expect.clone());
        }
    }

    /// Algorithm 2 equals a sequential fold of its writes in timestamp
    /// order (single-writer case: timestamp order = program order).
    #[test]
    fn memory_single_writer_is_sequential(
        writes in proptest::collection::vec((0u32..4, 0u64..50), 0..20)
    ) {
        let mut mem: UcMemory<u32, u64> = UcMemory::new(0, 0);
        let adt: MemoryAdt<u32, u64> = MemoryAdt::new(0);
        let mut oracle = adt.initial();
        for (x, v) in &writes {
            mem.write(*x, *v);
            adt.apply(&mut oracle, &MemoryUpdate { register: *x, value: *v });
        }
        for x in 0..4u32 {
            let oracle_v = oracle.get(&x).copied().unwrap_or(0);
            prop_assert_eq!(mem.read(&x), oracle_v);
        }
    }

    /// Two-replica memory convergence under arbitrary interleaving.
    #[test]
    fn memory_two_replicas_converge(
        wa in proptest::collection::vec((0u32..3, 1u64..50), 0..10),
        wb in proptest::collection::vec((0u32..3, 51u64..99), 0..10),
    ) {
        let mut a: UcMemory<u32, u64> = UcMemory::new(0, 0);
        let mut b: UcMemory<u32, u64> = UcMemory::new(0, 1);
        let ma: Vec<_> = wa.iter().map(|(x, v)| a.write(*x, *v)).collect();
        let mb: Vec<_> = wb.iter().map(|(x, v)| b.write(*x, *v)).collect();
        for m in &mb { a.on_deliver(m); }
        for m in ma.iter().rev() { b.on_deliver(m); } // reversed order
        for x in 0..3u32 {
            prop_assert_eq!(a.read(&x), b.read(&x), "register {} diverged", x);
        }
    }

    /// Lamport clocks respect causality: any message produced after
    /// delivering m carries a strictly larger timestamp than m.
    #[test]
    fn timestamps_respect_causality(pre in 1usize..6, post in 1usize..6) {
        let mut a: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
        let mut b: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 1);
        let mut last = None;
        for _ in 0..pre {
            last = Some(a.update(SetUpdate::Insert(1)));
        }
        let m = last.unwrap();
        b.on_deliver(&m);
        for _ in 0..post {
            let m2 = b.update(SetUpdate::Insert(2));
            prop_assert!(m2.ts > m.ts, "causal order violated: {:?} !> {:?}", m2.ts, m.ts);
        }
    }

    /// The GC replica agrees with the plain replica on every final
    /// state, whatever got compacted.
    #[test]
    fn gc_replica_matches_plain(cmds in proptest::collection::vec(cmd(), 1..15)) {
        let mut gc_a = uc_core::GcReplica::new(SetAdt::<u32>::new(), 0, 2);
        let mut gc_b = uc_core::GcReplica::new(SetAdt::<u32>::new(), 1, 2);
        let mut plain = GenericReplica::new(SetAdt::<u32>::new(), 0);
        for (i, &c) in cmds.iter().enumerate() {
            let u = to_update(c);
            if i % 2 == 0 {
                let m = gc_a.update(u);
                gc_b.on_gc_message(&m);
                plain.update(u);
            } else {
                let m = gc_b.update(u);
                gc_a.on_gc_message(&m);
                if let uc_core::GcMsg::Update(um) = &m {
                    plain.on_deliver(um);
                }
            }
            // heartbeat exchange advances stability
            for m in gc_a.tick() { gc_b.on_gc_message(&m); }
            for m in gc_b.tick() { gc_a.on_gc_message(&m); }
        }
        prop_assert_eq!(gc_a.materialize(), plain.materialize());
        prop_assert_eq!(gc_b.materialize(), plain.materialize());
    }
}
