//! Differential and adversarial tests for the timestamp-cut snapshot
//! path: [`UcStore::snapshot_at`] / [`UcStore::consistent_snapshot`],
//! the pool's cut barrier, and the `SnapshotConsistency` criterion.
//!
//! The gate: for every repair strategy, both storage backends, and
//! shuffled/duplicated/batched schedules from concurrent producers,
//! `snapshot_at(t)` must equal a per-key sequential fold of the
//! delivered updates stamped `≤ t` — byte-identical (state equality
//! *and* digest equality), and never torn: no key ahead of the cut,
//! none behind it.

mod common;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use uc_core::{
    state_digest, CheckpointFactory, CutError, GcFactory, Key, NaiveFactory, PoolConfig, StoreMsg,
    StoreSnapshot, StrategyFactory, Timestamp, UcStore, UndoFactory,
};
use uc_criteria::{check_snapshot_consistency, CutUpdate, RecordedCut};
use uc_sim::SplitMix64;
use uc_spec::{
    queue::{QueueOut, QueueQuery, QueueUpdate},
    stack::{StackOut, StackQuery, StackUpdate},
    CounterAdt, CounterQuery, CounterUpdate, QueueAdt, SetAdt, SetQuery, SetUpdate, StackAdt,
    UqAdt,
};
use uc_storage::{ScratchDir, SegmentFactory};

const KEYS: u64 = 5;

/// The fold-at-cut reference: dedup the delivered updates by stamp,
/// keep `key`'s updates stamped `≤ cut`, sort by the update total
/// order, and fold sequentially.
fn expected_at_cut<A: UqAdt>(
    adt: &A,
    delivered: &[(Timestamp, Key, A::Update)],
    key: Key,
    cut: u64,
) -> A::State {
    let mut ups: Vec<(Timestamp, &A::Update)> = delivered
        .iter()
        .filter(|(ts, k, _)| *k == key && ts.clock <= cut)
        .map(|(ts, _, u)| (*ts, u))
        .collect();
    ups.sort_by_key(|(ts, _)| *ts);
    ups.dedup_by_key(|(ts, _)| *ts);
    let mut state = adt.initial();
    for (_, u) in ups {
        adt.apply(&mut state, u);
    }
    state
}

/// Assert a snapshot is exactly the per-key fold of the delivered
/// prefix `≤ cut` — the un-torn property, checked byte-identically.
fn assert_untorn<A: UqAdt>(
    adt: &A,
    snap: &StoreSnapshot<A>,
    delivered: &[(Timestamp, Key, A::Update)],
    seed: u64,
) {
    for k in 0..KEYS {
        let expect = expected_at_cut(adt, delivered, k, snap.cut());
        let got = snap.state(k).cloned().unwrap_or_else(|| adt.initial());
        assert_eq!(got, expect, "cut {} tore key {k}, seed {seed}", snap.cut());
        assert_eq!(
            state_digest(&got),
            state_digest(&expect),
            "cut {} digest mismatch on key {k}, seed {seed}",
            snap.cut()
        );
    }
}

/// Record a snapshot for the `SnapshotConsistency` criterion: every
/// key's state at the cut, untouched keys at the initial state.
fn record_cut<A: UqAdt>(adt: &A, snap: &StoreSnapshot<A>) -> RecordedCut<A::State> {
    RecordedCut {
        cut: snap.cut(),
        states: (0..KEYS)
            .map(|k| (k, snap.state(k).cloned().unwrap_or_else(|| adt.initial())))
            .collect(),
    }
}

/// Two concurrent producers (pids 1, 2) with occasional
/// cross-observation, generating ADT-generic keyed updates.
fn produce_streams<A: UqAdt + Clone>(
    adt: &A,
    rng: &mut SplitMix64,
    mut gen: impl FnMut(&mut SplitMix64) -> A::Update,
) -> Vec<Vec<StoreMsg<A::Update>>> {
    let mut peers: Vec<UcStore<A, NaiveFactory>> = (0..2)
        .map(|i| UcStore::new(adt.clone(), i as u32 + 1, 2, NaiveFactory))
        .collect();
    let mut streams: Vec<Vec<StoreMsg<A::Update>>> = vec![Vec::new(); 2];
    let total = 40 + (rng.next_u64() % 30) as usize;
    for _ in 0..total {
        let p = (rng.next_u64() % 2) as usize;
        let key = rng.next_u64() % KEYS;
        let u = gen(rng);
        let m = peers[p].update(key, u);
        if rng.next_u64().is_multiple_of(2) {
            peers[1 - p].apply_message(&m);
        }
        streams[p].push(m);
    }
    streams
}

/// The cut differential for full-log strategies: shuffled + duplicated
/// schedule, chunked delivery mixing batch and per-message paths, a
/// random cut checked against the fold reference after every chunk,
/// and the recorded end-of-run cuts validated by the criterion.
fn run_cut_differential<A, F, P>(
    adt: A,
    factory: F,
    persist: P,
    seed: u64,
    gen: impl FnMut(&mut SplitMix64) -> A::Update,
) where
    A: UqAdt + Clone,
    F: StrategyFactory<A>,
    P: uc_core::BackendFactory<A>,
{
    let mut rng = SplitMix64::new(seed);
    let streams = produce_streams(&adt, &mut rng, gen);
    let sched = common::shuffle_with_dups(
        &mut rng,
        streams.iter().flatten().cloned().collect::<Vec<_>>(),
    );
    let shards = 1 + (seed as usize % 4);
    let mut store = UcStore::with_persistence(adt.clone(), 0, shards, factory, persist);
    let mut delivered: Vec<(Timestamp, Key, A::Update)> = Vec::new();
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 7) as usize;
        let chunk = &sched[i..sched.len().min(i + k)];
        i += chunk.len();
        if rng.next_u64().is_multiple_of(2) {
            store.apply_batch(chunk);
        } else {
            for m in chunk {
                store.apply_message(m);
            }
        }
        for m in chunk {
            let StoreMsg::Update { key, msg } = m else {
                panic!("producers only emit updates");
            };
            delivered.push((msg.ts, *key, msg.update.clone()));
        }
        // A cut anywhere in delivered history must be answerable and
        // un-torn (full-log strategies never compact).
        let cut = rng.next_u64() % (store.clock() + 1);
        let snap = store
            .snapshot_at(cut)
            .expect("full-log strategies answer every cut");
        assert_eq!(snap.cut(), cut);
        assert_untorn(&adt, &snap, &delivered, seed);
    }

    // The final consistent snapshot reflects everything delivered and
    // agrees with the store's own materialized states.
    let snap = store.consistent_snapshot();
    assert_untorn(&adt, &snap, &delivered, seed);
    for k in 0..KEYS {
        assert_eq!(
            snap.state(k).cloned().unwrap_or_else(|| adt.initial()),
            store.materialize_key(k),
            "final snapshot vs materialize, key {k}, seed {seed}"
        );
    }

    // Criterion gate: the recorded cuts validate against the full
    // delivered trace (duplicates included — the checker collapses
    // them).
    let trace: Vec<CutUpdate<A::Update>> = delivered
        .iter()
        .map(|(ts, key, u)| CutUpdate {
            key: *key,
            clock: ts.clock,
            pid: ts.pid,
            update: u.clone(),
        })
        .collect();
    let mut cuts = vec![record_cut(&adt, &snap)];
    let mid = store
        .snapshot_at(store.clock() / 2)
        .expect("mid cut answerable");
    cuts.push(record_cut(&adt, &mid));
    let verdict = check_snapshot_consistency(&adt, &trace, &cuts);
    assert!(
        verdict.holds(),
        "criterion rejected a real cut: {verdict:?}"
    );
}

#[test]
fn set_cut_differential_all_full_log_strategies_mem() {
    for seed in 0..12u64 {
        let gen = |rng: &mut SplitMix64| {
            let v = (rng.next_u64() % 8) as u32;
            if rng.next_u64().is_multiple_of(3) {
                SetUpdate::Delete(v)
            } else {
                SetUpdate::Insert(v)
            }
        };
        run_cut_differential(
            SetAdt::<u32>::new(),
            NaiveFactory,
            uc_core::MemFactory,
            seed,
            gen,
        );
        run_cut_differential(
            SetAdt::<u32>::new(),
            CheckpointFactory {
                every: 1 + (seed as usize % 5),
            },
            uc_core::MemFactory,
            seed ^ 0xA5,
            gen,
        );
        run_cut_differential(
            SetAdt::<u32>::new(),
            UndoFactory,
            uc_core::MemFactory,
            seed ^ 0x5A,
            gen,
        );
    }
}

#[test]
fn set_cut_differential_segment_backend() {
    for seed in 0..4u64 {
        let gen = |rng: &mut SplitMix64| {
            let v = (rng.next_u64() % 8) as u32;
            if rng.next_u64().is_multiple_of(3) {
                SetUpdate::Delete(v)
            } else {
                SetUpdate::Insert(v)
            }
        };
        let tmp = ScratchDir::new(&format!("snap-diff-seg-{seed}"));
        let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
        run_cut_differential(
            SetAdt::<u32>::new(),
            CheckpointFactory { every: 4 },
            persist,
            seed,
            gen,
        );
        let tmp = ScratchDir::new(&format!("snap-diff-seg-naive-{seed}"));
        let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
        run_cut_differential(SetAdt::<u32>::new(), NaiveFactory, persist, seed, gen);
    }
}

/// Satellite: `spec::queue` through the store differential, snapshot
/// queries included — split queue semantics survive keyed cuts.
#[test]
fn queue_cut_differential() {
    for seed in 0..8u64 {
        let gen = |rng: &mut SplitMix64| {
            if rng.next_u64() % 10 < 3 {
                QueueUpdate::Pop
            } else {
                QueueUpdate::Enqueue((rng.next_u64() % 16) as u32)
            }
        };
        run_cut_differential(
            QueueAdt::<u32>::new(),
            NaiveFactory,
            uc_core::MemFactory,
            seed,
            gen,
        );
        run_cut_differential(
            QueueAdt::<u32>::new(),
            CheckpointFactory { every: 3 },
            uc_core::MemFactory,
            seed ^ 0x11,
            gen,
        );
        run_cut_differential(
            QueueAdt::<u32>::new(),
            UndoFactory,
            uc_core::MemFactory,
            seed ^ 0x22,
            gen,
        );
    }
    // One persistent run: queue states round-trip through segments.
    let tmp = ScratchDir::new("snap-diff-queue-seg");
    let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
    run_cut_differential(
        QueueAdt::<u32>::new(),
        CheckpointFactory { every: 4 },
        persist,
        0x0E0E,
        |rng| {
            if rng.next_u64() % 10 < 3 {
                QueueUpdate::Pop
            } else {
                QueueUpdate::Enqueue((rng.next_u64() % 16) as u32)
            }
        },
    );
}

/// Satellite: `spec::stack` through the store differential, snapshot
/// queries included.
#[test]
fn stack_cut_differential() {
    for seed in 0..8u64 {
        let gen = |rng: &mut SplitMix64| {
            if rng.next_u64() % 10 < 3 {
                StackUpdate::DeleteTop
            } else {
                StackUpdate::Push((rng.next_u64() % 16) as u32)
            }
        };
        run_cut_differential(
            StackAdt::<u32>::new(),
            NaiveFactory,
            uc_core::MemFactory,
            seed,
            gen,
        );
        run_cut_differential(
            StackAdt::<u32>::new(),
            CheckpointFactory { every: 3 },
            uc_core::MemFactory,
            seed ^ 0x11,
            gen,
        );
        run_cut_differential(
            StackAdt::<u32>::new(),
            UndoFactory,
            uc_core::MemFactory,
            seed ^ 0x22,
            gen,
        );
    }
    let tmp = ScratchDir::new("snap-diff-stack-seg");
    let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
    run_cut_differential(
        StackAdt::<u32>::new(),
        CheckpointFactory { every: 4 },
        persist,
        0x57AC4,
        |rng| {
            if rng.next_u64() % 10 < 3 {
                StackUpdate::DeleteTop
            } else {
                StackUpdate::Push((rng.next_u64() % 16) as u32)
            }
        },
    );
}

/// Queue/stack snapshot *queries* observe the cut state, not the
/// latest one.
#[test]
fn queue_and_stack_snapshot_queries_observe_the_cut() {
    let mut store: UcStore<QueueAdt<u32>, NaiveFactory> =
        UcStore::new(QueueAdt::new(), 0, 2, NaiveFactory);
    let m1 = store.update(0, QueueUpdate::Enqueue(7));
    let StoreMsg::Update { msg, .. } = &m1 else {
        panic!()
    };
    let t1 = msg.ts.clock;
    store.update(0, QueueUpdate::Pop);
    let early = store.snapshot_at(t1).expect("answerable");
    assert_eq!(
        early.query(0, &QueueQuery::Front),
        QueueOut::Front(Some(7)),
        "the cut predates the pop"
    );
    assert_eq!(early.query(0, &QueueQuery::Len), QueueOut::Len(1));
    let now = store.consistent_snapshot();
    assert_eq!(now.query(0, &QueueQuery::Front), QueueOut::Front(None));

    let mut store: UcStore<StackAdt<u32>, NaiveFactory> =
        UcStore::new(StackAdt::new(), 0, 2, NaiveFactory);
    store.update(1, StackUpdate::Push(3));
    let m2 = store.update(1, StackUpdate::Push(9));
    let StoreMsg::Update { msg, .. } = &m2 else {
        panic!()
    };
    let t2 = msg.ts.clock;
    store.update(1, StackUpdate::DeleteTop);
    let early = store.snapshot_at(t2).expect("answerable");
    assert_eq!(early.query(1, &StackQuery::Top), StackOut::Top(Some(9)));
    let now = store.consistent_snapshot();
    assert_eq!(now.query(1, &StackQuery::Top), StackOut::Top(Some(3)));
}

/// Satellite regression: the torn multi-key read. Two causally
/// ordered updates land on *different* keys; a naive two-query read
/// straddling their delivery observes the later update without the
/// earlier one — a causal tear no single-key consistency criterion
/// catches. `snapshot_at` makes that observation impossible: no cut
/// shows the second update without the first.
#[test]
fn torn_two_query_read_fixed_by_snapshot_at() {
    const KA: Key = 0;
    const KB: Key = 1;
    let mut producer: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 1, 2, NaiveFactory);
    // Causally ordered: the same producer issues both, so the second
    // stamp is strictly greater.
    let m1 = producer.update(KA, SetUpdate::Insert(1));
    let m2 = producer.update(KB, SetUpdate::Insert(2));

    // First, demonstrate today's tear with naive per-key queries: the
    // reader asks KA before delivery and KB after.
    let mut reader: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 0, 2, NaiveFactory);
    let a_before = reader.query(KA, &SetQuery::Read);
    reader.apply_message(&m1);
    reader.apply_message(&m2);
    let b_after = reader.query(KB, &SetQuery::Read);
    assert!(
        !a_before.contains(&1) && b_after.contains(&2),
        "the naive two-query read observes the causally-later update \
         without the earlier one"
    );

    // The fix: no cut of the same store can reproduce that view —
    // whenever KB shows update 2, KA shows update 1.
    for cut in 0..=reader.clock() {
        let snap = reader.snapshot_at(cut).expect("full log");
        let a = snap.query(KA, &SetQuery::Read);
        let b = snap.query(KB, &SetQuery::Read);
        assert!(
            !b.contains(&2) || a.contains(&1),
            "cut {cut} reproduced the torn view"
        );
    }
    let snap = reader.consistent_snapshot();
    assert!(snap.query(KA, &SetQuery::Read).contains(&1));
    assert!(snap.query(KB, &SetQuery::Read).contains(&2));
}

/// GC interaction: cuts that predate compacted history error cleanly
/// with the oldest answerable cut, cuts at or above the bound keep
/// matching the fold reference under FIFO delivery with heartbeats.
#[test]
fn gc_cut_differential_and_cut_error_below_compaction_bound() {
    for seed in 0..10u64 {
        let mut rng = SplitMix64::new(0x6C5EED ^ seed);
        let gen = |rng: &mut SplitMix64| {
            let v = (rng.next_u64() % 8) as u32;
            if rng.next_u64().is_multiple_of(3) {
                SetUpdate::Delete(v)
            } else {
                SetUpdate::Insert(v)
            }
        };
        let adt = SetAdt::<u32>::new();
        let streams = produce_streams(&adt, &mut rng, gen);
        let cluster = 3;
        let mut store: UcStore<SetAdt<u32>, GcFactory> =
            UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: cluster });
        let mut delivered: Vec<(Timestamp, Key, SetUpdate<u32>)> = Vec::new();
        let mut queues: Vec<VecDeque<StoreMsg<SetUpdate<u32>>>> = streams
            .iter()
            .map(|s| s.iter().cloned().collect())
            .collect();
        while queues.iter().any(|q| !q.is_empty()) {
            let p = (rng.next_u64() % queues.len() as u64) as usize;
            let take = 1 + (rng.next_u64() % 5) as usize;
            let mut burst = Vec::new();
            for _ in 0..take {
                match queues[p].pop_front() {
                    Some(m) => burst.push(m),
                    None => break,
                }
            }
            if burst.is_empty() {
                continue;
            }
            store.apply_batch(&burst);
            for m in &burst {
                let StoreMsg::Update { key, msg } = m else {
                    panic!()
                };
                delivered.push((msg.ts, *key, msg.update));
            }
            if rng.next_u64().is_multiple_of(3) {
                let StoreMsg::Update { msg, .. } = burst.last().expect("nonempty") else {
                    panic!()
                };
                store.apply_message(&StoreMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: msg.ts.clock,
                });
            }
            // Cuts at the current clock stay answerable mid-run even
            // as stability advances.
            let now = store.clock();
            match store.snapshot_at(now) {
                Ok(snap) => assert_untorn(&adt, &snap, &delivered, seed),
                Err(e) => panic!("cut at the clock must be answerable, got {e}"),
            }
        }
        // Full stability, then compact.
        for pid in 0..cluster as u32 {
            store.apply_message(&StoreMsg::Heartbeat {
                pid,
                clock: store.clock(),
            });
        }
        store.tick_maintenance();
        assert!(
            store.total_log_len() < delivered.len(),
            "full heartbeat coverage must compact, seed {seed}"
        );
        // A cut below the compaction bound errs with the bound.
        match store.snapshot_at(0) {
            Err(CutError { cut, bound }) => {
                assert_eq!(cut, 0);
                assert!(bound > 0, "compacted history must raise the bound");
            }
            Ok(_) => panic!("cut 0 must predate compacted history, seed {seed}"),
        }
        // The current clock still answers, matching the full fold.
        let snap = store.consistent_snapshot();
        assert_untorn(&adt, &snap, &delivered, seed);
    }
}

/// The criterion flags an injected torn cut: a recorded state that
/// leaked one update from beyond the cut.
#[test]
fn snapshot_consistency_criterion_flags_injected_tear() {
    let adt = SetAdt::<u32>::new();
    let mut producer: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 1, 2, NaiveFactory);
    let mut store: UcStore<SetAdt<u32>, NaiveFactory> =
        UcStore::new(SetAdt::new(), 0, 2, NaiveFactory);
    let mut trace = Vec::new();
    for i in 0..20u32 {
        let m = producer.update(u64::from(i) % KEYS, SetUpdate::Insert(i));
        let StoreMsg::Update { key, msg } = &m else {
            panic!()
        };
        trace.push(CutUpdate {
            key: *key,
            clock: msg.ts.clock,
            pid: msg.ts.pid,
            update: msg.update,
        });
        store.apply_message(&m);
    }
    let cut_ts = trace[9].clock;
    let snap = store.snapshot_at(cut_ts).expect("full log");
    let good = record_cut(&adt, &snap);
    assert!(check_snapshot_consistency(&adt, &trace, std::slice::from_ref(&good)).holds());

    // Inject the tear: graft an update stamped after the cut into one
    // recorded key.
    let mut torn = good;
    let late = trace
        .iter()
        .find(|u| u.clock > cut_ts)
        .expect("updates beyond the cut");
    for (key, state) in &mut torn.states {
        if *key == late.key {
            adt.apply(state, &late.update);
        }
    }
    let v = check_snapshot_consistency(&adt, &trace, &[torn]);
    assert!(v.fails(), "the injected tear must be flagged, got {v:?}");
}

/// Pool cut barrier under live concurrent ingest: producers increment
/// key 0 *then* key 1 in lockstep, so any un-torn cut satisfies
/// `count(key0) − count(key1) ∈ [0, producers]`. Workers keep
/// ingesting throughout — the cut never stops the pool.
#[test]
fn pool_cut_barrier_under_concurrent_ingest_is_untorn() {
    const PRODUCERS: usize = 3;
    let store: UcStore<CounterAdt, CheckpointFactory> =
        UcStore::new(CounterAdt, 0, 8, CheckpointFactory { every: 8 });
    let pool = store.into_pool(PoolConfig {
        workers: 4,
        queue_depth: 32,
        ..PoolConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|_| {
            let h = pool.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.update(0, CounterUpdate::Add(1)).unwrap();
                    h.update(1, CounterUpdate::Add(1)).unwrap();
                    n += 1;
                }
                n
            })
        })
        .collect();
    let handle = pool.handle();
    let mut last_cut = 0;
    for _ in 0..40 {
        let snap = handle.consistent_snapshot().expect("live pool");
        assert!(snap.cut() > last_cut, "cuts advance with the clock");
        last_cut = snap.cut();
        let a = snap.query(0, &CounterQuery::Read);
        let b = snap.query(1, &CounterQuery::Read);
        assert!(
            a >= b && a - b <= PRODUCERS as i64,
            "torn cut at {}: key0 = {a}, key1 = {b}",
            snap.cut()
        );
    }
    stop.store(true, Ordering::Relaxed);
    let rounds: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(rounds > 0);
    // After quiescing, the final snapshot equals the full totals.
    let snap = handle.consistent_snapshot().expect("live pool");
    assert_eq!(snap.query(0, &CounterQuery::Read), rounds as i64);
    assert_eq!(snap.query(1, &CounterQuery::Read), rounds as i64);
    let mut store = pool.finish().unwrap();
    assert_eq!(store.materialize_key(0), rounds as i64);
}

/// The pool's snapshot agrees with the sequential store's on the same
/// delivered schedule, and a cut below a pooled GC store's compaction
/// bound surfaces `SnapshotError::Cut`.
#[test]
fn pool_snapshot_matches_sequential_store() {
    let mut rng = SplitMix64::new(0x9E0);
    let adt = SetAdt::<u32>::new();
    let gen = |rng: &mut SplitMix64| {
        let v = (rng.next_u64() % 8) as u32;
        if rng.next_u64().is_multiple_of(3) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        }
    };
    let streams = produce_streams(&adt, &mut rng, gen);
    let msgs: Vec<_> = streams.iter().flatten().cloned().collect();

    let mut seq: UcStore<SetAdt<u32>, CheckpointFactory> =
        UcStore::new(SetAdt::new(), 0, 4, CheckpointFactory { every: 4 });
    for chunk in msgs.chunks(7) {
        seq.apply_batch(chunk);
    }
    let mut pool =
        UcStore::new(SetAdt::new(), 0, 4, CheckpointFactory { every: 4 }).into_pool(PoolConfig {
            workers: 3,
            ..PoolConfig::default()
        });
    for chunk in msgs.chunks(7) {
        pool.submit_batch(chunk.to_vec()).unwrap();
    }
    pool.flush().unwrap();
    // Same delivered prefix ⟹ identical cuts at every timestamp.
    let top = seq.clock();
    for cut in [0, top / 3, top / 2, top] {
        let s = seq.snapshot_at(cut).expect("full log");
        let p = pool.snapshot_at(cut).expect("flushed pool");
        assert_eq!(s.cut(), p.cut());
        for k in 0..KEYS {
            assert_eq!(
                s.state(k),
                p.state(k),
                "pool vs sequential diverged at cut {cut}, key {k}"
            );
        }
    }
    drop(pool);
}

/// Satellite: first-snapshot-query cost is per-shard, not whole-store.
/// On a 10k-key store only the armed shard backfills, bounding the
/// publication work triggered by a single cold snapshot read.
#[test]
fn first_snapshot_query_backfills_only_the_armed_shard() {
    const TOTAL_KEYS: u64 = 10_000;
    const SHARDS: usize = 64;
    let store: UcStore<SetAdt<u32>, CheckpointFactory> =
        UcStore::new(SetAdt::new(), 0, SHARDS, CheckpointFactory { every: 32 });
    let mut pool = store.into_pool(PoolConfig {
        workers: 4,
        ..PoolConfig::default()
    });
    for k in 0..TOTAL_KEYS {
        pool.update(k, SetUpdate::Insert(1)).unwrap();
    }
    pool.flush().unwrap();
    assert_eq!(
        pool.stats().total_snapshots_published(),
        0,
        "nothing armed, nothing published"
    );

    // One cold snapshot read arms exactly one shard; the next barrier
    // backfills it.
    let probe = 4321;
    let _ = pool.query_snapshot(probe, &SetQuery::Read);
    pool.flush().unwrap();
    let published = pool.stats().total_snapshots_published();
    let per_shard_budget = (TOTAL_KEYS / SHARDS as u64) * 4;
    assert!(published > 0, "the armed shard must backfill");
    assert!(
        published <= per_shard_budget,
        "backfill published {published} keys — per-shard arming should \
         bound it near {} (whole-store backfill would be {TOTAL_KEYS})",
        TOTAL_KEYS / SHARDS as u64
    );
    // And the armed key now answers from its published state.
    let out = pool.query_snapshot(probe, &SetQuery::Read);
    assert!(out.contains(&1), "backfilled key answers post-flush");

    // The wait-free multi-read spans keys and eras without blocking.
    let reqs: Vec<(Key, SetQuery)> = (0..10).map(|k| (k * 997, SetQuery::Read)).collect();
    let outs = pool.query_snapshot_multi(&reqs);
    assert_eq!(outs.len(), reqs.len());
    drop(pool);
}
