//! Differential tests for the sharded multi-object store: under
//! randomized out-of-order, duplicated, and batched keyed delivery,
//! every per-key state of a [`UcStore`] must equal a single-object
//! naive-replay reference fed the same key's messages — for all four
//! repair strategies — and the store must converge identically under
//! both `uc-sim` runtimes.
//!
//! Schedules come from the workspace's seeded PRNG
//! ([`uc_sim::SplitMix64`]) so failures replay exactly. As in the
//! single-object differential test, the full-log strategies are driven
//! by arbitrarily shuffled schedules with duplicates, while the GC
//! strategy (sound only under reliable broadcast) gets per-sender FIFO
//! interleaving with mid-run heartbeats.

mod common;

use std::collections::{BTreeSet, HashMap, VecDeque};
use uc_core::{
    CheckpointFactory, GcFactory, GenericReplica, Key, NaiveFactory, StoreInput, StoreMsg,
    StoreOutput, StrategyFactory, UcStore, UndoFactory,
};
use uc_sim::{
    DeliveryMode, KeyedWorkloadSpec, LatencyModel, Pid, SetOpKind, SimConfig, Simulation,
    SplitMix64, ThreadedCluster,
};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Msg = StoreMsg<SetUpdate<u32>>;
type Adt = SetAdt<u32>;

const KEYS: u64 = 5;

/// Two producer stores (pids 1, 2) issue keyed updates and
/// occasionally observe each other, so timestamps interleave across
/// keys and producers. Returns one FIFO stream per producer.
fn produce_streams(rng: &mut SplitMix64, producers: usize) -> Vec<Vec<Msg>> {
    let mut peers: Vec<UcStore<Adt, NaiveFactory>> = (0..producers)
        .map(|i| UcStore::new(SetAdt::new(), i as u32 + 1, 2, NaiveFactory))
        .collect();
    let mut streams: Vec<Vec<Msg>> = vec![Vec::new(); producers];
    let total = 30 + (rng.next_u64() % 40) as usize;
    for _ in 0..total {
        let p = (rng.next_u64() % producers as u64) as usize;
        let key = rng.next_u64() % KEYS;
        let v = (rng.next_u64() % 8) as u32;
        let u = if rng.next_u64().is_multiple_of(3) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let m = peers[p].update(key, u);
        if producers > 1 && rng.next_u64().is_multiple_of(2) {
            let q = (rng.next_u64() % producers as u64) as usize;
            if q != p {
                peers[q].apply_message(&m);
            }
        }
        streams[p].push(m);
    }
    streams
}

/// Shuffle and duplicate the flattened streams (full-log strategies
/// tolerate arbitrary reordering and redelivery).
fn shuffled_schedule(rng: &mut SplitMix64, streams: &[Vec<Msg>]) -> Vec<Msg> {
    common::shuffle_with_dups(rng, streams.iter().flatten().cloned().collect())
}

/// Per-key single-object naive references, fed every update for their
/// key exactly once (reference semantics are order-independent).
fn references(streams: &[Vec<Msg>]) -> HashMap<Key, GenericReplica<Adt>> {
    let mut refs: HashMap<Key, GenericReplica<Adt>> = HashMap::new();
    for m in streams.iter().flatten() {
        let StoreMsg::Update { key, msg } = m else {
            panic!("producers only emit updates");
        };
        refs.entry(*key)
            .or_insert_with(|| GenericReplica::new(SetAdt::new(), 0))
            .on_deliver(msg);
    }
    refs
}

fn run_full_log<F>(factory: F, seed: u64)
where
    F: StrategyFactory<Adt>,
{
    let mut rng = SplitMix64::new(seed);
    let streams = produce_streams(&mut rng, 2);
    let sched = shuffled_schedule(&mut rng, &streams);
    let mut refs = references(&streams);

    let shards = 1 + (seed as usize % 4);
    let mut store = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory);
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 7) as usize;
        let chunk = &sched[i..sched.len().min(i + k)];
        i += chunk.len();
        if rng.next_u64().is_multiple_of(2) {
            store.apply_batch(chunk);
        } else {
            for m in chunk {
                store.apply_message(m);
            }
        }
        // Interim queries on a random key must match the reference's
        // fold of whatever prefix both have seen... the store may be
        // mid-schedule, so only final states are compared; here we
        // just exercise the query path for panics.
        let _ = store.query(rng.next_u64() % KEYS, &SetQuery::Read);
    }
    for k in 0..KEYS {
        let expect = refs
            .get_mut(&k)
            .map(|r| r.materialize())
            .unwrap_or_default();
        assert_eq!(
            store.materialize_key(k),
            expect,
            "key {k} diverged, seed {seed}"
        );
    }
}

#[test]
fn store_matches_per_key_reference_naive() {
    for seed in 0..25 {
        run_full_log(NaiveFactory, seed);
    }
}

#[test]
fn store_matches_per_key_reference_checkpoint() {
    for seed in 0..25 {
        run_full_log(
            CheckpointFactory {
                every: 1 + (seed as usize % 7),
            },
            seed,
        );
    }
}

#[test]
fn store_matches_per_key_reference_undo() {
    for seed in 0..25 {
        run_full_log(UndoFactory, seed);
    }
}

#[test]
fn gc_store_matches_per_key_reference_under_fifo_delivery() {
    for seed in 0..25 {
        let mut rng = SplitMix64::new(0x6C_5EED ^ seed);
        let streams = produce_streams(&mut rng, 2);
        let mut refs = references(&streams);
        let cluster = 3; // two producers + the store under test
        let mut store: UcStore<Adt, GcFactory> =
            UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: cluster });
        let mut queues: Vec<VecDeque<Msg>> = streams
            .iter()
            .map(|s| s.iter().cloned().collect())
            .collect();
        while queues.iter().any(|q| !q.is_empty()) {
            let p = (rng.next_u64() % queues.len() as u64) as usize;
            let take = 1 + (rng.next_u64() % 5) as usize;
            let mut burst: Vec<Msg> = Vec::new();
            for _ in 0..take {
                match queues[p].pop_front() {
                    Some(m) => burst.push(m),
                    None => break,
                }
            }
            if burst.is_empty() {
                continue;
            }
            if rng.next_u64().is_multiple_of(2) {
                store.apply_batch(&burst);
            } else {
                for m in &burst {
                    store.apply_message(m);
                }
            }
            // The producer heartbeats its delivered prefix (safe under
            // FIFO) so compaction runs concurrently with delivery.
            if rng.next_u64().is_multiple_of(3) {
                let StoreMsg::Update { msg, .. } = burst.last().expect("nonempty") else {
                    panic!()
                };
                store.apply_message(&StoreMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: msg.ts.clock,
                });
            }
        }
        // Full stability: everyone announces a final clock, then
        // maintenance compacts; semantics must survive.
        for pid in 0..cluster as u32 {
            store.apply_message(&StoreMsg::Heartbeat {
                pid,
                clock: store.clock(),
            });
        }
        store.tick_maintenance();
        let retained = store.total_log_len();
        let total: usize = streams.iter().map(Vec::len).sum();
        assert!(
            retained < total,
            "full heartbeat coverage must compact something, seed {seed}"
        );
        for k in 0..KEYS {
            let expect = refs
                .get_mut(&k)
                .map(|r| r.materialize())
                .unwrap_or_default();
            assert_eq!(
                store.materialize_key(k),
                expect,
                "gc key {k} diverged, seed {seed}"
            );
        }
    }
}

/// The store as a `Protocol` node under the deterministic simulator,
/// driven by the keyed zipfian workload generator, with batched
/// delivery: all replicas converge per key to the same state.
#[test]
fn store_converges_under_discrete_event_simulation() {
    let spec = KeyedWorkloadSpec {
        processes: 3,
        ops_per_process: 40,
        keys: 8,
        key_alpha: 1.0,
        update_ratio: 1.0,
        ..Default::default()
    };
    let ops = uc_sim::generate_keyed(&spec);
    type Node = UcStore<Adt, CheckpointFactory>;
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n: 3,
            seed: 77,
            latency: LatencyModel::Uniform(5, 90),
            fifo_links: false,
        },
        |pid| UcStore::new(SetAdt::new(), pid, 4, CheckpointFactory { every: 8 }),
    );
    sim.set_delivery_mode(DeliveryMode::Batched { window: 25 });
    for op in &ops {
        let input = match op.kind {
            SetOpKind::Insert(e) => StoreInput::Update(op.key, SetUpdate::Insert(e as u32)),
            SetOpKind::Delete(e) => StoreInput::Update(op.key, SetUpdate::Delete(e as u32)),
            SetOpKind::Read => StoreInput::Query(op.key, SetQuery::Read),
        };
        sim.schedule_invoke(op.time, op.pid, input);
    }
    sim.run_to_quiescence();
    let keys: Vec<Key> = sim.process(0).keys();
    assert!(!keys.is_empty());
    for k in 0..spec.keys as u64 {
        let s0 = sim.process_mut(0).materialize_key(k);
        for p in 1..3 {
            assert_eq!(s0, sim.process_mut(p).materialize_key(k), "key {k}");
        }
    }
    assert!(
        sim.metrics.batches_delivered > 0,
        "the run must exercise per-shard batched delivery"
    );
}

/// The store on the threaded runtime: real concurrency, greedy inbox
/// batching, convergence per key after quiescence.
#[test]
fn store_converges_on_the_threaded_cluster() {
    let n = 3;
    type Node = UcStore<Adt, CheckpointFactory>;
    let cluster: ThreadedCluster<Node> = ThreadedCluster::spawn(n, |pid| {
        UcStore::new(SetAdt::new(), pid, 4, CheckpointFactory { every: 8 })
    });
    let mut rng = SplitMix64::new(0x7EADED);
    for i in 0..120u32 {
        let pid = (i % n as u32) as Pid;
        let key = rng.next_u64() % 6;
        let v = (rng.next_u64() % 10) as u32;
        let u = if rng.next_u64().is_multiple_of(4) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let out = cluster.invoke(pid, StoreInput::Update(key, u));
        assert!(matches!(out, StoreOutput::Ack { .. }));
        if i % 31 == 0 {
            // Mid-run keyed queries are wait-free and local.
            let StoreOutput::Value { .. } =
                cluster.invoke(pid, StoreInput::Query(key, SetQuery::Read))
            else {
                panic!("query answered with ack");
            };
        }
    }
    let mut nodes = cluster.shutdown();
    let keys: BTreeSet<Key> = nodes.iter().flat_map(|s| s.keys()).collect();
    assert!(!keys.is_empty());
    let mut split = nodes.split_off(1);
    let first = &mut nodes[0];
    for k in keys {
        let expect = first.materialize_key(k);
        for (i, node) in split.iter_mut().enumerate() {
            assert_eq!(expect, node.materialize_key(k), "node {} key {k}", i + 1);
        }
    }
}
