//! Differential tests for the sharded multi-object store: under
//! randomized out-of-order, duplicated, and batched keyed delivery,
//! every per-key state of a [`UcStore`] must equal a single-object
//! naive-replay reference fed the same key's messages — for all four
//! repair strategies — and the store must converge identically under
//! both `uc-sim` runtimes.
//!
//! Schedules come from the workspace's seeded PRNG
//! ([`uc_sim::SplitMix64`]) so failures replay exactly. As in the
//! single-object differential test, the full-log strategies are driven
//! by arbitrarily shuffled schedules with duplicates, while the GC
//! strategy (sound only under reliable broadcast) gets per-sender FIFO
//! interleaving with mid-run heartbeats.

mod common;

use std::collections::{BTreeSet, HashMap, VecDeque};
use uc_core::{
    CheckpointFactory, GcFactory, GenericReplica, Key, NaiveFactory, PoolConfig, StoreInput,
    StoreMsg, StoreOutput, StrategyFactory, UcStore, UndoFactory,
};
use uc_sim::{
    DeliveryMode, KeyedWorkloadSpec, LatencyModel, Pid, SetOpKind, SimConfig, Simulation,
    SplitMix64, ThreadedCluster,
};
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Msg = StoreMsg<SetUpdate<u32>>;
type Adt = SetAdt<u32>;

const KEYS: u64 = 5;

/// Two producer stores (pids 1, 2) issue keyed updates and
/// occasionally observe each other, so timestamps interleave across
/// keys and producers. Returns one FIFO stream per producer.
fn produce_streams(rng: &mut SplitMix64, producers: usize) -> Vec<Vec<Msg>> {
    let mut peers: Vec<UcStore<Adt, NaiveFactory>> = (0..producers)
        .map(|i| UcStore::new(SetAdt::new(), i as u32 + 1, 2, NaiveFactory))
        .collect();
    let mut streams: Vec<Vec<Msg>> = vec![Vec::new(); producers];
    let total = 30 + (rng.next_u64() % 40) as usize;
    for _ in 0..total {
        let p = (rng.next_u64() % producers as u64) as usize;
        let key = rng.next_u64() % KEYS;
        let v = (rng.next_u64() % 8) as u32;
        let u = if rng.next_u64().is_multiple_of(3) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let m = peers[p].update(key, u);
        if producers > 1 && rng.next_u64().is_multiple_of(2) {
            let q = (rng.next_u64() % producers as u64) as usize;
            if q != p {
                peers[q].apply_message(&m);
            }
        }
        streams[p].push(m);
    }
    streams
}

/// Shuffle and duplicate the flattened streams (full-log strategies
/// tolerate arbitrary reordering and redelivery).
fn shuffled_schedule(rng: &mut SplitMix64, streams: &[Vec<Msg>]) -> Vec<Msg> {
    common::shuffle_with_dups(rng, streams.iter().flatten().cloned().collect())
}

/// Per-key single-object naive references, fed every update for their
/// key exactly once (reference semantics are order-independent).
fn references(streams: &[Vec<Msg>]) -> HashMap<Key, GenericReplica<Adt>> {
    let mut refs: HashMap<Key, GenericReplica<Adt>> = HashMap::new();
    for m in streams.iter().flatten() {
        let StoreMsg::Update { key, msg } = m else {
            panic!("producers only emit updates");
        };
        refs.entry(*key)
            .or_insert_with(|| GenericReplica::new(SetAdt::new(), 0))
            .on_deliver(msg);
    }
    refs
}

fn run_full_log<F>(factory: F, seed: u64)
where
    F: StrategyFactory<Adt>,
{
    let mut rng = SplitMix64::new(seed);
    let streams = produce_streams(&mut rng, 2);
    let sched = shuffled_schedule(&mut rng, &streams);
    let mut refs = references(&streams);

    let shards = 1 + (seed as usize % 4);
    let mut store = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory);
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 7) as usize;
        let chunk = &sched[i..sched.len().min(i + k)];
        i += chunk.len();
        if rng.next_u64().is_multiple_of(2) {
            store.apply_batch(chunk);
        } else {
            for m in chunk {
                store.apply_message(m);
            }
        }
        // Interim queries on a random key must match the reference's
        // fold of whatever prefix both have seen... the store may be
        // mid-schedule, so only final states are compared; here we
        // just exercise the query path for panics.
        let _ = store.query(rng.next_u64() % KEYS, &SetQuery::Read);
    }
    for k in 0..KEYS {
        let expect = refs
            .get_mut(&k)
            .map(|r| r.materialize())
            .unwrap_or_default();
        assert_eq!(
            store.materialize_key(k),
            expect,
            "key {k} diverged, seed {seed}"
        );
    }
}

#[test]
fn store_matches_per_key_reference_naive() {
    for seed in 0..25 {
        run_full_log(NaiveFactory, seed);
    }
}

#[test]
fn store_matches_per_key_reference_checkpoint() {
    for seed in 0..25 {
        run_full_log(
            CheckpointFactory {
                every: 1 + (seed as usize % 7),
            },
            seed,
        );
    }
}

#[test]
fn store_matches_per_key_reference_undo() {
    for seed in 0..25 {
        run_full_log(UndoFactory, seed);
    }
}

#[test]
fn gc_store_matches_per_key_reference_under_fifo_delivery() {
    for seed in 0..25 {
        let mut rng = SplitMix64::new(0x6C_5EED ^ seed);
        let streams = produce_streams(&mut rng, 2);
        let mut refs = references(&streams);
        let cluster = 3; // two producers + the store under test
        let mut store: UcStore<Adt, GcFactory> =
            UcStore::new(SetAdt::new(), 0, 2, GcFactory { n: cluster });
        let mut queues: Vec<VecDeque<Msg>> = streams
            .iter()
            .map(|s| s.iter().cloned().collect())
            .collect();
        while queues.iter().any(|q| !q.is_empty()) {
            let p = (rng.next_u64() % queues.len() as u64) as usize;
            let take = 1 + (rng.next_u64() % 5) as usize;
            let mut burst: Vec<Msg> = Vec::new();
            for _ in 0..take {
                match queues[p].pop_front() {
                    Some(m) => burst.push(m),
                    None => break,
                }
            }
            if burst.is_empty() {
                continue;
            }
            if rng.next_u64().is_multiple_of(2) {
                store.apply_batch(&burst);
            } else {
                for m in &burst {
                    store.apply_message(m);
                }
            }
            // The producer heartbeats its delivered prefix (safe under
            // FIFO) so compaction runs concurrently with delivery.
            if rng.next_u64().is_multiple_of(3) {
                let StoreMsg::Update { msg, .. } = burst.last().expect("nonempty") else {
                    panic!()
                };
                store.apply_message(&StoreMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: msg.ts.clock,
                });
            }
        }
        // Full stability: everyone announces a final clock, then
        // maintenance compacts; semantics must survive.
        for pid in 0..cluster as u32 {
            store.apply_message(&StoreMsg::Heartbeat {
                pid,
                clock: store.clock(),
            });
        }
        store.tick_maintenance();
        let retained = store.total_log_len();
        let total: usize = streams.iter().map(Vec::len).sum();
        assert!(
            retained < total,
            "full heartbeat coverage must compact something, seed {seed}"
        );
        for k in 0..KEYS {
            let expect = refs
                .get_mut(&k)
                .map(|r| r.materialize())
                .unwrap_or_default();
            assert_eq!(
                store.materialize_key(k),
                expect,
                "gc key {k} diverged, seed {seed}"
            );
        }
    }
}

/// The three ingest paths — sequential [`UcStore::apply_batch`],
/// scoped-thread [`UcStore::apply_batch_scoped`], and the persistent
/// [`IngestPool`](uc_core::IngestPool) — must be *indistinguishable*:
/// identical per-key states, clock, and repair event/step counters
/// under randomized shuffled, duplicated, and chunked schedules.
fn run_ingest_paths<F>(factory: F, seed: u64)
where
    F: StrategyFactory<Adt> + Send + Sync + 'static,
    F::Strategy: Send + Sync + 'static,
{
    let mut rng = SplitMix64::new(0x900C ^ seed);
    let streams = produce_streams(&mut rng, 2);
    let sched = shuffled_schedule(&mut rng, &streams);
    // Random chunking shared by all three paths (batch boundaries
    // change which messages merge together, so they must match for
    // the repair counters to be comparable).
    let mut chunks: Vec<Vec<Msg>> = Vec::new();
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 9) as usize;
        let chunk = sched[i..sched.len().min(i + k)].to_vec();
        i += chunk.len();
        chunks.push(chunk);
    }

    let shards = 1 + (seed as usize % 4);
    let mut seq = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory.clone());
    for c in &chunks {
        seq.apply_batch(c);
    }
    let mut scoped = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory.clone());
    for c in &chunks {
        scoped.apply_batch_scoped(c);
    }
    let workers = 1 + (seed as usize % 3);
    let mut pool = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory).into_pool(PoolConfig {
        workers,
        queue_depth: 4,
        ..PoolConfig::default()
    });
    for c in &chunks {
        pool.submit_batch(c.clone()).unwrap();
    }
    let mut pooled = pool.finish().unwrap();

    assert_eq!(seq.clock(), scoped.clock(), "scoped clock, seed {seed}");
    assert_eq!(seq.clock(), pooled.clock(), "pool clock, seed {seed}");
    assert_eq!(
        seq.total_repair_events(),
        scoped.total_repair_events(),
        "scoped repair events, seed {seed}"
    );
    assert_eq!(
        seq.total_repair_events(),
        pooled.total_repair_events(),
        "pool repair events, seed {seed}"
    );
    assert_eq!(
        seq.total_repair_steps(),
        scoped.total_repair_steps(),
        "scoped repair steps, seed {seed}"
    );
    assert_eq!(
        seq.total_repair_steps(),
        pooled.total_repair_steps(),
        "pool repair steps, seed {seed}"
    );
    assert_eq!(seq.keys(), scoped.keys(), "scoped keys, seed {seed}");
    assert_eq!(seq.keys(), pooled.keys(), "pool keys, seed {seed}");
    for k in seq.keys() {
        let expect = seq.materialize_key(k);
        assert_eq!(
            expect,
            scoped.materialize_key(k),
            "scoped key {k}, seed {seed}"
        );
        assert_eq!(
            expect,
            pooled.materialize_key(k),
            "pool key {k}, seed {seed}"
        );
    }
}

#[test]
fn pool_and_scoped_ingest_match_sequential_naive() {
    for seed in 0..15 {
        run_ingest_paths(NaiveFactory, seed);
    }
}

#[test]
fn pool_and_scoped_ingest_match_sequential_checkpoint() {
    for seed in 0..15 {
        run_ingest_paths(
            CheckpointFactory {
                every: 1 + (seed as usize % 7),
            },
            seed,
        );
    }
}

#[test]
fn pool_and_scoped_ingest_match_sequential_undo() {
    for seed in 0..15 {
        run_ingest_paths(UndoFactory, seed);
    }
}

#[test]
fn pool_and_scoped_ingest_match_sequential_gc() {
    // GC is sound only under per-sender FIFO, so the schedule here
    // interleaves the two producers' streams chunk-wise (no shuffle,
    // no dups) and heartbeats only delivered prefixes — mid-run
    // partial stability exercises the pool's heartbeat broadcast
    // sweep, and a full heartbeat round at the end compacts.
    for seed in 0..15 {
        let mut rng = SplitMix64::new(0xD1FF ^ seed);
        let streams = produce_streams(&mut rng, 2);
        let mut queues: Vec<VecDeque<Msg>> = streams
            .iter()
            .map(|s| s.iter().cloned().collect())
            .collect();
        let mut chunks: Vec<Vec<Msg>> = Vec::new();
        let mut max_clock = 0;
        while queues.iter().any(|q| !q.is_empty()) {
            let p = (rng.next_u64() % queues.len() as u64) as usize;
            let take = 1 + (rng.next_u64() % 4) as usize;
            let mut chunk: Vec<Msg> = Vec::new();
            for _ in 0..take {
                match queues[p].pop_front() {
                    Some(m) => chunk.push(m),
                    None => break,
                }
            }
            if chunk.is_empty() {
                continue;
            }
            // Heartbeat the delivered prefix (safe under FIFO).
            let StoreMsg::Update { msg, .. } = chunk.last().expect("nonempty") else {
                panic!("producers only emit updates");
            };
            max_clock = max_clock.max(msg.ts.clock);
            if rng.next_u64().is_multiple_of(3) {
                let hb = StoreMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: msg.ts.clock,
                };
                chunk.push(hb);
            }
            chunks.push(chunk);
        }
        // Final full-coverage heartbeat round: everyone (including
        // the consumer, pid 0) announces the top clock, so stability
        // covers the whole history and maintenance compacts.
        chunks.push(
            (0..3u32)
                .map(|pid| StoreMsg::Heartbeat {
                    pid,
                    clock: max_clock,
                })
                .collect(),
        );

        let factory = GcFactory { n: 3 };
        let mut seq = UcStore::new(SetAdt::<u32>::new(), 0, 3, factory);
        for c in &chunks {
            seq.apply_batch(c);
        }
        seq.tick_maintenance();
        let mut pool = UcStore::new(SetAdt::<u32>::new(), 0, 3, factory).into_pool(PoolConfig {
            workers: 2,
            queue_depth: 4,
            ..PoolConfig::default()
        });
        for c in &chunks {
            pool.submit_batch(c.clone()).unwrap();
        }
        pool.tick_maintenance().unwrap();
        let mut pooled = pool.finish().unwrap();
        let total: usize = streams.iter().map(Vec::len).sum();
        assert!(
            pooled.total_log_len() < total,
            "full heartbeat coverage must compact, seed {seed}"
        );
        assert_eq!(
            seq.total_log_len(),
            pooled.total_log_len(),
            "gc compaction diverged, seed {seed}"
        );
        for k in 0..KEYS {
            assert_eq!(
                seq.materialize_key(k),
                pooled.materialize_key(k),
                "gc pool key {k}, seed {seed}"
            );
        }
    }
}

/// The store as a `Protocol` node under the deterministic simulator,
/// driven by the keyed zipfian workload generator, with batched
/// delivery: all replicas converge per key to the same state.
#[test]
fn store_converges_under_discrete_event_simulation() {
    let spec = KeyedWorkloadSpec {
        processes: 3,
        ops_per_process: 40,
        keys: 8,
        key_alpha: 1.0,
        update_ratio: 1.0,
        ..Default::default()
    };
    let ops = uc_sim::generate_keyed(&spec);
    type Node = UcStore<Adt, CheckpointFactory>;
    let mut sim: Simulation<Node> = Simulation::new(
        SimConfig {
            n: 3,
            seed: 77,
            latency: LatencyModel::Uniform(5, 90),
            fifo_links: false,
        },
        |pid| UcStore::new(SetAdt::new(), pid, 4, CheckpointFactory { every: 8 }),
    );
    sim.set_delivery_mode(DeliveryMode::Batched { window: 25 });
    for op in &ops {
        let input = match op.kind {
            SetOpKind::Insert(e) => StoreInput::Update(op.key, SetUpdate::Insert(e as u32)),
            SetOpKind::Delete(e) => StoreInput::Update(op.key, SetUpdate::Delete(e as u32)),
            SetOpKind::Read => StoreInput::Query(op.key, SetQuery::Read),
            SetOpKind::SnapshotRead => StoreInput::Snapshot(
                (op.key..op.key + 3)
                    .map(|k| (k % spec.keys as u64, SetQuery::Read))
                    .collect(),
            ),
        };
        sim.schedule_invoke(op.time, op.pid, input);
    }
    sim.run_to_quiescence();
    let keys: Vec<Key> = sim.process(0).keys();
    assert!(!keys.is_empty());
    for k in 0..spec.keys as u64 {
        let s0 = sim.process_mut(0).materialize_key(k);
        for p in 1..3 {
            assert_eq!(s0, sim.process_mut(p).materialize_key(k), "key {k}");
        }
    }
    assert!(
        sim.metrics.batches_delivered > 0,
        "the run must exercise per-shard batched delivery"
    );
}

/// The store on the threaded runtime: real concurrency, greedy inbox
/// batching, convergence per key after quiescence.
#[test]
fn store_converges_on_the_threaded_cluster() {
    let n = 3;
    type Node = UcStore<Adt, CheckpointFactory>;
    let cluster: ThreadedCluster<Node> = ThreadedCluster::spawn(n, |pid| {
        UcStore::new(SetAdt::new(), pid, 4, CheckpointFactory { every: 8 })
    });
    let mut rng = SplitMix64::new(0x7EADED);
    for i in 0..120u32 {
        let pid = (i % n as u32) as Pid;
        let key = rng.next_u64() % 6;
        let v = (rng.next_u64() % 10) as u32;
        let u = if rng.next_u64().is_multiple_of(4) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let out = cluster.invoke(pid, StoreInput::Update(key, u));
        assert!(matches!(out, StoreOutput::Ack { .. }));
        if i % 31 == 0 {
            // Mid-run keyed queries are wait-free and local.
            let StoreOutput::Value { .. } =
                cluster.invoke(pid, StoreInput::Query(key, SetQuery::Read))
            else {
                panic!("query answered with ack");
            };
        }
    }
    let mut nodes = cluster.shutdown();
    let keys: BTreeSet<Key> = nodes.iter().flat_map(|s| s.keys()).collect();
    assert!(!keys.is_empty());
    let mut split = nodes.split_off(1);
    let first = &mut nodes[0];
    for k in keys {
        let expect = first.materialize_key(k);
        for (i, node) in split.iter_mut().enumerate() {
            assert_eq!(expect, node.materialize_key(k), "node {} key {k}", i + 1);
        }
    }
}

/// Store bursts delivered *through the pool* on the threaded runtime:
/// every cluster node is an [`IngestPool`](uc_core::IngestPool) whose
/// shard workers ingest concurrently with the node's own message
/// loop; the bounded inbox drain keeps each flushed burst within the
/// pool's queue backpressure. After quiescence, every replica's
/// reassembled store converges per key.
#[test]
fn pooled_store_converges_on_the_threaded_cluster() {
    let n = 3;
    type Node = uc_core::IngestPool<Adt, CheckpointFactory>;
    let cluster: ThreadedCluster<Node> = ThreadedCluster::spawn_bounded(n, 16, |pid| {
        UcStore::new(SetAdt::new(), pid, 4, CheckpointFactory { every: 8 }).into_pool(PoolConfig {
            workers: 2,
            queue_depth: 8,
            ..PoolConfig::default()
        })
    });
    let mut rng = SplitMix64::new(0x700_1ED_F00);
    for i in 0..150u32 {
        let pid = (i % n as u32) as Pid;
        let key = rng.next_u64() % 6;
        let v = (rng.next_u64() % 10) as u32;
        let u = if rng.next_u64().is_multiple_of(4) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let out = cluster.invoke(pid, StoreInput::Update(key, u));
        assert!(matches!(out, StoreOutput::Ack { .. }));
        if i % 23 == 0 {
            let StoreOutput::Value { .. } =
                cluster.invoke(pid, StoreInput::Query(key, SetQuery::Read))
            else {
                panic!("query answered with ack");
            };
        }
    }
    let pools = cluster.shutdown();
    let mut stores: Vec<UcStore<Adt, CheckpointFactory>> = pools
        .into_iter()
        .map(|p| p.finish().expect("no worker panicked"))
        .collect();
    let keys: BTreeSet<Key> = stores.iter().flat_map(UcStore::keys).collect();
    assert!(!keys.is_empty());
    let mut split = stores.split_off(1);
    let first = &mut stores[0];
    for k in keys {
        let expect = first.materialize_key(k);
        for (i, node) in split.iter_mut().enumerate() {
            assert_eq!(expect, node.materialize_key(k), "node {} key {k}", i + 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Backend differential: `MemBackend` vs `SegmentBackend`.
//
// The storage refactor's acceptance bar: persistence must be
// *semantically invisible*. A store journaling every update into
// on-disk CRC-framed segments has to produce identical per-key
// states, clocks, and repair event/step counts to the in-memory
// default under the same shuffled/duplicated/batched schedules — and
// after a kill (flush + drop) a reopened store must report per-key
// states, per-key engine clocks, and the store clock byte-identical
// to the in-memory store that never restarted.
// ---------------------------------------------------------------------------

use uc_storage::{ScratchDir, SegmentFactory};

/// Drive the same chunked schedule into an in-memory store and a
/// segment-backed store, assert they are indistinguishable, then kill
/// (flush + drop) the persistent one, reopen it from disk, and assert
/// the recovered store still matches the never-restarted reference.
fn run_backend_differential<F>(factory: F, chunks: &[Vec<Msg>], seed: u64, shards: usize)
where
    F: StrategyFactory<Adt>,
{
    let mut mem = UcStore::new(SetAdt::<u32>::new(), 0, shards, factory.clone());
    let tmp = ScratchDir::new(&format!("store-diff-{seed}"));
    let persist = SegmentFactory::at(tmp.path()).expect("scratch store");
    let mut seg: UcStore<Adt, F, SegmentFactory> = UcStore::with_persistence(
        SetAdt::<u32>::new(),
        0,
        shards,
        factory.clone(),
        persist.clone(),
    );
    let mut rng = SplitMix64::new(seed ^ 0xD15C);
    for c in chunks {
        if rng.next_u64().is_multiple_of(2) {
            mem.apply_batch(c);
            seg.apply_batch(c);
        } else {
            for m in c {
                mem.apply_message(m);
                seg.apply_message(m);
            }
        }
        // Queries tick the shared clock; issue them in lockstep so
        // the clock comparison stays exact.
        let k = rng.next_u64() % KEYS;
        assert_eq!(
            mem.query(k, &SetQuery::Read),
            seg.query(k, &SetQuery::Read),
            "live query diverged, seed {seed}"
        );
    }
    mem.tick_maintenance();
    seg.tick_maintenance();

    // Live differential: states, clocks, and repair accounting.
    assert_eq!(mem.keys(), seg.keys(), "keys, seed {seed}");
    assert_eq!(mem.clock(), seg.clock(), "store clock, seed {seed}");
    assert_eq!(
        mem.total_repair_events(),
        seg.total_repair_events(),
        "repair events, seed {seed}"
    );
    assert_eq!(
        mem.total_repair_steps(),
        seg.total_repair_steps(),
        "repair steps, seed {seed}"
    );
    assert_eq!(
        mem.total_log_len(),
        seg.total_log_len(),
        "retained log length, seed {seed}"
    );
    for k in mem.keys() {
        assert_eq!(
            mem.materialize_key(k),
            seg.materialize_key(k),
            "live key {k}, seed {seed}"
        );
    }

    // Kill and reopen: flush is the durability point, drop is the
    // kill (nothing buffered survives except what flush persisted).
    seg.flush_backends();
    drop(seg);
    let mut back: UcStore<Adt, F, SegmentFactory> =
        UcStore::reopen(SetAdt::<u32>::new(), 0, shards, factory, persist);
    assert_eq!(mem.keys(), back.keys(), "recovered keys, seed {seed}");
    assert_eq!(
        mem.clock(),
        back.clock(),
        "recovered store clock, seed {seed}"
    );
    for k in mem.keys() {
        assert_eq!(
            mem.materialize_key(k),
            back.materialize_key(k),
            "recovered key {k}, seed {seed}"
        );
        assert_eq!(
            mem.engine(k).expect("materialized").clock(),
            back.engine(k).expect("recovered").clock(),
            "recovered engine clock, key {k}, seed {seed}"
        );
    }
}

/// Shuffled + duplicated chunks for the full-log strategies.
fn full_log_chunks(seed: u64) -> (Vec<Vec<Msg>>, usize) {
    let mut rng = SplitMix64::new(seed);
    let streams = produce_streams(&mut rng, 2);
    let sched = shuffled_schedule(&mut rng, &streams);
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 9) as usize;
        let chunk = sched[i..sched.len().min(i + k)].to_vec();
        i += chunk.len();
        chunks.push(chunk);
    }
    (chunks, 1 + (seed as usize % 4))
}

#[test]
fn segment_backend_matches_mem_backend_naive() {
    for seed in 0..10 {
        let (chunks, shards) = full_log_chunks(0xBACD ^ seed);
        run_backend_differential(NaiveFactory, &chunks, seed, shards);
    }
}

#[test]
fn segment_backend_matches_mem_backend_checkpoint() {
    for seed in 0..10 {
        let (chunks, shards) = full_log_chunks(0xBACE ^ seed);
        run_backend_differential(
            CheckpointFactory {
                every: 1 + (seed as usize % 7),
            },
            &chunks,
            seed,
            shards,
        );
    }
}

#[test]
fn segment_backend_matches_mem_backend_undo() {
    for seed in 0..10 {
        let (chunks, shards) = full_log_chunks(0xBACF ^ seed);
        run_backend_differential(UndoFactory, &chunks, seed, shards);
    }
}

#[test]
fn segment_backend_matches_mem_backend_gc() {
    // GC is sound only under per-sender FIFO; interleave the producer
    // streams chunk-wise with prefix heartbeats (as in the pool's GC
    // differential), then a full heartbeat round so compaction — and
    // hence base-snapshot persistence — actually runs before the kill.
    for seed in 0..10 {
        let mut rng = SplitMix64::new(0x6C0D ^ seed);
        let streams = produce_streams(&mut rng, 2);
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut queues: Vec<VecDeque<Msg>> = streams
            .iter()
            .map(|s| s.iter().cloned().collect())
            .collect();
        let mut chunks: Vec<Vec<Msg>> = Vec::new();
        let mut max_clock = 0;
        while queues.iter().any(|q| !q.is_empty()) {
            let p = (rng.next_u64() % queues.len() as u64) as usize;
            let take = 1 + (rng.next_u64() % 4) as usize;
            let mut chunk: Vec<Msg> = Vec::new();
            for _ in 0..take {
                match queues[p].pop_front() {
                    Some(m) => chunk.push(m),
                    None => break,
                }
            }
            if chunk.is_empty() {
                continue;
            }
            let StoreMsg::Update { msg, .. } = chunk.last().expect("nonempty") else {
                panic!("producers only emit updates");
            };
            max_clock = max_clock.max(msg.ts.clock);
            if rng.next_u64().is_multiple_of(3) {
                chunk.push(StoreMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: msg.ts.clock,
                });
            }
            chunks.push(chunk);
        }
        chunks.push(
            (0..3u32)
                .map(|pid| StoreMsg::Heartbeat {
                    pid,
                    clock: max_clock,
                })
                .collect(),
        );
        let tmp_probe = {
            // Sanity: the schedule must actually compact (otherwise
            // the reopen path would never exercise base snapshots).
            let mut probe = UcStore::new(SetAdt::<u32>::new(), 0, 2, GcFactory { n: 3 });
            for c in &chunks {
                probe.apply_batch(c);
            }
            probe.tick_maintenance();
            probe.total_log_len()
        };
        assert!(
            tmp_probe < total,
            "schedule must compact something, seed {seed}"
        );
        run_backend_differential(GcFactory { n: 3 }, &chunks, seed, 2);
    }
}
