//! Differential test: all four repair strategies must be
//! observationally equivalent to the naive-replay reference under
//! randomized out-of-order, duplicated, and batched delivery
//! schedules.
//!
//! The engine refactor makes the four variants share everything except
//! their [`uc_core::RepairStrategy`]; this test is the fence that
//! keeps a strategy bug from silently forking semantics. Schedules are
//! generated from the workspace's own seeded PRNG
//! ([`uc_sim::SplitMix64`]), so failures replay exactly.
//!
//! The full-log strategies (naive, checkpoint, undo) are driven by a
//! single arbitrarily shuffled schedule with ~20% duplicated
//! deliveries. The GC strategy's stability tracking is only sound
//! under the paper's reliable-broadcast model (per-sender FIFO,
//! exactly-once), so it gets its own schedule: random interleaving
//! *across* senders, order preserved *within* each sender, with
//! mid-run heartbeats to force compaction concurrent with delivery —
//! checked in lockstep against a naive reference fed identically.

mod common;

use std::collections::VecDeque;
use uc_core::{
    state_digest, CachedReplica, GcMsg, GcReplica, GenericReplica, Replica, UndoReplica, UpdateMsg,
};
use uc_sim::SplitMix64;
use uc_spec::{SetAdt, SetQuery, SetUpdate};

type Msg = UpdateMsg<SetUpdate<u32>>;

/// Produce concurrent update streams from `producers` replicas that
/// occasionally observe each other (overlapping clocks → plenty of
/// timestamp interleaving). Returns one FIFO stream per producer.
fn produce_streams(rng: &mut SplitMix64, producers: usize) -> Vec<Vec<Msg>> {
    let mut peers: Vec<GenericReplica<SetAdt<u32>>> = (0..producers)
        .map(|i| GenericReplica::new(SetAdt::new(), i as u32 + 1))
        .collect();
    let mut streams: Vec<Vec<Msg>> = vec![Vec::new(); producers];
    let total = 20 + (rng.next_u64() % 30) as usize;
    for _ in 0..total {
        let p = (rng.next_u64() % producers as u64) as usize;
        let v = (rng.next_u64() % 8) as u32;
        let u = if rng.next_u64().is_multiple_of(3) {
            SetUpdate::Delete(v)
        } else {
            SetUpdate::Insert(v)
        };
        let m = peers[p].update(u);
        // Sometimes gossip to another producer so clocks entangle.
        if producers > 1 && rng.next_u64().is_multiple_of(2) {
            let q = (rng.next_u64() % producers as u64) as usize;
            if q != p {
                peers[q].on_deliver(&m);
            }
        }
        streams[p].push(m);
    }
    streams
}

/// Shuffle and duplicate the flattened streams into an arbitrary
/// delivery schedule (for the full-log strategies).
fn shuffled_schedule(rng: &mut SplitMix64, streams: &[Vec<Msg>]) -> Vec<Msg> {
    common::shuffle_with_dups(rng, streams.iter().flatten().cloned().collect())
}

fn scenario(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let producers = 2 + (rng.next_u64() % 3) as usize;
    let cluster = producers + 1; // producers plus the replicas under test
    let streams = produce_streams(&mut rng, producers);
    let sched = shuffled_schedule(&mut rng, &streams);

    // Full-log strategies: arbitrary reordering + duplicates.
    let mut reference: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    let mut cached: CachedReplica<SetAdt<u32>> =
        CachedReplica::with_checkpoint_every(SetAdt::new(), 0, 1 + (seed as usize % 7));
    let mut undo: UndoReplica<SetAdt<u32>> = UndoReplica::new(SetAdt::new(), 0);

    // GC strategy: per-sender FIFO, exactly-once, with a lockstep
    // naive reference seeing the identical prefix.
    let mut gc: GcReplica<SetAdt<u32>> = GcReplica::new(SetAdt::new(), 0, cluster);
    let mut gc_ref: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    let mut queues: Vec<VecDeque<Msg>> = streams
        .iter()
        .map(|s| s.iter().cloned().collect())
        .collect();

    // Deliver the shuffled schedule in randomly sized chunks; each
    // chunk goes per-message or through the batched path.
    let mut i = 0;
    while i < sched.len() {
        let k = 1 + (rng.next_u64() % 6) as usize;
        let chunk = &sched[i..sched.len().min(i + k)];
        i += chunk.len();
        if rng.next_u64().is_multiple_of(2) {
            Replica::<SetAdt<u32>>::on_batch(&mut reference, chunk);
            Replica::<SetAdt<u32>>::on_batch(&mut cached, chunk);
            Replica::<SetAdt<u32>>::on_batch(&mut undo, chunk);
        } else {
            for m in chunk {
                reference.on_deliver(m);
                cached.on_deliver(m);
                undo.on_deliver(m);
            }
        }
        // Interim queries must agree at every step.
        let expect = reference.do_query(&SetQuery::Read);
        assert_eq!(
            expect,
            cached.do_query(&SetQuery::Read),
            "cached diverged, seed {seed}"
        );
        assert_eq!(
            expect,
            undo.do_query(&SetQuery::Read),
            "undo diverged, seed {seed}"
        );

        // Independently advance the GC pair: a few messages from one
        // random producer, preserving that producer's send order.
        let p = (rng.next_u64() % producers as u64) as usize;
        let take = 1 + (rng.next_u64() % 4) as usize;
        let mut burst: Vec<Msg> = Vec::new();
        for _ in 0..take {
            match queues[p].pop_front() {
                Some(m) => burst.push(m),
                None => break,
            }
        }
        if !burst.is_empty() {
            if rng.next_u64().is_multiple_of(2) {
                let gchunk: Vec<GcMsg<SetUpdate<u32>>> =
                    burst.iter().map(|m| GcMsg::Update(m.clone())).collect();
                gc.on_batch(&gchunk);
            } else {
                for m in &burst {
                    gc.on_gc_message(&GcMsg::Update(m.clone()));
                }
            }
            for m in &burst {
                gc_ref.on_deliver(m);
            }
            // Occasionally the producer heartbeats its delivered
            // prefix — safe under FIFO, and it forces compaction to
            // happen *concurrently* with the remaining deliveries.
            if rng.next_u64().is_multiple_of(3) {
                gc.on_gc_message(&GcMsg::Heartbeat {
                    pid: p as u32 + 1,
                    clock: burst.last().expect("nonempty").ts.clock,
                });
            }
        }
        assert_eq!(
            gc.do_query(&SetQuery::Read),
            gc_ref.do_query(&SetQuery::Read),
            "gc diverged mid-run, seed {seed}"
        );
    }

    // Drain what the GC pair has not seen yet.
    for (p, q) in queues.iter_mut().enumerate() {
        while let Some(m) = q.pop_front() {
            gc.on_gc_message(&GcMsg::Update(m.clone()));
            gc_ref.on_deliver(&m);
        }
        let _ = p;
    }
    // Full stability: everyone (including the silent test replica)
    // announces its final clock, then semantics must survive the
    // resulting compaction.
    for p in 0..cluster as u32 {
        gc.on_gc_message(&GcMsg::Heartbeat {
            pid: p,
            clock: gc.engine().clock(),
        });
    }
    assert!(
        gc.compacted() > 0,
        "full heartbeat coverage must compact something, seed {seed}"
    );

    // Convergence digests: identical final states everywhere.
    let expect = reference.materialize();
    let digest = state_digest(&expect);
    assert_eq!(digest, state_digest(&Replica::materialize(&mut cached)));
    assert_eq!(digest, state_digest(&Replica::materialize(&mut undo)));
    assert_eq!(digest, state_digest(&gc_ref.materialize()));
    assert_eq!(
        digest,
        state_digest(&gc.materialize()),
        "gc diverged after compaction, seed {seed}"
    );

    // The full-log replicas also agree on the visible-update set.
    assert_eq!(reference.known_timestamps(), cached.known_timestamps());
    assert_eq!(reference.known_timestamps(), undo.known_timestamps());
}

#[test]
fn strategies_agree_across_randomized_schedules() {
    for seed in 0..60 {
        scenario(seed);
    }
}

#[test]
fn strategies_agree_under_pure_batch_replay() {
    // Whole history delivered as one giant out-of-order batch.
    let mut rng = SplitMix64::new(0xBA7C);
    let streams = produce_streams(&mut rng, 3);
    let sched = shuffled_schedule(&mut rng, &streams);

    let mut reference: GenericReplica<SetAdt<u32>> = GenericReplica::new(SetAdt::new(), 0);
    for m in &sched {
        reference.on_deliver(m);
    }
    let mut cached: CachedReplica<SetAdt<u32>> = CachedReplica::new(SetAdt::new(), 0);
    cached.on_deliver_batch(&sched);
    let mut undo: UndoReplica<SetAdt<u32>> = UndoReplica::new(SetAdt::new(), 0);
    undo.on_deliver_batch(&sched);

    assert_eq!(reference.materialize(), Replica::materialize(&mut cached));
    assert_eq!(reference.materialize(), Replica::materialize(&mut undo));
    // A single batch is at most one repair event however scrambled the
    // input was.
    assert!(cached.repair_events() <= 1);
    assert!(undo.repair_events() <= 1);
}
