//! The C-Set (Aslan et al., RED 2011) — §VI's other counting set.
//! Like the PN-Set it keeps a per-element counter, but operations
//! broadcast *compensated* deltas: a local insert that finds the
//! element absent with count `c ≤ 0` broadcasts `+(1 − c)` so the
//! count lands exactly at 1, and a delete of a present element
//! broadcasts `−c`. This repairs the PN-Set's negative-absorption
//! anomaly at the cost of different (still non-sequential) behaviour
//! under concurrency.

use crate::traits::SetReplica;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A C-Set replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CSet<V: Ord + Clone> {
    counts: BTreeMap<V, i64>,
}

/// Broadcast message: a compensated count delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CDelta<V> {
    /// The element.
    pub elem: V,
    /// The compensated count change.
    pub delta: i64,
}

impl<V: Ord + Clone + Debug> CSet<V> {
    /// An empty C-Set.
    pub fn new() -> Self {
        CSet {
            counts: BTreeMap::new(),
        }
    }

    fn bump(&mut self, v: &V, delta: i64) {
        *self.counts.entry(v.clone()).or_insert(0) += delta;
    }

    /// The current count of an element (diagnostics).
    pub fn count(&self, v: &V) -> i64 {
        self.counts.get(v).copied().unwrap_or(0)
    }
}

impl<V: Ord + Clone + Debug> SetReplica<V> for CSet<V> {
    type Msg = CDelta<V>;

    fn insert(&mut self, v: V) -> Self::Msg {
        let c = self.count(&v);
        let delta = if c <= 0 { 1 - c } else { 0 };
        self.bump(&v, delta);
        CDelta { elem: v, delta }
    }

    fn delete(&mut self, v: V) -> Self::Msg {
        let c = self.count(&v);
        let delta = if c > 0 { -c } else { 0 };
        self.bump(&v, delta);
        CDelta { elem: v, delta }
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.bump(&msg.elem, msg.delta);
    }

    fn read(&self) -> BTreeSet<V> {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(v, _)| v.clone())
            .collect()
    }

    fn footprint(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_behaviour_is_exact() {
        let mut s = CSet::new();
        s.delete(9); // absent: no-op (delta 0), count stays 0
        assert_eq!(s.count(&9), 0);
        s.insert(9);
        assert!(s.read().contains(&9), "no negative absorption");
        s.insert(9); // present: no-op
        s.delete(9);
        assert!(!s.read().contains(&9), "single delete suffices");
    }

    #[test]
    fn deltas_commute_so_replicas_converge() {
        let mut a = CSet::new();
        let msgs = [a.insert(1), a.insert(2), a.delete(1), a.insert(1)];
        let mut b = CSet::new();
        for m in msgs.iter().rev() {
            b.on_message(m);
        }
        assert_eq!(a.read(), b.read());
        assert_eq!(a.read(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn concurrent_double_insert_overshoots() {
        // Both replicas see count 0 and broadcast +1: count converges
        // to 2 — one delete (compensating its local view) may not
        // remove it everywhere at once. The anomaly just moves.
        let mut a = CSet::new();
        let mut b = CSet::new();
        let ma = a.insert(5);
        let mb = b.insert(5);
        a.on_message(&mb);
        b.on_message(&ma);
        assert_eq!(a.count(&5), 2);
        let d = a.delete(5); // compensates a's full view: −2
        b.on_message(&d);
        assert!(!a.read().contains(&5));
        assert_eq!(a.read(), b.read());
    }
}
