//! Replicated counters — the paper's canonical "pure CRDT" (§VII-C):
//! increments commute, so naive apply-on-delivery is already update
//! consistent (experiment E11 measures the ordering overhead Algorithm
//! 1 pays for nothing on such objects).

use crate::traits::CvRdt;
use std::collections::BTreeMap;

/// A grow-only counter: per-replica contribution vectors joined by
/// pointwise max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GCounter {
    contrib: BTreeMap<u32, u64>,
}

impl GCounter {
    /// A zero counter.
    pub fn new() -> Self {
        GCounter {
            contrib: BTreeMap::new(),
        }
    }

    /// Add `n` on behalf of replica `pid`.
    pub fn increment(&mut self, pid: u32, n: u64) {
        *self.contrib.entry(pid).or_insert(0) += n;
    }

    /// The counter value.
    pub fn value(&self) -> u64 {
        self.contrib.values().sum()
    }
}

impl CvRdt for GCounter {
    fn merge(&mut self, other: &Self) {
        for (pid, v) in &other.contrib {
            let e = self.contrib.entry(*pid).or_insert(0);
            *e = (*e).max(*v);
        }
    }
}

/// An increment/decrement counter: two G-Counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnCounter {
    inc: GCounter,
    dec: GCounter,
}

impl PnCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` on behalf of replica `pid`.
    pub fn increment(&mut self, pid: u32, n: u64) {
        self.inc.increment(pid, n);
    }

    /// Subtract `n` on behalf of replica `pid`.
    pub fn decrement(&mut self, pid: u32, n: u64) {
        self.dec.increment(pid, n);
    }

    /// The counter value.
    pub fn value(&self) -> i64 {
        self.inc.value() as i64 - self.dec.value() as i64
    }
}

impl CvRdt for PnCounter {
    fn merge(&mut self, other: &Self) {
        self.inc.merge(&other.inc);
        self.dec.merge(&other.dec);
    }
}

/// The naive op-based counter of §VII-C: applies deltas on delivery,
/// no ordering at all.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NaiveCounter {
    value: i64,
}

impl NaiveCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a local delta; returns the message to broadcast.
    pub fn add(&mut self, delta: i64) -> i64 {
        self.value += delta;
        delta
    }

    /// Apply a peer's delta.
    pub fn on_message(&mut self, delta: &i64) {
        self.value += delta;
    }

    /// The counter value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold;

    #[test]
    fn gcounter_sums_contributions() {
        let mut a = GCounter::new();
        a.increment(0, 3);
        let mut b = GCounter::new();
        b.increment(1, 4);
        a.merge(&b);
        assert_eq!(a.value(), 7);
    }

    #[test]
    fn gcounter_merge_laws() {
        let mut a = GCounter::new();
        a.increment(0, 1);
        let mut b = GCounter::new();
        b.increment(1, 2);
        let mut c = GCounter::new();
        c.increment(0, 5);
        assert_eq!(merge_laws_hold(&a, &b, &c), Ok(()));
    }

    #[test]
    fn gcounter_merge_is_not_addition() {
        // Merging the same state twice must not double-count.
        let mut a = GCounter::new();
        a.increment(0, 5);
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a.value(), 5);
    }

    #[test]
    fn pncounter_subtracts() {
        let mut a = PnCounter::new();
        a.increment(0, 10);
        a.decrement(0, 3);
        assert_eq!(a.value(), 7);
        let mut b = PnCounter::new();
        b.decrement(1, 20);
        a.merge(&b);
        assert_eq!(a.value(), -13);
    }

    #[test]
    fn pncounter_merge_laws() {
        let mut a = PnCounter::new();
        a.increment(0, 1);
        let mut b = PnCounter::new();
        b.decrement(1, 2);
        let mut c = PnCounter::new();
        c.increment(2, 3);
        c.decrement(2, 1);
        assert_eq!(merge_laws_hold(&a, &b, &c), Ok(()));
    }

    #[test]
    fn naive_counter_converges_without_ordering() {
        let mut a = NaiveCounter::new();
        let mut b = NaiveCounter::new();
        let m1 = a.add(5);
        let m2 = a.add(-2);
        b.on_message(&m2);
        b.on_message(&m1);
        assert_eq!(a.value(), b.value());
        assert_eq!(a.value(), 3);
    }
}
