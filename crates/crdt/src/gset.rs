//! The Grow-Only Set (G-Set) — §VI: "the simplest set […] as the
//! insertion of two elements commute, G-Set is a CRDT". Also the
//! §VII-C example of an object for which naive apply-on-delivery
//! already achieves update consistency (experiment E11).

use crate::traits::CvRdt;
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A grow-only replicated set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GSet<V: Ord + Clone> {
    elems: BTreeSet<V>,
}

/// Broadcast message of the op-based G-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GAdd<V>(pub V);

impl<V: Ord + Clone + Debug> GSet<V> {
    /// An empty G-Set.
    pub fn new() -> Self {
        GSet {
            elems: BTreeSet::new(),
        }
    }

    /// Insert locally; returns the op to broadcast.
    pub fn insert(&mut self, v: V) -> GAdd<V> {
        self.elems.insert(v.clone());
        GAdd(v)
    }

    /// Apply a peer's insert.
    pub fn on_message(&mut self, msg: &GAdd<V>) {
        self.elems.insert(msg.0.clone());
    }

    /// Current content.
    pub fn read(&self) -> BTreeSet<V> {
        self.elems.clone()
    }

    /// Retained entries.
    pub fn footprint(&self) -> usize {
        self.elems.len()
    }
}

impl<V: Ord + Clone> CvRdt for GSet<V> {
    fn merge(&mut self, other: &Self) {
        self.elems.extend(other.elems.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold;

    #[test]
    fn op_based_converges_in_any_order() {
        let mut a = GSet::new();
        let mut b = GSet::new();
        let m1 = a.insert(1);
        let m2 = a.insert(2);
        b.on_message(&m2);
        b.on_message(&m1);
        assert_eq!(a.read(), b.read());
    }

    #[test]
    fn merge_laws() {
        let mut a = GSet::new();
        a.insert(1);
        let mut b = GSet::new();
        b.insert(2);
        b.insert(3);
        let mut c = GSet::new();
        c.insert(1);
        c.insert(4);
        assert_eq!(merge_laws_hold(&a, &b, &c), Ok(()));
    }

    #[test]
    fn merge_is_union() {
        let mut a = GSet::new();
        a.insert(1);
        let mut b = GSet::new();
        b.insert(2);
        a.merge(&b);
        assert_eq!(a.read(), BTreeSet::from([1, 2]));
    }
}
