//! # uc-crdt — the eventually consistent baselines of §VI
//!
//! The paper's case study (§VI) compares update consistency against
//! the zoo of eventually consistent set implementations; this crate
//! provides faithful op-based implementations of each, plus
//! state-based merges with semi-lattice law tests where the literature
//! defines them:
//!
//! * [`gset::GSet`] — grow-only set (a pure CRDT);
//! * [`two_phase_set::TwoPhaseSet`] — 2P-Set / U-Set (remove wins,
//!   no re-insertion);
//! * [`pn_set::PnSet`] — signed counter per element;
//! * [`c_set::CSet`] — compensated counters (Aslan et al.);
//! * [`or_set::OrSet`] — observed-remove set, the implementation
//!   behind the Insert-wins specification of Definition 10;
//! * [`lww_set::LwwSet`] — last-writer-wins element set;
//! * [`counters`] — G-Counter, PN-Counter, and the naive op-based
//!   counter of §VII-C;
//! * [`registers`] — LWW and multi-value registers.
//!
//! All sets implement [`traits::SetReplica`], so the §VI case-study
//! experiment (E6) can drive them and the update-consistent set
//! through identical schedules and print the diverging final states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c_set;
pub mod counters;
pub mod gset;
pub mod lww_set;
pub mod or_set;
pub mod pn_set;
pub mod registers;
pub mod sim_adapter;
pub mod traits;
pub mod two_phase_set;

pub use c_set::CSet;
pub use counters::{GCounter, NaiveCounter, PnCounter};
pub use gset::GSet;
pub use lww_set::{LwwSet, LwwStamp};
pub use or_set::{OrSet, Tag};
pub use pn_set::PnSet;
pub use registers::{LwwRegister, MvRegister};
pub use sim_adapter::{SetNode, SetOp, SetResp};
pub use traits::{CvRdt, SetReplica};
pub use two_phase_set::TwoPhaseSet;
