//! The Last-Writer-Wins element set (LWW-element-Set) — §VI: "attaches
//! a timestamp to each element to decide which operation should win in
//! case of conflict".
//!
//! Per element the set keeps the latest insert timestamp and the
//! latest delete timestamp; the element is present iff the insert is
//! newer. Timestamps are `(clock, pid)` Lamport pairs, so "newer" is
//! total and replicas converge pointwise.

use crate::traits::{CvRdt, SetReplica};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A Lamport `(clock, pid)` pair (local copy to keep this crate
/// independent of `uc-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LwwStamp {
    /// Logical time.
    pub clock: u64,
    /// Tie-breaking process id.
    pub pid: u32,
}

/// An LWW-element-set replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LwwSet<V: Ord + Clone> {
    pid: u32,
    clock: u64,
    /// Per element: latest insert stamp, latest delete stamp.
    entries: BTreeMap<V, (Option<LwwStamp>, Option<LwwStamp>)>,
}

/// Broadcast message of the op-based LWW-set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LwwMsg<V> {
    /// A stamped insertion.
    Add(V, LwwStamp),
    /// A stamped deletion.
    Remove(V, LwwStamp),
}

impl<V: Ord + Clone + Debug> LwwSet<V> {
    /// An empty LWW-set owned by replica `pid`.
    pub fn new(pid: u32) -> Self {
        LwwSet {
            pid,
            clock: 0,
            entries: BTreeMap::new(),
        }
    }

    fn stamp(&mut self) -> LwwStamp {
        self.clock += 1;
        LwwStamp {
            clock: self.clock,
            pid: self.pid,
        }
    }

    fn absorb_add(&mut self, v: &V, s: LwwStamp) {
        self.clock = self.clock.max(s.clock);
        let e = self.entries.entry(v.clone()).or_insert((None, None));
        if e.0.is_none_or(|prev| prev < s) {
            e.0 = Some(s);
        }
    }

    fn absorb_remove(&mut self, v: &V, s: LwwStamp) {
        self.clock = self.clock.max(s.clock);
        let e = self.entries.entry(v.clone()).or_insert((None, None));
        if e.1.is_none_or(|prev| prev < s) {
            e.1 = Some(s);
        }
    }
}

impl<V: Ord + Clone + Debug> SetReplica<V> for LwwSet<V> {
    type Msg = LwwMsg<V>;

    fn insert(&mut self, v: V) -> Self::Msg {
        let s = self.stamp();
        self.absorb_add(&v, s);
        LwwMsg::Add(v, s)
    }

    fn delete(&mut self, v: V) -> Self::Msg {
        let s = self.stamp();
        self.absorb_remove(&v, s);
        LwwMsg::Remove(v, s)
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        match msg {
            LwwMsg::Add(v, s) => self.absorb_add(v, *s),
            LwwMsg::Remove(v, s) => self.absorb_remove(v, *s),
        }
    }

    fn read(&self) -> BTreeSet<V> {
        self.entries
            .iter()
            .filter(|(_, (add, rem))| match (add, rem) {
                (Some(a), Some(r)) => a > r,
                (Some(_), None) => true,
                _ => false,
            })
            .map(|(v, _)| v.clone())
            .collect()
    }

    fn footprint(&self) -> usize {
        self.entries.len()
    }
}

impl<V: Ord + Clone + Debug> CvRdt for LwwSet<V> {
    fn merge(&mut self, other: &Self) {
        for (v, (add, rem)) in &other.entries {
            if let Some(a) = add {
                self.absorb_add(v, *a);
            }
            if let Some(r) = rem {
                self.absorb_remove(v, *r);
            }
        }
        self.clock = self.clock.max(other.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold_by;

    #[test]
    fn later_operation_wins() {
        let mut a = LwwSet::new(0);
        let mut b = LwwSet::new(1);
        let add = a.insert(1); // (1,0)
        b.on_message(&add);
        let rem = b.delete(1); // (2,1) — newer
        a.on_message(&rem);
        assert!(a.read().is_empty());
        assert!(b.read().is_empty());
    }

    #[test]
    fn concurrent_conflict_resolved_by_pid_tiebreak() {
        let mut a = LwwSet::new(0);
        let mut b = LwwSet::new(1);
        let add = a.insert(1); // (1,0)
        let rem = b.delete(1); // (1,1) — wins the tie
        a.on_message(&rem);
        b.on_message(&add);
        assert_eq!(a.read(), b.read());
        assert!(
            a.read().is_empty(),
            "delete stamped (1,1) beats insert (1,0)"
        );
    }

    #[test]
    fn converges_under_reordering() {
        let mut a = LwwSet::new(0);
        let msgs = [a.insert(1), a.delete(1), a.insert(1), a.insert(2)];
        let mut b = LwwSet::new(1);
        for m in msgs.iter().rev() {
            b.on_message(m);
        }
        assert_eq!(a.read(), b.read());
        assert_eq!(a.read(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn merge_laws() {
        let mut a = LwwSet::new(0);
        a.insert(1);
        let mut b = LwwSet::new(1);
        b.insert(1);
        b.delete(1);
        let mut c = LwwSet::new(2);
        c.insert(3);
        // Compare the lattice content; pid/clock are replica identity.
        assert_eq!(
            merge_laws_hold_by(&a, &b, &c, |s| s.entries.clone()),
            Ok(())
        );
    }

    #[test]
    fn footprint_is_per_element() {
        let mut a = LwwSet::new(0);
        for _ in 0..50 {
            a.insert(1);
            a.delete(1);
        }
        assert_eq!(a.footprint(), 1, "only latest stamps retained");
    }
}
