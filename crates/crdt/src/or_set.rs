//! The Observed-Remove Set (OR-Set) — §VI: "the best documented
//! algorithm for the set […] each insertion is timestamped with a
//! unique identifier, and the deletion only black-lists the
//! identifiers that it observes. It guarantees that, if an insertion
//! and a deletion of the same element are concurrent, the insertion
//! will win."
//!
//! This is the implementation Definition 10 (the Insert-wins
//! concurrent specification) abstracts, and the object Proposition 3
//! proves replaceable by an update-consistent set. Tombstones make it
//! robust to message reordering (no causal-delivery assumption, since
//! the paper's network is not FIFO).

use crate::traits::{CvRdt, SetReplica};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Unique identifier of one insertion: `(replica, sequence)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Creating replica.
    pub pid: u32,
    /// Per-replica sequence number.
    pub seq: u64,
}

/// An OR-Set replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrSet<V: Ord + Clone> {
    pid: u32,
    next_seq: u64,
    /// Live tags per element.
    elems: BTreeMap<V, BTreeSet<Tag>>,
    /// Black-listed (observed-removed) tags.
    tombstones: BTreeSet<Tag>,
}

/// Broadcast message of the op-based OR-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrMsg<V> {
    /// A uniquely tagged insertion.
    Add(V, Tag),
    /// Removal of the *observed* tags of an element.
    Remove(V, BTreeSet<Tag>),
}

impl<V: Ord + Clone + Debug> OrSet<V> {
    /// An empty OR-Set owned by replica `pid`.
    pub fn new(pid: u32) -> Self {
        OrSet {
            pid,
            next_seq: 0,
            elems: BTreeMap::new(),
            tombstones: BTreeSet::new(),
        }
    }

    fn add(&mut self, v: &V, tag: Tag) {
        if !self.tombstones.contains(&tag) {
            self.elems.entry(v.clone()).or_default().insert(tag);
        }
    }

    fn remove_tags(&mut self, v: &V, tags: &BTreeSet<Tag>) {
        self.tombstones.extend(tags.iter().copied());
        if let Some(live) = self.elems.get_mut(v) {
            for t in tags {
                live.remove(t);
            }
            if live.is_empty() {
                self.elems.remove(v);
            }
        }
    }

    /// The live tags of an element (diagnostics).
    pub fn tags_of(&self, v: &V) -> BTreeSet<Tag> {
        self.elems.get(v).cloned().unwrap_or_default()
    }
}

impl<V: Ord + Clone + Debug> SetReplica<V> for OrSet<V> {
    type Msg = OrMsg<V>;

    fn insert(&mut self, v: V) -> Self::Msg {
        let tag = Tag {
            pid: self.pid,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.add(&v, tag);
        OrMsg::Add(v, tag)
    }

    fn delete(&mut self, v: V) -> Self::Msg {
        let observed = self.tags_of(&v);
        self.remove_tags(&v, &observed);
        OrMsg::Remove(v, observed)
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        match msg {
            OrMsg::Add(v, tag) => self.add(v, *tag),
            OrMsg::Remove(v, tags) => self.remove_tags(v, tags),
        }
    }

    fn read(&self) -> BTreeSet<V> {
        self.elems.keys().cloned().collect()
    }

    fn footprint(&self) -> usize {
        self.elems.values().map(BTreeSet::len).sum::<usize>() + self.tombstones.len()
    }
}

impl<V: Ord + Clone> CvRdt for OrSet<V> {
    fn merge(&mut self, other: &Self) {
        self.tombstones.extend(other.tombstones.iter().copied());
        for (v, tags) in &other.elems {
            let entry = self.elems.entry(v.clone()).or_default();
            entry.extend(tags.iter().copied());
        }
        // Re-filter against the joined tombstones and drop empties.
        let tomb = self.tombstones.clone();
        self.elems.retain(|_, tags| {
            tags.retain(|t| !tomb.contains(t));
            !tags.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold_by;

    #[test]
    fn insert_wins_over_concurrent_delete() {
        // The defining behaviour: p1's delete observes nothing, so
        // p0's concurrent insert survives everywhere.
        let mut a = OrSet::new(0);
        let mut b = OrSet::new(1);
        let ma = a.insert(1);
        let mb = b.delete(1); // observes no tags
        a.on_message(&mb);
        b.on_message(&ma);
        assert_eq!(a.read(), b.read());
        assert!(a.read().contains(&1), "insert must win");
    }

    #[test]
    fn observed_delete_removes_everywhere() {
        let mut a = OrSet::new(0);
        let mut b = OrSet::new(1);
        let ma = a.insert(1);
        b.on_message(&ma);
        let mb = b.delete(1); // observes a's tag
        a.on_message(&mb);
        assert!(a.read().is_empty());
        assert!(b.read().is_empty());
    }

    #[test]
    fn fig1b_schedule_converges_to_both_elements() {
        // §VI: on Fig. 1b's schedule the OR-set converges to {1,2} —
        // the state the paper proves *not* update consistent.
        let mut p0 = OrSet::new(0);
        let mut p1 = OrSet::new(1);
        // p0: I(1) · D(2); p1: I(2) · D(1); cross-delivery afterwards.
        let a1 = p0.insert(1);
        let a2 = p0.delete(2);
        let b1 = p1.insert(2);
        let b2 = p1.delete(1);
        for m in [&b1, &b2] {
            p0.on_message(m);
        }
        for m in [&a1, &a2] {
            p1.on_message(m);
        }
        assert_eq!(p0.read(), BTreeSet::from([1, 2]));
        assert_eq!(p1.read(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn reordered_add_after_its_remove_stays_dead() {
        // Without tombstones a late Add would resurrect the element.
        let mut a = OrSet::new(0);
        let mut b = OrSet::new(1);
        let add = a.insert(3);
        b.on_message(&add);
        let rem = b.delete(3);
        let mut c = OrSet::new(2);
        c.on_message(&rem); // remove arrives first
        c.on_message(&add); // late add of a tombstoned tag
        assert!(c.read().is_empty());
    }

    #[test]
    fn reinsertion_after_delete_works() {
        let mut a = OrSet::new(0);
        a.insert(1);
        a.delete(1);
        a.insert(1); // fresh tag — unlike the 2P-Set
        assert!(a.read().contains(&1));
    }

    #[test]
    fn merge_laws() {
        let mut a = OrSet::new(0);
        a.insert(1);
        let mut b = OrSet::new(1);
        b.insert(1);
        b.delete(1);
        let mut c = OrSet::new(2);
        c.insert(2);
        // Compare the lattice content; pid/next_seq are identity.
        assert_eq!(
            merge_laws_hold_by(&a, &b, &c, |s| (s.elems.clone(), s.tombstones.clone())),
            Ok(())
        );
    }

    #[test]
    fn footprint_grows_with_tombstones() {
        let mut a = OrSet::new(0);
        for _ in 0..10 {
            a.insert(1);
            a.delete(1);
        }
        assert!(a.read().is_empty());
        assert_eq!(a.footprint(), 10, "ten tombstoned tags retained");
    }
}
