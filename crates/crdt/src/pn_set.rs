//! The PN-Set — §VI: "add counters on the elements to determine if
//! they should be present or not". Each element carries a signed
//! count; inserts broadcast `+1`, deletes `-1`, and the element is
//! present while its count is positive. Counter addition commutes, so
//! replicas converge — with the well-known anomalies (two concurrent
//! inserts need two deletes to remove; a delete of an absent element
//! drives the count negative and "absorbs" a future insert).

use crate::traits::SetReplica;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A PN-Set replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnSet<V: Ord + Clone> {
    counts: BTreeMap<V, i64>,
}

/// Broadcast message: a signed count delta for an element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PnDelta<V> {
    /// The element.
    pub elem: V,
    /// The count change (+1 insert, −1 delete).
    pub delta: i64,
}

impl<V: Ord + Clone + Debug> PnSet<V> {
    /// An empty PN-Set.
    pub fn new() -> Self {
        PnSet {
            counts: BTreeMap::new(),
        }
    }

    fn bump(&mut self, v: &V, delta: i64) {
        let c = self.counts.entry(v.clone()).or_insert(0);
        *c += delta;
    }

    /// The current count of an element (diagnostics).
    pub fn count(&self, v: &V) -> i64 {
        self.counts.get(v).copied().unwrap_or(0)
    }
}

impl<V: Ord + Clone + Debug> SetReplica<V> for PnSet<V> {
    type Msg = PnDelta<V>;

    fn insert(&mut self, v: V) -> Self::Msg {
        self.bump(&v, 1);
        PnDelta { elem: v, delta: 1 }
    }

    fn delete(&mut self, v: V) -> Self::Msg {
        self.bump(&v, -1);
        PnDelta { elem: v, delta: -1 }
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        self.bump(&msg.elem, msg.delta);
    }

    fn read(&self) -> BTreeSet<V> {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(v, _)| v.clone())
            .collect()
    }

    fn footprint(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_delete_removes() {
        let mut s = PnSet::new();
        s.insert(1);
        s.delete(1);
        assert!(s.read().is_empty());
    }

    #[test]
    fn converges_because_addition_commutes() {
        let mut a = PnSet::new();
        let mut b = PnSet::new();
        let m1 = a.insert(1);
        let m2 = a.delete(1);
        let m3 = a.insert(1);
        for m in [&m3, &m1, &m2] {
            b.on_message(m);
        }
        assert_eq!(a.read(), b.read());
        assert_eq!(a.read(), BTreeSet::from([1]));
    }

    #[test]
    fn double_insert_anomaly() {
        // Two concurrent inserts of the same element need two deletes:
        // a sequential-set behaviour violation the case study surfaces.
        let mut a = PnSet::new();
        let mut b = PnSet::new();
        let ma = a.insert(5);
        let mb = b.insert(5);
        a.on_message(&mb);
        b.on_message(&ma);
        let d = a.delete(5);
        b.on_message(&d);
        assert!(a.read().contains(&5), "count is still 1 after one delete");
        assert_eq!(a.read(), b.read());
    }

    #[test]
    fn negative_count_absorbs_insert() {
        let mut s = PnSet::new();
        s.delete(9); // absent: count −1
        s.insert(9); // back to 0 — still absent!
        assert!(!s.read().contains(&9));
        assert_eq!(s.count(&9), 0);
    }
}
