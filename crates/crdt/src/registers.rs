//! Replicated registers: last-writer-wins (the cell Algorithm 2 uses
//! per memory location) and the multi-value register (what you get if
//! you *don't* pick a total order — surfacing conflicts instead, for
//! contrast in the examples).

use crate::lww_set::LwwStamp;
use crate::traits::CvRdt;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A last-writer-wins register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LwwRegister<V: Clone> {
    pid: u32,
    clock: u64,
    latest: Option<(LwwStamp, V)>,
}

impl<V: Clone + Debug + PartialEq> LwwRegister<V> {
    /// An unwritten register owned by replica `pid`.
    pub fn new(pid: u32) -> Self {
        LwwRegister {
            pid,
            clock: 0,
            latest: None,
        }
    }

    /// Write locally; returns the stamped message to broadcast.
    pub fn write(&mut self, v: V) -> (LwwStamp, V) {
        self.clock += 1;
        let s = LwwStamp {
            clock: self.clock,
            pid: self.pid,
        };
        self.absorb(&(s, v.clone()));
        (s, v)
    }

    /// Apply a peer's write.
    pub fn on_message(&mut self, msg: &(LwwStamp, V)) {
        self.absorb(msg);
    }

    fn absorb(&mut self, (s, v): &(LwwStamp, V)) {
        self.clock = self.clock.max(s.clock);
        if self.latest.as_ref().is_none_or(|(prev, _)| prev < s) {
            self.latest = Some((*s, v.clone()));
        }
    }

    /// Read the current value.
    pub fn read(&self) -> Option<&V> {
        self.latest.as_ref().map(|(_, v)| v)
    }
}

impl<V: Clone + Debug + PartialEq> CvRdt for LwwRegister<V> {
    fn merge(&mut self, other: &Self) {
        if let Some(m) = &other.latest {
            self.absorb(m);
        }
        self.clock = self.clock.max(other.clock);
    }
}

/// A multi-value register: concurrent writes are all retained and
/// surfaced to the reader (Dynamo-style), ordered writes overwrite.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MvRegister<V: Ord + Clone> {
    pid: u32,
    /// Version vector of the writes folded in.
    vv: BTreeMap<u32, u64>,
    values: BTreeSet<V>,
}

impl<V: Ord + Clone + Debug> MvRegister<V> {
    /// An empty register owned by replica `pid`.
    pub fn new(pid: u32) -> Self {
        MvRegister {
            pid,
            vv: BTreeMap::new(),
            values: BTreeSet::new(),
        }
    }

    /// Write locally (overwrites everything this replica has seen);
    /// returns the message to broadcast.
    pub fn write(&mut self, v: V) -> (BTreeMap<u32, u64>, V) {
        *self.vv.entry(self.pid).or_insert(0) += 1;
        self.values = BTreeSet::from([v.clone()]);
        (self.vv.clone(), v)
    }

    /// Apply a peer's write.
    pub fn on_message(&mut self, (vv, v): &(BTreeMap<u32, u64>, V)) {
        if dominates(vv, &self.vv) {
            self.vv = vv.clone();
            self.values = BTreeSet::from([v.clone()]);
        } else if dominates(&self.vv, vv) {
            // stale: ignore
        } else {
            // concurrent: keep both, join the vectors
            for (pid, c) in vv {
                let e = self.vv.entry(*pid).or_insert(0);
                *e = (*e).max(*c);
            }
            self.values.insert(v.clone());
        }
    }

    /// The currently visible value(s); more than one means unresolved
    /// concurrent writes.
    pub fn read(&self) -> &BTreeSet<V> {
        &self.values
    }
}

fn dominates(a: &BTreeMap<u32, u64>, b: &BTreeMap<u32, u64>) -> bool {
    b.iter()
        .all(|(pid, c)| a.get(pid).copied().unwrap_or(0) >= *c)
        && a != b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold_by;

    #[test]
    fn lww_register_converges() {
        let mut a = LwwRegister::new(0);
        let mut b = LwwRegister::new(1);
        let wa = a.write("x");
        let wb = b.write("y"); // (1,1) beats (1,0)
        a.on_message(&wb);
        b.on_message(&wa);
        assert_eq!(a.read(), b.read());
        assert_eq!(a.read(), Some(&"y"));
    }

    #[test]
    fn lww_register_merge_laws() {
        let mut a = LwwRegister::new(0);
        a.write(1);
        let mut b = LwwRegister::new(1);
        b.write(2);
        let mut c = LwwRegister::new(2);
        c.write(3);
        // Compare the lattice content; pid/clock are identity.
        assert_eq!(merge_laws_hold_by(&a, &b, &c, |r| r.latest), Ok(()));
    }

    #[test]
    fn mv_register_surfaces_concurrent_writes() {
        let mut a = MvRegister::new(0);
        let mut b = MvRegister::new(1);
        let wa = a.write("x");
        let wb = b.write("y");
        a.on_message(&wb);
        b.on_message(&wa);
        assert_eq!(a.read(), b.read());
        assert_eq!(a.read().len(), 2, "both concurrent values visible");
    }

    #[test]
    fn mv_register_ordered_write_overwrites() {
        let mut a = MvRegister::new(0);
        let mut b = MvRegister::new(1);
        let wa = a.write("x");
        b.on_message(&wa);
        let wb = b.write("y"); // has seen x's write → dominates
        a.on_message(&wb);
        assert_eq!(a.read(), &BTreeSet::from(["y"]));
    }

    #[test]
    fn mv_register_ignores_stale() {
        let mut a = MvRegister::new(0);
        let w1 = a.write("x");
        let _w2 = a.write("y");
        let mut b = MvRegister::new(1);
        b.on_message(&a.write("z"));
        b.on_message(&w1); // stale
        assert_eq!(b.read(), &BTreeSet::from(["z"]));
    }
}
