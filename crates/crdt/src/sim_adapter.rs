//! Run the CRDT set baselines on the `uc-sim` runtimes, side by side
//! with the update-consistent set — the §VI case-study harness.

use crate::traits::SetReplica;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use uc_sim::{Ctx, Pid, Protocol};

/// Application operations on a replicated set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetOp<V> {
    /// Insert an element.
    Insert(V),
    /// Delete an element.
    Delete(V),
    /// Read the content.
    Read,
}

/// Responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetResp<V: Ord> {
    /// Update acknowledged.
    Ack,
    /// Read result.
    Content(BTreeSet<V>),
}

/// Protocol node wrapping any [`SetReplica`].
pub struct SetNode<V, S> {
    /// The wrapped replica.
    pub replica: S,
    _ph: PhantomData<fn() -> V>,
}

impl<V, S> SetNode<V, S> {
    /// Wrap a set replica.
    pub fn new(replica: S) -> Self {
        SetNode {
            replica,
            _ph: PhantomData,
        }
    }
}

impl<V, S> Protocol for SetNode<V, S>
where
    V: Ord + Clone + Debug,
    S: SetReplica<V>,
{
    type Msg = S::Msg;
    type Input = SetOp<V>;
    type Output = SetResp<V>;

    fn on_invoke(&mut self, input: Self::Input, ctx: &mut Ctx<'_, Self::Msg>) -> Self::Output {
        match input {
            SetOp::Insert(v) => {
                let m = self.replica.insert(v);
                ctx.broadcast_others(m);
                SetResp::Ack
            }
            SetOp::Delete(v) => {
                let m = self.replica.delete(v);
                ctx.broadcast_others(m);
                SetResp::Ack
            }
            SetOp::Read => SetResp::Content(self.replica.read()),
        }
    }

    fn on_message(&mut self, _from: Pid, msg: Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.replica.on_message(&msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::or_set::OrSet;
    use crate::two_phase_set::TwoPhaseSet;
    use uc_sim::{LatencyModel, SimConfig, Simulation};

    fn cfg(n: usize, seed: u64) -> SimConfig {
        SimConfig {
            n,
            seed,
            latency: LatencyModel::Uniform(5, 40),
            fifo_links: false,
        }
    }

    #[test]
    fn or_set_converges_in_simulation() {
        let mut sim = Simulation::new(cfg(3, 11), |pid| SetNode::new(OrSet::<u32>::new(pid)));
        for i in 0..20u32 {
            let pid = (i % 3) as Pid;
            let op = if i % 5 == 0 {
                SetOp::Delete(i % 4)
            } else {
                SetOp::Insert(i % 4)
            };
            sim.schedule_invoke((i * 2) as u64, pid, op);
        }
        sim.run_to_quiescence();
        let reads: Vec<_> = (0..3).map(|p| sim.process(p).replica.read()).collect();
        assert_eq!(reads[0], reads[1]);
        assert_eq!(reads[1], reads[2]);
    }

    #[test]
    fn two_phase_set_converges_in_simulation() {
        let mut sim = Simulation::new(cfg(4, 5), |_| SetNode::new(TwoPhaseSet::<u32>::new()));
        for i in 0..30u32 {
            let pid = (i % 4) as Pid;
            let op = if i % 3 == 0 {
                SetOp::Delete(i % 5)
            } else {
                SetOp::Insert(i % 5)
            };
            sim.schedule_invoke(i as u64, pid, op);
        }
        sim.run_to_quiescence();
        let reads: Vec<_> = (0..4).map(|p| sim.process(p).replica.read()).collect();
        assert!(reads.windows(2).all(|w| w[0] == w[1]), "{reads:?}");
    }

    #[test]
    fn read_returns_content() {
        let mut sim = Simulation::new(cfg(2, 3), |pid| SetNode::new(OrSet::<u32>::new(pid)));
        sim.invoke_now(0, SetOp::Insert(9));
        match sim.invoke_now(0, SetOp::Read) {
            Some(SetResp::Content(s)) => assert!(s.contains(&9)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
