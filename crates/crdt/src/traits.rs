//! Common interfaces for the eventually consistent baselines of §VI.

use std::collections::BTreeSet;
use std::fmt::Debug;

/// A state-based (convergent) replicated data type. The merge must be
/// commutative, associative and idempotent — the semi-lattice
/// condition the paper cites from the CRDT literature as sufficient
/// for eventual consistency. Property tests in each module check the
/// laws.
pub trait CvRdt: Clone {
    /// Join this replica's state with another's.
    fn merge(&mut self, other: &Self);
}

/// An op-based replicated **set** baseline: the uniform interface the
/// §VI case-study experiment drives. Mirrors the wait-free shape of
/// `uc-core`'s replicas: local ops return the message to broadcast and
/// complete immediately.
pub trait SetReplica<V: Ord + Clone> {
    /// Wire message type.
    type Msg: Clone + Debug;

    /// Insert `v`; returns the broadcast message.
    fn insert(&mut self, v: V) -> Self::Msg;

    /// Delete `v`; returns the broadcast message.
    fn delete(&mut self, v: V) -> Self::Msg;

    /// Ingest a peer's message.
    fn on_message(&mut self, msg: &Self::Msg);

    /// Read the current content.
    fn read(&self) -> BTreeSet<V>;

    /// Approximate retained-entry count (tags, tombstones, counters) —
    /// the §VI space-complexity comparison.
    fn footprint(&self) -> usize;
}

/// Check the three semi-lattice laws on concrete states (used by unit
/// and property tests). Types whose structs carry replica identity
/// (pid, local clock) should use [`merge_laws_hold_by`] with a
/// projection onto the lattice content instead.
pub fn merge_laws_hold<T: CvRdt + PartialEq + Debug>(a: &T, b: &T, c: &T) -> Result<(), String> {
    merge_laws_hold_by(a, b, c, |t| t.clone())
}

/// Check the semi-lattice laws comparing states through `project` —
/// the lattice content — so that per-replica identity fields (which
/// merges legitimately keep local) do not produce false failures.
pub fn merge_laws_hold_by<T, K>(
    a: &T,
    b: &T,
    c: &T,
    project: impl Fn(&T) -> K,
) -> Result<(), String>
where
    T: CvRdt,
    K: PartialEq + Debug,
{
    // commutativity
    let mut ab = a.clone();
    ab.merge(b);
    let mut ba = b.clone();
    ba.merge(a);
    if project(&ab) != project(&ba) {
        return Err(format!(
            "merge not commutative: {:?} vs {:?}",
            project(&ab),
            project(&ba)
        ));
    }
    // associativity
    let mut ab_c = ab.clone();
    ab_c.merge(c);
    let mut bc = b.clone();
    bc.merge(c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    if project(&ab_c) != project(&a_bc) {
        return Err(format!(
            "merge not associative: {:?} vs {:?}",
            project(&ab_c),
            project(&a_bc)
        ));
    }
    // idempotence
    let mut aa = a.clone();
    aa.merge(a);
    if project(&aa) != project(a) {
        return Err(format!(
            "merge not idempotent: {:?} vs {:?}",
            project(&aa),
            project(a)
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct MaxInt(u64);
    impl CvRdt for MaxInt {
        fn merge(&mut self, other: &Self) {
            self.0 = self.0.max(other.0);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    struct BadSum(u64);
    impl CvRdt for BadSum {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0; // not idempotent
        }
    }

    #[test]
    fn laws_accept_max_lattice() {
        assert!(merge_laws_hold(&MaxInt(1), &MaxInt(5), &MaxInt(3)).is_ok());
    }

    #[test]
    fn laws_reject_non_idempotent_merge() {
        assert!(merge_laws_hold(&BadSum(1), &BadSum(2), &BadSum(3)).is_err());
    }
}
