//! The Two-Phase Set (2P-Set, a.k.a. U-Set) — §VI: two G-Sets, a
//! white list of insertions and a black list of deletions; an element
//! once deleted can never be inserted again.

use crate::traits::{CvRdt, SetReplica};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A 2P-Set replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TwoPhaseSet<V: Ord + Clone> {
    added: BTreeSet<V>,
    removed: BTreeSet<V>,
}

/// Broadcast message of the op-based 2P-Set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoPhaseMsg<V> {
    /// Insert an element (first phase).
    Add(V),
    /// Tombstone an element (second phase, permanent).
    Remove(V),
}

impl<V: Ord + Clone + Debug> TwoPhaseSet<V> {
    /// An empty 2P-Set.
    pub fn new() -> Self {
        TwoPhaseSet {
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }
}

impl<V: Ord + Clone + Debug> SetReplica<V> for TwoPhaseSet<V> {
    type Msg = TwoPhaseMsg<V>;

    fn insert(&mut self, v: V) -> Self::Msg {
        self.added.insert(v.clone());
        TwoPhaseMsg::Add(v)
    }

    fn delete(&mut self, v: V) -> Self::Msg {
        self.removed.insert(v.clone());
        TwoPhaseMsg::Remove(v)
    }

    fn on_message(&mut self, msg: &Self::Msg) {
        match msg {
            TwoPhaseMsg::Add(v) => {
                self.added.insert(v.clone());
            }
            TwoPhaseMsg::Remove(v) => {
                self.removed.insert(v.clone());
            }
        }
    }

    fn read(&self) -> BTreeSet<V> {
        self.added.difference(&self.removed).cloned().collect()
    }

    fn footprint(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

impl<V: Ord + Clone> CvRdt for TwoPhaseSet<V> {
    fn merge(&mut self, other: &Self) {
        self.added.extend(other.added.iter().cloned());
        self.removed.extend(other.removed.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_laws_hold;

    #[test]
    fn delete_is_permanent() {
        let mut s = TwoPhaseSet::new();
        s.insert(1);
        s.delete(1);
        s.insert(1); // too late: tombstoned forever
        assert!(s.read().is_empty());
    }

    #[test]
    fn remove_wins_concurrent_conflicts() {
        // Unlike the OR-set, a concurrent insert/delete pair resolves
        // to absent.
        let mut a = TwoPhaseSet::new();
        let mut b = TwoPhaseSet::new();
        let ma = a.insert(7);
        let mb = b.delete(7);
        a.on_message(&mb);
        b.on_message(&ma);
        assert_eq!(a.read(), b.read());
        assert!(a.read().is_empty());
    }

    #[test]
    fn converges_under_reordered_deliveries() {
        let mut a = TwoPhaseSet::new();
        let msgs = [a.insert(1), a.delete(1), a.insert(2)];
        let mut b = TwoPhaseSet::new();
        for m in msgs.iter().rev() {
            b.on_message(m);
        }
        assert_eq!(a.read(), b.read());
    }

    #[test]
    fn merge_laws() {
        let mut a = TwoPhaseSet::new();
        a.insert(1);
        a.delete(2);
        let mut b = TwoPhaseSet::new();
        b.insert(2);
        let mut c = TwoPhaseSet::new();
        c.insert(3);
        c.delete(3);
        assert_eq!(merge_laws_hold(&a, &b, &c), Ok(()));
    }

    #[test]
    fn footprint_counts_tombstones() {
        let mut s = TwoPhaseSet::new();
        s.insert(1);
        s.delete(1);
        assert_eq!(s.read().len(), 0);
        assert_eq!(s.footprint(), 2);
    }
}
