//! Property tests for the §VI baselines: delivery-order independence
//! (eventual consistency), state-based merge vs op-based delivery
//! equivalence, and the OR-set against an insert-wins reference model.

use proptest::prelude::*;
use std::collections::BTreeSet;
use uc_crdt::{CSet, CvRdt, GSet, LwwSet, OrSet, PnSet, SetReplica, TwoPhaseSet};

#[derive(Clone, Copy, Debug)]
enum Cmd {
    Ins(u8),
    Del(u8),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![(0u8..5).prop_map(Cmd::Ins), (0u8..5).prop_map(Cmd::Del)]
}

/// Apply commands on a producer replica, then deliver the message
/// stream to a consumer in a permuted order; both reads must agree.
fn order_independent<S, T>(mut producer: S, mut consumer: T, cmds: &[Cmd], perm_seed: u64) -> bool
where
    S: SetReplica<u8>,
    T: SetReplica<u8, Msg = S::Msg>,
{
    let msgs: Vec<S::Msg> = cmds
        .iter()
        .map(|c| match c {
            Cmd::Ins(v) => producer.insert(*v),
            Cmd::Del(v) => producer.delete(*v),
        })
        .collect();
    let mut order: Vec<usize> = (0..msgs.len()).collect();
    let mut s = perm_seed;
    for i in (1..order.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s >> 33) as usize % (i + 1));
    }
    for &i in &order {
        consumer.on_message(&msgs[i]);
    }
    producer.read() == consumer.read()
}

/// Insert-wins reference model: an element is present iff some insert
/// of it was not observed by any delete — for the *producer-sequential*
/// case this degenerates to the sequential set, which the OR-set must
/// match exactly when all ops come from one replica.
fn sequential_model(cmds: &[Cmd]) -> BTreeSet<u8> {
    let mut s = BTreeSet::new();
    for c in cmds {
        match c {
            Cmd::Ins(v) => {
                s.insert(*v);
            }
            Cmd::Del(v) => {
                s.remove(v);
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All op-based sets are delivery-order independent (they are
    /// eventually consistent by design).
    #[test]
    fn or_set_order_independent(cmds in proptest::collection::vec(cmd(), 0..25), seed: u64) {
        prop_assert!(order_independent(OrSet::new(0), OrSet::new(1), &cmds, seed));
    }

    #[test]
    fn two_phase_order_independent(cmds in proptest::collection::vec(cmd(), 0..25), seed: u64) {
        prop_assert!(order_independent(
            TwoPhaseSet::new(),
            TwoPhaseSet::new(),
            &cmds,
            seed
        ));
    }

    #[test]
    fn pn_set_order_independent(cmds in proptest::collection::vec(cmd(), 0..25), seed: u64) {
        prop_assert!(order_independent(PnSet::new(), PnSet::new(), &cmds, seed));
    }

    #[test]
    fn c_set_order_independent(cmds in proptest::collection::vec(cmd(), 0..25), seed: u64) {
        prop_assert!(order_independent(CSet::new(), CSet::new(), &cmds, seed));
    }

    #[test]
    fn lww_set_order_independent(cmds in proptest::collection::vec(cmd(), 0..25), seed: u64) {
        prop_assert!(order_independent(LwwSet::new(0), LwwSet::new(1), &cmds, seed));
    }

    /// Single-writer sequential equivalence: with no concurrency, the
    /// OR-set, LWW-set and C-Set all behave like the plain set.
    #[test]
    fn sequential_runs_match_plain_set(cmds in proptest::collection::vec(cmd(), 0..25)) {
        let model = sequential_model(&cmds);
        let mut or = OrSet::new(0);
        let mut lww = LwwSet::new(0);
        let mut c = CSet::new();
        for op in &cmds {
            match op {
                Cmd::Ins(v) => {
                    or.insert(*v);
                    lww.insert(*v);
                    c.insert(*v);
                }
                Cmd::Del(v) => {
                    or.delete(*v);
                    lww.delete(*v);
                    c.delete(*v);
                }
            }
        }
        prop_assert_eq!(or.read(), model.clone(), "OR-set");
        prop_assert_eq!(lww.read(), model.clone(), "LWW-set");
        prop_assert_eq!(c.read(), model, "C-Set");
        // (2P-Set and PN-Set intentionally deviate sequentially:
        // re-insertion after delete / negative counts.)
    }

    /// State-based merge equals op-based delivery for the OR-set: a
    /// replica that merges the producer's final state reads the same
    /// as one that consumed the op stream.
    #[test]
    fn or_set_merge_equals_op_delivery(cmds in proptest::collection::vec(cmd(), 0..20)) {
        let mut producer = OrSet::new(0);
        let mut op_consumer = OrSet::new(1);
        let msgs: Vec<_> = cmds
            .iter()
            .map(|c| match c {
                Cmd::Ins(v) => producer.insert(*v),
                Cmd::Del(v) => producer.delete(*v),
            })
            .collect();
        for m in &msgs {
            op_consumer.on_message(m);
        }
        let mut merge_consumer = OrSet::new(2);
        merge_consumer.merge(&producer);
        prop_assert_eq!(op_consumer.read(), merge_consumer.read());
    }

    /// Merge laws on randomly generated OR-set states (beyond the unit
    /// tests' fixed cases).
    #[test]
    fn or_set_random_merge_laws(
        ca in proptest::collection::vec(cmd(), 0..10),
        cb in proptest::collection::vec(cmd(), 0..10),
        cc in proptest::collection::vec(cmd(), 0..10),
    ) {
        fn mk(pid: u32, cmds: &[Cmd]) -> OrSet<u8> {
            let mut s = OrSet::new(pid);
            for c in cmds {
                match c {
                    Cmd::Ins(v) => {
                        s.insert(*v);
                    }
                    Cmd::Del(v) => {
                        s.delete(*v);
                    }
                }
            }
            s
        }
        let a = mk(0, &ca);
        let b = mk(1, &cb);
        let c = mk(2, &cc);
        // commutativity on reads
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.read(), ba.read());
        // associativity on reads
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.read(), a_bc.read());
        // idempotence
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(aa.read(), a.read());
    }

    /// G-Set convergence from arbitrary partial exchanges: any gossip
    /// pattern that eventually shares all states converges.
    #[test]
    fn gset_gossip_converges(values in proptest::collection::vec(0u8..20, 1..15), seed: u64) {
        let mut replicas: Vec<GSet<u8>> = (0..3).map(|_| GSet::new()).collect();
        let mut s = seed;
        for v in &values {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            let i = (s >> 33) as usize % 3;
            replicas[i].insert(*v);
        }
        // Full pairwise merge in both directions.
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let other = replicas[j].clone();
                    replicas[i].merge(&other);
                }
            }
        }
        // One more round so late merges propagate transitively.
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let other = replicas[j].clone();
                    replicas[i].merge(&other);
                }
            }
        }
        let expect: BTreeSet<u8> = values.iter().copied().collect();
        for r in &replicas {
            prop_assert_eq!(r.read(), expect.clone());
        }
    }
}
