//! Cache consistency (Goodman 1991), which §VI cites to place the
//! OR-set: "It can be seen as a cache consistent set \[21\] that, in
//! some cases may have a better space complexity than update
//! consistency."
//!
//! Cache consistency is sequential consistency **per location**: for
//! every register `x`, the sub-history of operations touching `x`
//! (writes to `x`, reads of `x`) admits a linearization in `L(O)` —
//! but different registers' linearizations need not be mutually
//! consistent. This checker implements the criterion for the shared
//! memory object of Algorithm 2, the one UQ-ADT in this repo with a
//! natural location structure.

use crate::config::CheckConfig;
use crate::sc::check_sc_with;
use crate::verdict::{Verdict, Witness};
use std::fmt::Debug;
use std::hash::Hash;
use uc_history::downset::{self, Mask};
use uc_history::{project, History};
use uc_spec::{MemoryAdt, Op};

/// Decide cache consistency for a shared-memory history with the
/// default budget.
pub fn check_cache_memory<X, V>(h: &History<MemoryAdt<X, V>>) -> Verdict
where
    X: Clone + Debug + Eq + Ord + Hash,
    V: Clone + Debug + Eq + Hash,
{
    check_cache_memory_with(h, &CheckConfig::default())
}

/// Decide cache consistency with an explicit budget.
pub fn check_cache_memory_with<X, V>(h: &History<MemoryAdt<X, V>>, cfg: &CheckConfig) -> Verdict
where
    X: Clone + Debug + Eq + Ord + Hash,
    V: Clone + Debug + Eq + Hash,
{
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "cache consistency with ω-updates is outside the decision procedure".into(),
        );
    }
    // Collect the registers mentioned anywhere.
    let mut registers: Vec<X> = Vec::new();
    for e in h.ids() {
        let x = match h.label(e) {
            Op::Update(u) => &u.register,
            Op::Query(q) => &q.input.0,
        };
        if !registers.contains(x) {
            registers.push(x.clone());
        }
    }
    let mut witnesses = Vec::new();
    for x in &registers {
        // Project onto the operations touching x.
        let mut mask: Mask = 0;
        for e in h.ids() {
            let touches = match h.label(e) {
                Op::Update(u) => &u.register == x,
                Op::Query(q) => &q.input.0 == x,
            };
            if touches {
                mask |= downset::bit(e.idx());
            }
        }
        let sub = project::restrict(h, mask);
        match check_sc_with(&sub, cfg) {
            Verdict::Holds(Witness::FullLinearization(lin)) => {
                witnesses.push((format!("{x:?}"), lin));
            }
            Verdict::Holds(_) => unreachable!("SC returns FullLinearization"),
            Verdict::Fails(_) => {
                return Verdict::Fails(format!(
                    "register {x:?} has no per-location sequential explanation"
                ))
            }
            Verdict::Unsupported(msg) => return Verdict::Unsupported(msg),
        }
    }
    Verdict::Holds(Witness::Trivial(format!(
        "per-register linearizations found for {} register(s)",
        witnesses.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_history::HistoryBuilder;
    use uc_spec::{MemoryQuery, MemoryUpdate};

    type M = MemoryAdt<&'static str, u32>;

    fn w(x: &'static str, v: u32) -> MemoryUpdate<&'static str, u32> {
        MemoryUpdate {
            register: x,
            value: v,
        }
    }

    #[test]
    fn per_register_sequential_histories_are_cache_consistent() {
        // Classic cache-consistent-but-not-SC pattern: each register's
        // projection is sequential, but the cross-register dependency
        // cycle breaks global SC.
        // p0: w(x,1) · r(y)/0 ; p1: w(y,1) · r(x)/0
        // Global SC fails (both reads see the other's write missing),
        // per-register SC holds: on x, r(x)/0 before w(x,1); on y,
        // r(y)/0 before w(y,1).
        let mut b = HistoryBuilder::new(M::new(0));
        let [p0, p1] = b.processes();
        b.update(p0, w("x", 1));
        b.query(p0, MemoryQuery("y"), 0);
        b.update(p1, w("y", 1));
        b.query(p1, MemoryQuery("x"), 0);
        let h = b.build().unwrap();
        assert!(check_cache_memory(&h).holds());
        assert!(crate::sc::check_sc(&h).fails(), "the point: CC ≠ SC");
    }

    #[test]
    fn per_register_violation_fails() {
        // A single process reads its own write wrongly: even the
        // per-register projection has no explanation.
        let mut b = HistoryBuilder::new(M::new(0));
        let p0 = b.process();
        b.update(p0, w("x", 1));
        b.query(p0, MemoryQuery("x"), 0); // lost its own write
        let h = b.build().unwrap();
        assert!(check_cache_memory(&h).fails());
    }

    #[test]
    fn cross_register_reorderings_are_allowed() {
        // Reads observe different registers' writes in inconsistent
        // orders — cache consistency does not care.
        let mut b = HistoryBuilder::new(M::new(0));
        let [p0, p1, p2] = b.processes();
        b.update(p0, w("x", 1));
        b.update(p0, w("y", 1));
        // p1 sees y's write but not x's…
        b.query(p1, MemoryQuery("y"), 1);
        b.query(p1, MemoryQuery("x"), 0);
        // …p2 the other way around.
        b.query(p2, MemoryQuery("x"), 1);
        b.query(p2, MemoryQuery("y"), 0);
        let h = b.build().unwrap();
        assert!(check_cache_memory(&h).holds());
        // (This pattern is not even PC-explainable for a single chain
        // spanning both registers in SC terms; cache consistency's
        // per-location view accepts it.)
        assert!(crate::sc::check_sc(&h).fails());
    }

    #[test]
    fn sc_implies_cache_consistency() {
        // A genuinely sequential history is also cache consistent.
        let mut b = HistoryBuilder::new(M::new(0));
        let [p0, p1] = b.processes();
        b.update(p0, w("x", 1));
        b.query(p1, MemoryQuery("x"), 1);
        b.update(p1, w("x", 2));
        b.omega_query(p0, MemoryQuery("x"), 2);
        let h = b.build().unwrap();
        assert!(crate::sc::check_sc(&h).holds());
        assert!(check_cache_memory(&h).holds());
    }

    #[test]
    fn omega_tails_participate() {
        let mut b = HistoryBuilder::new(M::new(0));
        let [p0, p1] = b.processes();
        b.update(p0, w("x", 1));
        b.omega_query(p0, MemoryQuery("x"), 1);
        b.omega_query(p1, MemoryQuery("x"), 2); // never written → fails
        let h = b.build().unwrap();
        assert!(check_cache_memory(&h).fails());
    }
}
