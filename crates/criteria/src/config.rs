//! Search budgets for the decision procedures.
//!
//! Deciding the search-based criteria is NP-hard in general (they
//! quantify over linearizations or visibility relations), so every
//! checker carries a node budget and reports
//! [`crate::Verdict::Unsupported`] instead of running away when a
//! pathological history exceeds it.

/// Budget and limits shared by the checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maximum number of search nodes (partial linearizations /
    /// visibility assignments) a single check may explore.
    pub max_nodes: u64,
    /// Maximum number of maximal chains enumerated for pipelined
    /// consistency.
    pub max_chains: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_nodes: 4_000_000,
            max_chains: 4_096,
        }
    }
}

impl CheckConfig {
    /// A tight budget, for tests that exercise the budget path.
    pub fn tiny() -> Self {
        CheckConfig {
            max_nodes: 16,
            max_chains: 2,
        }
    }
}

/// Node counter handed down the recursive searches (public because
/// the reusable visibility enumeration in [`crate::vis`] takes one).
#[derive(Debug)]
pub struct Budget {
    remaining: u64,
}

impl Budget {
    /// A budget holding `cfg.max_nodes` nodes.
    pub fn new(cfg: &CheckConfig) -> Self {
        Budget {
            remaining: cfg.max_nodes,
        }
    }

    /// Spend one node; `false` once exhausted.
    #[inline]
    pub fn spend(&mut self) -> bool {
        if self.remaining == 0 {
            false
        } else {
            self.remaining -= 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generous() {
        let c = CheckConfig::default();
        assert!(c.max_nodes >= 1_000_000);
    }

    #[test]
    fn budget_exhausts() {
        let mut b = Budget::new(&CheckConfig {
            max_nodes: 2,
            max_chains: 1,
        });
        assert!(b.spend());
        assert!(b.spend());
        assert!(!b.spend());
    }
}
