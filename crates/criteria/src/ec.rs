//! Eventual consistency (Definition 5).
//!
//! `H` is eventually consistent if `U_H` is infinite, or some state
//! `s` is consistent with all but finitely many queries. In the
//! ω-event model the finitely many exempt queries are exactly the
//! non-ω ones plus any finite prefix, so the check reduces to *state
//! abduction* over the ω-queries: `∃s ∀ ω-query qi/qo : G(s,qi)=qo`.

use crate::verdict::{Verdict, Witness};
use uc_history::History;
use uc_spec::StateAbduction;

/// Decide eventual consistency.
pub fn check_ec<A: StateAbduction>(h: &History<A>) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Holds(Witness::Trivial(
            "U_H is infinite (ω-update present)".into(),
        ));
    }
    let obs: Vec<(A::QueryIn, A::QueryOut)> = h
        .query_ids()
        .filter(|&q| h.event(q).omega)
        .map(|q| {
            let query = h.query_of(q);
            (query.input.clone(), query.output.clone())
        })
        .collect();
    match h.adt().abduce_checked(&obs) {
        Some(s) => Verdict::Holds(Witness::ConvergedState(format!("{s:?}"))),
        None => Verdict::Fails(format!(
            "no state is consistent with the {} ω-query observation(s)",
            obs.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    #[test]
    fn paper_figures_classified() {
        for fig in paper::all_figures() {
            let got = check_ec(&fig.history);
            assert_eq!(
                got.holds(),
                fig.expected.ec,
                "{}: expected EC={}, got {:?}",
                fig.name,
                fig.expected.ec,
                got
            );
        }
    }

    #[test]
    fn diverging_omega_tails_fail() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.omega_query(p0, SetQuery::Read, BTreeSet::from([1]));
        b.omega_query(p1, SetQuery::Read, BTreeSet::from([2]));
        let h = b.build().unwrap();
        assert!(check_ec(&h).fails());
    }

    #[test]
    fn finite_history_vacuously_ec() {
        // Only finite queries: all of them may be exempted.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(1));
        b.query(p, SetQuery::Read, BTreeSet::from([42])); // wildly wrong, but finite
        let h = b.build().unwrap();
        assert!(check_ec(&h).holds());
    }

    #[test]
    fn omega_update_is_trivially_ec() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.omega_update(p0, SetUpdate::Insert(1));
        b.omega_query(p1, SetQuery::Read, BTreeSet::from([9])); // inconsistent, but U_H infinite
        let h = b.build().unwrap();
        let v = check_ec(&h);
        assert!(v.holds());
        assert!(matches!(v.witness(), Some(Witness::Trivial(_))));
    }

    #[test]
    fn witness_state_matches_observations() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(7));
        b.omega_query(p, SetQuery::Read, BTreeSet::from([7]));
        let h = b.build().unwrap();
        match check_ec(&h) {
            Verdict::Holds(Witness::ConvergedState(s)) => assert_eq!(s, "{7}"),
            other => panic!("unexpected verdict {other:?}"),
        }
    }
}
