//! Shared folds over the update total order.
//!
//! Definition 3's arbitration orders updates by Lamport stamp
//! `(clock, pid)`. Both the offline snapshot checker
//! ([`crate::snapshot`]) and the streaming monitor ([`crate::online`])
//! reduce to the same two primitives: collapse a (possibly duplicated,
//! out-of-order) trace into that total order, and fold a prefix of it
//! per key. Keeping them here gives the offline and online procedures
//! one derivation point, so they cannot drift.

use std::collections::BTreeMap;
use uc_spec::UqAdt;

/// The update total order: Lamport stamp `(clock, pid)` → the `(key,
/// update)` it arbitrates. `BTreeMap` iteration *is* the total order.
pub type TotalOrder<'a, U> = BTreeMap<(u64, u32), (u64, &'a U)>;

/// Collapse a trace of stamped updates into the total order.
///
/// Duplicate deliveries of the same stamped update collapse silently
/// (adversarial schedules redeliver); two *different* updates sharing
/// a stamp violate the Lamport-uniqueness invariant and return the
/// colliding stamp as the error.
pub fn collapse_total_order<'a, U: PartialEq>(
    updates: impl IntoIterator<Item = (u64, u64, u32, &'a U)>,
) -> Result<TotalOrder<'a, U>, (u64, u32)> {
    let mut order: TotalOrder<'a, U> = BTreeMap::new();
    for (key, clock, pid, update) in updates {
        match order.get(&(clock, pid)) {
            None => {
                order.insert((clock, pid), (key, update));
            }
            Some((prev_key, prev)) => {
                if *prev_key != key || **prev != *update {
                    return Err((clock, pid));
                }
            }
        }
    }
    Ok(order)
}

/// Fold each key's updates stamped `clock ≤ cut`, in total order, from
/// the initial state. Keys with no update in the prefix are absent.
pub fn fold_prefix<A: UqAdt>(
    adt: &A,
    order: &TotalOrder<'_, A::Update>,
    cut: u64,
) -> BTreeMap<u64, A::State> {
    let mut states: BTreeMap<u64, A::State> = BTreeMap::new();
    for (&(clock, _), &(key, update)) in order.range(..=(cut, u32::MAX)) {
        debug_assert!(clock <= cut);
        let state = states.entry(key).or_insert_with(|| adt.initial());
        adt.apply(state, update);
    }
    states
}

/// Apply an already-ordered run of updates to a state in place.
pub fn apply_ordered<'a, A: UqAdt>(
    adt: &A,
    state: &mut A::State,
    updates: impl IntoIterator<Item = &'a A::Update>,
) where
    A::Update: 'a,
{
    for u in updates {
        adt.apply(state, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_spec::{CounterAdt, CounterUpdate};

    #[test]
    fn collapse_dedupes_and_detects_collisions() {
        let a = CounterUpdate::Add(1);
        let b = CounterUpdate::Add(2);
        let ok = collapse_total_order([(0, 1, 0, &a), (0, 1, 0, &a), (1, 2, 0, &b)]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = collapse_total_order([(0, 1, 0, &a), (0, 1, 0, &b)]);
        assert_eq!(err.unwrap_err(), (1, 0));
    }

    #[test]
    fn prefix_fold_respects_cut_and_keys() {
        let adt = CounterAdt;
        let u5 = CounterUpdate::Add(5);
        let u7 = CounterUpdate::Add(7);
        let u1 = CounterUpdate::Add(1);
        let order = collapse_total_order([(0, 1, 0, &u5), (1, 2, 0, &u7), (0, 3, 1, &u1)]).unwrap();
        let at2 = fold_prefix(&adt, &order, 2);
        assert_eq!(at2.get(&0), Some(&5));
        assert_eq!(at2.get(&1), Some(&7));
        let at3 = fold_prefix(&adt, &order, 3);
        assert_eq!(at3.get(&0), Some(&6));
        assert!(fold_prefix(&adt, &order, 0).is_empty());
    }
}
