//! Strong eventual consistency **for the Insert-wins set**
//! (Definition 10) — the concurrent specification of the OR-set.
//!
//! On top of SEC for the set `S_Val` (same visibility relation!), the
//! visibility must explain every read `R/s` by the insert-wins rule:
//!
//! > `x ∈ s ⟺ ∃u ∈ vis(q, I(x)) ∀u′ ∈ vis(q, D(x)) : ¬(u vis→ u′)`
//!
//! i.e. an element is present iff some visible insertion of it is not
//! itself visible at (hence not "observed by") any visible deletion.
//! Because the rule mentions `u vis→ u′` between *updates*, this
//! checker enumerates visibility at update events too — the extra
//! degree of freedom the paper exploits when it notes the OR-set run
//! of Fig. 1b converges to `{1,2}`.

use crate::config::{Budget, CheckConfig};
use crate::sec::strong_convergence;
use crate::verdict::{Verdict, VisibilityWitness, Witness};
use crate::vis::{is_acyclic, witness_pairs, EnumOutcome, VisAssignment, VisEnum};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;
use uc_history::downset;
use uc_history::History;
use uc_spec::{SetAdt, SetUpdate};

/// Decide SEC-for-the-Insert-wins-set with the default budget.
pub fn check_insert_wins<V>(h: &History<SetAdt<V>>) -> Verdict
where
    V: Clone + Debug + Eq + Ord + Hash,
{
    check_insert_wins_with(h, &CheckConfig::default())
}

/// Decide SEC-for-the-Insert-wins-set with an explicit budget.
pub fn check_insert_wins_with<V>(h: &History<SetAdt<V>>, cfg: &CheckConfig) -> Verdict
where
    V: Clone + Debug + Eq + Ord + Hash,
{
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "insert-wins checking with ω-updates is outside the decision procedure".into(),
        );
    }
    let mut budget = Budget::new(cfg);
    let mut vis_enum = VisEnum::new(h);
    vis_enum.enumerate_update_visibility = true;
    let outcome = vis_enum.search(
        &mut budget,
        |e, v| {
            // Early admission: the insert-wins rule can be evaluated as
            // soon as the query's visible set is chosen, except that
            // `u vis→ u′` for updates u′ chosen *later* in topo order
            // is not yet known — but topo order guarantees all
            // ↦-predecessors are fixed, and vis(q,·) only references
            // updates visible at q, whose mutual visibility may involve
            // later-fixed entries. So defer to `complete`.
            let _ = (e, v);
            true
        },
        |assignment| {
            strong_convergence(h, assignment)
                && insert_wins_rule(h, assignment)
                && is_acyclic(h, assignment, None)
        },
    );
    match outcome {
        EnumOutcome::Found(a) => Verdict::Holds(Witness::Visibility(VisibilityWitness {
            visible: witness_pairs(h, &a),
        })),
        EnumOutcome::Exhausted => Verdict::Fails(
            "no visibility assignment satisfies the insert-wins concurrent specification".into(),
        ),
        EnumOutcome::OutOfBudget => {
            Verdict::Unsupported("insert-wins search budget exceeded".into())
        }
    }
}

/// Definition 10's membership rule, evaluated on a full assignment.
fn insert_wins_rule<V>(h: &History<SetAdt<V>>, assignment: &VisAssignment) -> bool
where
    V: Clone + Debug + Eq + Ord + Hash,
{
    // Universe: every element touched by an update. Elements never
    // inserted visibly can only be absent, which the rule enforces.
    let mut universe: BTreeSet<&V> = BTreeSet::new();
    for u in h.update_ids() {
        universe.insert(h.update_of(u).element());
    }
    for q in h.query_ids() {
        let query = h.query_of(q);
        let s = &query.output;
        let vis_q = assignment.visible[q.idx()];
        for &x in &universe {
            let mut present = false;
            // ∃ visible insert of x not visible at any visible delete
            // of x.
            'ins: for ui in downset::iter(vis_q) {
                let u = uc_history::EventId(ui as u32);
                match h.update_of(u) {
                    SetUpdate::Insert(v) if v == x => {}
                    _ => continue,
                }
                for di in downset::iter(vis_q) {
                    let d = uc_history::EventId(di as u32);
                    match h.update_of(d) {
                        SetUpdate::Delete(v) if v == x => {}
                        _ => continue,
                    }
                    // u vis→ d ⇔ u visible at event d
                    if downset::contains(assignment.visible[d.idx()], ui) {
                        continue 'ins; // this insert was observed by a delete
                    }
                }
                present = true;
                break;
            }
            if present != s.contains(x) {
                return false;
            }
        }
        // Elements outside the universe may not appear in s.
        if !s.iter().all(|x| universe.contains(x)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::SetQuery;

    fn set(vals: &[u32]) -> BTreeSet<u32> {
        vals.iter().copied().collect()
    }

    #[test]
    fn fig1b_is_insert_wins() {
        // The paper: concurrent I/D pairs with insertions winning
        // converge to {1,2} on an OR-set — Fig. 1b is exactly that run.
        let fig = paper::fig1b();
        assert!(check_insert_wins(&fig.history).holds());
    }

    #[test]
    fn fig1a_is_not_insert_wins() {
        // Not even SEC.
        let fig = paper::fig1a();
        assert!(check_insert_wins(&fig.history).fails());
    }

    #[test]
    fn fig1c_is_not_insert_wins() {
        // R/∅ after a visible I(1) with no deletes contradicts the
        // membership rule.
        let fig = paper::fig1c();
        assert!(check_insert_wins(&fig.history).fails());
    }

    #[test]
    fn fig1d_is_insert_wins() {
        // Prop. 3: SUC ⇒ SEC-for-Insert-wins; Fig. 1d is SUC.
        let fig = paper::fig1d();
        assert!(check_insert_wins(&fig.history).holds());
    }

    #[test]
    fn observed_delete_removes() {
        // Sequential I(1) then D(1) on one process: the delete observes
        // the insert, so reads of {1} afterwards are illegal and ∅ is
        // required.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(1));
        b.update(p, SetUpdate::Delete(1));
        b.omega_query(p, SetQuery::Read, set(&[]));
        let h = b.build().unwrap();
        assert!(check_insert_wins(&h).holds());

        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(1));
        b.update(p, SetUpdate::Delete(1));
        b.omega_query(p, SetQuery::Read, set(&[1]));
        let h = b.build().unwrap();
        assert!(check_insert_wins(&h).fails());
    }

    #[test]
    fn concurrent_insert_beats_delete() {
        // p0: I(1); p1: D(1) concurrently; both converge to {1} —
        // insert wins exactly when the delete did not observe it.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p0, SetQuery::Read, set(&[1]));
        b.update(p1, SetUpdate::Delete(1));
        b.omega_query(p1, SetQuery::Read, set(&[1]));
        let h = b.build().unwrap();
        assert!(check_insert_wins(&h).holds());
    }

    #[test]
    fn phantom_elements_rejected() {
        // A read containing an element never inserted cannot be
        // explained.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(1));
        b.omega_query(p, SetQuery::Read, set(&[1, 99]));
        let h = b.build().unwrap();
        assert!(check_insert_wins(&h).fails());
    }
}
