//! # uc-criteria — decision procedures for the paper's consistency
//! criteria
//!
//! A *consistency criterion* (Definition 4) maps a UQ-ADT to the set
//! of distributed histories it allows. This crate decides membership
//! for every criterion the paper discusses:
//!
//! | module | criterion | paper |
//! |--------|-----------|-------|
//! | [`ec`] | eventual consistency | Definition 5 |
//! | [`sec`] | strong eventual consistency | Definition 6 |
//! | [`pc`] | pipelined consistency (PRAM for UQ-ADTs) | Definition 7 |
//! | [`uc`] | update consistency | Definition 8 |
//! | [`suc`] | strong update consistency | Definition 9 |
//! | [`insert_wins`] | SEC for the Insert-wins set (OR-set spec) | Definition 10 |
//! | [`sc`] | sequential consistency (calibration) | §VIII |
//! | [`cache`] | cache consistency for shared memory (Goodman) | §VI's OR-set remark |
//! | [`snapshot`] | snapshot consistency for recorded multi-key cuts | partitionable follow-up |
//!
//! [`fold`] holds the shared total-order collapse and prefix-fold
//! primitives, and [`online`] recasts the UC/EC/SEC/SNAP folds as a
//! streaming, windowed [`OnlineMonitor`] that a live store samples
//! into — the offline matrix as a production canary.
//!
//! The search-based procedures are exact but exponential (the
//! underlying problems quantify over linearizations and visibility
//! relations); each carries a [`CheckConfig`] budget and answers
//! [`Verdict::Unsupported`] rather than diverging. For histories
//! produced by Algorithm 1 at scale, [`suc::verify_witness`] validates
//! strong update consistency in polynomial time from the replica's own
//! timestamp order and delivery logs — mirroring how Proposition 4's
//! proof constructs the witness instead of searching for it.
//!
//! [`matrix`] assembles the Fig. 1/Fig. 2 classification table
//! (experiment E1); the paper module of `uc-history` supplies the
//! histories and the expected verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod ec;
pub mod fold;
pub mod insert_wins;
pub mod matrix;
pub mod online;
pub mod pc;
pub mod sc;
pub mod sec;
pub mod snapshot;
pub mod suc;
pub mod uc;
pub mod verdict;
pub mod vis;

pub use cache::check_cache_memory;
pub use config::CheckConfig;
pub use ec::check_ec;
pub use insert_wins::check_insert_wins;
pub use online::{MonitorConfig, MonitorStats, OnlineMonitor};
pub use pc::check_pc;
pub use sc::check_sc;
pub use sec::check_sec;
pub use snapshot::{check_snapshot_consistency, CutUpdate, RecordedCut};
pub use suc::{check_suc, verify_witness, SucWitness};
pub use uc::check_uc;
pub use verdict::{Verdict, Witness};
