//! Classification matrices: run every checker over a batch of named
//! histories and render the table the paper's Fig. 1/Fig. 2 captions
//! describe. Used by the `figures` bin of `uc-bench` (experiment E1).

use crate::config::CheckConfig;
use crate::verdict::Verdict;
use crate::{ec, pc, sc, sec, suc, uc};
use std::fmt::Write;
use uc_history::History;
use uc_spec::StateAbduction;

/// The criteria a classification row covers, in table-column order.
/// `SNAP` (snapshot consistency, [`crate::snapshot`]) is decided on
/// recorded cut traces; plain histories carry no cuts, so
/// [`classify`] reports it as unsupported there.
pub const CRITERIA: [&str; 7] = ["EC", "SEC", "PC", "UC", "SUC", "SC", "SNAP"];

/// One classified history.
#[derive(Clone, Debug)]
pub struct Row {
    /// Display name (e.g. `"Fig. 1a"`).
    pub name: String,
    /// Free-text annotation (e.g. the paper's caption).
    pub caption: String,
    /// Verdicts in [`CRITERIA`] order.
    pub verdicts: Vec<Verdict>,
}

impl Row {
    /// The verdict for a named criterion.
    pub fn verdict(&self, criterion: &str) -> Option<&Verdict> {
        CRITERIA
            .iter()
            .position(|c| *c == criterion)
            .map(|i| &self.verdicts[i])
    }
}

/// Classify one history against all criteria.
pub fn classify<A: StateAbduction>(
    name: &str,
    caption: &str,
    h: &History<A>,
    cfg: &CheckConfig,
) -> Row {
    Row {
        name: name.to_string(),
        caption: caption.to_string(),
        verdicts: vec![
            ec::check_ec(h),
            sec::check_sec_with(h, cfg),
            pc::check_pc_with(h, cfg),
            uc::check_uc_with(h, cfg),
            suc::check_suc_with(h, cfg),
            sc::check_sc_with(h, cfg),
            Verdict::Unsupported(
                "snapshot consistency is decided on recorded cut traces \
                 (see snapshot::check_snapshot_consistency), which histories do not carry"
                    .into(),
            ),
        ],
    }
}

/// Render rows as an aligned text table.
pub fn render(rows: &[Row]) -> String {
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(["history".len()])
        .max()
        .unwrap_or(8);
    let mut out = String::new();
    let _ = write!(out, "{:<name_w$}", "history");
    for c in CRITERIA {
        let _ = write!(out, "  {c:>4}");
    }
    let _ = writeln!(out, "  caption");
    for r in rows {
        let _ = write!(out, "{:<name_w$}", r.name);
        for v in &r.verdicts {
            let _ = write!(out, "  {:>4}", v.cell());
        }
        let _ = writeln!(out, "  {}", r.caption);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_history::paper;

    #[test]
    fn full_matrix_matches_the_paper() {
        // Experiment E1 in miniature: every figure, every criterion.
        let cfg = CheckConfig::default();
        for fig in paper::all_figures() {
            let row = classify(fig.name, fig.caption, &fig.history, &cfg);
            assert_eq!(
                row.verdict("EC").unwrap().holds(),
                fig.expected.ec,
                "{} EC",
                fig.name
            );
            assert_eq!(
                row.verdict("SEC").unwrap().holds(),
                fig.expected.sec,
                "{} SEC",
                fig.name
            );
            assert_eq!(
                row.verdict("PC").unwrap().holds(),
                fig.expected.pc,
                "{} PC",
                fig.name
            );
            assert_eq!(
                row.verdict("UC").unwrap().holds(),
                fig.expected.uc,
                "{} UC",
                fig.name
            );
            assert_eq!(
                row.verdict("SUC").unwrap().holds(),
                fig.expected.suc,
                "{} SUC",
                fig.name
            );
            assert!(row.verdict("SC").unwrap().fails(), "{} SC", fig.name);
        }
    }

    #[test]
    fn render_contains_all_cells() {
        let cfg = CheckConfig::default();
        let fig = paper::fig1d();
        let row = classify(fig.name, fig.caption, &fig.history, &cfg);
        let table = render(&[row]);
        assert!(table.contains("Fig. 1d"));
        assert!(table.contains("EC"));
        assert!(table.contains("yes"));
        assert!(table.contains("no"));
    }

    #[test]
    fn unknown_criterion_lookup_is_none() {
        let cfg = CheckConfig::default();
        let fig = paper::fig1c();
        let row = classify(fig.name, fig.caption, &fig.history, &cfg);
        assert!(row.verdict("XYZ").is_none());
    }
}
