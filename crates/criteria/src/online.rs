//! Streaming consistency monitoring: the offline checkers' folds in
//! incremental, windowed form.
//!
//! The offline procedures in this crate answer "was this trace
//! consistent?" after the fact. [`OnlineMonitor`] answers it *while
//! the system runs*: a store (or each pool worker) feeds it a sampled
//! fraction of its update/query/snapshot traffic, and the monitor
//! maintains, per sampled key, a shadow fold of the update total
//! order — a compacted `base` state plus a sliding window of updates
//! not yet below the stability watermark. Divergence between what the
//! replica serves and what the arbitration order says it should serve
//! surfaces as a violation counter within one tick window instead of
//! at trace end.
//!
//! ## Sampling
//!
//! Sampling is **by key**, not by event: a deterministic hash of
//! `key ^ seed` against `sample_rate` decides whether a key is
//! shadowed, and a shadowed key's *entire* update stream is observed.
//! Per-event sampling would leave holes in the fold and make every
//! comparison a false positive; per-key sampling keeps each shadow
//! complete while still touching only ~`sample_rate` of traffic.
//! Keys that existed before the monitor attached are excluded for the
//! same reason (their prefix was never observed).
//!
//! ## Windows and the stability watermark
//!
//! Each shadow's window is bounded by the stability watermark: the
//! minimum Lamport clock observed across the configured peer set
//! (the same bound `StableGc` compacts under — an update stamped at
//! or below the minimum peer clock can never be preceded by a
//! yet-unseen one, Proposition 4's argument). At every
//! [`OnlineMonitor::tick`], window entries at or below the watermark
//! fold into `base` and their verdicts become final. A window that
//! outgrows `max_window` before stability advances is force-compacted
//! and the shadow marked *lossy*: its checks are skipped (and
//! counted) rather than risk a false positive from an incomplete
//! window.
//!
//! ## What maps to which criterion
//!
//! * **UC** — a sampled query's served state must equal the shadow
//!   fold ([`OnlineMonitor::check_query_state`]).
//! * **EC** — at tick time, a sampled key's materialized state must
//!   equal the shadow fold ([`OnlineMonitor::check_tick_state`]):
//!   convergence to the fold of what was delivered.
//! * **SEC** — two different updates arriving under one stamp break
//!   arbitration uniqueness ([`OnlineMonitor::observe_update`]).
//! * **SNAP** — a recorded cut's per-key state must equal the shadow
//!   fold of the prefix `≤ cut` ([`OnlineMonitor::observe_cut`]).

use crate::fold::apply_ordered;
use crate::verdict::{Verdict, Witness};
use std::collections::{BTreeMap, HashMap, HashSet};
use uc_spec::UqAdt;

/// Configuration for an [`OnlineMonitor`].
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Fraction of keys to shadow in `[0, 1]`. `1.0` shadows every
    /// key; `0.0` disables observation entirely.
    pub sample_rate: f64,
    /// Seed for the key-sampling hash, so two monitors can shadow
    /// disjoint or identical key sets deterministically.
    pub seed: u64,
    /// The pids (normally the whole cluster, own pid included) whose
    /// minimum observed clock is the stability watermark. Leave empty
    /// to never advance stability (windows then only compact lossily
    /// at `max_window`).
    pub peers: Vec<u32>,
    /// Per-key window cap. A window forced past this before stability
    /// advances is compacted and the shadow marked lossy.
    pub max_window: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sample_rate: 1.0,
            seed: 0x5eed_0b5e,
            peers: Vec::new(),
            max_window: 4096,
        }
    }
}

impl MonitorConfig {
    /// Shadow every key (the test/differential configuration).
    pub fn full() -> Self {
        MonitorConfig::default()
    }

    /// Shadow a `rate` fraction of keys.
    pub fn sampled(rate: f64) -> Self {
        MonitorConfig {
            sample_rate: rate,
            ..MonitorConfig::default()
        }
    }

    /// Replace the stability peer set.
    pub fn with_peers(mut self, peers: impl IntoIterator<Item = u32>) -> Self {
        self.peers = peers.into_iter().collect();
        self
    }

    /// Replace the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Counters a monitor streams out as metrics. All monotone except
/// `stable_bound`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Distinct keys currently shadowed.
    pub sampled_keys: u64,
    /// Updates observed into shadow windows (duplicates excluded).
    pub sampled_updates: u64,
    /// Query states compared against shadow folds.
    pub sampled_queries: u64,
    /// Cut states compared against shadow prefix folds.
    pub sampled_cuts: u64,
    /// Query state ≠ shadow fold (update consistency broken).
    pub uc_violations: u64,
    /// Tick-time state ≠ shadow fold (convergence broken).
    pub ec_violations: u64,
    /// One stamp carried two different updates (arbitration broken).
    pub sec_violations: u64,
    /// Cut state ≠ shadow prefix fold (snapshot torn).
    pub snap_violations: u64,
    /// Updates that arrived stamped at or below an already-final
    /// bound. Informational: the engine's dedup floor rejects these
    /// identically, so they are not counted as violations.
    pub below_floor_arrivals: u64,
    /// Window entries force-compacted before stability covered them.
    pub window_evictions: u64,
    /// Shadows marked lossy (checks skipped) by forced compaction.
    pub lossy_keys: u64,
    /// Checks skipped because the shadow was lossy.
    pub skipped_checks: u64,
    /// Window entries whose verdicts became final under the
    /// stability watermark.
    pub finalized_updates: u64,
    /// The current stability watermark.
    pub stable_bound: u64,
    /// Maintenance ticks observed.
    pub ticks: u64,
}

impl MonitorStats {
    /// Sum of all violation classes.
    pub fn total_violations(&self) -> u64 {
        self.uc_violations + self.ec_violations + self.sec_violations + self.snap_violations
    }

    /// True when no violation of any class has been observed.
    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// One sampled key's shadow of the update total order.
#[derive(Clone, Debug)]
struct Shadow<A: UqAdt> {
    /// Fold of every update stamped `clock ≤ base_bound`.
    base: A::State,
    /// The bound below which verdicts are final.
    base_bound: u64,
    /// Updates above the bound, keyed by stamp — `BTreeMap` iteration
    /// is the arbitration order.
    window: BTreeMap<(u64, u32), A::Update>,
    /// Forced compaction happened: the window may be incomplete, so
    /// equality checks are skipped for this key.
    lossy: bool,
}

/// The streaming monitor. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct OnlineMonitor<A: UqAdt> {
    adt: A,
    cfg: MonitorConfig,
    /// `sample_rate` mapped onto the `u64` hash range.
    threshold: u64,
    shadows: HashMap<u64, Shadow<A>>,
    /// Keys that pre-date attachment; never shadowed.
    excluded: HashSet<u64>,
    /// Highest clock observed per peer; min over `cfg.peers` is the
    /// stability watermark.
    peer_clocks: HashMap<u32, u64>,
    stats: MonitorStats,
}

/// splitmix64: the sampling hash. Deterministic, seed-mixed, and good
/// enough to make "rate of keys" hold for clustered key spaces.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<A: UqAdt> OnlineMonitor<A> {
    /// A monitor for `adt` under `cfg`.
    pub fn new(adt: A, cfg: MonitorConfig) -> Self {
        let rate = cfg.sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        OnlineMonitor {
            adt,
            cfg,
            threshold,
            shadows: HashMap::new(),
            excluded: HashSet::new(),
            peer_clocks: HashMap::new(),
            stats: MonitorStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Is `key` in the sampled set (and not excluded)? The threshold
    /// test goes first: at low sampling rates it rejects almost every
    /// key with one multiply-xor round, so the hot ingest path only
    /// pays the `excluded` hash lookup for keys actually in the
    /// sample.
    pub fn sampled(&self, key: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.threshold != u64::MAX && splitmix64(key ^ self.cfg.seed) > self.threshold {
            return false;
        }
        !self.excluded.contains(&key)
    }

    /// Exclude a key that existed before the monitor attached: its
    /// prefix was never observed, so any comparison would be a false
    /// positive.
    pub fn exclude_key(&mut self, key: u64) {
        self.shadows.remove(&key);
        self.excluded.insert(key);
    }

    /// Exclude many pre-existing keys at once.
    pub fn exclude_keys(&mut self, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            self.exclude_key(k);
        }
    }

    /// Observe one stamped update for `key` (local or remote, before
    /// or after the engine applies it — the shadow collapses
    /// duplicates by stamp exactly like the offline checker).
    pub fn observe_update(&mut self, key: u64, clock: u64, pid: u32, update: &A::Update) {
        if !self.sampled(key) {
            return;
        }
        self.observe_own_clock(pid, clock);
        let adt = &self.adt;
        let stats = &mut self.stats;
        let shadow = self.shadows.entry(key).or_insert_with(|| {
            stats.sampled_keys += 1;
            Shadow {
                base: adt.initial(),
                base_bound: 0,
                window: BTreeMap::new(),
                lossy: false,
            }
        });
        if clock <= shadow.base_bound {
            // At or below a final bound. A genuinely new update here
            // is impossible under Lamport stability (it would have to
            // precede an already-stable one), so this is a redelivery
            // the engine's dedup floor drops identically.
            stats.below_floor_arrivals += 1;
            return;
        }
        let overflow = match shadow.window.get(&(clock, pid)) {
            Some(prev) if prev == update => false, // duplicate delivery; idempotent
            Some(_) => {
                // Same stamp, different update: arbitration broken.
                stats.sec_violations += 1;
                false
            }
            None => {
                shadow.window.insert((clock, pid), update.clone());
                stats.sampled_updates += 1;
                shadow.window.len() > self.cfg.max_window
            }
        };
        if overflow {
            self.force_compact(key);
        }
    }

    /// Compare the state a query served against the shadow fold.
    /// Returns false (and counts a UC violation) on divergence.
    pub fn check_query_state(&mut self, key: u64, state: &A::State) -> bool {
        self.check_state(key, state, false)
    }

    /// Tick-time convergence check: compare a sampled key's
    /// materialized state against the shadow fold. Divergence counts
    /// as an EC violation (the replica did not converge to the fold
    /// of what it was delivered).
    pub fn check_tick_state(&mut self, key: u64, state: &A::State) -> bool {
        self.check_state(key, state, true)
    }

    fn check_state(&mut self, key: u64, state: &A::State, tick: bool) -> bool {
        if !self.sampled(key) {
            return true;
        }
        self.stats.sampled_queries += 1;
        let Some(shadow) = self.shadows.get(&key) else {
            // Untouched sampled key: must serve the initial state.
            let ok = *state == self.adt.initial();
            if !ok {
                self.count_violation(tick);
            }
            return ok;
        };
        if shadow.lossy {
            self.stats.skipped_checks += 1;
            return true;
        }
        let mut expected = shadow.base.clone();
        apply_ordered(&self.adt, &mut expected, shadow.window.values());
        let ok = expected == *state;
        if !ok {
            self.count_violation(tick);
        }
        ok
    }

    fn count_violation(&mut self, tick: bool) {
        if tick {
            self.stats.ec_violations += 1;
        } else {
            self.stats.uc_violations += 1;
        }
    }

    /// Compare one key's recorded state at a snapshot cut against the
    /// shadow fold of the prefix `≤ cut`. Returns false (and counts a
    /// SNAP violation) on a torn cut.
    pub fn observe_cut(&mut self, cut: u64, key: u64, state: &A::State) -> bool {
        if !self.sampled(key) {
            return true;
        }
        self.stats.sampled_cuts += 1;
        let Some(shadow) = self.shadows.get(&key) else {
            let ok = *state == self.adt.initial();
            if !ok {
                self.stats.snap_violations += 1;
            }
            return ok;
        };
        if shadow.lossy || cut < shadow.base_bound {
            // Lossy window, or a cut below the compacted bound: the
            // prefix can no longer be reconstructed exactly.
            self.stats.skipped_checks += 1;
            return true;
        }
        let mut expected = shadow.base.clone();
        apply_ordered(
            &self.adt,
            &mut expected,
            shadow.window.range(..=(cut, u32::MAX)).map(|(_, u)| u),
        );
        let ok = expected == *state;
        if !ok {
            self.stats.snap_violations += 1;
        }
        ok
    }

    /// Record a peer's advertised clock (heartbeats, message stamps).
    /// The stability watermark is the minimum over the configured
    /// peer set.
    pub fn observe_heartbeat(&mut self, pid: u32, clock: u64) {
        let entry = self.peer_clocks.entry(pid).or_insert(0);
        *entry = (*entry).max(clock);
    }

    fn observe_own_clock(&mut self, pid: u32, clock: u64) {
        if self.cfg.peers.contains(&pid) {
            self.observe_heartbeat(pid, clock);
        }
    }

    /// The stability watermark: the minimum clock observed across the
    /// configured peer set (0 until every peer has been heard from).
    pub fn stable_bound(&self) -> u64 {
        if self.cfg.peers.is_empty() {
            return 0;
        }
        self.cfg
            .peers
            .iter()
            .map(|p| self.peer_clocks.get(p).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// Maintenance tick: advance the stability watermark, fold every
    /// window's now-stable prefix into its base, and finalize those
    /// verdicts. Ride this on `Protocol::on_tick`.
    pub fn tick(&mut self) {
        self.stats.ticks += 1;
        let bound = self.stable_bound();
        self.stats.stable_bound = bound;
        if bound == 0 {
            return;
        }
        let adt = &self.adt;
        let mut finalized = 0u64;
        for shadow in self.shadows.values_mut() {
            if bound <= shadow.base_bound {
                continue;
            }
            let rest = shadow.window.split_off(&(bound, u32::MAX));
            let stable = std::mem::replace(&mut shadow.window, rest);
            finalized += stable.len() as u64;
            apply_ordered(adt, &mut shadow.base, stable.values());
            shadow.base_bound = bound;
        }
        self.stats.finalized_updates += finalized;
    }

    /// Force-compact one key's window after it outgrew `max_window`.
    /// The shadow is marked lossy: later equality checks are skipped
    /// (and counted) because a late arrival below the forced bound
    /// would now be unrepresentable.
    fn force_compact(&mut self, key: u64) {
        let Some(shadow) = self.shadows.get_mut(&key) else {
            return;
        };
        let drop = shadow.window.len() / 2;
        let adt = &self.adt;
        let mut bound = shadow.base_bound;
        for _ in 0..drop {
            let Some((&(clock, _), _)) = shadow.window.iter().next() else {
                break;
            };
            let ((c, _), u) = shadow.window.pop_first().expect("non-empty");
            debug_assert_eq!(c, clock);
            adt.apply(&mut shadow.base, &u);
            bound = c;
        }
        shadow.base_bound = bound;
        if !shadow.lossy {
            shadow.lossy = true;
            self.stats.lossy_keys += 1;
        }
        self.stats.window_evictions += drop as u64;
    }

    /// The current counters.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// True when no violation of any class has been observed.
    pub fn clean(&self) -> bool {
        self.stats.clean()
    }

    /// Per-criterion verdicts from the streamed counters, in the
    /// offline checkers' vocabulary: `(criterion, verdict)` for
    /// `"uc"`, `"ec"`, `"sec"`, `"snap"`.
    pub fn verdicts(&self) -> Vec<(&'static str, Verdict)> {
        let s = &self.stats;
        let one = |name: &str, violations: u64, checked: u64| {
            if violations > 0 {
                Verdict::Fails(format!("{violations} online {name} violation(s)"))
            } else {
                Verdict::Holds(Witness::Trivial(format!(
                    "{checked} online {name} check(s) clean (stable bound {})",
                    s.stable_bound
                )))
            }
        };
        vec![
            ("uc", one("uc", s.uc_violations, s.sampled_queries)),
            ("ec", one("ec", s.ec_violations, s.sampled_queries)),
            ("sec", one("sec", s.sec_violations, s.sampled_updates)),
            ("snap", one("snap", s.snap_violations, s.sampled_cuts)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_spec::{CounterAdt, CounterUpdate};

    fn full_monitor() -> OnlineMonitor<CounterAdt> {
        OnlineMonitor::new(CounterAdt, MonitorConfig::full().with_peers([0, 1]))
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut m = full_monitor();
        m.observe_update(7, 1, 0, &CounterUpdate::Add(5));
        m.observe_update(7, 2, 1, &CounterUpdate::Add(3));
        // Duplicate delivery collapses.
        m.observe_update(7, 1, 0, &CounterUpdate::Add(5));
        assert!(m.check_query_state(7, &8));
        assert!(m.check_tick_state(7, &8));
        assert!(m.clean());
        assert_eq!(m.stats().sampled_updates, 2);
        assert_eq!(m.stats().sampled_keys, 1);
        assert!(m.verdicts().iter().all(|(_, v)| v.holds()));
    }

    #[test]
    fn untouched_key_must_be_initial() {
        let mut m = full_monitor();
        assert!(m.check_query_state(9, &0));
        assert!(!m.check_query_state(9, &4));
        assert_eq!(m.stats().uc_violations, 1);
    }

    #[test]
    fn divergence_counts_uc_and_ec_separately() {
        let mut m = full_monitor();
        m.observe_update(1, 1, 0, &CounterUpdate::Add(5));
        assert!(!m.check_query_state(1, &10));
        assert!(!m.check_tick_state(1, &10));
        assert_eq!(m.stats().uc_violations, 1);
        assert_eq!(m.stats().ec_violations, 1);
        assert!(m
            .verdicts()
            .iter()
            .all(|(_, v)| matches!(*v, Verdict::Fails(_) | Verdict::Holds(_))));
        assert!(m.verdicts()[0].1.fails());
    }

    #[test]
    fn stamp_reuse_is_a_sec_violation() {
        let mut m = full_monitor();
        m.observe_update(1, 3, 0, &CounterUpdate::Add(1));
        m.observe_update(1, 3, 0, &CounterUpdate::Add(2));
        assert_eq!(m.stats().sec_violations, 1);
    }

    #[test]
    fn cut_checks_fold_the_prefix() {
        let mut m = full_monitor();
        m.observe_update(1, 1, 0, &CounterUpdate::Add(5));
        m.observe_update(1, 3, 1, &CounterUpdate::Add(2));
        assert!(m.observe_cut(2, 1, &5));
        assert!(m.observe_cut(3, 1, &7));
        // Torn: cut 2 must not include the clock-3 update.
        assert!(!m.observe_cut(2, 1, &7));
        assert_eq!(m.stats().snap_violations, 1);
    }

    #[test]
    fn stability_compacts_windows_and_finalizes() {
        let mut m = full_monitor();
        m.observe_update(1, 1, 0, &CounterUpdate::Add(5));
        m.observe_update(1, 4, 0, &CounterUpdate::Add(2));
        m.observe_heartbeat(0, 4);
        m.observe_heartbeat(1, 2);
        m.tick();
        // Bound = min(4, 2) = 2: the clock-1 update is final.
        assert_eq!(m.stable_bound(), 2);
        assert_eq!(m.stats().finalized_updates, 1);
        // A redelivery below the bound is informational, not a
        // violation.
        m.observe_update(1, 1, 0, &CounterUpdate::Add(5));
        assert_eq!(m.stats().below_floor_arrivals, 1);
        assert!(m.clean());
        // The fold still covers base + window.
        assert!(m.check_query_state(1, &7));
    }

    #[test]
    fn forced_compaction_goes_lossy_not_false_positive() {
        let mut m = OnlineMonitor::new(
            CounterAdt,
            MonitorConfig {
                max_window: 4,
                ..MonitorConfig::full()
            },
        );
        for c in 1..=5 {
            m.observe_update(1, c, 0, &CounterUpdate::Add(1));
        }
        assert_eq!(m.stats().lossy_keys, 1);
        assert!(m.stats().window_evictions > 0);
        // Checks are skipped, never failed, for a lossy shadow.
        assert!(m.check_query_state(1, &999));
        assert!(m.stats().skipped_checks > 0);
        assert!(m.clean());
    }

    #[test]
    fn sampling_is_deterministic_and_partial() {
        let m = OnlineMonitor::new(CounterAdt, MonitorConfig::sampled(0.1));
        let sampled: Vec<u64> = (0..10_000).filter(|&k| m.sampled(k)).collect();
        // ~10% of keys, exactly reproducible.
        assert!((500..2000).contains(&sampled.len()), "{}", sampled.len());
        let m2 = OnlineMonitor::new(CounterAdt, MonitorConfig::sampled(0.1));
        assert!(sampled.iter().all(|&k| m2.sampled(k)));
        let off = OnlineMonitor::new(CounterAdt, MonitorConfig::sampled(0.0));
        assert!((0..1000).all(|k| !off.sampled(k)));
    }

    #[test]
    fn excluded_keys_are_never_observed() {
        let mut m = full_monitor();
        m.observe_update(5, 1, 0, &CounterUpdate::Add(1));
        m.exclude_key(6);
        m.observe_update(6, 2, 0, &CounterUpdate::Add(1));
        // Key 6 pre-dated attachment: a "wrong" state is not judged.
        assert!(m.check_query_state(6, &42));
        assert_eq!(m.stats().sampled_keys, 1);
        assert!(m.clean());
    }
}
