//! Pipelined consistency (Definition 7) — PRAM extended to all
//! UQ-ADTs.
//!
//! `H` is pipelined consistent if for every *maximal chain* `p` of the
//! program order, `lin(H_{U_H ∪ p}) ∩ L(O) ≠ ∅`: the chain's own
//! events, interleaved with **all** updates of the computation, must
//! admit a sequential explanation.
//!
//! ω-queries inside a chain are handled per their infinite-repetition
//! semantics: once the chain's ω-query is placed, the remaining
//! updates may still be interleaved into the ω-tail, but every state
//! reached from then on (the entry state and the state after each
//! subsequent update) must keep answering the query — between any two
//! of those updates there are infinitely many repetitions of the
//! query.

use crate::config::{Budget, CheckConfig};
use crate::verdict::{ChainWitness, Verdict, Witness};
use uc_history::downset::{self, Mask};
use uc_history::fxhash::FxHashSet;
use uc_history::{chains, EventId, History};
use uc_spec::{Op, UqAdt};

/// Decide pipelined consistency with the default budget.
pub fn check_pc<A: UqAdt>(h: &History<A>) -> Verdict {
    check_pc_with(h, &CheckConfig::default())
}

/// Decide pipelined consistency with an explicit budget.
pub fn check_pc_with<A: UqAdt>(h: &History<A>, cfg: &CheckConfig) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "pipelined consistency with ω-updates is outside the decision procedure".into(),
        );
    }
    let Some(maximal) = chains::maximal_chains(h, cfg.max_chains) else {
        return Verdict::Unsupported(format!("more than {} maximal chains", cfg.max_chains));
    };
    let mut witnesses = Vec::with_capacity(maximal.len());
    for chain in maximal {
        let scope = h.updates_mask() | chains::chain_mask(&chain);
        let mut budget = Budget::new(cfg);
        let mut seen: FxHashSet<(Mask, A::State)> = FxHashSet::default();
        let mut order = Vec::new();
        let mut state = h.adt().initial();
        match dfs(
            h,
            scope,
            0,
            &mut state,
            None,
            &mut order,
            &mut seen,
            &mut budget,
        ) {
            Outcome::Found => witnesses.push(ChainWitness {
                chain,
                linearization: order,
            }),
            Outcome::Exhausted => {
                return Verdict::Fails(format!(
                    "chain {chain:?} admits no linearization with all updates in L(O)"
                ))
            }
            Outcome::OutOfBudget => {
                return Verdict::Unsupported("pipelined-consistency search budget exceeded".into())
            }
        }
    }
    Verdict::Holds(Witness::PerChain(witnesses))
}

enum Outcome {
    Found,
    Exhausted,
    OutOfBudget,
}

/// `omega_obs`: once the chain's ω-query has been placed, the
/// observation every subsequent state must keep satisfying.
#[allow(clippy::too_many_arguments)]
fn dfs<A: UqAdt>(
    h: &History<A>,
    scope: Mask,
    done: Mask,
    state: &mut A::State,
    omega_obs: Option<(&A::QueryIn, &A::QueryOut)>,
    order: &mut Vec<EventId>,
    seen: &mut FxHashSet<(Mask, A::State)>,
    budget: &mut Budget,
) -> Outcome {
    if !budget.spend() {
        return Outcome::OutOfBudget;
    }
    if done == scope {
        return Outcome::Found;
    }
    // `omega_obs` is a function of `done` (the ω event is in `done` or
    // not), so (done, state) is a sound memo key.
    if !seen.insert((done, state.clone())) {
        return Outcome::Exhausted;
    }
    for i in downset::iter(h.ready(scope, done)) {
        let e = EventId(i as u32);
        let ev = h.event(e);
        let saved = state.clone();
        let mut next_omega = omega_obs;
        let ok = match &ev.op {
            Op::Update(u) => {
                h.adt().apply(state, u);
                // Inside an ω-tail every intermediate state must keep
                // answering the repeated query.
                match omega_obs {
                    Some((qi, qo)) => h.adt().answers(state, qi, qo),
                    None => true,
                }
            }
            Op::Query(q) => {
                let holds = h.adt().answers(state, &q.input, &q.output);
                if holds && ev.omega {
                    next_omega = Some((&q.input, &q.output));
                }
                holds
            }
        };
        if ok {
            order.push(e);
            match dfs(
                h,
                scope,
                done | downset::bit(i),
                state,
                next_omega,
                order,
                seen,
                budget,
            ) {
                Outcome::Exhausted => {
                    order.pop();
                }
                out => return out,
            }
        }
        *state = saved;
    }
    Outcome::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    #[test]
    fn paper_figures_classified() {
        for fig in paper::all_figures() {
            let got = check_pc(&fig.history);
            assert_eq!(
                got.holds(),
                fig.expected.pc,
                "{}: expected PC={}, got {:?}",
                fig.name,
                fig.expected.pc,
                got
            );
        }
    }

    #[test]
    fn fig2_witness_matches_w1_w2_shape() {
        // Fig. 2 prints w1 and w2; our checker must find *some* valid
        // interleavings — verify they replay in L(O).
        let fig = paper::fig2();
        let Verdict::Holds(Witness::PerChain(ws)) = check_pc(&fig.history) else {
            panic!("fig2 must be PC");
        };
        assert_eq!(ws.len(), 2);
        for w in &ws {
            let labels: Vec<_> = w
                .linearization
                .iter()
                .map(|&e| fig.history.label(e).clone())
                .collect();
            // Strip ω semantics: the finite prefix must be recognised.
            assert!(uc_spec::recognize::recognizes(
                fig.history.adt(),
                labels.iter()
            ));
        }
    }

    #[test]
    fn local_reads_must_see_own_writes() {
        // p0: I(1) then R/∅ — not PC (PRAM forbids losing your own
        // update).
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p0 = b.process();
        b.update(p0, SetUpdate::Insert(1));
        b.query(p0, SetQuery::Read, BTreeSet::new());
        let h = b.build().unwrap();
        assert!(check_pc(&h).fails());
    }

    #[test]
    fn different_processes_may_order_concurrent_updates_differently() {
        // The signature PRAM behaviour: p0 sees I(1) before I(2), p1
        // sees the reverse — fine for PC (it is Fig. 1d's p1 read,
        // without the joint convergence constraint).
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.query(p0, SetQuery::Read, BTreeSet::from([1]));
        b.update(p1, SetUpdate::Insert(2));
        b.query(p1, SetQuery::Read, BTreeSet::from([2]));
        let h = b.build().unwrap();
        assert!(check_pc(&h).holds());
    }

    #[test]
    fn omega_tail_blocks_late_state_changes() {
        // p0: ω-read ∅ ; p1: I(1). The insert cannot be placed before
        // the tail (read would be {1}... actually it can be placed
        // before: then the ω reads ∅ is wrong) nor inside the tail
        // (state changes to {1}) → not PC.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.omega_query(p0, SetQuery::Read, BTreeSet::new());
        b.update(p1, SetUpdate::Insert(1));
        let h = b.build().unwrap();
        assert!(check_pc(&h).fails());
    }

    #[test]
    fn omega_tail_allows_idempotent_updates() {
        // p0: I(1) · ω-read {1} ; p1: I(1). The duplicate insert can
        // land inside the ω-tail without changing the state → PC.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p0, SetQuery::Read, BTreeSet::from([1]));
        b.update(p1, SetUpdate::Insert(1));
        let h = b.build().unwrap();
        assert!(check_pc(&h).holds());
    }

    #[test]
    fn tiny_budget_reports_unsupported() {
        let fig = paper::fig2();
        let v = check_pc_with(
            &fig.history,
            &CheckConfig {
                max_nodes: 3,
                max_chains: 64,
            },
        );
        assert!(matches!(v, Verdict::Unsupported(_)));
    }
}
