//! Sequential consistency — the strong criterion the paper positions
//! update consistency *below* ("stronger than eventual consistency and
//! weaker than sequential consistency", §VIII). Provided for
//! calibration of the hierarchy experiments.
//!
//! `H` is sequentially consistent if some linearization of **all**
//! events is in `L(O)`. ω-queries are handled like in the pipelined
//! checker, except several processes' ω-tails interleave: once an
//! ω-query has been placed, every later state must keep answering it.

use crate::config::{Budget, CheckConfig};
use crate::verdict::{Verdict, Witness};
use uc_history::downset::{self, Mask};
use uc_history::fxhash::FxHashSet;
use uc_history::{EventId, History};
use uc_spec::{Op, UqAdt};

/// Decide sequential consistency with the default budget.
pub fn check_sc<A: UqAdt>(h: &History<A>) -> Verdict {
    check_sc_with(h, &CheckConfig::default())
}

/// Decide sequential consistency with an explicit budget.
pub fn check_sc_with<A: UqAdt>(h: &History<A>, cfg: &CheckConfig) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "sequential consistency with ω-updates is outside the decision procedure".into(),
        );
    }
    let mut budget = Budget::new(cfg);
    let mut seen: FxHashSet<(Mask, A::State)> = FxHashSet::default();
    let mut order = Vec::new();
    let mut state = h.adt().initial();
    match dfs(h, 0, &mut state, &mut order, &mut seen, &mut budget) {
        Outcome::Found => Verdict::Holds(Witness::FullLinearization(order)),
        Outcome::Exhausted => Verdict::Fails("no linearization of all events is in L(O)".into()),
        Outcome::OutOfBudget => {
            Verdict::Unsupported("sequential-consistency search budget exceeded".into())
        }
    }
}

enum Outcome {
    Found,
    Exhausted,
    OutOfBudget,
}

fn dfs<A: UqAdt>(
    h: &History<A>,
    done: Mask,
    state: &mut A::State,
    order: &mut Vec<EventId>,
    seen: &mut FxHashSet<(Mask, A::State)>,
    budget: &mut Budget,
) -> Outcome {
    if !budget.spend() {
        return Outcome::OutOfBudget;
    }
    let scope = h.all_mask();
    if done == scope {
        return Outcome::Found;
    }
    // The set of active ω constraints is determined by `done`, so
    // (done, state) is a sound memo key.
    if !seen.insert((done, state.clone())) {
        return Outcome::Exhausted;
    }
    for i in downset::iter(h.ready(scope, done)) {
        let e = EventId(i as u32);
        let ev = h.event(e);
        let saved = state.clone();
        let ok = match &ev.op {
            Op::Update(u) => {
                h.adt().apply(state, u);
                active_omegas_hold(h, done, state)
            }
            Op::Query(q) => h.adt().answers(state, &q.input, &q.output),
        };
        if ok {
            order.push(e);
            match dfs(h, done | downset::bit(i), state, order, seen, budget) {
                Outcome::Exhausted => {
                    order.pop();
                }
                out => return out,
            }
        }
        *state = saved;
    }
    Outcome::Exhausted
}

/// Every ω-query already placed must keep holding in `state`.
fn active_omegas_hold<A: UqAdt>(h: &History<A>, done: Mask, state: &A::State) -> bool {
    for i in downset::iter(done & h.omegas_mask() & h.queries_mask()) {
        let q = h.query_of(EventId(i as u32));
        if !h.adt().answers(state, &q.input, &q.output) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    fn set(vals: &[u32]) -> BTreeSet<u32> {
        vals.iter().copied().collect()
    }

    #[test]
    fn none_of_the_paper_figures_is_sc() {
        // All five figures exhibit weak behaviours; SC must reject
        // every one of them.
        for fig in paper::all_figures() {
            assert!(check_sc(&fig.history).fails(), "{}", fig.name);
        }
    }

    #[test]
    fn a_genuinely_sequential_history_is_sc() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.query(p1, SetQuery::Read, set(&[])); // ordered before the insert
        b.query(p1, SetQuery::Read, set(&[1]));
        b.omega_query(p0, SetQuery::Read, set(&[1]));
        let h = b.build().unwrap();
        let v = check_sc(&h);
        assert!(v.holds(), "{v:?}");
        let Some(Witness::FullLinearization(order)) = v.witness() else {
            panic!()
        };
        assert!(uc_history::linearize::is_linearization(
            &h,
            h.all_mask(),
            order
        ));
    }

    #[test]
    fn sc_implies_suc_on_small_histories() {
        // SC is stronger than SUC: sanity-check on a tiny history.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p1, SetQuery::Read, set(&[1]));
        let h = b.build().unwrap();
        assert!(check_sc(&h).holds());
        assert!(crate::suc::check_suc(&h).holds());
    }

    #[test]
    fn interleaved_omega_tails() {
        // Two ω-tails with the same converged output are fine.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p0, SetQuery::Read, set(&[1]));
        b.omega_query(p1, SetQuery::Read, set(&[1]));
        let h = b.build().unwrap();
        assert!(check_sc(&h).holds());
        // Diverging ω outputs are impossible.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p0, SetQuery::Read, set(&[1]));
        b.omega_query(p1, SetQuery::Read, set(&[]));
        let h = b.build().unwrap();
        assert!(check_sc(&h).fails());
    }

    #[test]
    fn updates_after_omega_entry_must_preserve_output() {
        // p1's ω-read ∅ can be placed before I(1)… but then the later
        // insert breaks it; placing it after reads {1} — also wrong.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p1, SetQuery::Read, set(&[]));
        let h = b.build().unwrap();
        assert!(check_sc(&h).fails());
    }
}
