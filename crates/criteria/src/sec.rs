//! Strong eventual consistency (Definition 6).
//!
//! `H` is SEC if some acyclic reflexive visibility relation `vis ⊇ ↦`
//! satisfies *eventual delivery*, *growth*, and *strong convergence*:
//! queries that see the same set of updates can be answered by a
//! single common state. Note the absence of any sequential-execution
//! constraint — the common state need not be *reachable*; this is
//! exactly the gap update consistency closes, and why Fig. 1b (which
//! converges to the sequentially unreachable `{1,2}`) is SEC but not
//! UC.

use crate::config::{Budget, CheckConfig};
use crate::verdict::{Verdict, VisibilityWitness, Witness};
use crate::vis::{is_acyclic, witness_pairs, EnumOutcome, VisAssignment, VisEnum};
use uc_history::downset::Mask;
use uc_history::fxhash::FxHashMap;
use uc_history::History;
use uc_spec::StateAbduction;

/// Decide strong eventual consistency with the default budget.
pub fn check_sec<A: StateAbduction>(h: &History<A>) -> Verdict {
    check_sec_with(h, &CheckConfig::default())
}

/// Decide strong eventual consistency with an explicit budget.
pub fn check_sec_with<A: StateAbduction>(h: &History<A>, cfg: &CheckConfig) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "strong eventual consistency with ω-updates is outside the decision procedure".into(),
        );
    }
    let mut budget = Budget::new(cfg);
    let vis_enum = VisEnum::new(h);
    let outcome = vis_enum.search(
        &mut budget,
        |_, _| true,
        |assignment| strong_convergence(h, assignment) && is_acyclic(h, assignment, None),
    );
    match outcome {
        EnumOutcome::Found(a) => Verdict::Holds(Witness::Visibility(VisibilityWitness {
            visible: witness_pairs(h, &a),
        })),
        EnumOutcome::Exhausted => Verdict::Fails(
            "no visibility assignment groups the queries into state-consistent classes".into(),
        ),
        EnumOutcome::OutOfBudget => {
            Verdict::Unsupported("visibility search budget exceeded".into())
        }
    }
}

/// Strong convergence: group queries by visible set and abduce a state
/// per group.
pub(crate) fn strong_convergence<A: StateAbduction>(
    h: &History<A>,
    assignment: &VisAssignment,
) -> bool {
    type Groups<A> = FxHashMap<
        Mask,
        Vec<(
            <A as uc_spec::UqAdt>::QueryIn,
            <A as uc_spec::UqAdt>::QueryOut,
        )>,
    >;
    let mut groups: Groups<A> = FxHashMap::default();
    for q in h.query_ids() {
        let query = h.query_of(q);
        groups
            .entry(assignment.visible[q.idx()])
            .or_default()
            .push((query.input.clone(), query.output.clone()));
    }
    groups
        .values()
        .all(|obs| h.adt().abduce_checked(obs).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    #[test]
    fn paper_figures_classified() {
        for fig in paper::all_figures() {
            let got = check_sec(&fig.history);
            assert_eq!(
                got.holds(),
                fig.expected.sec,
                "{}: expected SEC={}, got {:?}",
                fig.name,
                fig.expected.sec,
                got
            );
        }
    }

    #[test]
    fn fig1b_witnesses_unreachable_common_state() {
        // SEC accepts {1,2} even though no linearization reaches it.
        let fig = paper::fig1b();
        let v = check_sec(&fig.history);
        assert!(v.holds());
        let Some(Witness::Visibility(w)) = v.witness() else {
            panic!()
        };
        // Both ω queries see all four updates.
        for (_, seen) in &w.visible {
            assert_eq!(seen.len(), 4);
        }
    }

    #[test]
    fn ignoring_all_updates_is_sec() {
        // The paper's remark: an implementation that answers the
        // initial state forever is SEC — here both processes read ∅
        // despite updates... but eventual delivery still forces ω
        // queries to SEE the updates; the common state just has to be
        // abduced, and ∅ is a legal set state.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.omega_query(p0, SetQuery::Read, BTreeSet::new());
        b.update(p1, SetUpdate::Insert(2));
        b.omega_query(p1, SetQuery::Read, BTreeSet::new());
        let h = b.build().unwrap();
        assert!(check_sec(&h).holds());
    }

    #[test]
    fn same_visible_set_different_outputs_fails() {
        // Two ω queries (same full visible set by delivery) with
        // different outputs cannot share a state.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.omega_query(p0, SetQuery::Read, BTreeSet::from([1]));
        b.omega_query(p1, SetQuery::Read, BTreeSet::from([2]));
        let h = b.build().unwrap();
        assert!(check_sec(&h).fails());
    }

    #[test]
    fn growth_forces_own_updates_into_view() {
        // Fig. 1a's core argument in miniature: p0's queries must all
        // see I(1), leaving two possible groups but three outputs.
        let fig = paper::fig1a();
        assert!(check_sec(&fig.history).fails());
    }

    #[test]
    fn budget_exhaustion_unsupported() {
        // Too few nodes to even assign all six events once.
        let fig = paper::fig1b();
        let cfg = CheckConfig {
            max_nodes: 4,
            max_chains: 64,
        };
        let v = check_sec_with(&fig.history, &cfg);
        assert!(matches!(v, Verdict::Unsupported(_)));
    }
}
