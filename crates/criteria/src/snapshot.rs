//! Snapshot consistency: recorded multi-key cuts against the update
//! total order.
//!
//! A *cut* at timestamp `t` names the prefix of the update total order
//! (Lamport `(clock, pid)` pairs, Definition 3's arbitration) whose
//! stamps satisfy `clock ≤ t`. A multi-key snapshot taken at cut `t`
//! is **consistent** when every key's recorded state equals the
//! sequential fold of exactly that key's updates inside the prefix —
//! no key ahead of the cut, none behind it, i.e. the snapshot is not
//! *torn*. Because `clock ≤ t` is downward-closed in the total order,
//! a consistent cut is automatically closed under the arbitration
//! order: if an update is included, so is everything ordered before
//! it.
//!
//! [`check_snapshot_consistency`] re-derives each recorded state from
//! the trace and compares. It is deliberately decoupled from the
//! engine types in `uc-core` (which depends on this crate): traces
//! carry plain `u64` keys and clocks plus the ADT's update values, so
//! any implementation — sequential store, ingest pool, or a
//! simulator schedule — can record [`CutUpdate`]s and [`RecordedCut`]s
//! and be judged by the same procedure.

use crate::fold::{collapse_total_order, fold_prefix};
use crate::verdict::{Verdict, Witness};
use uc_spec::UqAdt;

/// One update as a snapshot trace records it: which key it targets and
/// the Lamport stamp that positions it in the update total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutUpdate<U> {
    /// The store key the update targets.
    pub key: u64,
    /// Lamport clock component of the stamp.
    pub clock: u64,
    /// Process id component of the stamp (tie-breaker).
    pub pid: u32,
    /// The ADT update value.
    pub update: U,
}

/// One recorded multi-key snapshot: the cut timestamp and the state
/// each key reported at that cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedCut<S> {
    /// The cut: the snapshot claims to reflect exactly the updates
    /// stamped `clock ≤ cut`.
    pub cut: u64,
    /// `(key, state)` pairs as recorded. Order is irrelevant.
    pub states: Vec<(u64, S)>,
}

/// Decide snapshot consistency for a batch of recorded cuts against
/// the trace of stamped updates.
///
/// The trace may arrive in any order and may contain duplicate
/// deliveries of the same stamped update (adversarial schedules
/// redeliver); duplicates are collapsed by stamp. Two *different*
/// updates sharing a stamp make the trace itself inconsistent and
/// fail the check — stamps are globally unique by construction
/// (Lamport clock + pid).
///
/// For each recorded cut, every key that has at least one update
/// stamped `≤ cut` must be present with exactly the fold of its
/// prefix, and every recorded key without such updates must equal the
/// initial state. A missing key, an extra update's effect, or a stale
/// state all surface as a torn cut naming the cut and the key.
pub fn check_snapshot_consistency<A: UqAdt>(
    adt: &A,
    trace: &[CutUpdate<A::Update>],
    cuts: &[RecordedCut<A::State>],
) -> Verdict {
    // Collapse the trace into the update total order: (clock, pid) →
    // (key, update), rejecting stamp collisions. Shared with the
    // streaming monitor (crate::fold) so the offline and online
    // procedures judge by the same arbitration.
    let order = match collapse_total_order(trace.iter().map(|u| (u.key, u.clock, u.pid, &u.update)))
    {
        Ok(order) => order,
        Err((clock, pid)) => {
            return Verdict::Fails(format!(
                "stamp ({clock}, {pid}) reused by two different updates"
            ));
        }
    };
    let mut checked = Vec::with_capacity(cuts.len());
    for rc in cuts {
        // Fold each key's prefix ≤ cut in total order.
        let expected = fold_prefix(adt, &order, rc.cut);
        let mut seen = Vec::with_capacity(rc.states.len());
        for (key, state) in &rc.states {
            if seen.contains(key) {
                return Verdict::Fails(format!(
                    "cut {}: key {key} recorded twice in one snapshot",
                    rc.cut
                ));
            }
            seen.push(*key);
            match expected.get(key) {
                Some(want) if want == state => {}
                Some(_) => {
                    return Verdict::Fails(format!(
                        "cut {}: key {key} is torn — recorded state is not the fold \
                         of its updates stamped ≤ {}",
                        rc.cut, rc.cut
                    ));
                }
                None => {
                    // No updates ≤ cut target this key: it must sit at
                    // the initial state.
                    if *state != adt.initial() {
                        return Verdict::Fails(format!(
                            "cut {}: key {key} shows effects of updates stamped after \
                             the cut",
                            rc.cut
                        ));
                    }
                }
            }
        }
        for key in expected.keys() {
            if !seen.contains(key) {
                return Verdict::Fails(format!(
                    "cut {}: key {key} has updates stamped ≤ {} but is missing from \
                     the snapshot",
                    rc.cut, rc.cut
                ));
            }
        }
        checked.push((rc.cut, rc.states.len()));
    }
    Verdict::Holds(Witness::CutFolds(checked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_spec::{CounterAdt, CounterUpdate};

    fn up(key: u64, clock: u64, pid: u32, delta: i64) -> CutUpdate<CounterUpdate> {
        CutUpdate {
            key,
            clock,
            pid,
            update: CounterUpdate::Add(delta),
        }
    }

    #[test]
    fn consistent_cuts_hold() {
        let adt = CounterAdt;
        let trace = vec![up(0, 1, 0, 5), up(1, 2, 0, 7), up(0, 3, 1, 1)];
        let cuts = vec![
            RecordedCut {
                cut: 2,
                states: vec![(0, 5), (1, 7)],
            },
            RecordedCut {
                cut: 3,
                states: vec![(0, 6), (1, 7)],
            },
        ];
        let v = check_snapshot_consistency(&adt, &trace, &cuts);
        assert!(v.holds(), "{v:?}");
        assert_eq!(v.witness(), Some(&Witness::CutFolds(vec![(2, 2), (3, 2)])));
    }

    #[test]
    fn duplicate_deliveries_collapse() {
        let adt = CounterAdt;
        let trace = vec![up(0, 1, 0, 5), up(0, 1, 0, 5), up(0, 2, 1, 3)];
        let cuts = vec![RecordedCut {
            cut: 2,
            states: vec![(0, 8)],
        }];
        assert!(check_snapshot_consistency(&adt, &trace, &cuts).holds());
    }

    #[test]
    fn torn_cut_fails_naming_cut_and_key() {
        let adt = CounterAdt;
        // Key 1's recorded state includes the clock-3 update even
        // though the cut is 2: a torn snapshot.
        let trace = vec![up(0, 1, 0, 5), up(1, 2, 0, 7), up(1, 3, 1, 1)];
        let cuts = vec![RecordedCut {
            cut: 2,
            states: vec![(0, 5), (1, 8)],
        }];
        let v = check_snapshot_consistency(&adt, &trace, &cuts);
        match v {
            Verdict::Fails(msg) => {
                assert!(msg.contains("cut 2"), "{msg}");
                assert!(msg.contains("key 1"), "{msg}");
            }
            other => panic!("expected Fails, got {other:?}"),
        }
    }

    #[test]
    fn missing_key_fails() {
        let adt = CounterAdt;
        let trace = vec![up(0, 1, 0, 5), up(1, 2, 0, 7)];
        let cuts = vec![RecordedCut {
            cut: 2,
            states: vec![(0, 5)],
        }];
        assert!(check_snapshot_consistency(&adt, &trace, &cuts).fails());
    }

    #[test]
    fn untouched_recorded_key_must_be_initial() {
        let adt = CounterAdt;
        let trace = vec![up(0, 5, 0, 5)];
        let ok = vec![RecordedCut {
            cut: 3,
            states: vec![(0, 0)],
        }];
        assert!(check_snapshot_consistency(&adt, &trace, &ok).holds());
        let bad = vec![RecordedCut {
            cut: 3,
            states: vec![(0, 5)],
        }];
        assert!(check_snapshot_consistency(&adt, &trace, &bad).fails());
    }

    #[test]
    fn stamp_collision_fails() {
        let adt = CounterAdt;
        let trace = vec![up(0, 1, 0, 5), up(1, 1, 0, 7)];
        assert!(check_snapshot_consistency(&adt, &trace, &[]).fails());
    }
}
