//! Strong update consistency (Definition 9).
//!
//! `H` is SUC if there are (1) an acyclic reflexive `vis ⊇ ↦` and
//! (2) a total order `≤ ⊇ vis` such that eventual delivery and growth
//! hold and — *strong sequential convergence* — every query is
//! answered by replaying exactly its visible updates in `≤` order from
//! the initial state.
//!
//! The decision procedure enumerates linearizations `τ` of the update
//! events (any total `≤` restricted to updates is one, and queries'
//! positions in `≤` are irrelevant beyond `u vis→ q ⇒ u ≤ q`, which
//! acyclicity of `vis ∪ ↦ ∪ τ` captures), and for each `τ` runs the
//! visibility search with a per-query replay admission check.
//!
//! The module also provides [`verify_witness`]: given an explicit
//! witness (as produced by Algorithm 1's replicas, whose timestamp
//! order *is* `≤` and whose received-log *is* `vis`), SUC is verified
//! in polynomial time — this is how Proposition 4 is validated on
//! traces too large for search.

use crate::config::{Budget, CheckConfig};
use crate::verdict::{Verdict, VisibilityWitness, Witness};
use crate::vis::{is_acyclic, witness_pairs, EnumOutcome, VisAssignment, VisEnum};
use std::ops::ControlFlow;
use uc_history::downset::{self, Mask};
use uc_history::{linearize, EventId, History};
use uc_spec::UqAdt;

/// Decide strong update consistency with the default budget.
pub fn check_suc<A: UqAdt>(h: &History<A>) -> Verdict {
    check_suc_with(h, &CheckConfig::default())
}

/// Decide strong update consistency with an explicit budget.
pub fn check_suc_with<A: UqAdt>(h: &History<A>, cfg: &CheckConfig) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Unsupported(
            "strong update consistency with ω-updates is outside the decision procedure".into(),
        );
    }
    let mut budget = Budget::new(cfg);
    let mut out_of_budget = false;
    let found = linearize::for_each(h, h.updates_mask(), |tau| {
        match try_tau(h, tau, &mut budget) {
            TauOutcome::Found(a) => ControlFlow::Break((tau.to_vec(), a)),
            TauOutcome::Exhausted => ControlFlow::Continue(()),
            TauOutcome::OutOfBudget => {
                out_of_budget = true;
                ControlFlow::Break((Vec::new(), VisAssignment { visible: vec![] }))
            }
        }
    });
    match found {
        Some((tau, assignment)) if !out_of_budget => Verdict::Holds(Witness::VisibilityAndOrder {
            visibility: VisibilityWitness {
                visible: witness_pairs(h, &assignment),
            },
            order: tau,
        }),
        Some(_) => Verdict::Unsupported("SUC search budget exceeded".into()),
        None => {
            if out_of_budget {
                Verdict::Unsupported("SUC search budget exceeded".into())
            } else {
                Verdict::Fails(
                    "no update order and visibility assignment satisfy strong sequential \
                     convergence"
                        .into(),
                )
            }
        }
    }
}

enum TauOutcome {
    Found(VisAssignment),
    Exhausted,
    OutOfBudget,
}

fn try_tau<A: UqAdt>(h: &History<A>, tau: &[EventId], budget: &mut Budget) -> TauOutcome {
    // Position of each update in τ, for sorting visible sets.
    let mut pos = vec![usize::MAX; h.len()];
    for (i, &u) in tau.iter().enumerate() {
        pos[u.idx()] = i;
    }
    let vis_enum = VisEnum::new(h);
    let outcome = vis_enum.search(
        budget,
        |e, v| {
            if !h.event(e).is_query() {
                return true;
            }
            replay_answers(h, tau, &pos, v, e)
        },
        |assignment| is_acyclic(h, assignment, Some(tau)),
    );
    match outcome {
        EnumOutcome::Found(a) => TauOutcome::Found(a),
        EnumOutcome::Exhausted => TauOutcome::Exhausted,
        EnumOutcome::OutOfBudget => TauOutcome::OutOfBudget,
    }
}

/// Does replaying the visible updates `v` in τ order answer query `q`?
fn replay_answers<A: UqAdt>(
    h: &History<A>,
    tau: &[EventId],
    pos: &[usize],
    v: Mask,
    q: EventId,
) -> bool {
    let mut vis_updates: Vec<EventId> = downset::iter(v).map(|i| EventId(i as u32)).collect();
    vis_updates.sort_by_key(|u| pos[u.idx()]);
    debug_assert!(vis_updates.iter().all(|u| pos[u.idx()] != usize::MAX));
    let _ = tau;
    let mut state = h.adt().initial();
    for u in &vis_updates {
        h.adt().apply(&mut state, h.update_of(*u));
    }
    let query = h.query_of(q);
    h.adt().answers(&state, &query.input, &query.output)
}

/// An explicit SUC witness for polynomial-time verification: the total
/// update order and, per query event, the visible update set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SucWitness {
    /// All update events in the claimed `≤` order.
    pub update_order: Vec<EventId>,
    /// `(event, visible updates)` pairs. Every query of the history
    /// must appear; update events may also appear (replica logs at
    /// update time), and any update event left unlisted is completed
    /// to the minimal growth-consistent set.
    pub visible: Vec<(EventId, Vec<EventId>)>,
}

/// Verify Definition 9 against an explicit witness (polynomial).
///
/// Checks:
/// 1. `update_order` is a linearization of the update events w.r.t.
///    `↦`;
/// 2. visibility contains `↦` and is *grown* (monotone along `↦`) and
///    excludes `↦`-future updates (acyclicity of `vis ∪ ↦ ∪ τ` for the
///    threshold-shaped relations produced by replicas);
/// 3. eventual delivery: ω queries see every update;
/// 4. strong sequential convergence: each query's visible set, sorted
///    by the order, replays to its recorded output.
pub fn verify_witness<A: UqAdt>(h: &History<A>, w: &SucWitness) -> Result<(), String> {
    if !linearize::is_linearization(h, h.updates_mask(), &w.update_order) {
        return Err("update_order is not a linearization of U_H".into());
    }
    let mut pos = vec![usize::MAX; h.len()];
    for (i, &u) in w.update_order.iter().enumerate() {
        pos[u.idx()] = i;
    }
    // Assemble per-event masks. Listed events (all queries, and
    // optionally updates, e.g. replica logs at update time) come from
    // the witness; unlisted update events are completed to the minimal
    // growth-consistent set in topological order.
    let mut listed: Vec<Option<Mask>> = vec![None; h.len()];
    let mut covered: Mask = 0;
    for (e, vis) in &w.visible {
        if h.event(*e).is_query() {
            covered |= downset::bit(e.idx());
        }
        listed[e.idx()] = Some(vis.iter().fold(0, |m, u| m | downset::bit(u.idx())));
    }
    if covered != h.queries_mask() {
        return Err("witness does not cover every query".into());
    }
    let mut topo: Vec<EventId> = h.ids().collect();
    topo.sort_by_key(|e| h.before_mask(*e).count_ones());
    let mut visible: Vec<Mask> = vec![0; h.len()];
    for e in topo {
        visible[e.idx()] = match listed[e.idx()] {
            Some(m) => m,
            None => {
                debug_assert!(h.event(e).is_update());
                let mut m = (h.updates_mask() & h.before_mask(e)) | downset::bit(e.idx());
                for p in downset::iter(h.before_mask(e)) {
                    m |= visible[p];
                }
                m
            }
        };
    }
    let assignment = VisAssignment { visible };
    // (2) containment, growth, delivery.
    for e in h.ids() {
        let v = assignment.visible[e.idx()];
        let forced = h.updates_mask() & h.before_mask(e);
        if forced & !v != 0 {
            return Err(format!("visibility at {e:?} misses ↦-predecessor updates"));
        }
        for p in downset::iter(h.before_mask(e)) {
            if assignment.visible[p] & !v != 0 {
                return Err(format!("growth violated between e{p} and {e:?}"));
            }
        }
        if h.event(e).omega && v != h.updates_mask() {
            return Err(format!("eventual delivery violated at ω event {e:?}"));
        }
        if v & h.updates_mask() & h.after_mask(e) != 0 {
            return Err(format!("{e:?} sees a ↦-future update"));
        }
    }
    if !is_acyclic(h, &assignment, Some(&w.update_order)) {
        return Err("vis ∪ ↦ ∪ ≤ is cyclic".into());
    }
    // (4) replay.
    for q in h.query_ids() {
        if !replay_answers(h, &w.update_order, &pos, assignment.visible[q.idx()], q) {
            return Err(format!("strong sequential convergence violated at {q:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{SetAdt, SetQuery, SetUpdate};

    #[test]
    fn paper_figures_classified() {
        for fig in paper::all_figures() {
            let got = check_suc(&fig.history);
            assert_eq!(
                got.holds(),
                fig.expected.suc,
                "{}: expected SUC={}, got {:?}",
                fig.name,
                fig.expected.suc,
                got
            );
        }
    }

    #[test]
    fn fig1d_witness_verifies() {
        let fig = paper::fig1d();
        let Verdict::Holds(Witness::VisibilityAndOrder { visibility, order }) =
            check_suc(&fig.history)
        else {
            panic!("fig1d must be SUC");
        };
        let w = SucWitness {
            update_order: order,
            visible: visibility.visible,
        };
        assert_eq!(verify_witness(&fig.history, &w), Ok(()));
    }

    #[test]
    fn fig1c_read_empty_after_own_insert_breaks_suc() {
        let fig = paper::fig1c();
        assert!(check_suc(&fig.history).fails());
    }

    #[test]
    fn verify_witness_rejects_wrong_order() {
        let fig = paper::fig1d();
        let Verdict::Holds(Witness::VisibilityAndOrder { visibility, order }) =
            check_suc(&fig.history)
        else {
            panic!()
        };
        let mut bad = SucWitness {
            update_order: order,
            visible: visibility.visible,
        };
        bad.update_order.reverse(); // violates ↦ (I(1) before I(2) on p0)
        assert!(verify_witness(&fig.history, &bad).is_err());
    }

    #[test]
    fn verify_witness_rejects_missing_delivery() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        let u = b.update(p0, SetUpdate::Insert(1));
        let q = b.omega_query(p1, SetQuery::Read, BTreeSet::from([1]));
        let h = b.build().unwrap();
        let w = SucWitness {
            update_order: vec![u],
            visible: vec![(q, vec![])], // ω query must see u
        };
        let err = verify_witness(&h, &w).unwrap_err();
        assert!(err.contains("eventual delivery"), "{err}");
    }

    #[test]
    fn verify_witness_rejects_bad_replay() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        let u = b.update(p0, SetUpdate::Insert(1));
        let q = b.query(p1, SetQuery::Read, BTreeSet::from([2]));
        let h = b.build().unwrap();
        let w = SucWitness {
            update_order: vec![u],
            visible: vec![(q, vec![u])],
        };
        let err = verify_witness(&h, &w).unwrap_err();
        assert!(err.contains("strong sequential convergence"), "{err}");
    }

    #[test]
    fn suc_implies_paper_hierarchy_on_figures() {
        // Prop. 2 on the concrete figures: whenever SUC holds, SEC and
        // UC hold (cross-checked through the other checkers).
        for fig in paper::all_figures() {
            if check_suc(&fig.history).holds() {
                assert!(crate::sec::check_sec(&fig.history).holds(), "{}", fig.name);
                assert!(crate::uc::check_uc(&fig.history).holds(), "{}", fig.name);
            }
        }
    }

    #[test]
    fn budget_exhaustion_unsupported() {
        // Too few nodes to even assign all six events once.
        let fig = paper::fig1d();
        let cfg = CheckConfig {
            max_nodes: 4,
            max_chains: 64,
        };
        let v = check_suc_with(&fig.history, &cfg);
        assert!(matches!(v, Verdict::Unsupported(_)));
    }
}
