//! Update consistency (Definition 8).
//!
//! `H` is update consistent if `U_H` is infinite, or a finite set of
//! queries `Q'` can be removed so that some linearization of the rest
//! is in `L(O)`.
//!
//! With ω-events the decision reduces to: *is there a linearization of
//! the update events (respecting the program order restricted to
//! updates — note that order constraints transiting through removed
//! queries survive, because `↦` is transitively closed) whose final
//! state answers every ω-query?* All non-ω queries go into `Q'`;
//! the infinitely repeated instances of each ω-query are placed after
//! the last update, where they must all observe the converged state.
//!
//! The search walks the down-set lattice of the update sub-order,
//! memoizing `(down-set, state)` pairs so that permutations reaching
//! the same intermediate state are explored once — for commutative
//! objects (counters, grow-sets) this collapses the factorial search
//! to a single path per down-set.

use crate::config::{Budget, CheckConfig};
use crate::verdict::{Verdict, Witness};
use uc_history::downset::{self, Mask};
use uc_history::fxhash::FxHashSet;
use uc_history::{EventId, History};
use uc_spec::UqAdt;

/// Decide update consistency with the default budget.
pub fn check_uc<A: UqAdt>(h: &History<A>) -> Verdict {
    check_uc_with(h, &CheckConfig::default())
}

/// Decide update consistency with an explicit budget.
pub fn check_uc_with<A: UqAdt>(h: &History<A>, cfg: &CheckConfig) -> Verdict {
    if h.has_omega_update() {
        return Verdict::Holds(Witness::Trivial(
            "U_H is infinite (ω-update present)".into(),
        ));
    }
    // Observations every candidate final state must satisfy.
    let omega_obs: Vec<(A::QueryIn, A::QueryOut)> = h
        .query_ids()
        .filter(|&q| h.event(q).omega)
        .map(|q| {
            let query = h.query_of(q);
            (query.input.clone(), query.output.clone())
        })
        .collect();

    let scope = h.updates_mask();
    let mut budget = Budget::new(cfg);
    let mut seen: FxHashSet<(Mask, A::State)> = FxHashSet::default();
    let mut order: Vec<EventId> = Vec::new();
    let mut state = h.adt().initial();
    match dfs(
        h,
        scope,
        0,
        &mut state,
        &mut order,
        &omega_obs,
        &mut seen,
        &mut budget,
    ) {
        SearchOutcome::Found(final_state) => {
            Verdict::Holds(Witness::UpdateLinearization { order, final_state })
        }
        SearchOutcome::Exhausted => Verdict::Fails(format!(
            "no linearization of the {} update(s) satisfies the {} ω-query observation(s)",
            downset::iter(scope).len(),
            omega_obs.len()
        )),
        SearchOutcome::OutOfBudget => {
            Verdict::Unsupported("update-linearization search budget exceeded".into())
        }
    }
}

enum SearchOutcome {
    Found(String),
    Exhausted,
    OutOfBudget,
}

#[allow(clippy::too_many_arguments)]
fn dfs<A: UqAdt>(
    h: &History<A>,
    scope: Mask,
    done: Mask,
    state: &mut A::State,
    order: &mut Vec<EventId>,
    omega_obs: &[(A::QueryIn, A::QueryOut)],
    seen: &mut FxHashSet<(Mask, A::State)>,
    budget: &mut Budget,
) -> SearchOutcome {
    if !budget.spend() {
        return SearchOutcome::OutOfBudget;
    }
    if done == scope {
        if omega_obs
            .iter()
            .all(|(qi, qo)| h.adt().answers(state, qi, qo))
        {
            return SearchOutcome::Found(format!("{state:?}"));
        }
        return SearchOutcome::Exhausted;
    }
    if !seen.insert((done, state.clone())) {
        return SearchOutcome::Exhausted;
    }
    for i in downset::iter(h.ready(scope, done)) {
        let e = EventId(i as u32);
        let u = h.update_of(e).clone();
        let saved = state.clone();
        h.adt().apply(state, &u);
        order.push(e);
        match dfs(
            h,
            scope,
            done | downset::bit(i),
            state,
            order,
            omega_obs,
            seen,
            budget,
        ) {
            SearchOutcome::Exhausted => {}
            out => return out,
        }
        order.pop();
        *state = saved;
    }
    SearchOutcome::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use uc_history::paper;
    use uc_history::HistoryBuilder;
    use uc_spec::{CounterAdt, CounterQuery, CounterUpdate, SetAdt, SetQuery, SetUpdate};

    #[test]
    fn paper_figures_classified() {
        for fig in paper::all_figures() {
            let got = check_uc(&fig.history);
            assert_eq!(
                got.holds(),
                fig.expected.uc,
                "{}: expected UC={}, got {:?}",
                fig.name,
                fig.expected.uc,
                got
            );
        }
    }

    #[test]
    fn witness_is_a_valid_linearization() {
        let fig = paper::fig1c();
        let Verdict::Holds(Witness::UpdateLinearization { order, final_state }) =
            check_uc(&fig.history)
        else {
            panic!("fig1c must be UC");
        };
        assert!(uc_history::linearize::is_linearization(
            &fig.history,
            fig.history.updates_mask(),
            &order
        ));
        assert_eq!(final_state, "{1, 2}");
    }

    #[test]
    fn fig1b_fails_because_last_update_deletes() {
        let fig = paper::fig1b();
        assert!(check_uc(&fig.history).fails());
    }

    #[test]
    fn commutative_updates_memoize() {
        // 10 concurrent counter increments: 10! orders but one state
        // per down-set; must finish instantly within a small budget.
        let mut b = HistoryBuilder::new(CounterAdt);
        for i in 0..10 {
            let p = b.process();
            b.update(p, CounterUpdate::Add(i));
            if i == 0 {
                b.omega_query(p, CounterQuery::Read, 45);
            }
        }
        // ω-query must be on its own process *after* an update —
        // rebuild properly: one process queries, ten update.
        let h = b.build();
        // builder disallows events after ω on same process; here the ω
        // was added right after p0's update, making p0's chain end in ω.
        let h = h.unwrap();
        let v = check_uc_with(
            &h,
            &CheckConfig {
                max_nodes: 20_000,
                max_chains: 64,
            },
        );
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn no_omega_queries_trivially_uc() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let p = b.process();
        b.update(p, SetUpdate::Insert(1));
        b.query(p, SetQuery::Read, BTreeSet::from([2])); // wrong but removable
        let h = b.build().unwrap();
        assert!(check_uc(&h).holds());
    }

    #[test]
    fn budget_exhaustion_reports_unsupported() {
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        for i in 0..8 {
            let p = b.process();
            b.update(p, SetUpdate::Insert(i));
            if i == 0 {
                b.omega_query(p, SetQuery::Read, BTreeSet::new()); // unsatisfiable
            }
        }
        let h = b.build().unwrap();
        let v = check_uc_with(&h, &CheckConfig::tiny());
        assert_eq!(
            v,
            Verdict::Unsupported("update-linearization search budget exceeded".into())
        );
    }

    #[test]
    fn program_order_constrains_linearizations() {
        // p0: I(1) then D(1); p1: ω-read {1} — impossible, since D(1)
        // must follow I(1), and a final I from elsewhere doesn't exist.
        let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
        let [p0, p1] = b.processes();
        b.update(p0, SetUpdate::Insert(1));
        b.update(p0, SetUpdate::Delete(1));
        b.omega_query(p1, SetQuery::Read, BTreeSet::from([1]));
        let h = b.build().unwrap();
        assert!(check_uc(&h).fails());
    }

    #[test]
    fn concurrent_insert_delete_both_outcomes_reachable() {
        // p0: I(1); p1: D(1). Final state may be {1} or {} depending on
        // the linearization → either ω expectation is UC.
        for (expect, _) in [
            (BTreeSet::from([1]), "insert last"),
            (BTreeSet::new(), "delete last"),
        ] {
            let mut b = HistoryBuilder::new(SetAdt::<u32>::new());
            let [p0, p1, p2] = b.processes();
            b.update(p0, SetUpdate::Insert(1));
            b.update(p1, SetUpdate::Delete(1));
            b.omega_query(p2, SetQuery::Read, expect.clone());
            let h = b.build().unwrap();
            assert!(check_uc(&h).holds(), "expectation {expect:?}");
        }
    }
}
