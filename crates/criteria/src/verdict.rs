//! Checker verdicts and witnesses.
//!
//! A consistency criterion (Definition 4) is a predicate on histories;
//! the checkers return not just the boolean but *evidence*: a witness
//! structure for positive verdicts (the linearization / visibility
//! relation whose existence the definition asserts) and a reason for
//! negative ones. Witnesses are re-checkable: tests validate them
//! against the definitions rather than trusting the search.

use uc_history::EventId;

/// Outcome of checking one criterion on one history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The criterion holds, with evidence.
    Holds(Witness),
    /// The criterion fails; the string explains the exhausted search or
    /// the violated condition.
    Fails(String),
    /// The checker cannot decide this history (search budget exceeded,
    /// or a feature such as ω-updates outside the procedure's scope).
    Unsupported(String),
}

impl Verdict {
    /// Did the criterion hold?
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds(_))
    }

    /// Did the criterion fail (decided negative, not merely
    /// undecided)?
    pub fn fails(&self) -> bool {
        matches!(self, Verdict::Fails(_))
    }

    /// The witness, if the criterion holds.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            Verdict::Holds(w) => Some(w),
            _ => None,
        }
    }

    /// Render as the ✓ / ✗ / ? cell of a classification table.
    pub fn cell(&self) -> &'static str {
        match self {
            Verdict::Holds(_) => "yes",
            Verdict::Fails(_) => "no",
            Verdict::Unsupported(_) => "?",
        }
    }
}

/// Evidence that a criterion holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Witness {
    /// The criterion holds vacuously or by a closed-form argument
    /// (e.g. `U_H` infinite in Definitions 5 and 8).
    Trivial(String),
    /// A converged state consistent with the relevant queries
    /// (eventual consistency). Debug-rendered.
    ConvergedState(String),
    /// A linearization of the update events whose final state explains
    /// the ω-queries (update consistency), rendered with the reached
    /// state.
    UpdateLinearization {
        /// Update events in witness order.
        order: Vec<EventId>,
        /// Debug rendering of the state the order reaches.
        final_state: String,
    },
    /// Per maximal chain: the chain and the interleaving of the chain
    /// with all updates that lies in `L(O)` (pipelined consistency).
    PerChain(Vec<ChainWitness>),
    /// A visibility assignment (strong eventual consistency /
    /// insert-wins), with the per-query visible update sets.
    Visibility(VisibilityWitness),
    /// A visibility assignment plus a total update order (strong
    /// update consistency).
    VisibilityAndOrder {
        /// The visibility assignment.
        visibility: VisibilityWitness,
        /// Update events in the witnessing total order `≤`.
        order: Vec<EventId>,
    },
    /// A single linearization of all events (sequential consistency).
    FullLinearization(Vec<EventId>),
    /// Per validated cut: `(cut timestamp, keys checked)` — every
    /// recorded state re-derived by folding the update total order's
    /// prefix `≤ cut` (snapshot consistency).
    CutFolds(Vec<(u64, usize)>),
}

/// Witness element for one maximal chain (pipelined consistency).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainWitness {
    /// The maximal chain.
    pub chain: Vec<EventId>,
    /// A linearization of `U_H ∪ chain` recognised by the ADT.
    pub linearization: Vec<EventId>,
}

/// A visibility relation restricted to what the checkers search over:
/// for every query event, the set of update events it sees.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VisibilityWitness {
    /// `(query event, visible update events)` pairs, ascending by
    /// query id.
    pub visible: Vec<(EventId, Vec<EventId>)>,
}

impl VisibilityWitness {
    /// The visible set of a query, if recorded.
    pub fn of(&self, q: EventId) -> Option<&[EventId]> {
        self.visible
            .iter()
            .find(|(e, _)| *e == q)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let h = Verdict::Holds(Witness::Trivial("x".into()));
        let f = Verdict::Fails("no".into());
        let u = Verdict::Unsupported("budget".into());
        assert!(h.holds() && !h.fails());
        assert!(f.fails() && !f.holds());
        assert!(!u.holds() && !u.fails());
        assert_eq!(h.cell(), "yes");
        assert_eq!(f.cell(), "no");
        assert_eq!(u.cell(), "?");
        assert!(h.witness().is_some());
        assert!(f.witness().is_none());
    }

    #[test]
    fn visibility_lookup() {
        let w = VisibilityWitness {
            visible: vec![(EventId(3), vec![EventId(0), EventId(1)])],
        };
        assert_eq!(w.of(EventId(3)), Some(&[EventId(0), EventId(1)][..]));
        assert_eq!(w.of(EventId(4)), None);
    }
}
